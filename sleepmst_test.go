package sleepmst

import (
	"math"
	"testing"
)

func TestRunAllAlgorithmsAgree(t *testing.T) {
	g := RandomConnected(48, 120, 7)
	want := ReferenceMST(g)
	for _, a := range []Algorithm{Randomized, Deterministic, LogStar, Baseline, ClassicGHS} {
		t.Run(a.String(), func(t *testing.T) {
			rep, err := Run(a, g, Options{Seed: 3})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Verified() {
				t.Error("MST does not match reference")
			}
			if rep.MSTWeight() != totalWeight(want) {
				t.Errorf("weight %d, want %d", rep.MSTWeight(), totalWeight(want))
			}
			if len(rep.MSTEdges) != g.N()-1 {
				t.Errorf("edges = %d, want %d", len(rep.MSTEdges), g.N()-1)
			}
		})
	}
}

func totalWeight(edges []Edge) int64 {
	var s int64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

func TestAlgorithmParseRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{Randomized, Deterministic, LogStar, Baseline, ClassicGHS} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: got %v err %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestMSTPortsCoverTree(t *testing.T) {
	g := Grid(4, 4, 9)
	rep, err := Run(Randomized, g, Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ports := MSTPorts(rep)
	// Sum of per-node MST ports counts every tree edge twice.
	total := 0
	for _, ps := range ports {
		total += len(ps)
	}
	if total != 2*(g.N()-1) {
		t.Errorf("port endpoints = %d, want %d", total, 2*(g.N()-1))
	}
}

func TestSleepingBeatsBaseline(t *testing.T) {
	// The headline claim, end to end through the public API: on the
	// same instance the sleeping algorithm's awake complexity is
	// O(log n) while the baseline's equals its Θ(n log n) runtime.
	g := SensorNetwork(128, 0.18, 11)
	sleeping, err := Run(Randomized, g, Options{Seed: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	base, err := Run(Baseline, g, Options{Seed: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sleeping.Verified() || !base.Verified() {
		t.Fatal("unverified MSTs")
	}
	logN := math.Log2(float64(g.N()))
	if float64(sleeping.AwakeComplexity()) > 40*logN {
		t.Errorf("sleeping awake = %d, want O(log n)", sleeping.AwakeComplexity())
	}
	if base.AwakeComplexity() < 50*sleeping.AwakeComplexity() {
		t.Errorf("baseline awake %d vs sleeping %d: want a large gap on n=128",
			base.AwakeComplexity(), sleeping.AwakeComplexity())
	}
}

func TestSolveSDViaMSTFacade(t *testing.T) {
	grc, err := NewGRC(4, 16, 5)
	if err != nil {
		t.Fatalf("grc: %v", err)
	}
	x := []bool{true, false, true}
	y := []bool{false, true, false}
	ins, err := NewDSDInstance(grc, x, y)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	disjoint, metrics, err := SolveSDViaMST(ins, Randomized, Options{Seed: 1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !disjoint {
		t.Error("x and y are disjoint; decoder said otherwise")
	}
	if metrics.MaxAwake() <= 0 {
		t.Error("no metrics recorded")
	}
}

func TestWithRandomIDs(t *testing.T) {
	g := WithRandomIDs(Path(10, 1), 1000, 2)
	rep, err := Run(Deterministic, g, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Verified() {
		t.Error("MST wrong with random IDs")
	}
}

func TestRunInvalidAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm(99), Path(4, 1), Options{}); err == nil {
		t.Fatal("want error for invalid algorithm")
	}
	if Algorithm(99).String() == "" {
		t.Error("empty string for invalid algorithm")
	}
	if Algorithm(99).Runner() != nil {
		t.Error("runner for invalid algorithm")
	}
}

func TestClassicGHSThroughFacade(t *testing.T) {
	g := Ring(24, 5)
	rep, err := Run(ClassicGHS, g, Options{Seed: 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Verified() {
		t.Error("classic GHS wrong MST")
	}
	if rep.AwakeComplexity() != rep.Result.MaxHaltRound() {
		t.Error("classic GHS must be awake every round")
	}
}
