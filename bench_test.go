// Benchmarks regenerating the paper's quantitative content. One bench
// per table/figure artifact:
//
//	BenchmarkTable1RandomizedAwake / Rounds    — Table 1 row 1
//	BenchmarkTable1DeterministicAwake / Rounds — Table 1 row 2
//	BenchmarkCorollary1LogStar                 — §2.3 Remark
//	BenchmarkBaselineGHS                       — traditional comparator
//	BenchmarkTheorem3Ring                      — §3.1 lower bound
//	BenchmarkFigure1GrcDiameter                — Figure 1 / Observation 1
//	BenchmarkTheorem4Tradeoff                  — §3.2 awake × rounds
//	BenchmarkTheorem4Reduction                 — Lemmas 8-10 end to end
//	BenchmarkFigures2to5Merge                  — Appendix C walkthrough
//
// Custom metrics (b.ReportMetric) carry the paper-facing quantities:
// awake complexity, awake/log2(n), rounds, and their envelopes, so
// `go test -bench . -benchmem` prints the reproduction table directly.
package sleepmst

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/lowerbound"
	"sleepmst/internal/sim"
	"sleepmst/internal/stats"
)

// benchSizes are the sweep sizes; kept moderate so the full suite runs
// in minutes on a laptop. Override with a comma-separated
// SLEEPMST_BENCH_SIZES (e.g. SLEEPMST_BENCH_SIZES=32,64 for a smoke
// run, or 512,1024 to probe scaling).
var benchSizes = benchSizesFromEnv([]int{64, 128, 256})

func benchSizesFromEnv(def []int) []int {
	raw := os.Getenv("SLEEPMST_BENCH_SIZES")
	if raw == "" {
		return def
	}
	var sizes []int
	for _, f := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			panic(fmt.Sprintf("SLEEPMST_BENCH_SIZES: bad size %q", f))
		}
		sizes = append(sizes, n)
	}
	return sizes
}

func benchMST(b *testing.B, a Algorithm, n int, reportRounds bool) {
	b.Helper()
	g := RandomConnected(n, 3*n, int64(n))
	var awake, rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(a, g, Options{Seed: int64(i)})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		awake += float64(rep.AwakeComplexity())
		rounds += float64(rep.RoundComplexity())
	}
	awake /= float64(b.N)
	rounds /= float64(b.N)
	logn := math.Log2(float64(n))
	b.ReportMetric(awake, "awake")
	b.ReportMetric(awake/logn, "awake/log2n")
	if reportRounds {
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(rounds/(float64(n)*logn), "rounds/nlog2n")
	}
}

func BenchmarkTable1RandomizedAwake(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchMST(b, Randomized, n, false)
		})
	}
}

func BenchmarkTable1RandomizedRounds(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchMST(b, Randomized, n, true)
		})
	}
}

func BenchmarkTable1DeterministicAwake(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchMST(b, Deterministic, n, false)
		})
	}
}

func BenchmarkTable1DeterministicRounds(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomConnected(n, 3*n, int64(n))
			var rounds float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Run(Deterministic, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				rounds += float64(rep.RoundComplexity())
			}
			rounds /= float64(b.N)
			logn := math.Log2(float64(n))
			// The deterministic run time is O(n·N·log n); with IDs
			// 1..n the envelope is n²·log n.
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(rounds/(float64(n)*float64(n)*logn), "rounds/nNlog2n")
		})
	}
}

func BenchmarkCorollary1LogStar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomConnected(n, 3*n, int64(n))
			var awake, rounds float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Run(LogStar, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				awake += float64(rep.AwakeComplexity())
				rounds += float64(rep.RoundComplexity())
			}
			awake /= float64(b.N)
			rounds /= float64(b.N)
			env := math.Log2(float64(n)) * stats.LogStar(float64(n))
			b.ReportMetric(awake, "awake")
			b.ReportMetric(awake/env, "awake/log2n.logstar")
			b.ReportMetric(rounds/(float64(n)*env), "rounds/env")
		})
	}
}

func BenchmarkBaselineGHS(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomConnected(n, 3*n, int64(n))
			var base, sleeping float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb, err := Run(Baseline, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				rs, err := Run(Randomized, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				base += float64(rb.AwakeComplexity())
				sleeping += float64(rs.AwakeComplexity())
			}
			b.ReportMetric(base/float64(b.N), "baseline-awake")
			b.ReportMetric(base/sleeping, "awake-gap")
		})
	}
}

func BenchmarkTheorem3Ring(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var frac, awake float64
			for i := 0; i < b.N; i++ {
				res := lowerbound.HeaviestEdgeSeparation(4*n+4, 500, int64(i))
				frac += res.FracSeparated
				g := lowerbound.RingInstance(n, int64(i))
				rep, err := Run(Randomized, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				awake += float64(rep.AwakeComplexity())
			}
			b.ReportMetric(frac/float64(b.N), "Pr[separated]")
			b.ReportMetric(awake/float64(b.N)/math.Log2(float64(n)), "awake/log2n")
		})
	}
}

func BenchmarkFigure1GrcDiameter(b *testing.B) {
	for _, c := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var d float64
			for i := 0; i < b.N; i++ {
				grc, err := NewGRC(4, c, int64(i))
				if err != nil {
					b.Fatalf("grc: %v", err)
				}
				d += float64(Diameter(grc.G))
			}
			d /= float64(b.N)
			n := float64(4*c) + math.Log2(float64(4*c))
			b.ReportMetric(d, "diameter")
			b.ReportMetric(d/(float64(c)/math.Log2(n)), "D/(c/log2n)")
		})
	}
}

func BenchmarkTheorem4Tradeoff(b *testing.B) {
	for _, c := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var product, congestion float64
			var n int
			for i := 0; i < b.N; i++ {
				pt, err := lowerbound.TradeoffExperiment(4, c, core.RunRandomized, int64(i))
				if err != nil {
					b.Fatalf("tradeoff: %v", err)
				}
				product += float64(pt.Product)
				congestion += float64(pt.TreeCongestion)
				n = pt.N
			}
			b.ReportMetric(product/float64(b.N), "awakeXrounds")
			b.ReportMetric(product/float64(b.N)/float64(n), "product/n")
			b.ReportMetric(congestion/float64(b.N), "tree-congestion-bits")
		})
	}
}

func BenchmarkTheorem4Reduction(b *testing.B) {
	grc, err := NewGRC(4, 16, 1)
	if err != nil {
		b.Fatalf("grc: %v", err)
	}
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := lowerbound.RandomBits(grc.R-1, int64(i*2+1))
		y := lowerbound.RandomBits(grc.R-1, int64(i*2+2))
		ins, err := NewDSDInstance(grc, x, y)
		if err != nil {
			b.Fatalf("encode: %v", err)
		}
		got, _, err := SolveSDViaMST(ins, Randomized, Options{Seed: int64(i)})
		if err != nil {
			b.Fatalf("solve: %v", err)
		}
		if got == ins.Disjoint() {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "decode-accuracy")
}

// BenchmarkFigures2to5Merge regenerates the Appendix C walkthrough:
// the canonical two-fragment merge, asserting the figures' final
// labels every iteration.
func BenchmarkFigures2to5Merge(b *testing.B) {
	g := graph.MustNew(5, []graph.Edge{
		{U: 0, V: 1, Weight: 10},
		{U: 1, V: 4, Weight: 1},
		{U: 2, V: 3, Weight: 20},
		{U: 3, V: 4, Weight: 30},
	})
	moePort := -1
	for p, pt := range g.Ports(4) {
		if pt.To == 1 {
			moePort = p
		}
	}
	wantLevels := []int{0, 1, 4, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		states, err := ldt.StatesFromParents(g, []int{-1, 0, -1, 2, 3})
		if err != nil {
			b.Fatalf("states: %v", err)
		}
		_, err = sim.Run(sim.Config{Graph: g, Seed: int64(i)}, func(nd *sim.Node) error {
			st := states[nd.Index()]
			dec := ldt.NoMerge
			if st.FragID == g.ID(2) {
				dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
				if nd.Index() == 4 {
					dec.AttachPort = moePort
				}
			}
			ldt.MergingFragments(nd, st, 1, dec)
			return nil
		})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		for v, want := range wantLevels {
			if states[v].Level != want {
				b.Fatalf("node %d level %d, want %d", v, states[v].Level, want)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator performance:
// awake-node-rounds per second on a dense exchange workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := RandomConnected(256, 768, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{Graph: g, Seed: int64(i)}, func(nd *sim.Node) error {
			for r := 0; r < 50; r++ {
				nd.Exchange(nil)
			}
			return nil
		})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
	}
	b.ReportMetric(float64(256*50), "node-rounds/op")
}

// BenchmarkClassicGHS measures the independent traditional-model GHS:
// fewer rounds than the block-scheduled algorithms (chain merges) but
// awake complexity equal to rounds.
func BenchmarkClassicGHS(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomConnected(n, 3*n, int64(n))
			var awake, rounds float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Run(ClassicGHS, g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				awake += float64(rep.AwakeComplexity())
				rounds += float64(rep.RoundComplexity())
			}
			logn := math.Log2(float64(n))
			b.ReportMetric(awake/float64(b.N), "awake")
			b.ReportMetric(rounds/float64(b.N)/(float64(n)*logn), "rounds/nlog2n")
		})
	}
}

// BenchmarkRecorderOverhead measures the cost of the observability
// layer on a real algorithm run (Randomized-MST, n = 256): recording
// off (the zero-cost contract), metrics only, and full event
// recording with JSONL serialization. E18 quotes these numbers.
func BenchmarkRecorderOverhead(b *testing.B) {
	g := RandomConnected(256, 768, 9)
	run := func(b *testing.B, opts func(i int) Options) {
		for i := 0; i < b.N; i++ {
			rep, err := Run(Randomized, g, opts(i))
			if err != nil {
				b.Fatalf("run: %v", err)
			}
			if !rep.Verified() {
				b.Fatal("MST not verified")
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func(i int) Options { return Options{Seed: int64(i)} })
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func(i int) Options { return Options{Seed: int64(i), Metrics: NewMetricsRegistry()} })
	})
	b.Run("trace", func(b *testing.B) {
		run(b, func(i int) Options { return Options{Seed: int64(i), Trace: NewTraceRecorder(0)} })
	})
	b.Run("trace+jsonl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := NewTraceRecorder(0)
			if _, err := Run(Randomized, g, Options{Seed: int64(i), Trace: rec}); err != nil {
				b.Fatalf("run: %v", err)
			}
			if err := rec.WriteJSONL(io.Discard); err != nil {
				b.Fatalf("write: %v", err)
			}
		}
	})
}
