package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir with the given relative path.
func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckTree covers resolvable links, broken files, anchors, and
// the external/fence exclusions on a synthetic tree.
func TestCheckTree(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", strings.Join([]string{
		"# Top",
		"",
		"## User Journeys",
		"",
		"Good: [design](docs/DESIGN.md), [section](docs/DESIGN.md#part-two),",
		"[self](#user-journeys), [dir](docs), [ext](https://example.com/x.md).",
		"",
		"```sh",
		"cat [not-a-link](missing-in-fence.md)",
		"```",
	}, "\n"))
	write(t, dir, "docs/DESIGN.md", strings.Join([]string{
		"# Design",
		"",
		"## Part Two",
		"",
		"Back: [readme](../README.md).",
	}, "\n"))

	broken, checked, err := checkTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Fatalf("clean tree reported broken links: %v", broken)
	}
	if checked != 5 { // 4 in README + 1 in DESIGN; external and fenced excluded
		t.Errorf("checked = %d, want 5", checked)
	}

	write(t, dir, "docs/BAD.md", strings.Join([]string{
		"# Bad",
		"",
		"[gone](nope.md) and [no anchor](DESIGN.md#part-three) and [bad self](#missing).",
	}, "\n"))
	broken, _, err = checkTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 3 {
		t.Fatalf("broken = %v, want 3 entries", broken)
	}
	for _, want := range []string{"nope.md", "part-three", "#missing"} {
		found := false
		for _, b := range broken {
			if strings.Contains(b, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no broken-link report mentioning %q in %v", want, broken)
		}
	}
}

// TestHeadingAnchors pins the slug rules the repo's docs rely on,
// including duplicate headings and punctuation-heavy section titles.
func TestHeadingAnchors(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", strings.Join([]string{
		"# Design & Notes",
		"## §7. Chaos, Faults",
		"## Dup",
		"## Dup",
		"```",
		"# not a heading",
		"```",
		"#not-a-heading-either",
	}, "\n"))
	anchors, err := headingAnchors(filepath.Join(dir, "a.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"design--notes", "7-chaos-faults", "dup", "dup-1"} {
		if !anchors[want] {
			t.Errorf("missing anchor %q in %v", want, anchors)
		}
	}
	if anchors["not-a-heading"] || anchors["not-a-heading-either"] {
		t.Errorf("fenced or malformed heading leaked into %v", anchors)
	}
}

// TestRepoLinksClean runs the checker over the real repository so CI
// and `go test ./...` agree on link health.
func TestRepoLinksClean(t *testing.T) {
	broken, checked, err := checkTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("repository has broken intra-repo markdown links:\n%s", strings.Join(broken, "\n"))
	}
	if checked == 0 {
		t.Error("no links checked — walker is miswired")
	}
}
