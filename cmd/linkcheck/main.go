// Command linkcheck audits the repository's markdown for broken
// intra-repo links: every relative `[text](target)` must point at a
// file or directory that exists, and a `#fragment` on a markdown
// target must match one of that file's heading anchors
// (GitHub-style slugs). External links (http, https, mailto) are out
// of scope — CI must not depend on the network — and fenced code
// blocks are skipped so shell snippets cannot produce false links.
//
// Usage:
//
//	linkcheck [root]
//
// With no argument it checks every .md file under the current
// directory, excluding .git. It exits non-zero listing each broken
// link as file:line: target.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, checked, err := checkTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken intra-repo link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d intra-repo link(s) OK\n", checked)
}

// checkTree walks root for markdown files and validates every
// relative link. It returns the broken-link reports and the count of
// links checked.
func checkTree(root string) (broken []string, checked int, err error) {
	var files []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Hidden directories (.git, .claude, .github) hold no docs.
			if strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		// SNIPPETS.md quotes material from external repositories, so
		// its relative links point outside this tree by design.
		if d.Name() == "SNIPPETS.md" {
			return nil
		}
		if strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for _, path := range files {
		b, c, err := checkFile(path)
		if err != nil {
			return nil, 0, err
		}
		broken = append(broken, b...)
		checked += c
	}
	return broken, checked, nil
}

// linkRe matches inline markdown links; the target group stops at the
// first ')' (titles and nested parens are not used in this repo).
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkFile validates every relative link in one markdown file.
func checkFile(path string) (broken []string, checked int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if isExternal(target) {
				continue
			}
			checked++
			if reason := checkTarget(path, dir, target); reason != "" {
				broken = append(broken, fmt.Sprintf("%s:%d: %s (%s)", path, i+1, target, reason))
			}
		}
	}
	return broken, checked, nil
}

// isExternal reports whether the link target leaves the repository.
func isExternal(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}

// checkTarget validates one relative target; the empty string means
// the link resolves.
func checkTarget(from, dir, target string) string {
	file, frag, _ := strings.Cut(target, "#")
	resolved := from // "#frag" alone points into the current file
	if file != "" {
		resolved = filepath.Join(dir, file)
		if _, err := os.Stat(resolved); err != nil {
			return "target does not exist"
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
		return "" // anchors into non-markdown targets are not checked
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("cannot read target: %v", err)
	}
	if !anchors[strings.ToLower(frag)] {
		return "no heading with this anchor"
	}
	return ""
}

// headingAnchors returns the GitHub-style anchor slugs of a markdown
// file's headings; duplicate headings get -1, -2, ... suffixes.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || (text != "" && text[0] != ' ') {
			continue // not a heading (e.g. a #! line)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, nil
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters, digits, and hyphens (symbols like §
// or → vanish), and turn spaces into hyphens.
func slugify(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == '-' || unicode.IsLetter(r) || unicode.IsNumber(r):
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
