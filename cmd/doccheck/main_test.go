package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDirFlagsUndocumentedSymbols(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "x.go", `package x

type Bad struct{}

func (Bad) BadMethod() {}

func BadFunc() {}

const BadConst = 1

// Good is documented.
type Good struct{}

// GoodMethod is documented.
func (Good) GoodMethod() {}

// Grouped constants share the block doc.
const (
	GroupedA = 1
	GroupedB = 2
)

type unexported struct{}

func (unexported) MethodOnUnexported() {}
`)
	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(missing, "\n")
	for _, want := range []string{"type Bad", "method BadMethod", "function BadFunc", "const BadConst"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	for _, bad := range []string{"Good", "Grouped", "MethodOnUnexported"} {
		if strings.Contains(got, bad) {
			t.Errorf("false positive %q in:\n%s", bad, got)
		}
	}
	if len(missing) != 4 {
		t.Errorf("got %d findings, want 4:\n%s", len(missing), got)
	}
}

func TestCheckDirSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "x_test.go", "package x\n\nfunc Undocumented() {}\n")
	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("test files must be skipped, got %v", missing)
	}
}

func TestAuditedPackagesAreClean(t *testing.T) {
	for _, dir := range auditedDirs {
		missing, err := checkDir(filepath.Join("..", "..", dir))
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 0 {
			t.Errorf("%s: %v", dir, missing)
		}
	}
}
