// Command doccheck enforces the godoc contract on the audited
// packages: every exported top-level symbol (and every exported
// method on an exported type) must carry a doc comment. CI runs it
// over the facade and the observability packages; it exits non-zero
// and lists each undocumented symbol otherwise.
//
// Usage:
//
//	doccheck [dir ...]
//
// With no arguments it checks the repository's audited set: the
// facade package (.), internal/trace, internal/metrics,
// internal/prof, internal/conform, internal/problem,
// internal/modelcheck, internal/transport, internal/energy,
// internal/stats, and internal/lowerbound.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// auditedDirs is the default package set; keep it in sync with the
// CI doccheck step and DESIGN.md §8.
var auditedDirs = []string{
	".",
	"internal/conform",
	"internal/energy",
	"internal/lowerbound",
	"internal/metrics",
	"internal/modelcheck",
	"internal/problem",
	"internal/prof",
	"internal/service",
	"internal/stats",
	"internal/sweep",
	"internal/trace",
	"internal/transport",
}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = auditedDirs
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) without doc comments\n", len(missing))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d package dir(s) clean\n", len(dirs))
}

// checkDir parses every non-test Go file in dir (no recursion) and
// returns one "file:line: symbol" entry per undocumented exported
// symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					missing = append(missing, checkGenDecl(fset, d)...)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a function's receiver type (if
// any) is exported; methods on unexported types are not API surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkGenDecl audits a type/var/const declaration. A doc comment on
// the declaration group covers every spec in it; otherwise each
// exported spec needs its own doc (or trailing line) comment.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return nil
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, what, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			what := "var"
			if d.Tok == token.CONST {
				what = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), what, name.Name)
				}
			}
		}
	}
	return missing
}
