package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sleepmst/internal/service"
	"sleepmst/internal/transport"
)

// serveCell runs serve once and decodes the artifact.
func serveCell(t *testing.T, probName, txName string, n int, drop, delay float64, retries int) (artifact, []byte) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "verdict.json")
	err := serve("random", n, 2*n, 0, 0.2, 1, probName, "event", txName,
		retries, transport.DefaultRecvTimeout, drop, delay, time.Millisecond, 3,
		out, "", 1<<20)
	if err != nil {
		t.Fatalf("serve(%s over %s): %v", probName, txName, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	return a, data
}

// verdictBytes re-marshals just the transport-independent sections
// for byte comparison across backends.
func verdictBytes(t *testing.T, a artifact) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		V interface{} `json:"verdict"`
		R runSummary  `json:"run"`
	}{a.Verdict, a.Run})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeVerdictIdenticalAcrossBackends pins the service's core
// claim: the certified verdict and run summary do not depend on which
// backend carried the frames.
func TestServeVerdictIdenticalAcrossBackends(t *testing.T) {
	for _, probName := range []string{"mst/randomized", "mis"} {
		inproc, _ := serveCell(t, probName, "inproc", 32, 0, 0, transport.DefaultRetries)
		tcp, _ := serveCell(t, probName, "tcp", 32, 0, 0, transport.DefaultRetries)
		if got, want := string(verdictBytes(t, tcp)), string(verdictBytes(t, inproc)); got != want {
			t.Errorf("%s: verdict+run section differs across backends:\ntcp:    %s\ninproc: %s", probName, got, want)
		}
		if !tcp.Verdict.Pass || !tcp.Run.VerifyPassed {
			t.Errorf("%s: tcp verdict did not pass: %+v", probName, tcp.Verdict)
		}
		if tcp.Wire.FramesSent == 0 || tcp.Wire.WireBytes == 0 {
			t.Errorf("%s: tcp wire section empty: %+v", probName, tcp.Wire)
		}
	}
}

// TestServeFaultyWireStillCertifies injects wire drops and delays
// with a retry budget: the artifact must still certify a correct
// tree, and the wire section must show the faults were exercised.
func TestServeFaultyWireStillCertifies(t *testing.T) {
	clean, _ := serveCell(t, "mst/randomized", "tcp", 32, 0, 0, 8)
	faulty, _ := serveCell(t, "mst/randomized", "tcp", 32, 0.05, 0.05, 8)
	if got, want := string(verdictBytes(t, faulty)), string(verdictBytes(t, clean)); got != want {
		t.Errorf("verdict+run section changed under wire faults:\nfaulty: %s\nclean:  %s", got, want)
	}
	if faulty.Wire.InjectedDrops == 0 && faulty.Wire.InjectedDelays == 0 {
		t.Errorf("fault injector idle: %+v", faulty.Wire)
	}
}

// TestServeRejectsUnknownInputs covers the argument surface.
func TestServeRejectsUnknownInputs(t *testing.T) {
	base := func(prob, tx, graph string) error {
		return serve(graph, 8, 16, 0, 0.2, 1, prob, "event", tx,
			0, time.Second, 0, 0, time.Millisecond, 1, filepath.Join(t.TempDir(), "v.json"), "", 1<<16)
	}
	if err := base("nope", "tcp", "random"); err == nil {
		t.Error("unknown problem accepted")
	}
	if err := base("mis", "carrier-pigeon", "random"); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := base("mis", "tcp", "torus"); err == nil {
		t.Error("unknown graph kind accepted")
	}
}

// TestExitCodes pins the documented exit-code split: 0 = success,
// 1 = conformance/correctness violation, 2 = internal error — however
// deeply the violation sentinel is wrapped.
func TestExitCodes(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", errViolation))
	if got := exitCode(wrapped); got != 1 {
		t.Errorf("exitCode(wrapped violation) = %d, want 1", got)
	}
	if got := exitCode(errors.New("dial tcp: connection refused")); got != 2 {
		t.Errorf("exitCode(internal error) = %d, want 2", got)
	}
	// The one-shot violation path must produce the sentinel: a passing
	// run must not.
	if err := serve("random", 16, 32, 0, 0.2, 1, "mis", "event", "inproc",
		0, time.Second, 0, 0, time.Millisecond, 1, filepath.Join(t.TempDir(), "v.json"), "", 1<<16); err != nil {
		t.Errorf("passing cell returned %v", err)
	}
	if err := serve("random", 16, 32, 0, 0.2, 1, "nope", "event", "inproc",
		0, time.Second, 0, 0, time.Millisecond, 1, filepath.Join(t.TempDir(), "v.json"), "", 1<<16); exitCode(err) != 2 {
		t.Errorf("unknown problem classified as %d, want 2", exitCode(err))
	}
}

// TestDaemonSIGTERMDrain drives the daemon end to end in-process: a
// request over the wire, then SIGTERM mid-service; the daemon must
// answer the request, drain cleanly (exit path 0), and write the
// merged metrics registry.
func TestDaemonSIGTERMDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metricsOut := filepath.Join(t.TempDir(), "metrics.txt")
	daemonErr := make(chan error, 1)
	go func() { daemonErr <- daemonOn(ln, 2, 8, time.Minute, 1024, metricsOut) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := service.WriteRequest(conn, service.Request{
		ID: 1, Problem: "mst/randomized", Graph: "random", N: 24, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := service.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != service.StatusOK {
		t.Fatalf("daemon answered %v (%s), want ok", resp.Status, resp.Detail)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-daemonErr:
		if err != nil {
			t.Fatalf("daemon drain returned %v, want nil (exit code 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("drained daemon wrote no metrics: %v", err)
	}
	if !strings.Contains(string(data), "service/requests/total") {
		t.Errorf("metrics registry missing request accounting:\n%s", data)
	}
}
