// Command mstserve is the real-transport MST service: it takes a
// graph description, runs a registered sleeping-model problem with
// every delivery carried over a wire backend (real loopback TCP by
// default), certifies the produced trace with the conformance
// checker, and emits one JSON artifact holding the verdict, the run
// summary, and the physical wire accounting.
//
// The service exists to close the loop the simulator alone cannot:
// the same algorithms, trace recorder, and invariant catalog, but
// with every message encoded into a binary frame and shipped through
// sockets — so "the tree is correct and the awake budget holds" is
// certified over a real deployment path, not only in scheduler
// memory. The verdict section of the artifact is byte-identical to an
// in-memory run of the same cell; only the wire section knows which
// backend carried the frames.
//
// Chaos, reinterpreted: -drop and -delay inject wire-level faults
// (transient send failures and latency) below the model. With a
// positive -retries budget every injected drop is masked by
// retransmission, so the artifact must still certify a correct tree;
// with -retries 0 drops become permanent and the run fails loudly at
// the round barrier rather than silently miscomputing.
//
// With -serve the command becomes a persistent daemon instead of a
// one-shot cell: it listens on the given address and serves concurrent
// certified-computation requests over the internal/service wire
// protocol, with a bounded admission queue, per-request deadlines, and
// a graceful SIGTERM drain that finishes every admitted request before
// exiting. cmd/mstload is the matching load generator.
//
// Exit codes are split so scripts can tell "the math failed" from "the
// infrastructure failed": 0 = success, 1 = a conformance or
// correctness violation, 2 = an internal error (bad arguments,
// transport bring-up, I/O).
//
// Usage:
//
//	mstserve -n 64 -m 128 -problem mst/randomized -transport tcp -out verdict.json
//	mstserve -n 32 -drop 0.05 -delay 0.05 -retries 8   # faulty wire, clean tree
//	mstserve -serve 127.0.0.1:7600 -workers 8 -queue 64        # daemon
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sleepmst"
	"sleepmst/internal/conform"
	"sleepmst/internal/problem"
	"sleepmst/internal/service"
	"sleepmst/internal/transport"
)

// errViolation marks a completed run whose conformance verdict or
// correctness oracle failed — exit code 1, distinct from
// infrastructure failures (exit code 2).
var errViolation = errors.New("conformance violation")

// artifactSchema versions the mstserve JSON artifact.
const artifactSchema = 1

// artifact is the JSON output: the conformance verdict (transport
// independent) plus the run and wire summaries.
type artifact struct {
	Schema    int    `json:"schema"`
	Problem   string `json:"problem"`
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Seed      int64  `json:"seed"`
	Transport string `json:"transport"`

	// Verdict is the conformance verdict over the run's trace plus the
	// problem's correctness oracle — byte-identical across backends.
	Verdict *conform.Verdict `json:"verdict"`

	// Run summarizes the sleeping-model accounting.
	Run runSummary `json:"run"`

	// Wire is the physical transport accounting; timing-dependent
	// counters (retries, redials) live here and only here.
	Wire wireSummary `json:"wire"`
}

type runSummary struct {
	AwakeMax     int64   `json:"awake_max"`
	AwakeAvg     float64 `json:"awake_avg"`
	Rounds       int64   `json:"rounds"`
	BusyRounds   int64   `json:"busy_rounds"`
	Sent         int64   `json:"messages_sent"`
	Delivered    int64   `json:"messages_delivered"`
	Lost         int64   `json:"messages_lost"`
	BitsSent     int64   `json:"bits_sent"`
	MSTWeight    int64   `json:"mst_weight,omitempty"`
	Phases       int     `json:"phases,omitempty"`
	VerifyPassed bool    `json:"verify_passed"`
}

type wireSummary struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesRecv     int64 `json:"frames_recv"`
	WireBytes      int64 `json:"wire_bytes"`
	Dials          int64 `json:"dials"`
	Redials        int64 `json:"redials,omitempty"`
	SendRetries    int64 `json:"send_retries,omitempty"`
	InjectedDrops  int64 `json:"injected_drops,omitempty"`
	InjectedDelays int64 `json:"injected_delays,omitempty"`
}

func main() {
	var (
		graphKind = flag.String("graph", "random", "topology: "+service.GraphKindList)
		n         = flag.Int("n", 64, "number of nodes")
		m         = flag.Int("m", 0, "edges for -graph random (default 2n: sparse, socket-friendly)")
		rows      = flag.Int("rows", 0, "rows for -graph grid (default sqrt(n))")
		radius    = flag.Float64("radius", 0.2, "radius for -graph sensor")
		seed      = flag.Int64("seed", 1, "seed for topology, weights and algorithm randomness")
		probName  = flag.String("problem", "mst/randomized", "problem to serve (qualified name such as mst/randomized or mis, or a bare MST alias)")
		engName   = flag.String("engine", "event", "simulator scheduler: event or goroutine")
		txName    = flag.String("transport", "tcp", "wire backend: tcp (real loopback sockets, default) or inproc")
		retries   = flag.Int("retries", transport.DefaultRetries, "per-frame send retry budget (masks injected drops; 0 = single-attempt sends, drops are permanent)")
		timeout   = flag.Duration("timeout", transport.DefaultRecvTimeout, "round-barrier receive deadline")
		dropProb  = flag.Float64("drop", 0, "injected per-attempt wire drop probability in [0,1]")
		delayProb = flag.Float64("delay", 0, "injected per-frame wire delay probability in [0,1]")
		maxDelay  = flag.Duration("max-delay", 2*time.Millisecond, "injected delay upper bound")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the deterministic fault hash")
		outPath   = flag.String("out", "", "write the JSON artifact to this file ('-' = stdout; default stdout)")
		traceOut  = flag.String("trace-out", "", "also write the structured JSONL event trace to this file")
		traceCap  = flag.Int("trace-cap", 1<<21, "trace-recorder event capacity")

		serveAddr  = flag.String("serve", "", "persistent daemon mode: listen address for the service wire protocol (e.g. 127.0.0.1:7600)")
		workers    = flag.Int("workers", 0, "daemon worker-pool size (0 = GOMAXPROCS; 1 serializes requests)")
		queue      = flag.Int("queue", service.DefaultQueueDepth, "daemon admission-queue depth; a full queue rejects with the overloaded status")
		deadline   = flag.Duration("deadline", service.DefaultDeadline, "daemon default per-request deadline")
		maxN       = flag.Int("max-n", service.DefaultMaxN, "daemon per-request node-count cap")
		metricsOut = flag.String("metrics-out", "", "daemon: write the merged service metrics registry here after the drain")
	)
	flag.Parse()
	var err error
	if *serveAddr != "" {
		err = daemon(*serveAddr, *workers, *queue, *deadline, *maxN, *metricsOut)
	} else {
		err = serve(*graphKind, *n, *m, *rows, *radius, *seed, *probName, *engName, *txName,
			*retries, *timeout, *dropProb, *delayProb, *maxDelay, *faultSeed,
			*outPath, *traceOut, *traceCap)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
	}
	os.Exit(exitCode(err))
}

// exitCode maps a run outcome onto the documented exit-code split:
// 0 = success, 1 = conformance/correctness violation, 2 = internal
// error.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errViolation):
		return 1
	default:
		return 2
	}
}

// daemon binds addr and runs the persistent service until SIGTERM.
func daemon(addr string, workers, queue int, deadline time.Duration, maxN int, metricsOut string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mstserve: serving on %s (workers=%d queue=%d)\n", ln.Addr(), workers, queue)
	return daemonOn(ln, workers, queue, deadline, maxN, metricsOut)
}

// daemonOn serves the wire protocol on ln until SIGTERM or interrupt,
// then drains gracefully: admitted requests finish, their responses
// flush, and the merged service metrics land in metricsOut. Split
// from daemon so tests can drive it on an ephemeral listener.
func daemonOn(ln net.Listener, workers, queue int, deadline time.Duration, maxN int, metricsOut string) error {
	svc := service.New(service.Config{
		Workers:         workers,
		QueueDepth:      queue,
		DefaultDeadline: deadline,
		MaxN:            maxN,
	})
	srv := service.NewServer(svc)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case sig := <-sigs:
			fmt.Fprintf(os.Stderr, "mstserve: %v, draining\n", sig)
			srv.Shutdown()
		case <-done:
		}
	}()

	if err := srv.Serve(ln); !errors.Is(err, service.ErrServerClosed) {
		return err
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, []byte(svc.Metrics().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "mstserve: drained cleanly")
	return nil
}

// serve runs one certified cell end to end and writes the artifact.
func serve(graphKind string, n, m, rows int, radius float64, seed int64,
	probName, engName, txName string, retries int, timeout time.Duration,
	dropProb, delayProb float64, maxDelay time.Duration, faultSeed uint64,
	outPath, traceOut string, traceCap int) error {
	engine, err := sleepmst.ParseEngine(engName)
	if err != nil {
		return err
	}
	p, err := problem.Lookup(probName)
	if err != nil {
		return err
	}
	g, err := service.BuildGraph(graphKind, n, m, rows, radius, seed)
	if err != nil {
		return err
	}

	tx, err := buildTransport(txName, retries, timeout)
	if err != nil {
		return err
	}
	if dropProb > 0 || delayProb > 0 {
		tx = transport.WithFaults(tx, transport.FaultConfig{
			Seed:      faultSeed,
			DropProb:  dropProb,
			DelayProb: delayProb,
			MaxDelay:  maxDelay,
			Retries:   retries,
		})
	}
	defer tx.Close()

	rec := sleepmst.NewTraceRecorder(traceCap)
	r, err := p.Run(g, sleepmst.Options{
		Engine:    engine,
		Seed:      seed,
		Trace:     rec,
		Transport: tx,
	})
	if err != nil {
		return fmt.Errorf("run failed (wire faults beyond the retry budget surface here): %w", err)
	}

	verdict := conform.Suite{
		Info:   conform.RunInfo{Algorithm: p.Name(), N: g.N(), Seed: seed, Budget: p.Budget},
		Meta:   rec.Meta(),
		Events: rec.Events(),
		Extra:  []conform.Check{p.ConformCheck(g, r)},
	}.Verdict()

	a := artifact{
		Schema:    artifactSchema,
		Problem:   p.Name(),
		Graph:     graphKind,
		N:         g.N(),
		M:         g.M(),
		Seed:      seed,
		Transport: txName,
		Verdict:   verdict,
		Run: runSummary{
			AwakeMax:     r.Sim.MaxAwake(),
			AwakeAvg:     r.Sim.MeanAwake(),
			Rounds:       r.Sim.Rounds,
			BusyRounds:   r.Sim.BusyRounds,
			Sent:         r.Sim.MessagesSent,
			Delivered:    r.Sim.MessagesDelivered,
			Lost:         r.Sim.MessagesLost,
			BitsSent:     r.Sim.BitsSent,
			Phases:       r.Phases,
			VerifyPassed: p.Verify(g, r) == nil,
		},
	}
	if r.Outcome != nil {
		a.Run.MSTWeight = sleepmst.TotalWeight(r.Outcome.MSTEdges)
	}
	if s, ok := sleepmst.TransportStatsOf(tx); ok {
		a.Wire = wireSummary{
			FramesSent:     s.FramesSent,
			FramesRecv:     s.FramesRecv,
			WireBytes:      s.WireBytes,
			Dials:          s.Dials,
			Redials:        s.Redials,
			SendRetries:    s.SendRetries,
			InjectedDrops:  s.InjectedDrops,
			InjectedDelays: s.InjectedDelays,
		}
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	if !verdict.Pass || !a.Run.VerifyPassed {
		return fmt.Errorf("%w: %s on %s n=%d", errViolation, p.Name(), graphKind, g.N())
	}
	return nil
}

// buildTransport constructs the named backend with the service's
// retry/deadline settings.
func buildTransport(name string, retries int, timeout time.Duration) (sleepmst.Transport, error) {
	switch name {
	case "tcp":
		if retries <= 0 {
			// TCPConfig treats 0 as "use the default"; -retries 0 must
			// genuinely disable the wire retry budget.
			retries = transport.NoRetries
		}
		return transport.NewTCP(transport.TCPConfig{Retries: retries, RecvTimeout: timeout}), nil
	case "inproc":
		t := transport.NewInproc()
		t.RecvTimeout = timeout
		return t, nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want tcp or inproc)", name)
	}
}
