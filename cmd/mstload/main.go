// Command mstload is the seeded closed-loop load generator for the
// persistent MST service (mstserve -serve): it pre-generates a
// deterministic mixed request workload from one seed, drives it
// through N concurrent closed-loop clients — each with its own
// connection and at most one outstanding request — and verifies every
// returned verdict instead of trusting status codes: artifacts must
// parse, verdicts must pass, and (with -verify) every shipped trace
// is independently re-certified through the conformance checker.
//
// The workload is a function of -seed and -total only, never of
// -clients: the same seed replays the identical request list whether
// one client or eight carry it, which is what makes the service's
// determinism contract testable end to end. The report separates the
// deterministic sections (per-request outcomes, the sha256 verdict
// digest) from the timing sections (latency percentiles), so two runs
// of the same seed can be compared on the former and benchmarked on
// the latter.
//
// Usage:
//
//	mstserve -serve 127.0.0.1:7600 &
//	mstload -addr 127.0.0.1:7600 -clients 8 -total 64 -out report.json
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"sleepmst/internal/conform"
	"sleepmst/internal/problem"
	"sleepmst/internal/service"
	"sleepmst/internal/stats"
	"sleepmst/internal/trace"
)

// reportSchema versions the mstload JSON report.
const reportSchema = 1

// loadConfig is the parameter set of one load run.
type loadConfig struct {
	addr     string
	clients  int
	total    int
	seed     int64
	problems []string
	graphs   []string
	nMin     int
	nMax     int
	deadline time.Duration
	verify   bool
}

// report is the JSON output of one load run. VerdictDigest and
// Statuses depend only on the seed and the service's behavior;
// Latency is wall-clock and varies run to run.
type report struct {
	Schema  int    `json:"schema"`
	Addr    string `json:"addr"`
	Clients int    `json:"clients"`
	Total   int    `json:"total"`
	Seed    int64  `json:"seed"`

	// Statuses tallies responses by documented status code.
	Statuses map[string]int `json:"statuses"`
	// Verified counts verdicts independently re-certified client-side.
	Verified int `json:"verified"`
	// VerdictDigest is the sha256 over (id, status, artifact, trace)
	// of every response in request-id order — the deterministic
	// fingerprint of the whole run.
	VerdictDigest string `json:"verdict_digest"`
	// Latency summarizes ok-response latency in milliseconds.
	Latency latencySummary `json:"latency_ms"`
}

type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "mstserve -serve address to load")
		clients  = flag.Int("clients", 4, "concurrent closed-loop clients (one connection, one outstanding request each)")
		total    = flag.Int("total", 32, "total requests across all clients; the mix depends only on -seed and -total")
		seed     = flag.Int64("seed", 1, "workload seed")
		problems = flag.String("problems", "mst/randomized,mis", "comma-separated request problem mix")
		graphs   = flag.String("graphs", "random,ring,grid", "comma-separated topology mix")
		nMin     = flag.Int("n-min", 16, "minimum per-request node count")
		nMax     = flag.Int("n-max", 48, "maximum per-request node count")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = service default)")
		verify   = flag.Bool("verify", true, "ship traces back and re-certify every verdict with the conformance checker")
		outPath  = flag.String("out", "", "write the JSON report here ('-' = stdout; default stdout)")
	)
	flag.Parse()
	rep, err := run(loadConfig{
		addr: *addr, clients: *clients, total: *total, seed: *seed,
		problems: strings.Split(*problems, ","), graphs: strings.Split(*graphs, ","),
		nMin: *nMin, nMax: *nMax, deadline: *deadline, verify: *verify,
	})
	if rep != nil {
		if werr := writeReport(rep, *outPath); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstload:", err)
		os.Exit(1)
	}
}

// workload derives the deterministic request list from the seed: a
// splitmix-style hash of (seed, index) picks each request's problem,
// topology, size, and run seed, so the list never depends on client
// count or delivery order.
func workload(cfg loadConfig) []service.Request {
	reqs := make([]service.Request, cfg.total)
	for i := range reqs {
		h := splitmix(uint64(cfg.seed) + uint64(i)*0x9e3779b97f4a7c15)
		span := cfg.nMax - cfg.nMin + 1
		reqs[i] = service.Request{
			ID:        int64(i),
			Problem:   cfg.problems[h%uint64(len(cfg.problems))],
			Graph:     cfg.graphs[(h>>8)%uint64(len(cfg.graphs))],
			N:         cfg.nMin + int((h>>16)%uint64(span)),
			Seed:      int64(h >> 32),
			Deadline:  cfg.deadline,
			WantTrace: cfg.verify,
		}
	}
	return reqs
}

// splitmix is the SplitMix64 finalizer — a cheap, well-mixed hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// run executes the closed loop: clients pull requests off a shared
// list, each round-trips one request at a time, and every response is
// verified before it counts.
func run(cfg loadConfig) (*report, error) {
	if cfg.clients < 1 || cfg.total < 1 {
		return nil, fmt.Errorf("need at least one client and one request (clients=%d total=%d)", cfg.clients, cfg.total)
	}
	if cfg.nMin < 1 || cfg.nMax < cfg.nMin {
		return nil, fmt.Errorf("bad node-count range [%d, %d]", cfg.nMin, cfg.nMax)
	}
	reqs := workload(cfg)

	type outcome struct {
		resp    service.Response
		latency time.Duration
	}
	outcomes := make([]outcome, cfg.total)
	next := make(chan int)
	go func() {
		for i := range reqs {
			next <- i
		}
		close(next)
	}()
	errs := make(chan error, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		go func() {
			errs <- func() error {
				conn, err := net.Dial("tcp", cfg.addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				br := bufio.NewReader(conn)
				for i := range next {
					start := time.Now()
					if err := service.WriteRequest(conn, reqs[i]); err != nil {
						return fmt.Errorf("request %d: %w", i, err)
					}
					resp, err := service.ReadResponse(br)
					if err != nil {
						return fmt.Errorf("request %d: %w", i, err)
					}
					if resp.ID != reqs[i].ID {
						return fmt.Errorf("request %d: response for id %d (closed loop broken)", i, resp.ID)
					}
					outcomes[i] = outcome{resp: resp, latency: time.Since(start)}
				}
				return nil
			}()
		}()
	}
	var firstErr error
	for c := 0; c < cfg.clients; c++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &report{
		Schema: reportSchema, Addr: cfg.addr, Clients: cfg.clients,
		Total: cfg.total, Seed: cfg.seed, Statuses: map[string]int{},
	}
	digest := sha256.New()
	var latencies []float64
	var verifyErr error
	for i, o := range outcomes {
		rep.Statuses[o.resp.Status.String()]++
		fmt.Fprintf(digest, "%d|%s|%d|", o.resp.ID, o.resp.Status, len(o.resp.Artifact))
		digest.Write(o.resp.Artifact)
		digest.Write(o.resp.Trace)
		switch o.resp.Status {
		case service.StatusOK:
			latencies = append(latencies, float64(o.latency)/float64(time.Millisecond))
			if err := verifyResponse(reqs[i], o.resp, cfg.verify); err != nil {
				if verifyErr == nil {
					verifyErr = fmt.Errorf("request %d: %w", i, err)
				}
				continue
			}
			rep.Verified++
		case service.StatusViolation:
			if verifyErr == nil {
				verifyErr = fmt.Errorf("request %d: service reported a violation: %s", i, o.resp.Detail)
			}
		case service.StatusOverloaded, service.StatusDeadline, service.StatusShuttingDown:
			// Documented load shedding — counted, not fatal.
		default:
			if verifyErr == nil {
				verifyErr = fmt.Errorf("request %d: %s: %s", i, o.resp.Status, o.resp.Detail)
			}
		}
	}
	rep.VerdictDigest = hex.EncodeToString(digest.Sum(nil))
	if len(latencies) > 0 {
		s := stats.Summarize(latencies)
		rep.Latency = latencySummary{
			Mean: s.Mean,
			P50:  stats.Percentile(latencies, 50),
			P90:  stats.Percentile(latencies, 90),
			P99:  stats.Percentile(latencies, 99),
			Max:  s.Max,
		}
	}
	return rep, verifyErr
}

// verifyResponse re-certifies one ok response client-side: the
// artifact must parse and its verdict pass; with traces on, replaying
// the trace through conform.CheckTrace must pass as well.
func verifyResponse(req service.Request, resp service.Response, withTrace bool) error {
	var a service.Artifact
	if err := json.Unmarshal(resp.Artifact, &a); err != nil {
		return fmt.Errorf("artifact does not parse: %w", err)
	}
	if a.ID != req.ID || a.Seed != req.Seed {
		return fmt.Errorf("artifact for id=%d seed=%d, want id=%d seed=%d", a.ID, a.Seed, req.ID, req.Seed)
	}
	if a.Verdict == nil || !a.Verdict.Pass || !a.Run.VerifyPassed {
		return fmt.Errorf("verdict did not pass: %+v", a.Verdict)
	}
	if !withTrace {
		return nil
	}
	meta, events, err := trace.ReadJSONL(bytes.NewReader(resp.Trace))
	if err != nil {
		return fmt.Errorf("trace does not parse: %w", err)
	}
	p, err := problem.Lookup(a.Problem)
	if err != nil {
		return err
	}
	v := conform.CheckTrace(meta, events, conform.RunInfo{
		Algorithm: a.Problem, N: a.N, Seed: a.Seed, Budget: p.Budget,
	})
	if !v.Pass {
		var failing []string
		for _, c := range v.Failures() {
			failing = append(failing, c.Name)
		}
		return fmt.Errorf("client-side trace recheck failed: %v", failing)
	}
	return nil
}

// writeReport renders the report as indented JSON to path or stdout.
func writeReport(rep *report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
