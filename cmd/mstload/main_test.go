package main

import (
	"net"
	"path/filepath"
	"reflect"
	"testing"

	"sleepmst/internal/service"
)

// startServer brings up an in-process service server on an ephemeral
// port and returns its address plus a shutdown func that drains it
// and renders the merged service metrics.
func startServer(t *testing.T, workers, queue int) (string, func() string) {
	t.Helper()
	svc := service.New(service.Config{Workers: workers, QueueDepth: queue})
	srv := service.NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() string {
		srv.Shutdown()
		return svc.Metrics().String()
	}
}

// loadCfg is the fixed workload both determinism runs replay.
func loadCfg(addr string, clients int) loadConfig {
	return loadConfig{
		addr: addr, clients: clients, total: 24, seed: 42,
		problems: []string{"mst/randomized", "mis"},
		graphs:   []string{"random", "ring", "grid"},
		nMin:     16, nMax: 40, verify: true,
	}
}

// TestLoadDeterministicAcrossClientCounts is the wire-level
// acceptance pin: the same seeded workload driven by 1 client and by
// 8 clients against fresh identical servers yields the same verdict
// digest, the same status tallies, and byte-identical merged service
// metrics.
func TestLoadDeterministicAcrossClientCounts(t *testing.T) {
	addr1, stop1 := startServer(t, 4, 64)
	rep1, err := run(loadCfg(addr1, 1))
	if err != nil {
		t.Fatalf("clients=1: %v", err)
	}
	metrics1 := stop1()

	addr8, stop8 := startServer(t, 4, 64)
	rep8, err := run(loadCfg(addr8, 8))
	if err != nil {
		t.Fatalf("clients=8: %v", err)
	}
	metrics8 := stop8()

	if rep1.VerdictDigest != rep8.VerdictDigest {
		t.Errorf("verdict digest differs across client counts:\n1: %s\n8: %s", rep1.VerdictDigest, rep8.VerdictDigest)
	}
	if !reflect.DeepEqual(rep1.Statuses, rep8.Statuses) {
		t.Errorf("status tallies differ: %v vs %v", rep1.Statuses, rep8.Statuses)
	}
	if rep1.Statuses["ok"] != rep1.Total {
		t.Errorf("workload was shed: %v", rep1.Statuses)
	}
	if rep1.Verified != rep1.Total || rep8.Verified != rep8.Total {
		t.Errorf("not every verdict re-certified: %d and %d of %d", rep1.Verified, rep8.Verified, rep1.Total)
	}
	if metrics1 != metrics8 {
		t.Errorf("merged service metrics differ across client counts:\n--- clients=1 ---\n%s--- clients=8 ---\n%s", metrics1, metrics8)
	}
	if rep1.Latency.P50 <= 0 || rep1.Latency.Max < rep1.Latency.P99 {
		t.Errorf("latency summary inconsistent: %+v", rep1.Latency)
	}
}

// TestLoadWorkloadIsClientCountFree pins the generator contract
// directly: the request list is a function of seed and total only.
func TestLoadWorkloadIsClientCountFree(t *testing.T) {
	a := workload(loadCfg("x", 1))
	b := workload(loadCfg("x", 8))
	if !reflect.DeepEqual(a, b) {
		t.Error("workload depends on client count")
	}
	c := workload(loadConfig{total: 24, seed: 43,
		problems: []string{"mst/randomized", "mis"}, graphs: []string{"random", "ring", "grid"},
		nMin: 16, nMax: 40, verify: true})
	if reflect.DeepEqual(a, c) {
		t.Error("workload ignores the seed")
	}
	for i, req := range a {
		if req.N < 16 || req.N > 40 {
			t.Fatalf("request %d: n=%d outside [16, 40]", i, req.N)
		}
	}
}

// TestLoadReportWritten exercises the report writer and the
// overload accounting path: a tiny server (one worker, queue of one)
// under more clients than capacity must shed load with documented
// statuses only, and still write a parseable report.
func TestLoadReportWritten(t *testing.T) {
	addr, stop := startServer(t, 1, 1)
	defer stop()
	cfg := loadCfg(addr, 6)
	cfg.total = 12
	cfg.verify = false
	rep, err := run(cfg)
	if err != nil {
		t.Fatalf("load run failed: %v", err)
	}
	for status := range rep.Statuses {
		switch status {
		case "ok", "overloaded":
		default:
			t.Errorf("undocumented status under overload: %s", status)
		}
	}
	out := filepath.Join(t.TempDir(), "report.json")
	if err := writeReport(rep, out); err != nil {
		t.Fatal(err)
	}
}
