package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sleepmst"
	"sleepmst/internal/trace"
)

// writeRunTrace records one Randomized-MST run and writes its JSONL
// trace, returning the file path.
func writeRunTrace(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	g := sleepmst.RandomConnected(24, 72, 7)
	rec := sleepmst.NewTraceRecorder(0)
	if _, err := sleepmst.Run(sleepmst.Randomized, g, sleepmst.Options{Seed: seed, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalSeedsDiffClean(t *testing.T) {
	dir := t.TempDir()
	a := writeRunTrace(t, dir, "a.jsonl", 5)
	b := writeRunTrace(t, dir, "b.jsonl", 5)
	var out strings.Builder
	code, err := run(&out, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical-seed traces diverged (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "traces identical") {
		t.Errorf("missing identical banner:\n%s", out.String())
	}
}

func TestDifferentSeedsReportFirstDivergence(t *testing.T) {
	dir := t.TempDir()
	a := writeRunTrace(t, dir, "a.jsonl", 5)
	b := writeRunTrace(t, dir, "b.jsonl", 6)
	var out strings.Builder
	code, err := run(&out, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("different-seed traces did not diverge (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "first divergence: event ") {
		t.Errorf("missing first-divergence line:\n%s", out.String())
	}
}

func TestDiffDetectsMetaAndLengthDrift(t *testing.T) {
	metaA := trace.Meta{N: 4, Rounds: 2, Events: 2}
	eventsA := []trace.Event{
		{Kind: trace.KindAwake, Round: 1, Node: 0},
		{Kind: trace.KindAwake, Round: 2, Node: 1},
	}
	metaB := trace.Meta{N: 4, Rounds: 1, Events: 1}
	eventsB := eventsA[:1]
	var out strings.Builder
	if !diff(&out, "a", "b", metaA, eventsA, metaB, eventsB) {
		t.Fatal("prefix trace did not diverge")
	}
	got := out.String()
	for _, want := range []string{"meta", "awake", "<absent"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunReportsReadErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"k":"mystery"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeRunTrace(t, dir, "good.jsonl", 5)
	var out strings.Builder
	if _, err := run(&out, good, bad); err == nil {
		t.Fatal("unknown-kind trace parsed without error")
	}
	if _, err := run(&out, filepath.Join(dir, "missing.jsonl"), good); err == nil {
		t.Fatal("missing file did not error")
	}
}
