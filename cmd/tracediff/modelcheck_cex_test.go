package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/modelcheck"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// oversleepBugMsg is the one-bit payload of the fixture problem.
type oversleepBugMsg struct{}

func (oversleepBugMsg) Bits() int       { return 1 }
func (oversleepBugMsg) MsgKind() string { return "osbug" }

// oversleepBugProblem is the seeded-bug fixture: two awake rounds of
// all-port chatter, plus one extra awake round whenever the scheduler
// overslept the node — exactly on budget on the production schedule,
// over budget on any overslept one, so the model checker's
// counterexample necessarily diverges from the baseline trace.
type oversleepBugProblem struct{}

func (oversleepBugProblem) Name() string { return "test/oversleep-bug" }

func (oversleepBugProblem) Budget(n int) (int64, bool) { return 2, true }

func (oversleepBugProblem) Verify(g *graph.Graph, r *problem.Result) error {
	if r == nil || r.Sim == nil {
		return errors.New("oversleep-bug: no result")
	}
	return nil
}

func (oversleepBugProblem) ConformCheck(g *graph.Graph, r *problem.Result) conform.Check {
	return conform.Check{Name: "oracle/oversleep-bug", Status: conform.StatusPass}
}

func (p oversleepBugProblem) Run(g *graph.Graph, opts core.Options) (*problem.Result, error) {
	res, err := sim.Run(sim.Config{
		Graph:   g,
		Seed:    opts.Seed,
		Chooser: opts.Chooser,
		Trace:   opts.Trace,
	}, func(nd *sim.Node) error {
		deg := nd.Degree()
		for r := int64(1); r <= 2; r++ {
			nd.SleepUntil(r)
			out := make(sim.Outbox, deg)
			for pt := 0; pt < deg; pt++ {
				out[pt] = oversleepBugMsg{}
			}
			nd.Exchange(out)
			if nd.Round() > r+1 { // overslept: burn an extra awake round
				nd.Exchange(nil)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &problem.Result{Problem: p.Name(), Sim: res, Phases: 1}, nil
}

// TestModelCheckCounterexampleLocalises closes the loop promised by
// the model checker: explore the seeded-bug problem, emit the
// baseline and counterexample traces exactly as `mstbench -exp
// modelcheck -mc-cex` does, and check that tracediff flags the pair
// divergent and localises the first divergent event — the same index
// a direct scan of the two canonical streams finds.
func TestModelCheckCounterexampleLocalises(t *testing.T) {
	v, err := modelcheck.Explore(modelcheck.Config{
		Problem:     oversleepBugProblem{},
		Graph:       graph.Path(2, graph.GenConfig{Seed: 1}),
		Seed:        1,
		Depth:       2,
		Oversleep:   1,
		BudgetSlack: 1.0,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass || len(v.Violations) == 0 {
		t.Fatalf("seeded bug not found: %s", v)
	}
	cex := v.Violations[0]

	dir := t.TempDir()
	write := func(name string, meta trace.Meta, events []trace.Event) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteEventsJSONL(f, meta, events); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("baseline.jsonl", v.BaselineMeta, v.BaselineEvents)
	cexPath := write("cex1.jsonl", cex.Meta, cex.Events)

	var buf bytes.Buffer
	code, err := run(&buf, basePath, cexPath)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("tracediff exit = %d on a divergent pair, want 1\n%s", code, buf.String())
	}

	// The reported index must be the first real divergence of the
	// canonical streams.
	first := -1
	for i := 0; i < len(v.BaselineEvents) && i < len(cex.Events); i++ {
		if v.BaselineEvents[i] != cex.Events[i] {
			first = i
			break
		}
	}
	if first < 0 {
		first = min(len(v.BaselineEvents), len(cex.Events))
	}
	want := fmt.Sprintf("first divergence: event %d", first)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("report does not localise %q:\n%s", want, buf.String())
	}
}
