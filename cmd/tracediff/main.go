// Command tracediff compares two structured JSONL traces written by
// `mstbench -exp trace` (or any trace.Recorder.WriteJSONL stream) and
// reports where they diverge: run-level meta, per-kind event counts,
// the per-phase awake-budget breakdown, and the first event at which
// the canonical streams differ. Because the trace schema is
// deterministic for a fixed seed, two runs of the same (algorithm,
// graph, seed) must diff clean — any divergence is a reproducibility
// regression; across seeds or code versions the diff localises the
// first behavioural difference.
//
// Usage:
//
//	tracediff a.jsonl b.jsonl
//
// Exit status: 0 when the traces are identical, 1 when they diverge,
// 2 on usage or read errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleepmst/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracediff a.jsonl b.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run diffs the two trace files, writing the report to w, and returns
// the process exit code (0 identical, 1 divergent).
func run(w io.Writer, pathA, pathB string) (int, error) {
	metaA, eventsA, err := readTrace(pathA)
	if err != nil {
		return 2, err
	}
	metaB, eventsB, err := readTrace(pathB)
	if err != nil {
		return 2, err
	}
	if diff(w, pathA, pathB, metaA, eventsA, metaB, eventsB) {
		return 1, nil
	}
	return 0, nil
}

// readTrace parses one JSONL trace file.
func readTrace(path string) (trace.Meta, []trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, nil, err
	}
	defer f.Close()
	meta, events, err := trace.ReadJSONL(f)
	if err != nil {
		return meta, nil, fmt.Errorf("%s: %v", path, err)
	}
	return meta, events, nil
}

// diff writes the divergence report and reports whether the traces
// differ at all.
func diff(w io.Writer, pathA, pathB string, metaA trace.Meta, eventsA []trace.Event, metaB trace.Meta, eventsB []trace.Event) bool {
	divergent := false
	if metaA != metaB {
		divergent = true
		fmt.Fprintf(w, "meta           : n %d/%d  rounds %d/%d  events %d/%d  dropped %d/%d\n",
			metaA.N, metaB.N, metaA.Rounds, metaB.Rounds, metaA.Events, metaB.Events, metaA.Dropped, metaB.Dropped)
	}
	divergent = diffKinds(w, eventsA, eventsB) || divergent
	divergent = diffPhases(w, metaA, eventsA, metaB, eventsB) || divergent
	divergent = firstDivergence(w, eventsA, eventsB) || divergent
	if !divergent {
		fmt.Fprintf(w, "traces identical: %d events, %s == %s\n", len(eventsA), pathA, pathB)
	}
	return divergent
}

// diffKinds reports per-kind event-count deltas.
func diffKinds(w io.Writer, eventsA, eventsB []trace.Event) bool {
	var countA, countB [trace.KindNbrs + 1]int64
	for _, ev := range eventsA {
		countA[ev.Kind]++
	}
	for _, ev := range eventsB {
		countB[ev.Kind]++
	}
	divergent := false
	for k := trace.KindPhase; k <= trace.KindNbrs; k++ {
		if countA[k] != countB[k] {
			if !divergent {
				fmt.Fprintf(w, "event kinds    : %-8s %8s %8s %8s\n", "kind", "a", "b", "delta")
				divergent = true
			}
			fmt.Fprintf(w, "                 %-8s %8d %8d %+8d\n", k, countA[k], countB[k], countB[k]-countA[k])
		}
	}
	return divergent
}

// diffPhases compares the per-phase awake-budget breakdown of the two
// traces (trace.Summarize on each side, aligned by phase number).
func diffPhases(w io.Writer, metaA trace.Meta, eventsA []trace.Event, metaB trace.Meta, eventsB []trace.Event) bool {
	sumA := trace.Summarize(metaA, eventsA)
	sumB := trace.Summarize(metaB, eventsB)
	byPhase := map[int32][2]*trace.PhaseBudget{}
	var order []int32
	for i := range sumA.Phases {
		p := &sumA.Phases[i]
		byPhase[p.Phase] = [2]*trace.PhaseBudget{p, nil}
		order = append(order, p.Phase)
	}
	for i := range sumB.Phases {
		p := &sumB.Phases[i]
		pair, ok := byPhase[p.Phase]
		if !ok {
			byPhase[p.Phase] = [2]*trace.PhaseBudget{nil, p}
			order = append(order, p.Phase)
			continue
		}
		pair[1] = p
		byPhase[p.Phase] = pair
	}
	for i := 1; i < len(order); i++ { // phases arrive nearly sorted
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	divergent := false
	for _, ph := range order {
		pair := byPhase[ph]
		var awakeA, awakeB, mergesA, mergesB int64
		if pair[0] != nil {
			awakeA, mergesA = pair[0].Awake, pair[0].Merges
		}
		if pair[1] != nil {
			awakeB, mergesB = pair[1].Awake, pair[1].Merges
		}
		if awakeA == awakeB && mergesA == mergesB && pair[0] != nil && pair[1] != nil {
			continue
		}
		if !divergent {
			fmt.Fprintf(w, "phase awake    : %5s %8s %8s %8s %14s\n", "phase", "a", "b", "delta", "merges a/b")
			divergent = true
		}
		fmt.Fprintf(w, "                 %5d %8d %8d %+8d %8d/%d\n", ph, awakeA, awakeB, awakeB-awakeA, mergesA, mergesB)
	}
	return divergent
}

// firstDivergence reports the first index at which the canonical
// event streams differ, with both sides' JSONL renderings.
func firstDivergence(w io.Writer, eventsA, eventsB []trace.Event) bool {
	limit := len(eventsA)
	if len(eventsB) < limit {
		limit = len(eventsB)
	}
	for i := 0; i < limit; i++ {
		if eventsA[i] != eventsB[i] {
			fmt.Fprintf(w, "first divergence: event %d\n  a: %s\n  b: %s\n", i, eventsA[i], eventsB[i])
			return true
		}
	}
	if len(eventsA) != len(eventsB) {
		fmt.Fprintf(w, "first divergence: event %d\n", limit)
		if len(eventsA) > limit {
			fmt.Fprintf(w, "  a: %s\n  b: <absent: stream ends at %d events>\n", eventsA[limit], len(eventsB))
		} else {
			fmt.Fprintf(w, "  a: <absent: stream ends at %d events>\n  b: %s\n", len(eventsA), eventsB[limit])
		}
		return true
	}
	return false
}
