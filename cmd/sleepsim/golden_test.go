package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sleepmst"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChaosJSONGolden pins the `sleepsim -chaos ... -json` artifact
// byte-for-byte: the sweep is deterministic, so any schema or
// aggregation change shows up as a golden diff. Regenerate with
// `go test ./cmd/sleepsim -run Golden -update`.
func TestChaosJSONGolden(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "sweep.json")
	if err := runChaos("random", 24, 0, 0, 0, 3, false,
		"drop", "0,0.05", 2, "randomized,baseline", 0, jsonPath, 1, sleepmst.EngineEvent); err != nil {
		t.Fatalf("runChaos: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	golden := filepath.Join("testdata", "chaos_sweep_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("chaos JSON schema drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
