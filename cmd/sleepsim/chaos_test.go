package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sleepmst"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("0, 0.01,0.5")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 0.01 || got[2] != 0.5 {
		t.Errorf("rates = %v", got)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.5"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q): want error", bad)
		}
	}
}

func TestRunChaosEndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "sweep.json")
	if err := runChaos("random", 24, 0, 0, 0, 3, false,
		"drop", "0,0.05", 2, "randomized,baseline", 0, jsonPath, 0, sleepmst.EngineEvent); err != nil {
		t.Fatalf("runChaos: %v", err)
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json artifact: %v", err)
	}
	var out struct {
		N     int `json:"n"`
		Cells []struct {
			Algorithm string         `json:"algorithm"`
			Rate      float64        `json:"rate"`
			Runs      int            `json:"runs"`
			Counts    map[string]int `json:"counts"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if out.N != 24 || len(out.Cells) != 4 {
		t.Errorf("artifact n=%d cells=%d, want 24/4", out.N, len(out.Cells))
	}
	for _, c := range out.Cells {
		if c.Rate == 0 && c.Counts["correct-mst"] != c.Runs {
			t.Errorf("rate-0 cell for %s not all correct: %v", c.Algorithm, c.Counts)
		}
	}
}

func TestRunChaosBadInputs(t *testing.T) {
	if err := runChaos("random", 16, 0, 0, 0, 1, false, "meteor", "0", 1, "randomized", 0, "", 0, sleepmst.EngineEvent); err == nil {
		t.Error("want error for unknown fault")
	}
	if err := runChaos("random", 16, 0, 0, 0, 1, false, "drop", "0", 1, "quantum", 0, "", 0, sleepmst.EngineEvent); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := runChaos("nope", 16, 0, 0, 0, 1, false, "drop", "0", 1, "randomized", 0, "", 0, sleepmst.EngineEvent); err == nil {
		t.Error("want error for unknown graph kind")
	}
}
