package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildGraphKinds(t *testing.T) {
	cases := []struct {
		kind  string
		n     int
		wantN int
	}{
		{"random", 20, 20},
		{"ring", 12, 12},
		{"path", 9, 9},
		{"grid", 16, 16},
		{"complete", 7, 7},
		{"sensor", 25, 25},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			g, err := buildGraph(tc.kind, tc.n, 0, 0, 0.3, 5)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if g.N() != tc.wantN {
				t.Errorf("n = %d, want %d", g.N(), tc.wantN)
			}
		})
	}
	if _, err := buildGraph("nope", 10, 0, 0, 0.3, 5); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestGridDimensions(t *testing.T) {
	// grid with non-square n: rows*cols >= n with default rows.
	g, err := buildGraph("grid", 10, 0, 0, 0, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g.N() < 10 {
		t.Errorf("grid n = %d, want >= 10", g.N())
	}
}

func TestIntSqrt(t *testing.T) {
	for n, want := range map[int]int{1: 1, 4: 2, 10: 4, 16: 4, 17: 5} {
		if got := intSqrt(n); got != want {
			t.Errorf("intSqrt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// The whole CLI path minus flag parsing.
	if err := run(runOpts{graphKind: "ring", n: 16, seed: 3, algoName: "randomized", bitCap: true, width: 40}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(runOpts{graphKind: "path", n: 8, seed: 3, algoName: "deterministic", idSpace: 32,
		showTrace: true, showHist: true, width: 40}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(runOpts{graphKind: "ring", n: 8, seed: 3, algoName: "unknown-algo", width: 40}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestRunWithObservability(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run(runOpts{graphKind: "ring", n: 12, seed: 5, algoName: "randomized",
		traceOut: out, showMetrics: true, width: 40}); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if !strings.HasPrefix(string(b), `{"k":"begin"`) {
		t.Errorf("trace does not start with a begin line: %.60s", b)
	}
	if !strings.Contains(string(b), `"k":"end"`) {
		t.Error("trace has no end line")
	}
}
