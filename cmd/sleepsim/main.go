// Command sleepsim runs one sleeping-model MST computation and prints
// its metrics, an optional awake-timeline trace, and the verification
// against the sequential reference MST.
//
// Examples:
//
//	sleepsim -graph random -n 256 -m 768 -algo randomized
//	sleepsim -graph ring -n 128 -algo deterministic -trace
//	sleepsim -graph sensor -n 200 -radius 0.15 -algo logstar -hist
package main

import (
	"flag"
	"fmt"
	"os"

	"sleepmst"
	"sleepmst/internal/core"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

func main() {
	var (
		graphKind = flag.String("graph", "random", "topology: random|ring|path|grid|complete|sensor")
		n         = flag.Int("n", 128, "number of nodes")
		m         = flag.Int("m", 0, "edges for -graph random (default 3n)")
		rows      = flag.Int("rows", 0, "rows for -graph grid (default sqrt(n))")
		radius    = flag.Float64("radius", 0.2, "radius for -graph sensor")
		seed      = flag.Int64("seed", 1, "seed for topology, weights and algorithm randomness")
		algoName  = flag.String("algo", "randomized", "algorithm: randomized|deterministic|logstar|baseline|ghs")
		idSpace   = flag.Int64("idspace", 0, "reassign random IDs in [1, idspace] (0 = IDs 1..n)")
		bitCap    = flag.Bool("congest", false, "enforce the O(log n)-bit CONGEST message cap")
		showTrace = flag.Bool("trace", false, "print the awake-timeline trace")
		showHist  = flag.Bool("hist", false, "print the awake-count histogram")
		width     = flag.Int("width", 72, "trace width in columns")
	)
	flag.Parse()

	if err := run(*graphKind, *n, *m, *rows, *radius, *seed, *algoName, *idSpace, *bitCap, *showTrace, *showHist, *width); err != nil {
		fmt.Fprintln(os.Stderr, "sleepsim:", err)
		os.Exit(1)
	}
}

func run(graphKind string, n, m, rows int, radius float64, seed int64, algoName string,
	idSpace int64, bitCap, showTrace, showHist bool, width int) error {
	g, err := buildGraph(graphKind, n, m, rows, radius, seed)
	if err != nil {
		return err
	}
	if idSpace > 0 {
		sleepmst.WithRandomIDs(g, idSpace, seed+1)
	}
	algo, err := sleepmst.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	opts := sleepmst.Options{
		Seed:              seed,
		RecordAwakeRounds: showTrace,
		RecordPhases:      true,
	}
	if bitCap {
		opts.BitCap = core.DefaultBitCap(g)
	}
	rep, err := sleepmst.Run(algo, g, opts)
	if err != nil {
		return err
	}
	res := rep.Result
	fmt.Printf("graph          : %s n=%d m=%d maxID=%d\n", graphKind, g.N(), g.M(), g.MaxID())
	fmt.Printf("algorithm      : %s\n", algo)
	fmt.Printf("phases         : %d\n", rep.Phases)
	fmt.Printf("awake max/avg  : %d / %.2f\n", res.MaxAwake(), res.MeanAwake())
	fmt.Printf("rounds         : %d (busy %d)\n", res.Rounds, res.BusyRounds)
	fmt.Printf("messages       : sent=%d delivered=%d lost=%d\n",
		res.MessagesSent, res.MessagesDelivered, res.MessagesLost)
	fmt.Printf("bits           : sent=%d, max received per node=%d\n", res.BitsSent, res.MaxBitsReceived())
	fmt.Printf("MST weight     : %d (verified=%v)\n", rep.MSTWeight(), rep.Verified())
	if len(rep.FragmentsPerPhase) > 0 {
		fmt.Printf("fragment decay : %v\n", rep.FragmentsPerPhase)
	}
	if showHist {
		fmt.Println()
		fmt.Print(trace.Histogram(res, 50))
	}
	if showTrace {
		fmt.Println()
		fmt.Print(traceOut(res, width, g.N()))
	}
	return nil
}

func traceOut(res *sim.Result, width, n int) string {
	if n > 64 {
		fmt.Printf("(showing first 64 of %d nodes)\n", n)
		clipped := *res
		clipped.AwakeRounds = res.AwakeRounds[:64]
		clipped.AwakePerNode = res.AwakePerNode[:64]
		return trace.Timeline(&clipped, width)
	}
	return trace.Timeline(res, width)
}

func buildGraph(kind string, n, m, rows int, radius float64, seed int64) (*sleepmst.Graph, error) {
	switch kind {
	case "random":
		if m <= 0 {
			m = 3 * n
		}
		return sleepmst.RandomConnected(n, m, seed), nil
	case "ring":
		return sleepmst.Ring(n, seed), nil
	case "path":
		return sleepmst.Path(n, seed), nil
	case "grid":
		if rows <= 0 {
			rows = intSqrt(n)
		}
		return sleepmst.Grid(rows, (n+rows-1)/rows, seed), nil
	case "complete":
		return sleepmst.Complete(n, seed), nil
	case "sensor":
		return sleepmst.SensorNetwork(n, radius, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
