// Command sleepsim runs one sleeping-model computation and prints its
// metrics, an optional awake-timeline trace, and the verification
// against the problem's correctness oracle. The default problem is
// MST (-problem mst, algorithm selected with -algo); -problem selects
// any problem-suite resident instead, e.g. -problem mis for the
// O(log log n)-awake maximal independent set. With -chaos it instead
// runs a fault-injection sweep: many runs per (algorithm, fault rate)
// cell, each perturbed by a seeded chaos policy and classified by the
// outcome oracle (the MST oracle, or the MIS oracle under -problem
// mis).
//
// Observability: -trace-out records the run as a structured JSONL
// event trace (schema in DESIGN.md §8), -metrics prints the metrics
// registry (awake rounds per phase/step, MOE probes, merge waves,
// message tallies), and -pprof writes CPU and heap profiles.
//
// Examples:
//
//	sleepsim -graph random -n 256 -m 768 -algo randomized
//	sleepsim -graph ring -n 128 -algo deterministic -trace
//	sleepsim -graph sensor -n 200 -radius 0.15 -algo logstar -hist
//	sleepsim -n 64 -algo randomized -trace-out run.jsonl -metrics
//	sleepsim -n 1024 -algo deterministic -pprof det1024
//	sleepsim -chaos drop -rate 0.01 -n 256
//	sleepsim -chaos crash -rate 0,0.05,0.1 -chaos-seeds 10 -json sweep.json
//	sleepsim -problem mis -n 256 -metrics
//	sleepsim -problem mis -chaos drop -rate 0,0.05 -chaos-seeds 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sleepmst"
	"sleepmst/internal/chaos"
	"sleepmst/internal/core"
	"sleepmst/internal/metrics"
	"sleepmst/internal/prof"
	"sleepmst/internal/trace"
)

func main() {
	var (
		graphKind = flag.String("graph", "random", "topology: random|ring|path|grid|complete|sensor")
		n         = flag.Int("n", 128, "number of nodes")
		m         = flag.Int("m", 0, "edges for -graph random (default 3n)")
		rows      = flag.Int("rows", 0, "rows for -graph grid (default sqrt(n))")
		radius    = flag.Float64("radius", 0.2, "radius for -graph sensor")
		seed      = flag.Int64("seed", 1, "seed for topology, weights and algorithm randomness")
		engName   = flag.String("engine", "event", "simulator scheduler: event (goroutine-free, default) or goroutine (legacy reference)")
		txName    = flag.String("transport", "", "wire backend for deliveries: none (in-memory, default), inproc, or tcp")
		problem   = flag.String("problem", "mst", "problem to run: mst (select the algorithm with -algo) or a problem-suite name such as mis or mst/randomized")
		algoName  = flag.String("algo", "randomized", "algorithm for -problem mst: randomized|deterministic|logstar|baseline|ghs")
		idSpace   = flag.Int64("idspace", 0, "reassign random IDs in [1, idspace] (0 = IDs 1..n)")
		bitCap    = flag.Bool("congest", false, "enforce the O(log n)-bit CONGEST message cap")
		showTrace = flag.Bool("trace", false, "print the awake-timeline trace")
		showHist  = flag.Bool("hist", false, "print the awake-count histogram")
		width     = flag.Int("width", 72, "trace width in columns")

		traceOut    = flag.String("trace-out", "", "write the structured JSONL event trace to this file ('-' = stdout)")
		traceCap    = flag.Int("trace-cap", 0, "event-recorder ring capacity (0 = default)")
		showMetrics = flag.Bool("metrics", false, "print the metrics registry after the run")
		pprofOut    = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")

		chaosFault = flag.String("chaos", "", "chaos sweep fault kind: drop|delay|dup|flip|crash|oversleep (empty = single clean run)")
		rateList   = flag.String("rate", "0,0.01,0.05", "comma-separated fault rates for -chaos (crash: fraction of nodes)")
		chaosSeeds = flag.Int("chaos-seeds", 5, "runs per (algorithm, rate) cell for -chaos")
		chaosAlgos = flag.String("chaos-algos", "randomized,deterministic,baseline", "comma-separated algorithms for -chaos")
		awakeBud   = flag.Int64("chaos-awakebudget", 0, "per-node awake budget enforced during chaos runs (0 = off)")
		jsonOut    = flag.String("json", "", "write the chaos sweep as JSON to this file ('-' = stdout)")
		workers    = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = serial); aggregates are identical either way")
	)
	flag.Parse()

	engine, err := sleepmst.ParseEngine(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleepsim:", err)
		os.Exit(1)
	}

	stopProf, err := prof.Start(*pprofOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleepsim:", err)
		os.Exit(1)
	}
	switch {
	case *chaosFault != "" && *problem == "mis":
		err = runMISChaos(*graphKind, *n, *m, *rows, *radius, *seed, *bitCap,
			*chaosFault, *rateList, *chaosSeeds, *awakeBud, engine)
	case *chaosFault != "":
		err = runChaos(*graphKind, *n, *m, *rows, *radius, *seed, *bitCap,
			*chaosFault, *rateList, *chaosSeeds, *chaosAlgos, *awakeBud, *jsonOut, *workers, engine)
	case *problem == "mst":
		err = run(runOpts{
			graphKind: *graphKind, n: *n, m: *m, rows: *rows, radius: *radius,
			seed: *seed, algoName: *algoName, idSpace: *idSpace, bitCap: *bitCap, engine: engine,
			transport: *txName,
			showTrace: *showTrace, showHist: *showHist, width: *width,
			traceOut: *traceOut, traceCap: *traceCap, showMetrics: *showMetrics,
		})
	default:
		err = runProblem(runOpts{
			graphKind: *graphKind, n: *n, m: *m, rows: *rows, radius: *radius,
			seed: *seed, algoName: *problem, idSpace: *idSpace, bitCap: *bitCap, engine: engine,
			transport: *txName,
			showTrace: *showTrace, showHist: *showHist, width: *width,
			traceOut: *traceOut, traceCap: *traceCap, showMetrics: *showMetrics,
		})
	}
	if err == nil {
		err = stopProf()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleepsim:", err)
		os.Exit(1)
	}
}

// runChaos executes the -chaos sweep: for every (algorithm, rate)
// cell, chaos-seeds runs are perturbed by the selected fault policy
// and classified by the oracle.
func runChaos(graphKind string, n, m, rows int, radius float64, seed int64, bitCap bool,
	faultName, rateList string, seeds int, algoList string, awakeBudget int64, jsonOut string, workers int,
	engine sleepmst.Engine) error {
	g, err := buildGraph(graphKind, n, m, rows, radius, seed)
	if err != nil {
		return err
	}
	fault, err := chaos.ParseFault(faultName)
	if err != nil {
		return err
	}
	rates, err := parseRates(rateList)
	if err != nil {
		return err
	}
	var runners []chaos.Runner
	for _, name := range strings.Split(algoList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, err := sleepmst.ParseAlgorithm(name)
		if err != nil {
			return err
		}
		runners = append(runners, chaos.Runner{Name: a.String(), Run: a.Runner()})
	}
	opts := core.Options{Engine: engine, AwakeBudget: awakeBudget}
	if bitCap {
		opts.BitCap = core.DefaultBitCap(g)
	}
	res, err := chaos.RunSweep(chaos.SweepConfig{
		Graph:    g,
		Runners:  runners,
		Fault:    fault,
		Rates:    rates,
		Seeds:    seeds,
		BaseSeed: seed,
		Opts:     opts,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph          : %s n=%d m=%d\n", graphKind, g.N(), g.M())
	fmt.Print(res.Table())
	if jsonOut == "" {
		return nil
	}
	b, err := res.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if jsonOut == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("json           : wrote %s\n", jsonOut)
	return nil
}

// parseRates parses a comma-separated list of fault rates.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", part, err)
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %g outside [0, 1]", r)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates in %q", s)
	}
	return rates, nil
}

// runOpts bundles the single-run CLI parameters.
type runOpts struct {
	graphKind           string
	engine              sleepmst.Engine
	n, m, rows          int
	radius              float64
	seed                int64
	algoName            string
	idSpace             int64
	bitCap              bool
	transport           string // wire backend name ('' = in-memory)
	showTrace, showHist bool
	width               int
	traceOut            string // JSONL event-trace destination ('' = off)
	traceCap            int    // recorder ring capacity (0 = default)
	showMetrics         bool
}

func run(o runOpts) error {
	g, err := buildGraph(o.graphKind, o.n, o.m, o.rows, o.radius, o.seed)
	if err != nil {
		return err
	}
	if o.idSpace > 0 {
		sleepmst.WithRandomIDs(g, o.idSpace, o.seed+1)
	}
	algo, err := sleepmst.ParseAlgorithm(o.algoName)
	if err != nil {
		return err
	}
	opts := sleepmst.Options{
		Engine:            o.engine,
		Seed:              o.seed,
		RecordAwakeRounds: o.showTrace,
		RecordPhases:      true,
	}
	if tx, err := sleepmst.ParseTransport(o.transport); err != nil {
		return err
	} else if tx != nil {
		defer tx.Close()
		opts.Transport = tx
	}
	if o.bitCap {
		opts.BitCap = core.DefaultBitCap(g)
	}
	var rec *trace.Recorder
	if o.traceOut != "" {
		rec = trace.NewRecorder(o.traceCap)
		opts.Trace = rec
	}
	var reg *metrics.Registry
	if o.showMetrics {
		reg = metrics.New()
		opts.Metrics = reg
	}
	rep, err := sleepmst.Run(algo, g, opts)
	if err != nil {
		return err
	}
	res := rep.Result
	fmt.Printf("graph          : %s n=%d m=%d maxID=%d\n", o.graphKind, g.N(), g.M(), g.MaxID())
	fmt.Printf("algorithm      : %s\n", algo)
	fmt.Printf("phases         : %d\n", rep.Phases)
	fmt.Printf("awake max/avg  : %d / %.2f\n", res.MaxAwake(), res.MeanAwake())
	fmt.Printf("rounds         : %d (busy %d)\n", res.Rounds, res.BusyRounds)
	fmt.Printf("messages       : sent=%d delivered=%d lost=%d\n",
		res.MessagesSent, res.MessagesDelivered, res.MessagesLost)
	fmt.Printf("bits           : sent=%d, max received per node=%d\n", res.BitsSent, res.MaxBitsReceived())
	fmt.Printf("MST weight     : %d (verified=%v)\n", rep.MSTWeight(), rep.Verified())
	if len(rep.FragmentsPerPhase) > 0 {
		fmt.Printf("fragment decay : %v\n", rep.FragmentsPerPhase)
	}
	if o.showHist {
		fmt.Println()
		fmt.Print(trace.Histogram(res.TraceView(), 50))
	}
	if o.showTrace {
		fmt.Println()
		v := res.TraceView()
		if g.N() > 64 {
			fmt.Printf("(showing first 64 of %d nodes)\n", g.N())
			v = v.Clip(64)
		}
		fmt.Print(trace.Timeline(v, o.width))
	}
	if reg != nil {
		fmt.Println()
		fmt.Print(reg.String())
	}
	if rec != nil {
		if err := writeTrace(rec, o.traceOut); err != nil {
			return err
		}
		meta := rec.Meta()
		fmt.Printf("trace          : %d events (%d dropped) -> %s\n", meta.Events, meta.Dropped, o.traceOut)
	}
	return nil
}

// runProblem executes one problem-suite run (-problem mis,
// mst/randomized, ...): the problem registry supplies the algorithm,
// the awake-budget envelope, and the correctness oracle.
func runProblem(o runOpts) error {
	g, err := buildGraph(o.graphKind, o.n, o.m, o.rows, o.radius, o.seed)
	if err != nil {
		return err
	}
	if o.idSpace > 0 {
		sleepmst.WithRandomIDs(g, o.idSpace, o.seed+1)
	}
	p, err := sleepmst.LookupProblem(o.algoName)
	if err != nil {
		return err
	}
	opts := sleepmst.Options{
		Engine:            o.engine,
		Seed:              o.seed,
		RecordAwakeRounds: o.showTrace,
		RecordPhases:      true,
	}
	if tx, err := sleepmst.ParseTransport(o.transport); err != nil {
		return err
	} else if tx != nil {
		defer tx.Close()
		opts.Transport = tx
	}
	if o.bitCap {
		opts.BitCap = core.DefaultBitCap(g)
	}
	var rec *trace.Recorder
	if o.traceOut != "" {
		rec = trace.NewRecorder(o.traceCap)
		opts.Trace = rec
	}
	// The registry is always on in the problem path so the
	// node-averaged awake complexity can be reported.
	reg := metrics.New()
	opts.Metrics = reg
	r, err := p.Run(g, opts)
	if err != nil {
		return err
	}
	res := r.Sim
	fmt.Printf("graph          : %s n=%d m=%d maxID=%d\n", o.graphKind, g.N(), g.M(), g.MaxID())
	fmt.Printf("problem        : %s\n", p.Name())
	fmt.Printf("phases         : %d\n", r.Phases)
	fmt.Printf("awake max/avg  : %d / %.2f\n", res.MaxAwake(), res.MeanAwake())
	fmt.Printf("awake node-avg : %.2f\n", metrics.NodeAvgAwake(reg))
	if budget, ok := p.Budget(g.N()); ok {
		fmt.Printf("awake budget   : %d (within=%v)\n", budget, res.MaxAwake() <= budget)
	}
	fmt.Printf("rounds         : %d (busy %d)\n", res.Rounds, res.BusyRounds)
	fmt.Printf("messages       : sent=%d delivered=%d lost=%d\n",
		res.MessagesSent, res.MessagesDelivered, res.MessagesLost)
	fmt.Printf("bits           : sent=%d, max received per node=%d\n", res.BitsSent, res.MaxBitsReceived())
	verified := p.Verify(g, r) == nil
	switch {
	case r.InMIS != nil:
		size := 0
		for _, in := range r.InMIS {
			if in {
				size++
			}
		}
		fmt.Printf("MIS size       : %d (verified=%v)\n", size, verified)
	case r.Outcome != nil:
		var weight int64
		for _, e := range r.Outcome.MSTEdges {
			weight += e.Weight
		}
		fmt.Printf("MST weight     : %d (verified=%v)\n", weight, verified)
	}
	if o.showHist {
		fmt.Println()
		fmt.Print(trace.Histogram(res.TraceView(), 50))
	}
	if o.showTrace {
		fmt.Println()
		v := res.TraceView()
		if g.N() > 64 {
			fmt.Printf("(showing first 64 of %d nodes)\n", g.N())
			v = v.Clip(64)
		}
		fmt.Print(trace.Timeline(v, o.width))
	}
	if o.showMetrics {
		fmt.Println()
		fmt.Print(reg.String())
	}
	if rec != nil {
		if err := writeTrace(rec, o.traceOut); err != nil {
			return err
		}
		meta := rec.Meta()
		fmt.Printf("trace          : %d events (%d dropped) -> %s\n", meta.Events, meta.Dropped, o.traceOut)
	}
	return nil
}

// runMISChaos executes the -chaos sweep for -problem mis: for every
// rate, chaos-seeds MIS runs are perturbed by the selected fault
// policy and classified by the MIS outcome oracle.
func runMISChaos(graphKind string, n, m, rows int, radius float64, seed int64, bitCap bool,
	faultName, rateList string, seeds int, awakeBudget int64, engine sleepmst.Engine) error {
	g, err := buildGraph(graphKind, n, m, rows, radius, seed)
	if err != nil {
		return err
	}
	fault, err := chaos.ParseFault(faultName)
	if err != nil {
		return err
	}
	rates, err := parseRates(rateList)
	if err != nil {
		return err
	}
	if seeds <= 0 {
		seeds = 5
	}
	fmt.Printf("graph          : %s n=%d m=%d\n", graphKind, g.N(), g.M())
	fmt.Printf("problem        : mis fault=%s runs/cell=%d\n", fault, seeds)
	fmt.Printf("%8s", "rate")
	for _, c := range chaos.MISClassifications() {
		fmt.Printf(" %15s", c)
	}
	fmt.Println()
	for _, rate := range rates {
		counts := make(map[sleepmst.MISClassification]int)
		for i := 0; i < seeds; i++ {
			runSeed := seed + int64(i)
			opts := sleepmst.Options{
				Engine:      engine,
				Seed:        runSeed,
				AwakeBudget: awakeBudget,
				Interceptor: chaos.New(fault.PolicyOptions(rate, runSeed)),
			}
			if bitCap {
				opts.BitCap = core.DefaultBitCap(g)
			}
			r, err := sleepmst.RunMIS(g, opts)
			var inMIS []bool
			if r != nil {
				inMIS = r.InMIS
			}
			counts[sleepmst.ClassifyMISRun(g, inMIS, err)]++
		}
		fmt.Printf("%8.3f", rate)
		for _, c := range chaos.MISClassifications() {
			fmt.Printf(" %15d", counts[c])
		}
		fmt.Println()
	}
	return nil
}

// writeTrace serializes the recorded events as JSONL to path ('-' =
// stdout).
func writeTrace(rec *trace.Recorder, path string) error {
	if path == "-" {
		return rec.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildGraph(kind string, n, m, rows int, radius float64, seed int64) (*sleepmst.Graph, error) {
	switch kind {
	case "random":
		if m <= 0 {
			m = 3 * n
		}
		return sleepmst.RandomConnected(n, m, seed), nil
	case "ring":
		return sleepmst.Ring(n, seed), nil
	case "path":
		return sleepmst.Path(n, seed), nil
	case "grid":
		if rows <= 0 {
			rows = intSqrt(n)
		}
		return sleepmst.Grid(rows, (n+rows-1)/rows, seed), nil
	case "complete":
		return sleepmst.Complete(n, seed), nil
	case "sensor":
		return sleepmst.SensorNetwork(n, radius, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
