package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sleepmst"
	"sleepmst/internal/conform"
	"sleepmst/internal/graph"
	"sleepmst/internal/trace"
)

// conformRecorderCap is the default recorder capacity for -exp
// conform fresh runs: large enough that an n=512 run drops nothing
// (drops would skip most of the invariant catalog).
const conformRecorderCap = 1 << 21

// verdictArtifact is the -conform-out JSON shape: a schema stamp plus
// one verdict per checked run.
type verdictArtifact struct {
	Schema   int                `json:"schema"`
	Verdicts []*conform.Verdict `json:"verdicts"`
}

// flagWasSet reports whether the named flag was given on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// conformCommand implements -exp conform. With traceIn it checks an
// existing JSONL stream (algoHint names its algorithm so the budget
// check can run); otherwise it runs every listed algorithm at the
// largest -sizes value with the recorder on and checks each fresh
// trace, including MST-weight agreement against Kruskal. Verdicts are
// printed, optionally written to outPath as JSON, and any failed
// invariant makes the exit status non-zero.
func (h *harness) conformCommand(algoList, traceIn, algoHint, outPath string, traceCap int) int {
	if traceCap <= 0 {
		traceCap = conformRecorderCap
	}
	var verdicts []*conform.Verdict
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		meta, events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("=== trace conformance: %s ===\n", traceIn)
		v := conform.CheckTrace(meta, events, conform.RunInfo{Algorithm: algoHint})
		fmt.Print(v)
		verdicts = append(verdicts, v)
	} else {
		n := h.ns[len(h.ns)-1]
		fmt.Println("=== trace conformance (fresh runs, strict catalog) ===")
		for _, name := range strings.Split(algoList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, err := sleepmst.ParseAlgorithm(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			g := sleepmst.RandomConnected(n, h.deg*n, int64(n*1000))
			rec := sleepmst.NewTraceRecorder(traceCap)
			rep, err := sleepmst.Run(a, g, sleepmst.Options{Seed: 1, Trace: rec})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			v := conform.Suite{
				Info:        conform.RunInfo{Algorithm: a.String(), N: n, Seed: 1},
				Meta:        rec.Meta(),
				Events:      rec.Events(),
				TreeWeight:  rep.MSTWeight(),
				WantWeight:  graph.TotalWeight(graph.Kruskal(g)),
				CheckWeight: true,
			}.Verdict()
			fmt.Print(v)
			fmt.Println()
			verdicts = append(verdicts, v)
		}
	}
	if outPath != "" {
		if err := writeVerdictFile(outPath, verdicts); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	for _, v := range verdicts {
		if !v.Pass {
			return 1
		}
	}
	return 0
}

// writeVerdictFile serializes the verdicts as an indented JSON
// artifact.
func writeVerdictFile(path string, verdicts []*conform.Verdict) error {
	data, err := json.MarshalIndent(verdictArtifact{Schema: conform.VerdictSchema, Verdicts: verdicts}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
