package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sleepmst"
	"sleepmst/internal/conform"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// conformRecorderCap is the default recorder capacity for -exp
// conform fresh runs: large enough that an n=512 run drops nothing
// (drops would skip most of the invariant catalog).
const conformRecorderCap = 1 << 21

// verdictArtifact is the -conform-out JSON shape: a schema stamp plus
// one verdict per checked run.
type verdictArtifact struct {
	Schema   int                `json:"schema"`
	Verdicts []*conform.Verdict `json:"verdicts"`
}

// flagWasSet reports whether the named flag was given on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// conformCommand implements -exp conform. With traceIn it checks an
// existing JSONL stream (algoHint names its problem — a qualified name
// like mis or mst/randomized, or a bare MST alias — so its awake
// envelope can be checked); otherwise it runs every listed problem at
// the largest -sizes value with the recorder on and checks each fresh
// trace, appending the problem's correctness oracle (MST-weight
// agreement against Kruskal, or MIS validity). Unknown problem names
// are rejected with the list of valid choices. Verdicts are printed,
// optionally written to outPath as JSON, and any failed invariant
// makes the exit status non-zero.
func (h *harness) conformCommand(algoList, traceIn, algoHint, outPath string, traceCap int) int {
	if traceCap <= 0 {
		traceCap = conformRecorderCap
	}
	var verdicts []*conform.Verdict
	if traceIn != "" {
		info := conform.RunInfo{Algorithm: algoHint}
		if algoHint != "" {
			p, err := problem.Lookup(algoHint)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			info.Algorithm = p.Name()
			info.Budget = p.Budget
		}
		f, err := os.Open(traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		meta, events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("=== trace conformance: %s ===\n", traceIn)
		v := conform.CheckTrace(meta, events, info)
		fmt.Print(v)
		verdicts = append(verdicts, v)
	} else {
		n := h.ns[len(h.ns)-1]
		fmt.Println("=== trace conformance (fresh runs, strict catalog) ===")
		for _, name := range strings.Split(algoList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			p, err := problem.Lookup(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			g := sleepmst.RandomConnected(n, h.deg*n, int64(n*1000))
			rec := sleepmst.NewTraceRecorder(traceCap)
			opts := sleepmst.Options{Engine: h.engine, Seed: 1, Trace: rec}
			// With -transport, the checked trace is produced over the
			// wire backend; the verdict must not change (the transport
			// differential suite pins this).
			tx, err := sleepmst.ParseTransport(h.txName)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			opts.Transport = tx
			r, err := p.Run(g, opts)
			if tx != nil {
				tx.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				return 1
			}
			v := conform.Suite{
				Info:   conform.RunInfo{Algorithm: p.Name(), N: n, Seed: 1, Budget: p.Budget},
				Meta:   rec.Meta(),
				Events: rec.Events(),
				Extra:  []conform.Check{p.ConformCheck(g, r)},
			}.Verdict()
			fmt.Print(v)
			fmt.Println()
			verdicts = append(verdicts, v)
		}
	}
	if outPath != "" {
		if err := writeVerdictFile(outPath, verdicts); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	for _, v := range verdicts {
		if !v.Pass {
			return 1
		}
	}
	return 0
}

// writeVerdictFile serializes the verdicts as an indented JSON
// artifact.
func writeVerdictFile(path string, verdicts []*conform.Verdict) error {
	data, err := json.MarshalIndent(verdictArtifact{Schema: conform.VerdictSchema, Verdicts: verdicts}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
