package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"sleepmst/internal/graph"
	"sleepmst/internal/modelcheck"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// mcFlags carries the -exp modelcheck flag values from main.
type mcFlags struct {
	topo      string
	problem   string
	depth     int
	seed      int64
	oversleep int
	faults    bool
	slack     float64
	noMemo    bool
	out       string
	cex       string
}

// parseTopo resolves a small-topology spec — a family name with a
// trailing node count, e.g. path2, ring4, star5, k4 — into a graph
// with distinct deterministic edge weights.
func parseTopo(spec string, seed int64) (*graph.Graph, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	name, digits := s[:i], s[i:]
	if name == "" || digits == "" {
		return nil, fmt.Errorf("bad topology %q (want path<n>|ring<n>|star<n>|k<n>, e.g. ring4)", spec)
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 2 {
		return nil, fmt.Errorf("bad topology size in %q", spec)
	}
	cfg := graph.GenConfig{Seed: seed}
	switch name {
	case "path":
		return graph.Path(n, cfg), nil
	case "ring", "cycle":
		if n < 3 {
			return nil, fmt.Errorf("ring needs n >= 3, got %q", spec)
		}
		return graph.Cycle(n, cfg), nil
	case "star":
		return graph.Star(n, cfg), nil
	case "k", "complete":
		return graph.Complete(n, cfg), nil
	}
	return nil, fmt.Errorf("unknown topology family %q (want path<n>|ring<n>|star<n>|k<n>)", spec)
}

// modelcheckCommand implements -exp modelcheck: exhaustively explore
// every admissible schedule of the problem on the small -topo
// topology up to -depth non-default choices, checking the invariant
// catalog plus the problem oracle on every schedule. The verdict goes
// to stdout and, with -mc-out, to a schema-versioned JSON artifact;
// with -mc-cex PREFIX, the production baseline and every retained
// counterexample are written as PREFIX.baseline.jsonl and
// PREFIX.cexN.jsonl for cmd/tracediff. Any violation makes the exit
// status non-zero.
func (h *harness) modelcheckCommand(mc mcFlags) int {
	g, err := parseTopo(mc.topo, mc.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		return 1
	}
	p, err := problem.Lookup(mc.problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		return 1
	}
	v, err := modelcheck.Explore(modelcheck.Config{
		Problem:     p,
		Graph:       g,
		Seed:        mc.seed,
		Engine:      h.engine,
		Depth:       mc.depth,
		Oversleep:   mc.oversleep,
		Faults:      mc.faults,
		BudgetSlack: mc.slack,
		Workers:     h.workers,
		NoMemo:      mc.noMemo,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		return 1
	}
	fmt.Printf("=== bounded model check: %s on %s ===\n", p.Name(), mc.topo)
	fmt.Println(v)
	if mc.out != "" {
		if err := writeModelCheckFile(mc.out, v); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", mc.out)
	}
	if mc.cex != "" {
		if err := writeCounterexamples(mc.cex, v); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
	}
	if !v.Pass {
		return 1
	}
	return 0
}

// writeModelCheckFile serializes the verdict as an indented JSON
// artifact.
func writeModelCheckFile(path string, v *modelcheck.Verdict) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := v.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCounterexamples emits the baseline schedule's trace plus every
// retained counterexample as JSONL streams, ready for
// `tracediff PREFIX.baseline.jsonl PREFIX.cex1.jsonl`.
func writeCounterexamples(prefix string, v *modelcheck.Verdict) error {
	write := func(path string, meta trace.Meta, events []trace.Event) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteEventsJSONL(f, meta, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	if err := write(prefix+".baseline.jsonl", v.BaselineMeta, v.BaselineEvents); err != nil {
		return err
	}
	for i, viol := range v.Violations {
		if err := write(fmt.Sprintf("%s.cex%d.jsonl", prefix, i+1), viol.Meta, viol.Events); err != nil {
			return err
		}
	}
	return nil
}
