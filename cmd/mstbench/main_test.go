package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("32, 64,128")
	if err != nil || len(got) != 3 || got[0] != 32 || got[2] != 128 {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, bad := range []string{"", "abc", "3", "32,-1"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q): want error", bad)
		}
	}
}

func TestBitsRendering(t *testing.T) {
	if got := bits([]bool{true, false, true}); got != "101" {
		t.Errorf("bits = %q", got)
	}
	if got := bits(nil); got != "" {
		t.Errorf("bits(nil) = %q", got)
	}
}

func TestHarnessSweepSmall(t *testing.T) {
	h := &harness{ns: []int{16, 24}, seeds: 1, deg: 2}
	ns, awake, rounds := h.sweep(0 /* randomized */, 0)
	if len(ns) != 2 || len(awake) != 2 || len(rounds) != 2 {
		t.Fatalf("sweep shapes: %v %v %v", ns, awake, rounds)
	}
	if awake[0] <= 0 || rounds[0] <= 0 {
		t.Errorf("non-positive measurements: %v %v", awake, rounds)
	}
	// maxN filter drops the larger size.
	ns2, _, _ := h.sweep(0, 16)
	if len(ns2) != 1 || ns2[0] != 16 {
		t.Errorf("maxN filter: %v", ns2)
	}
}
