// The benchmark-regression harness: `mstbench -exp bench` runs a
// wall-clock/allocation benchmark suite over the (algorithm × size ×
// seed) grid through the parallel sweep engine, emits the result as a
// BENCH_<label>.json artifact, and `-compare old.json` fails the
// process when the fresh run (or a `-with new.json` file) regresses:
// any increase in the simulation metrics (awake, rounds — they are
// deterministic, so any change is real) or a >10% increase in the
// resource metrics (wall-clock, allocs, bytes).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sleepmst"
	"sleepmst/internal/sweep"
)

// benchAlgos is the suite under measurement: the paper's randomized
// algorithm plus the two traditional-model comparators. (The
// deterministic variants are excluded: their O(nN log n) simulated
// rounds would dominate the suite's wall-clock without exercising any
// different hot path.)
var benchAlgos = []sleepmst.Algorithm{sleepmst.Randomized, sleepmst.Baseline, sleepmst.ClassicGHS}

// BenchCell is one (algorithm, n) cell of the benchmark suite.
type BenchCell struct {
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	Seeds     int    `json:"seeds"`
	// AwakeMaxMean / RoundsMean are simulation metrics: deterministic
	// for fixed seeds, so compare demands exact non-regression.
	AwakeMaxMean float64 `json:"awake_max_mean"`
	RoundsMean   float64 `json:"rounds_mean"`
	// WallNsPerRun is the mean wall-clock per run; AllocsPerRun and
	// BytesPerRun come from a dedicated serial calibration run.
	WallNsPerRun float64 `json:"wall_ns_per_run"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// BenchResult is the BENCH_<label>.json schema.
type BenchResult struct {
	Label string `json:"label"`
	Go    string `json:"go"`
	// Engine names the simulator scheduler the suite ran on ("" in
	// artifacts predating the engine option = goroutine).
	Engine  string      `json:"engine,omitempty"`
	Workers int         `json:"workers"`
	Seeds   int         `json:"seeds"`
	Cells   []BenchCell `json:"cells"`
}

// JSON renders the artifact deterministically (cells in grid order).
func (r *BenchResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// benchGraph builds the canonical benchmark instance for one cell;
// every run of the cell shares the topology and varies only the
// algorithm seed, mirroring bench_test.go.
func benchGraph(n int) *sleepmst.Graph {
	return sleepmst.RandomConnected(n, 3*n, int64(n))
}

// runBench executes the benchmark suite. Timing runs go through the
// parallel engine (each job times itself); the allocation calibration
// is one extra serial run per cell, because allocation counters are
// process-global.
func (h *harness) runBench(label string) (*BenchResult, error) {
	type timing struct {
		awake  float64
		rounds float64
		wallNs float64
	}
	algos := h.benchSuite()
	grid := sweep.NewGrid(len(algos), len(h.ns), h.seeds)
	timings, err := sweep.Run(sweep.Config{Workers: h.workers}, grid.Size(), func(idx int) (timing, error) {
		c := grid.Coords(idx)
		a, n, seed := algos[c[0]], h.ns[c[1]], int64(c[2])
		g := benchGraph(n)
		start := time.Now()
		rep, err := sleepmst.Run(a, g, sleepmst.Options{Engine: h.engine, Seed: seed})
		if err != nil {
			return timing{}, fmt.Errorf("%s n=%d seed=%d: %w", a, n, seed, err)
		}
		wall := time.Since(start)
		if !rep.Verified() {
			return timing{}, fmt.Errorf("%s n=%d seed=%d: MST mismatch", a, n, seed)
		}
		return timing{
			awake:  float64(rep.AwakeComplexity()),
			rounds: float64(rep.RoundComplexity()),
			wallNs: float64(wall.Nanoseconds()),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &BenchResult{
		Label:   label,
		Go:      runtime.Version(),
		Engine:  h.engine.String(),
		Workers: h.workers,
		Seeds:   h.seeds,
	}
	for ai, a := range algos {
		for ni, n := range h.ns {
			cell := BenchCell{Algorithm: a.String(), N: n, Seeds: h.seeds}
			for s := 0; s < h.seeds; s++ {
				t := timings[(ai*len(h.ns)+ni)*h.seeds+s]
				cell.AwakeMaxMean += t.awake
				cell.RoundsMean += t.rounds
				cell.WallNsPerRun += t.wallNs
			}
			cell.AwakeMaxMean /= float64(h.seeds)
			cell.RoundsMean /= float64(h.seeds)
			cell.WallNsPerRun /= float64(h.seeds)
			cell.AllocsPerRun, cell.BytesPerRun = allocsPerRun(a, n, h.engine)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// allocsPerRun measures heap allocations of one run with the global
// allocation counters; it must run with no concurrent jobs.
func allocsPerRun(a sleepmst.Algorithm, n int, engine sleepmst.Engine) (allocs, bytes float64) {
	g := benchGraph(n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := sleepmst.Run(a, g, sleepmst.Options{Engine: engine, Seed: 0}); err != nil {
		return 0, 0
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs), float64(after.TotalAlloc - before.TotalAlloc)
}

// wallTolerance is the accepted growth factor for the noisy resource
// metrics (wall-clock, allocations); simulation metrics get none.
const wallTolerance = 1.10

// CompareBench returns one message per regression of new against old;
// an empty slice means no regression.
func CompareBench(old, new *BenchResult) []string {
	var regressions []string
	index := make(map[[2]string]BenchCell, len(new.Cells))
	for _, c := range new.Cells {
		index[[2]string{c.Algorithm, fmt.Sprint(c.N)}] = c
	}
	for _, oc := range old.Cells {
		nc, ok := index[[2]string{oc.Algorithm, fmt.Sprint(oc.N)}]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s n=%d: cell missing from new result", oc.Algorithm, oc.N))
			continue
		}
		check := func(metric string, oldV, newV, tolerance float64) {
			if oldV > 0 && newV > oldV*tolerance {
				regressions = append(regressions, fmt.Sprintf("%s n=%d: %s regressed %.4g -> %.4g (tolerance %.0f%%)",
					oc.Algorithm, oc.N, metric, oldV, newV, (tolerance-1)*100))
			}
		}
		check("awake_max_mean", oc.AwakeMaxMean, nc.AwakeMaxMean, 1.0)
		check("rounds_mean", oc.RoundsMean, nc.RoundsMean, 1.0)
		check("wall_ns_per_run", oc.WallNsPerRun, nc.WallNsPerRun, wallTolerance)
		check("allocs_per_run", oc.AllocsPerRun, nc.AllocsPerRun, wallTolerance)
		check("bytes_per_run", oc.BytesPerRun, nc.BytesPerRun, wallTolerance)
	}
	return regressions
}

// loadBench reads a BENCH_*.json artifact.
func loadBench(path string) (*BenchResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res BenchResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

// benchCommand drives the -exp bench / -json / -compare surface.
// Returns the process exit code.
func (h *harness) benchCommand(label, jsonOut, compareOld, compareWith string) int {
	var fresh *BenchResult
	var err error
	if compareWith == "" {
		fresh, err = h.runBench(label)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		if jsonOut == "" {
			jsonOut = fmt.Sprintf("BENCH_%s.json", label)
		}
		b, err := fresh.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("bench: wrote %s (%d cells, %d workers)\n", jsonOut, len(fresh.Cells), h.workers)
	}
	if compareOld == "" {
		return 0
	}
	old, err := loadBench(compareOld)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		return 1
	}
	cur := fresh
	if compareWith != "" {
		if cur, err = loadBench(compareWith); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
	}
	regressions := CompareBench(old, cur)
	if len(regressions) == 0 {
		fmt.Printf("bench: no regression against %s\n", compareOld)
		return 0
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "mstbench: REGRESSION:", r)
	}
	return 1
}
