package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBenchJSONGolden pins the BENCH_<label>.json schema. The
// simulation metrics (awake_max_mean, rounds_mean) are deterministic
// and compared exactly; the resource metrics and the Go version vary
// per machine, so they are normalized to fixed placeholders before the
// byte comparison. Regenerate with
// `go test ./cmd/mstbench -run Golden -update`.
func TestBenchJSONGolden(t *testing.T) {
	h := &harness{ns: []int{24}, seeds: 2, deg: 3, workers: 1}
	res, err := h.runBench("golden")
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	res.Go = "goX.Y"
	for i := range res.Cells {
		res.Cells[i].WallNsPerRun = 0
		res.Cells[i].AllocsPerRun = 0
		res.Cells[i].BytesPerRun = 0
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	golden := filepath.Join("testdata", "bench_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("bench JSON schema drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCompareBenchDetectsRegression injects regressions into a copy of
// a fresh result and checks CompareBench flags exactly the injected
// ones: a wall-clock increase beyond tolerance, any awake increase,
// and a missing cell.
func TestCompareBenchDetectsRegression(t *testing.T) {
	old := &BenchResult{Cells: []BenchCell{
		{Algorithm: "randomized", N: 64, AwakeMaxMean: 10, RoundsMean: 100, WallNsPerRun: 1e6, AllocsPerRun: 500, BytesPerRun: 1e5},
		{Algorithm: "baseline", N: 64, AwakeMaxMean: 20, RoundsMean: 50, WallNsPerRun: 2e6, AllocsPerRun: 700, BytesPerRun: 2e5},
	}}

	same := &BenchResult{Cells: append([]BenchCell(nil), old.Cells...)}
	if regs := CompareBench(old, same); len(regs) != 0 {
		t.Fatalf("identical results flagged: %v", regs)
	}

	// Within tolerance: +9% wall is noise, not a regression.
	noisy := &BenchResult{Cells: append([]BenchCell(nil), old.Cells...)}
	noisy.Cells[0].WallNsPerRun *= 1.09
	if regs := CompareBench(old, noisy); len(regs) != 0 {
		t.Fatalf("+9%% wall flagged despite 10%% tolerance: %v", regs)
	}

	bad := &BenchResult{Cells: append([]BenchCell(nil), old.Cells...)}
	bad.Cells[0].WallNsPerRun *= 1.5  // beyond 10% tolerance
	bad.Cells[1].AwakeMaxMean = 20.5 // deterministic metric: any increase
	bad.Cells = bad.Cells[:2]
	regs := CompareBench(old, bad)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want wall + awake", regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"wall_ns_per_run", "awake_max_mean"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, regs)
		}
	}

	missing := &BenchResult{Cells: old.Cells[:1]}
	regs = CompareBench(old, missing)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("missing cell not flagged: %v", regs)
	}
}

// TestBenchCommandExitCodes is the end-to-end guard for the CI gate:
// `-compare old -with new` must exit non-zero exactly when new
// regresses old.
func TestBenchCommandExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, res *BenchResult) string {
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := &BenchResult{Label: "old", Cells: []BenchCell{
		{Algorithm: "randomized", N: 64, AwakeMaxMean: 10, RoundsMean: 100, WallNsPerRun: 1e6},
	}}
	good := &BenchResult{Label: "new", Cells: old.Cells}
	regressed := &BenchResult{Label: "new", Cells: []BenchCell{
		{Algorithm: "randomized", N: 64, AwakeMaxMean: 10, RoundsMean: 100, WallNsPerRun: 2e6},
	}}
	oldPath := write("old.json", old)
	h := &harness{workers: 1}
	if code := h.benchCommand("x", "", oldPath, write("good.json", good)); code != 0 {
		t.Errorf("clean compare exited %d, want 0", code)
	}
	if code := h.benchCommand("x", "", oldPath, write("bad.json", regressed)); code == 0 {
		t.Error("regressed compare exited 0, want non-zero")
	}
}
