// Command mstbench regenerates the paper's quantitative content:
//
//	-exp table1  — Table 1: awake/round complexity of Randomized-MST
//	               and Deterministic-MST (plus the Corollary 1 variant
//	               and the always-awake baseline), with fitted
//	               constants against the claimed envelopes.
//	-exp thm3    — Theorem 3: heaviest-edge separation and the
//	               Lemma 11 knowledge-segment game on rings.
//	-exp fig1    — Figure 1 / Observation 1: G_rc construction and its
//	               Θ(c / log n) diameter.
//	-exp thm4    — Theorem 4: awake × rounds trade-off and congestion
//	               on G_rc, plus the end-to-end SD→MST reduction.
//	-exp decay   — Lemma 1 / Lemma 5: per-phase fragment decay.
//	-exp all     — every experiment above.
//	-exp bench   — the benchmark-regression suite: wall-clock and
//	               allocations per run over (algorithm × n × seed),
//	               written as BENCH_<label>.json; with -compare
//	               old.json the process exits non-zero on regression.
//	-exp trace   — per-phase awake-budget breakdown from a structured
//	               event trace: run each -trace-algos algorithm with
//	               the recorder on (optionally writing the JSONL to
//	               -trace-out), or summarize an existing trace given
//	               with -trace-in.
//	-exp conform — trace-replay conformance: run each -trace-algos
//	               problem (default: the three sleeping MST algorithms
//	               plus mis; problem-qualified names like mis or
//	               mst/randomized and bare MST aliases both work) at
//	               the largest -sizes value and verify the paper's
//	               invariant catalog on the trace (awake budgets,
//	               merge waves, sparsification degree, causality) plus
//	               the problem's correctness oracle (MST weight or MIS
//	               validity); or check an existing -trace-in stream,
//	               with -conform-algo naming its problem. Unknown
//	               names are rejected with the valid choices. The
//	               verdicts go to stdout and, with -conform-out, to a
//	               machine-readable JSON artifact; exits non-zero on
//	               any failed invariant.
//	-exp modelcheck — bounded model checking: exhaustively explore
//	               every admissible schedule of -problem on the small
//	               -topo topology (path<n>|ring<n>|star<n>|k<n>) up to
//	               -depth non-default choices — adversarial within-round
//	               routing orders by default, plus the opt-in chaos
//	               extensions of scheduler oversleep (-mc-oversleep k)
//	               and single-message drops (-mc-faults) — and check
//	               the invariant catalog plus the problem oracle on
//	               every schedule. The verdict (states explored,
//	               branches pruned, violations) goes to stdout and,
//	               with -mc-out, to a schema-versioned JSON artifact;
//	               -mc-cex PREFIX writes the baseline and each
//	               counterexample trace for cmd/tracediff. Exits
//	               non-zero on any violation.
//
// -pprof <prefix> writes CPU and heap profiles of whatever the
// invocation runs.
//
// Experiment grids fan out across -workers cores (default GOMAXPROCS)
// through the internal/sweep engine; aggregates are identical for
// every worker count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"sleepmst"
	"sleepmst/internal/core"
	"sleepmst/internal/lowerbound"
	"sleepmst/internal/prof"
	"sleepmst/internal/stats"
	"sleepmst/internal/sweep"
	"sleepmst/internal/trace"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|thm3|fig1|thm4|decay|all|bench|trace|conform|modelcheck")
		sizes   = flag.String("sizes", "32,64,128,256,512", "comma-separated n values for sweeps")
		seeds   = flag.Int("seeds", 3, "seeds per configuration")
		degF    = flag.Int("deg", 3, "edge density multiplier (m = deg*n)")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = serial)")
		engName = flag.String("engine", "event", "simulator scheduler: event (goroutine-free, default) or goroutine (legacy reference)")
		txName  = flag.String("transport", "", "wire backend for -exp conform fresh runs: none (in-memory, default), inproc, or tcp")

		label       = flag.String("label", "dev", "label for the -exp bench artifact (BENCH_<label>.json)")
		jsonOut     = flag.String("json", "", "bench artifact path (default BENCH_<label>.json; implies -exp bench)")
		compareOld  = flag.String("compare", "", "baseline BENCH_*.json to compare against; exit 1 on regression (implies -exp bench)")
		compareWith = flag.String("with", "", "compare -compare against this BENCH_*.json instead of running the suite")
		benchAlgosF = flag.String("bench-algos", "", "comma-separated algorithms for -exp bench (default randomized,baseline,ghs; trim for scale runs)")

		pprofOut   = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
		traceAlgos = flag.String("trace-algos", "randomized,deterministic", "comma-separated algorithms for -exp trace")
		traceOut   = flag.String("trace-out", "", "write -exp trace JSONL traces to this path (multi-algo: '.<algo>' inserted)")
		traceIn    = flag.String("trace-in", "", "summarize this JSONL trace instead of running (implies -exp trace)")
		traceCap   = flag.Int("trace-cap", 0, "recorder event capacity for -exp trace (0 = default; overflow drops oldest events)")

		conformAlgo = flag.String("conform-algo", "", "problem that produced the -trace-in stream, e.g. mis or mst/randomized (enables its awake-budget check)")
		conformOut  = flag.String("conform-out", "", "write -exp conform verdicts to this path as JSON")

		mcTopo      = flag.String("topo", "ring4", "-exp modelcheck topology: path<n>|ring<n>|star<n>|k<n> (n <= 6 recommended)")
		mcProblem   = flag.String("problem", "mst/randomized", "-exp modelcheck problem (qualified name or bare MST alias)")
		mcDepth     = flag.Int("depth", 2, "-exp modelcheck deviation bound: max non-default choices per schedule")
		mcSeed      = flag.Int64("mc-seed", 1, "-exp modelcheck run seed (exploration is exhaustive per seed)")
		mcOversleep = flag.Int("mc-oversleep", 0, "-exp modelcheck chaos extension: also branch on oversleeping a parking node by 1..k extra rounds (0 = clean model)")
		mcFaults    = flag.Bool("mc-faults", false, "-exp modelcheck: also branch on single-message drops")
		mcSlack     = flag.Float64("mc-slack", 0, "-exp modelcheck awake-budget slack on perturbed schedules (0 = default 2.0)")
		mcNoMemo    = flag.Bool("mc-no-memo", false, "-exp modelcheck: disable state-hash pruning (visit every schedule)")
		mcOut       = flag.String("mc-out", "", "write the -exp modelcheck verdict to this path as JSON")
		mcCex       = flag.String("mc-cex", "", "write -exp modelcheck baseline + counterexample traces as <prefix>.baseline.jsonl / <prefix>.cexN.jsonl")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	engine, err := sleepmst.ParseEngine(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	h := &harness{ns: ns, seeds: *seeds, deg: *degF, workers: *workers, engine: engine, txName: *txName}
	if _, err := sleepmst.ParseTransport(*txName); err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	if *benchAlgosF != "" {
		for _, f := range strings.Split(*benchAlgosF, ",") {
			a, err := sleepmst.ParseAlgorithm(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mstbench:", err)
				os.Exit(1)
			}
			h.algos = append(h.algos, a)
		}
	}

	stopProf, err := prof.Start(*pprofOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	if *exp == "modelcheck" {
		exit(h.modelcheckCommand(mcFlags{
			topo:      *mcTopo,
			problem:   *mcProblem,
			depth:     *mcDepth,
			seed:      *mcSeed,
			oversleep: *mcOversleep,
			faults:    *mcFaults,
			slack:     *mcSlack,
			noMemo:    *mcNoMemo,
			out:       *mcOut,
			cex:       *mcCex,
		}))
	}
	if *exp == "conform" {
		algos := *traceAlgos
		if !flagWasSet("trace-algos") {
			algos = "randomized,deterministic,logstar,mis"
		}
		exit(h.conformCommand(algos, *traceIn, *conformAlgo, *conformOut, *traceCap))
	}
	if *exp == "trace" || *traceIn != "" {
		exit(h.traceCommand(*traceAlgos, *traceIn, *traceOut, *traceCap))
	}
	if *exp == "bench" || *jsonOut != "" || *compareOld != "" {
		exit(h.benchCommand(*label, *jsonOut, *compareOld, *compareWith))
	}

	run := map[string]func(){
		"table1": h.table1,
		"thm3":   h.theorem3,
		"fig1":   h.figure1,
		"thm4":   h.theorem4,
		"decay":  h.decay,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "decay", "thm3", "fig1", "thm4"} {
			run[name]()
		}
		exit(0)
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "mstbench: unknown experiment %q\n", *exp)
		exit(1)
	}
	f()
	exit(0)
}

// traceCommand implements -exp trace. With traceIn it summarizes an
// existing JSONL trace; otherwise it runs every listed algorithm at
// the largest -sizes value with the event recorder on and prints each
// run's per-phase awake-budget table. traceCap sizes the recorder
// rings (0 = trace.DefaultCapacity); when a big run overflows them the
// table's scheduler-charged line undercounts, so raise the cap until
// dropped=0 for budget-accounting runs.
func (h *harness) traceCommand(algoList, traceIn, traceOut string, traceCap int) int {
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		meta, events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("=== trace summary: %s ===\n", traceIn)
		fmt.Print(trace.Summarize(meta, events).Table())
		return 0
	}
	var algos []sleepmst.Algorithm
	for _, name := range strings.Split(algoList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, err := sleepmst.ParseAlgorithm(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		algos = append(algos, a)
	}
	n := h.ns[len(h.ns)-1]
	fmt.Println("=== per-phase awake budget (structured event trace) ===")
	for _, a := range algos {
		g := sleepmst.RandomConnected(n, h.deg*n, int64(n*1000))
		rec := sleepmst.NewTraceRecorder(traceCap)
		rep, err := sleepmst.Run(a, g, sleepmst.Options{Engine: h.engine, Seed: 1, Trace: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		if !rep.Verified() {
			fmt.Fprintf(os.Stderr, "mstbench: %s n=%d: MST mismatch\n", a, n)
			return 1
		}
		fmt.Printf("--- %s (n=%d) ---\n", a, n)
		fmt.Print(trace.Summarize(rec.Meta(), rec.Events()).Table())
		fmt.Println()
		if traceOut == "" {
			continue
		}
		path := traceOut
		if len(algos) > 1 {
			path = algoTracePath(traceOut, a.String())
		}
		if err := writeTraceFile(rec, path); err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	return 0
}

// algoTracePath inserts the algorithm name before the extension:
// out.jsonl -> out.randomized.jsonl.
func algoTracePath(path, algo string) string {
	if base, ok := strings.CutSuffix(path, ".jsonl"); ok {
		return base + "." + algo + ".jsonl"
	}
	return path + "." + algo
}

// writeTraceFile serializes a recorded trace as JSONL.
func writeTraceFile(rec *sleepmst.TraceRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

type harness struct {
	ns      []int
	seeds   int
	deg     int
	workers int
	engine  sleepmst.Engine
	// txName is the -transport wire backend for -exp conform fresh
	// runs ("" = in-memory delivery).
	txName string
	// algos is the -exp bench suite (nil = the default benchAlgos);
	// -bench-algos trims it, e.g. to just `randomized` for scale runs
	// where ClassicGHS's O(n log n) all-awake rounds are unaffordable.
	algos []sleepmst.Algorithm
}

// benchSuite resolves the algorithms the bench experiment measures.
func (h *harness) benchSuite() []sleepmst.Algorithm {
	if len(h.algos) > 0 {
		return h.algos
	}
	return benchAlgos
}

// sweep runs the algorithm over the size sweep and returns per-size
// mean awake and rounds. The (size × seed) grid fans out across the
// worker pool; each job derives its graph and seed from its own grid
// coordinates, so the means are identical for every worker count.
func (h *harness) sweep(a sleepmst.Algorithm, maxN int) (ns []int, awake, rounds []float64) {
	for _, n := range h.ns {
		if maxN > 0 && n > maxN {
			continue
		}
		ns = append(ns, n)
	}
	type metrics struct{ awake, rounds float64 }
	grid := sweep.NewGrid(len(ns), h.seeds)
	results, err := sweep.Run(sweep.Config{Workers: h.workers}, grid.Size(), func(idx int) (metrics, error) {
		c := grid.Coords(idx)
		n, s := ns[c[0]], c[1]
		g := sleepmst.RandomConnected(n, h.deg*n, int64(n*1000+s))
		rep, err := sleepmst.Run(a, g, sleepmst.Options{Engine: h.engine, Seed: int64(s)})
		if err != nil {
			return metrics{}, fmt.Errorf("%s n=%d seed=%d: %w", a, n, s, err)
		}
		if !rep.Verified() {
			return metrics{}, fmt.Errorf("%s n=%d seed=%d: MST mismatch", a, n, s)
		}
		return metrics{awake: float64(rep.AwakeComplexity()), rounds: float64(rep.RoundComplexity())}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	for i := range ns {
		var aw, rd float64
		for s := 0; s < h.seeds; s++ {
			m := results[i*h.seeds+s]
			aw += m.awake
			rd += m.rounds
		}
		awake = append(awake, aw/float64(h.seeds))
		rounds = append(rounds, rd/float64(h.seeds))
	}
	return ns, awake, rounds
}

func (h *harness) table1() {
	fmt.Println("=== Table 1: awake and round complexity (measured, mean over seeds) ===")
	fmt.Println("paper: Randomized-MST  AT = O(log n),        RT = O(n log n)")
	fmt.Println("paper: Deterministic   AT = O(log n),        RT = O(nN log n), here N = n")
	fmt.Println("paper: Corollary 1     AT = O(log n log* n), RT = O(n log n log* n)")
	fmt.Println("paper: traditional     AT = RT (always awake); both the re-charged")
	fmt.Println("       baseline and an independent classic GHS implementation")
	fmt.Println()

	type row struct {
		algo    sleepmst.Algorithm
		maxN    int
		atEnv   func(n float64) float64 // awake envelope
		rtEnv   func(n float64) float64 // rounds envelope
		atLabel string
		rtLabel string
	}
	logn := func(n float64) float64 { return math.Log2(n) }
	rows := []row{
		{sleepmst.Randomized, 0, logn, func(n float64) float64 { return n * logn(n) },
			"awake/log2(n)", "rounds/(n log2 n)"},
		{sleepmst.Deterministic, 512, logn, func(n float64) float64 { return n * n * logn(n) },
			"awake/log2(n)", "rounds/(n*N log2 n)"},
		{sleepmst.LogStar, 512, func(n float64) float64 { return logn(n) * stats.LogStar(n) },
			func(n float64) float64 { return n * logn(n) * stats.LogStar(n) },
			"awake/(log2 n log* n)", "rounds/(n log2 n log* n)"},
		{sleepmst.Baseline, 512, func(n float64) float64 { return n * logn(n) },
			func(n float64) float64 { return n * logn(n) },
			"awake/(n log2 n)", "rounds/(n log2 n)"},
		{sleepmst.ClassicGHS, 256, func(n float64) float64 { return n * logn(n) },
			func(n float64) float64 { return n * logn(n) },
			"awake/(n log2 n)", "rounds/(n log2 n)"},
	}
	for _, r := range rows {
		ns, awake, rounds := h.sweep(r.algo, r.maxN)
		tb := stats.NewTable("n", "awake", r.atLabel, "rounds", r.rtLabel)
		var envA, envR []float64
		for i, n := range ns {
			ea, er := r.atEnv(float64(n)), r.rtEnv(float64(n))
			envA = append(envA, ea)
			envR = append(envR, er)
			tb.AddRow(n, awake[i], awake[i]/ea, rounds[i], rounds[i]/er)
		}
		cA, r2A := stats.FitProportional(envA, awake)
		cR, r2R := stats.FitProportional(envR, rounds)
		fmt.Printf("--- %s ---\n%s", r.algo, tb.String())
		fmt.Printf("fit: awake ≈ %.2f × envelope (R²=%.3f); rounds ≈ %.3g × envelope (R²=%.3f)\n\n",
			cA, r2A, cR, r2R)
	}
}

func (h *harness) decay() {
	fmt.Println("=== Lemma 1 / Lemma 5: fragment decay per phase ===")
	fmt.Println("paper: expected reduction factor >= 4/3 per phase (randomized);")
	fmt.Println("       strict decrease per phase (deterministic)")
	fmt.Println()
	n := h.ns[len(h.ns)-1]
	for _, a := range []sleepmst.Algorithm{sleepmst.Randomized, sleepmst.Deterministic} {
		if a == sleepmst.Deterministic && n > 512 {
			n = 512
		}
		g := sleepmst.RandomConnected(n, h.deg*n, 424242)
		rep, err := sleepmst.Run(a, g, sleepmst.Options{Engine: h.engine, Seed: 7, RecordPhases: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		counts := rep.FragmentsPerPhase
		tb := stats.NewTable("phase", "fragments", "reduction factor")
		prev := float64(g.N())
		for p, c := range counts {
			factor := prev / float64(c)
			tb.AddRow(p+1, c, factor)
			prev = float64(c)
		}
		fmt.Printf("--- %s (n=%d) ---\n%s\n", a, g.N(), tb.String())
	}
}

func (h *harness) theorem3() {
	fmt.Println("=== Theorem 3: Ω(log n) awake lower bound on rings ===")
	fmt.Println("(a) structural: the two heaviest edges of a random ring are ≥ len/4")
	fmt.Println("    apart with probability ≈ 1/2 (the proof needs constant probability)")
	tb := stats.NewTable("ring length", "trials", "Pr[sep >= len/4]", "mean separation")
	for _, n := range h.ns {
		res := lowerbound.HeaviestEdgeSeparation(4*n+4, 2000, int64(n))
		tb.AddRow(res.N, res.Trials, res.FracSeparated, res.MeanSeparation)
	}
	fmt.Print(tb.String())

	fmt.Println()
	fmt.Println("(b) Lemma 11 knowledge-segment game: Pr[U(I,a)] >= 1/2 for |I| = 13^a")
	rows := lowerbound.KnowledgeSegmentGame(13*13*2, 2, 400, 99)
	tb2 := stats.NewTable("a", "|I| = 13^a", "Pr[U(I,a)]", "trials")
	for _, r := range rows {
		tb2.AddRow(r.A, r.SegmentLen, r.ProbU, r.Trials)
	}
	fmt.Print(tb2.String())

	fmt.Println()
	fmt.Println("(c) our algorithm on rings: awake complexity grows like Θ(log n)")
	tb3 := stats.NewTable("n", "awake (max)", "awake/log2(n)")
	for _, n := range h.ns {
		g := lowerbound.RingInstance(n, int64(n))
		rep, err := sleepmst.Run(sleepmst.Randomized, g, sleepmst.Options{Engine: h.engine, Seed: 5})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		tb3.AddRow(n, rep.AwakeComplexity(), float64(rep.AwakeComplexity())/math.Log2(float64(n)))
	}
	fmt.Print(tb3.String())
	fmt.Println()
}

func (h *harness) figure1() {
	fmt.Println("=== Figure 1 / Observation 1: the lower-bound graph G_rc ===")
	fmt.Println("paper: diameter D = Θ(c / log n)")
	tb := stats.NewTable("r", "c", "n", "|X|", "diameter", "c/log2(n)", "D/(c/log2 n)")
	for _, c := range []int{32, 64, 128, 256} {
		r := 4
		grc, err := sleepmst.NewGRC(r, c, int64(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		d := diameter(grc)
		n := float64(grc.G.N())
		env := float64(c) / math.Log2(n)
		tb.AddRow(r, c, grc.G.N(), len(grc.X), d, env, float64(d)/env)
	}
	fmt.Print(tb.String())
	fmt.Println()
}

func diameter(grc *sleepmst.GRC) int {
	return sleepmst.Diameter(grc.G)
}

func (h *harness) theorem4() {
	fmt.Println("=== Theorem 4: awake × rounds >= Ω̃(n) on G_rc ===")
	tb := stats.NewTable("r", "c", "n", "awake", "rounds", "awake×rounds", "product/n", "tree congestion (bits)")
	for _, c := range []int{16, 32, 64} {
		r := 4
		pt, err := lowerbound.TradeoffExperiment(r, c, core.RunRandomized, int64(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		tb.AddRow(pt.R, pt.C, pt.N, pt.Awake, pt.Rounds, pt.Product,
			float64(pt.Product)/float64(pt.N), pt.TreeCongestion)
	}
	fmt.Print(tb.String())

	fmt.Println()
	fmt.Println("end-to-end SD → DSD → CSS → MST reduction (decoded vs ground truth):")
	grc, err := sleepmst.NewGRC(5, 32, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
	tb2 := stats.NewTable("trial", "x", "y", "truth disjoint", "decoded", "ok")
	for s := int64(0); s < 6; s++ {
		x := lowerbound.RandomBits(grc.R-1, s*2+1)
		y := lowerbound.RandomBits(grc.R-1, s*2+2)
		ins, err := sleepmst.NewDSDInstance(grc, x, y)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		got, _, err := sleepmst.SolveSDViaMST(ins, sleepmst.Randomized, sleepmst.Options{Seed: s})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mstbench:", err)
			os.Exit(1)
		}
		tb2.AddRow(s, bits(x), bits(y), ins.Disjoint(), got, got == ins.Disjoint())
	}
	fmt.Print(tb2.String())
	fmt.Println()
}

func bits(b []bool) string {
	var sb strings.Builder
	for _, v := range b {
		if v {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
