package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sleepmst/internal/conform"
)

// TestConformCommandFreshRuns drives the -exp conform path end to
// end on a small size: all three sleeping algorithms must pass the
// strict catalog and the JSON artifact must round-trip.
func TestConformCommandFreshRuns(t *testing.T) {
	h := &harness{ns: []int{32}, seeds: 1, deg: 3}
	out := filepath.Join(t.TempDir(), "verdict.json")
	if code := h.conformCommand("randomized,deterministic,logstar", "", "", out, 0); code != 0 {
		t.Fatalf("conformCommand exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art verdictArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != conform.VerdictSchema || len(art.Verdicts) != 3 {
		t.Fatalf("artifact schema %d with %d verdicts", art.Schema, len(art.Verdicts))
	}
	for _, v := range art.Verdicts {
		if !v.Pass || v.N != 32 {
			t.Errorf("%s: pass=%v n=%d", v.Algo, v.Pass, v.N)
		}
	}
}

// TestConformCommandTraceIn checks an existing JSONL stream: the
// -conform-algo hint turns the awake-budget check on.
func TestConformCommandTraceIn(t *testing.T) {
	h := &harness{ns: []int{24}, seeds: 1, deg: 3}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	if code := h.traceCommand("randomized", "", tracePath, 0); code != 0 {
		t.Fatalf("traceCommand exit %d", code)
	}
	out := filepath.Join(dir, "verdict.json")
	if code := h.conformCommand("", tracePath, "randomized", out, 0); code != 0 {
		t.Fatalf("conformCommand -trace-in exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art verdictArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Verdicts) != 1 {
		t.Fatalf("want 1 verdict, got %d", len(art.Verdicts))
	}
	v := art.Verdicts[0]
	budget := false
	for _, c := range v.Checks {
		if c.Name == conform.CheckAwakeBudget && c.Status == conform.StatusPass {
			budget = true
		}
	}
	if !v.Pass || !budget {
		t.Fatalf("trace-in verdict: pass=%v budget-ran=%v", v.Pass, budget)
	}
	// Without the hint the budget check is skipped, not failed.
	if code := h.conformCommand("", tracePath, "", "", 0); code != 0 {
		t.Fatalf("hint-less conformCommand exit %d", code)
	}
}

// TestConformCommandRejectsBadInput covers the error paths: unknown
// algorithm names and unreadable trace files.
func TestConformCommandRejectsBadInput(t *testing.T) {
	h := &harness{ns: []int{16}, seeds: 1, deg: 3}
	if code := h.conformCommand("no-such-algo", "", "", "", 0); code == 0 {
		t.Error("unknown algorithm accepted")
	}
	if code := h.conformCommand("", filepath.Join(t.TempDir(), "missing.jsonl"), "", "", 0); code == 0 {
		t.Error("missing trace file accepted")
	}
}
