module sleepmst

go 1.23
