module sleepmst

go 1.22
