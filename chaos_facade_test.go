package sleepmst

import "testing"

// TestChaosFacade exercises the full chaos surface through the
// re-exports: a clean sweep, a perturbed sweep, and a single
// classified run.
func TestChaosFacade(t *testing.T) {
	g := RandomConnected(24, 60, 5)
	res, err := ChaosSweep(ChaosSweepConfig{
		Graph:    g,
		Runners:  ChaosRunners(Randomized, Baseline),
		Fault:    FaultDrop,
		Rates:    []float64{0, 0.1},
		Seeds:    2,
		BaseSeed: 1,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Rate == 0 && c.Counts[CorrectMST.String()] != c.Runs {
			t.Errorf("rate-0 cell %s: %v", c.Algorithm, c.Counts)
		}
	}

	policy := NewChaosPolicy(ChaosOptions{Seed: 9, Crash: []CrashEvent{{Node: 1, Round: 3}}})
	out, err := Randomized.Runner()(g, Options{Seed: 2, Interceptor: policy})
	if got := ClassifyRun(g, out, err); got == CorrectMST {
		t.Errorf("crashed run classified %v", got)
	}

	rep, err := Run(Randomized, g, Options{Seed: 2})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if got := ClassifyRun(g, rep.Outcome, nil); got != CorrectMST {
		t.Errorf("clean run classified %v, want %v", got, CorrectMST)
	}
}
