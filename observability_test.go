package sleepmst

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sleepmst/internal/sweep"
)

// traceJSONL runs algorithm a on g with a fresh recorder and returns
// the serialized JSONL trace.
func traceJSONL(t *testing.T, a Algorithm, g *Graph, seed int64) []byte {
	t.Helper()
	rec := NewTraceRecorder(0)
	rep, err := Run(a, g, Options{Seed: seed, Trace: rec})
	if err != nil {
		t.Fatalf("%s: %v", a, err)
	}
	if !rep.Verified() {
		t.Fatalf("%s: MST not verified", a)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("%s: write: %v", a, err)
	}
	return buf.Bytes()
}

// TestTraceJSONLGolden pins the JSONL schema byte for byte: a
// fixed-seed run must reproduce testdata/trace_golden.jsonl exactly.
// Any field rename, reorder, or formatting change trips this test —
// the schema is a published contract (DESIGN.md §8), so regenerate
// deliberately with:
//
//	UPDATE_GOLDEN=1 go test -run TraceJSONLGolden .
func TestTraceJSONLGolden(t *testing.T) {
	g := RandomConnected(8, 12, 5)
	got := traceJSONL(t, Randomized, g, 1)
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from golden (%d vs %d bytes); run with UPDATE_GOLDEN=1 if the schema change is intended", len(got), len(want))
	}
	// The golden trace must also round-trip through the reader.
	meta, events, err := ReadTraceJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if meta.N != g.N() || int64(len(events)) != meta.Events {
		t.Fatalf("round-trip meta mismatch: n=%d events=%d/%d", meta.N, len(events), meta.Events)
	}
}

// TestTraceJSONLGoldenMIS pins the problem suite's MIS trace the same
// way: the fixed-seed golden run must reproduce
// testdata/trace_golden_mis.jsonl byte for byte, covering the MIS
// step markers (mis-sample, mis-cleanup) the MST goldens never emit.
// Regenerate together with the other fixtures:
//
//	UPDATE_GOLDEN=1 go test -run 'Golden' .
func TestTraceJSONLGoldenMIS(t *testing.T) {
	g := RandomConnected(8, 12, 5)
	rec := NewTraceRecorder(0)
	r, err := RunMIS(g, Options{Seed: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if ni, nm := MISViolations(g, r.InMIS); ni != 0 || nm != 0 {
		t.Fatalf("golden run produced an invalid MIS: %d in-set edges, %d uncovered", ni, nm)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	golden := filepath.Join("testdata", "trace_golden_mis.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("MIS trace differs from golden (%d vs %d bytes); run with UPDATE_GOLDEN=1 if the schema change is intended", len(got), len(want))
	}
	meta, events, err := ReadTraceJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if meta.N != g.N() || int64(len(events)) != meta.Events {
		t.Fatalf("round-trip meta mismatch: n=%d events=%d/%d", meta.N, len(events), meta.Events)
	}
}

// TestTraceByteIdenticalAcrossSweepWorkers is the worker-independence
// acceptance gate: recording a fixed-seed run inside a sweep job must
// yield byte-identical JSONL whether the pool has 1 worker or 8, and
// the merged metrics registries — including the awake/node-avg/* pair
// every problem records — must match exactly. The job mix covers the
// three MST algorithms plus the MIS problem resident.
func TestTraceByteIdenticalAcrossSweepWorkers(t *testing.T) {
	algos := []Algorithm{Randomized, Deterministic, LogStar}
	kinds := len(algos) + 1 // the MSTs plus the MIS resident
	job := func(i int, reg *MetricsRegistry) ([]byte, error) {
		g := RandomConnected(24, 48, int64(10+i/kinds))
		rec := NewTraceRecorder(0)
		if i%kinds == len(algos) {
			if _, err := RunMIS(g, Options{Seed: 1, Trace: rec, Metrics: reg}); err != nil {
				return nil, err
			}
		} else if _, err := Run(algos[i%kinds], g, Options{Seed: 1, Trace: rec, Metrics: reg}); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	n := 2 * kinds
	serialTraces, serialReg, err := sweep.RunWithMetrics(sweep.Config{Workers: 1}, n, job)
	if err != nil {
		t.Fatal(err)
	}
	parallelTraces, parallelReg, err := sweep.RunWithMetrics(sweep.Config{Workers: 8}, n, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialTraces {
		if !bytes.Equal(serialTraces[i], parallelTraces[i]) {
			t.Errorf("job %d: trace differs between -workers 1 and -workers 8", i)
		}
	}
	if serialReg.String() != parallelReg.String() {
		t.Errorf("merged metrics differ between worker counts:\n%s\nvs\n%s", serialReg, parallelReg)
	}
	if serialReg.Get("merge/waves") == 0 || serialReg.Get("moe/probes") == 0 {
		t.Errorf("expected nonzero merge/moe counters, got:\n%s", serialReg)
	}
	// The node-averaged awake pair must be recorded for every job (each
	// run adds its node count) and merge to the same exact average on
	// both worker counts.
	if got, want := serialReg.Get("awake/node-avg/nodes"), int64(n*24); got != want {
		t.Errorf("awake/node-avg/nodes = %d, want %d (24 nodes x %d jobs)", got, want, n)
	}
	if avg := NodeAvgAwake(serialReg); avg <= 0 || avg != NodeAvgAwake(parallelReg) {
		t.Errorf("node-avg awake %v (workers 1) vs %v (workers 8); want equal and positive",
			avg, NodeAvgAwake(parallelReg))
	}
}

// TestTraceByteIdenticalAcrossRuns re-runs the same configuration in
// the same process and demands identical bytes — the in-process half
// of the determinism contract (the golden test covers cross-process).
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	g := RandomConnected(16, 30, 9)
	for _, a := range []Algorithm{Randomized, Deterministic} {
		first := traceJSONL(t, a, g, 2)
		second := traceJSONL(t, a, g, 2)
		if !bytes.Equal(first, second) {
			t.Errorf("%s: trace not reproducible across runs", a)
		}
	}
}
