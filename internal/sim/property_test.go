package sim

import (
	"math/rand"
	"testing"

	"sleepmst/internal/graph"
)

// The scheduler-invariant property test: random sleep/exchange
// programs are thrown at the runtime and every run is checked against
// the model's ground rules — a message is only ever delivered to a
// node awake in the delivery round (and is exactly the message the
// port's neighbor staged that round), awake counts grow monotonically
// with strictly increasing awake rounds, and the round metrics are
// mutually consistent (Rounds >= MaxHaltRound, BusyRounds == number of
// distinct awake rounds).

type sendRec struct {
	round int64
	port  int
	val   int
}

type recvRec struct {
	round int64
	port  int
	val   int
}

type nodeLog struct {
	exchanges int64
	sends     []sendRec
	recvs     []recvRec
}

// randomProgram derives every decision from the node's private
// deterministic randomness: a few rounds of sleep, then an exchange on
// a random subset of ports, repeated.
func randomProgram(logs []*nodeLog, steps int) Program {
	return func(nd *Node) error {
		log := logs[nd.Index()]
		for k := 0; k < steps; k++ {
			if d := nd.Rand().Int63n(5); d > 0 {
				nd.SleepUntil(nd.Round() + d)
			}
			round := nd.Round()
			var out Outbox
			for p := 0; p < nd.Degree(); p++ {
				if nd.Rand().Intn(2) == 0 {
					continue
				}
				if out == nil {
					out = make(Outbox, nd.Degree())
				}
				val := nd.Index()*1_000_000 + int(round)*100 + p
				out[p] = val
				log.sends = append(log.sends, sendRec{round: round, port: p, val: val})
			}
			in := nd.Exchange(out)
			log.exchanges++
			for p, raw := range in {
				log.recvs = append(log.recvs, recvRec{round: round, port: p, val: raw.(int)})
			}
		}
		return nil
	}
}

func TestQuickSchedulerInvariants(t *testing.T) {
	meta := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + meta.Intn(19)
		m := n - 1 + meta.Intn(2*n)
		g := graph.RandomConnected(n, m, graph.GenConfig{Seed: int64(trial + 1)})
		steps := 3 + meta.Intn(10)
		logs := make([]*nodeLog, g.N())
		for i := range logs {
			logs[i] = &nodeLog{}
		}
		res, err := Run(Config{Graph: g, Seed: int64(trial), RecordAwakeRounds: true}, randomProgram(logs, steps))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkInvariants(t, trial, g, res, logs)
	}
}

func checkInvariants(t *testing.T, trial int, g *graph.Graph, res *Result, logs []*nodeLog) {
	t.Helper()
	// Rounds vs halt rounds: the largest awake round bounds every halt.
	if res.Rounds < res.MaxHaltRound() {
		t.Fatalf("trial %d: Rounds %d < MaxHaltRound %d", trial, res.Rounds, res.MaxHaltRound())
	}

	// Awake accounting: counts match the recorded rounds, which are
	// strictly increasing (monotone awake counters), and each node's
	// exchange count equals its awake count.
	awakeAt := make([]map[int64]bool, g.N())
	busy := map[int64]bool{}
	for v := 0; v < g.N(); v++ {
		rounds := res.AwakeRounds[v]
		if int64(len(rounds)) != res.AwakePerNode[v] {
			t.Fatalf("trial %d node %d: %d recorded awake rounds vs count %d", trial, v, len(rounds), res.AwakePerNode[v])
		}
		if logs[v].exchanges != res.AwakePerNode[v] {
			t.Fatalf("trial %d node %d: %d exchanges vs awake count %d", trial, v, logs[v].exchanges, res.AwakePerNode[v])
		}
		awakeAt[v] = make(map[int64]bool, len(rounds))
		for i, r := range rounds {
			if i > 0 && r <= rounds[i-1] {
				t.Fatalf("trial %d node %d: awake rounds not strictly increasing: %v", trial, v, rounds)
			}
			if r < 1 || r > res.Rounds {
				t.Fatalf("trial %d node %d: awake round %d outside [1, %d]", trial, v, r, res.Rounds)
			}
			awakeAt[v][r] = true
			busy[r] = true
		}
		if len(rounds) > 0 && res.HaltRound[v] != rounds[len(rounds)-1] {
			t.Fatalf("trial %d node %d: halt round %d != last awake round %d", trial, v, res.HaltRound[v], rounds[len(rounds)-1])
		}
	}
	if int64(len(busy)) != res.BusyRounds {
		t.Fatalf("trial %d: %d distinct awake rounds vs BusyRounds %d", trial, len(busy), res.BusyRounds)
	}

	// Delivery: replay every send against the awake sets. A message
	// reaches its receiver iff the receiver was awake in the send
	// round — never a sleeping node — and the inbox contents must be
	// exactly the staged payloads.
	type key struct {
		to    int
		round int64
		port  int
	}
	expected := map[key]int{}
	var sent, delivered int64
	for v := 0; v < g.N(); v++ {
		ports := g.Ports(v)
		for _, s := range logs[v].sends {
			sent++
			if !awakeAt[v][s.round] {
				t.Fatalf("trial %d node %d: staged a send in round %d while asleep", trial, v, s.round)
			}
			to := ports[s.port].To
			if awakeAt[to][s.round] {
				delivered++
				expected[key{to: to, round: s.round, port: ports[s.port].RevPort}] = s.val
			}
		}
	}
	if sent != res.MessagesSent {
		t.Fatalf("trial %d: replay counted %d sends, runtime %d", trial, sent, res.MessagesSent)
	}
	if delivered != res.MessagesDelivered {
		t.Fatalf("trial %d: replay expects %d deliveries, runtime %d", trial, delivered, res.MessagesDelivered)
	}
	if res.MessagesSent != res.MessagesDelivered+res.MessagesLost {
		t.Fatalf("trial %d: sent %d != delivered %d + lost %d", trial, res.MessagesSent, res.MessagesDelivered, res.MessagesLost)
	}
	var received int64
	for v := 0; v < g.N(); v++ {
		for _, r := range logs[v].recvs {
			received++
			if !awakeAt[v][r.round] {
				t.Fatalf("trial %d node %d: received a message in round %d while asleep", trial, v, r.round)
			}
			want, ok := expected[key{to: v, round: r.round, port: r.port}]
			if !ok {
				t.Fatalf("trial %d node %d: unexpected message %d on port %d round %d", trial, v, r.val, r.port, r.round)
			}
			if want != r.val {
				t.Fatalf("trial %d node %d: got %d on port %d round %d, want %d", trial, v, r.val, r.port, r.round, want)
			}
		}
	}
	if received != delivered {
		t.Fatalf("trial %d: programs observed %d messages, replay expects %d", trial, received, delivered)
	}
}
