package sim

import (
	"fmt"
	"testing"

	"sleepmst/internal/graph"
)

// BenchmarkScheduler measures pure scheduler overhead per awake
// node-round — a null program (empty exchanges, no sleeping) on a
// cycle, so the algorithm contributes nothing and the number is the
// engine's park/wake/deliver cost. This is the engine-comparison
// figure quoted in DESIGN.md §12: the goroutine engine pays two
// channel handshakes and a runtime scheduling latency per node-round
// and degrades with live goroutine count, while the event engine pays
// one continuation switch and stays flat in n.
func BenchmarkScheduler(b *testing.B) {
	const rounds = 50
	for _, n := range []int{256, 4096, 65536} {
		g := graph.Cycle(n, graph.GenConfig{Seed: 1})
		prog := func(nd *Node) error {
			for i := 0; i < rounds; i++ {
				nd.Exchange(nil)
			}
			return nil
		}
		for _, engine := range []Engine{EngineGoroutine, EngineEvent} {
			if engine == EngineGoroutine && n > 4096 && testing.Short() {
				continue
			}
			b.Run(fmt.Sprintf("%s/n=%d", engine, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Run(Config{Graph: g, Seed: 1, Engine: engine}, prog); err != nil {
						b.Fatal(err)
					}
				}
				perRound := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n*rounds)
				b.ReportMetric(perRound, "ns/node-round")
			})
		}
	}
}
