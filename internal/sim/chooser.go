package sim

// Chooser is the model-checking branch-point hook: a decision surface
// the bounded state-space explorer (internal/modelcheck) implements to
// drive the runtime through every admissible nondeterminism branch.
// Where Interceptor perturbs runs with seeded faults, a Chooser
// *selects* among admissible alternatives at three decision points —
// wake scheduling, within-round message-routing order, and per-message
// single-fault injection. A nil Config.Chooser keeps today's fixed
// choices and costs nothing on the hot path; a Chooser whose methods
// always return the fixed choice (intended wake, index 0, no fault)
// reproduces the production run bit-identically.
//
// Determinism contract: with a Chooser configured the scheduler calls
// the methods in a total order that is a deterministic function of the
// run inputs (graph, seed, program) and the choices returned so far —
// wake choices in ascending node-index order within each scheduling
// batch, sender choices in routing order within each round, fault
// choices per staged message in (sender, port) order. Sequence-indexed
// replay (re-running a recorded choice prefix) is therefore sound,
// unlike for Interceptor implementations, which must key their
// randomness on event coordinates. All methods are called from the
// scheduler goroutine only, never concurrently.
type Chooser interface {
	// ChooseWake is called when a node parks with the round it intends
	// to be awake in next; the return value replaces that round.
	// Returns < intended are clamped to intended (the adversary can
	// oversleep a node, never wake it early). The fixed choice is
	// intended itself.
	ChooseWake(node int, intended int64) int64
	// ChooseSender selects which of the remaining staged outboxes to
	// route next in the given round: remaining lists the senders not
	// yet routed, in ascending node-index order at the first call, and
	// the return value is an index into remaining (out-of-range values
	// are clamped to 0). Called only when two or more participants
	// staged messages; composing the picks yields any routing
	// permutation. The slice is owned by the runtime and must not be
	// retained. The fixed choice is 0 (ascending index order).
	ChooseSender(round int64, remaining []int) int
	// ChooseFault is called once per staged message, after the send is
	// metered and before any Interceptor verdict, and may drop it
	// (metered like an interceptor drop: dropped + lost). The fixed
	// choice is false (deliver).
	ChooseFault(round int64, from, port, to int) bool
}

// FixedChooser is the identity Chooser: every method returns the
// production choice, so a run configured with it is bit-identical to a
// run with a nil Chooser (useful as the determinism control in tests).
type FixedChooser struct{}

// ChooseWake returns the intended wake round unchanged.
func (FixedChooser) ChooseWake(node int, intended int64) int64 { return intended }

// ChooseSender returns 0: route the lowest-index remaining sender.
func (FixedChooser) ChooseSender(round int64, remaining []int) int { return 0 }

// ChooseFault returns false: deliver the message.
func (FixedChooser) ChooseFault(round int64, from, port, to int) bool { return false }

// chooseSendOrder returns the order in which the round's staged
// outboxes are routed, as selected by the configured Chooser:
// repeatedly pick the next sender among the remaining ones.
// Participants without staged messages are excluded — their routing
// position is unobservable, so offering it as a branch point would
// only inflate the explorer's tree with equivalent schedules. The
// scratch slices are reused across rounds.
func (rt *runtime) chooseSendOrder(round int64, participants []int) []int {
	rt.sendOrder = rt.sendOrder[:0]
	rt.sendPool = rt.sendPool[:0]
	for _, idx := range participants {
		if len(rt.nodes[idx].out) > 0 {
			rt.sendPool = append(rt.sendPool, idx)
		}
	}
	if len(rt.sendPool) <= 1 {
		return append(rt.sendOrder, rt.sendPool...)
	}
	for len(rt.sendPool) > 0 {
		j := 0
		if len(rt.sendPool) > 1 { // a single remainder is not a branch
			j = rt.cfg.Chooser.ChooseSender(round, rt.sendPool)
			if j < 0 || j >= len(rt.sendPool) {
				j = 0
			}
		}
		rt.sendOrder = append(rt.sendOrder, rt.sendPool[j])
		rt.sendPool = append(rt.sendPool[:j], rt.sendPool[j+1:]...)
	}
	return rt.sendOrder
}
