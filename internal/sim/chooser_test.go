package sim

import (
	"fmt"
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/trace"
)

// hookChooser is a test chooser assembled from closures; nil fields
// make the fixed choice.
type hookChooser struct {
	onWake   func(node int, intended int64) int64
	onSender func(round int64, remaining []int) int
	onFault  func(round int64, from, port, to int) bool
}

func (h *hookChooser) ChooseWake(node int, intended int64) int64 {
	if h.onWake != nil {
		return h.onWake(node, intended)
	}
	return intended
}
func (h *hookChooser) ChooseSender(round int64, remaining []int) int {
	if h.onSender != nil {
		return h.onSender(round, remaining)
	}
	return 0
}
func (h *hookChooser) ChooseFault(round int64, from, port, to int) bool {
	if h.onFault != nil {
		return h.onFault(round, from, port, to)
	}
	return false
}

// traceLines renders a run's canonical event stream for comparison.
func traceLines(t *testing.T, g *graph.Graph, cfg Config, prog Program) []string {
	t.Helper()
	rec := trace.NewRecorder(0)
	cfg.Graph = g
	cfg.Trace = rec
	if _, err := Run(cfg, prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	var lines []string
	for _, ev := range rec.Events() {
		lines = append(lines, ev.String())
	}
	return lines
}

// TestFixedChooserBitIdentical: a run with the identity chooser must
// produce exactly the event stream of a run with no chooser at all —
// the production path is preserved bit-identically under the hook.
func TestFixedChooserBitIdentical(t *testing.T) {
	g := graph.Cycle(4, graph.GenConfig{Seed: 2})
	base := traceLines(t, g, Config{Seed: 3}, chatter(3))
	hooked := traceLines(t, g, Config{Seed: 3, Chooser: FixedChooser{}}, chatter(3))
	if len(base) != len(hooked) {
		t.Fatalf("event counts differ: %d vs %d", len(base), len(hooked))
	}
	for i := range base {
		if base[i] != hooked[i] {
			t.Fatalf("event %d differs:\n  nil chooser:   %s\n  fixed chooser: %s", i, base[i], hooked[i])
		}
	}
}

// TestChooseWakeOversleeps: a wake choice > intended delays the node
// like an interceptor oversleep — the overslept node misses the round
// and messages to it are lost.
func TestChooseWakeOversleeps(t *testing.T) {
	g := pathGraph(t, 2)
	ch := &hookChooser{onWake: func(node int, intended int64) int64 {
		if node == 1 && intended == 2 {
			return 3 // node 1 sleeps through round 2
		}
		return intended
	}}
	res, err := Run(Config{Graph: g, Seed: 1, Chooser: ch}, chatter(2))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Round 1: both awake, 2 delivered. Round 2: node 0 sends to a
	// sleeping node 1 — lost. Round 3: node 1 sends to a finished
	// node 0 — lost.
	if res.MessagesLost != 2 {
		t.Errorf("lost=%d, want 2", res.MessagesLost)
	}
	if res.WakesPerturbed != 1 {
		t.Errorf("wakes perturbed=%d, want 1", res.WakesPerturbed)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds=%d, want 3 (node 1 overslept into round 3)", res.Rounds)
	}
}

// TestChooseFaultDropsMessage: a fault choice drops exactly the chosen
// message, metered as dropped + lost.
func TestChooseFaultDropsMessage(t *testing.T) {
	g := pathGraph(t, 2)
	ch := &hookChooser{onFault: func(round int64, from, port, to int) bool {
		return round == 1 && from == 0
	}}
	res, err := Run(Config{Graph: g, Seed: 1, Chooser: ch}, chatter(2))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MessagesSent != 4 || res.MessagesDelivered != 3 {
		t.Errorf("sent=%d delivered=%d, want 4/3", res.MessagesSent, res.MessagesDelivered)
	}
	if res.MessagesDropped != 1 || res.MessagesLost != 1 {
		t.Errorf("dropped=%d lost=%d, want 1/1", res.MessagesDropped, res.MessagesLost)
	}
}

// TestChooseSenderPermutesRouting: the sender choice points see the
// remaining staged senders in ascending order and compose into any
// routing permutation; and because inboxes are port-keyed with at most
// one message per port per round, the permuted routing is unobservable
// to the clean model — the delivered state matches the default order.
func TestChooseSenderPermutesRouting(t *testing.T) {
	g := graph.Cycle(4, graph.GenConfig{Seed: 2})
	var calls []string
	ch := &hookChooser{onSender: func(round int64, remaining []int) int {
		calls = append(calls, fmt.Sprintf("r%d:%v", round, remaining))
		return len(remaining) - 1 // route in descending index order
	}}
	res, err := Run(Config{Graph: g, Seed: 1, Chooser: ch}, chatter(1))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// One round, 4 senders with staged outboxes: the pool shrinks from
	// the full sorted set, picked from the back each time.
	want := []string{"r1:[0 1 2 3]", "r1:[0 1 2]", "r1:[0 1]"}
	if len(calls) != len(want) {
		t.Fatalf("ChooseSender calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("ChooseSender call %d = %q, want %q", i, calls[i], want[i])
		}
	}
	if res.MessagesDelivered != 8 {
		t.Errorf("delivered=%d, want 8 (routing order must not change delivery)", res.MessagesDelivered)
	}
}

// TestChooseSenderSkipsSilentNodes: participants with no staged
// messages are not offered as routing branch points.
func TestChooseSenderSkipsSilentNodes(t *testing.T) {
	g := pathGraph(t, 3)
	var pools [][]int
	ch := &hookChooser{onSender: func(round int64, remaining []int) int {
		pools = append(pools, append([]int(nil), remaining...))
		return 0
	}}
	// Only the endpoints (0 and 2) send; node 1 exchanges silently.
	prog := func(nd *Node) error {
		out := Outbox{}
		if nd.Degree() == 1 {
			out[0] = nd.Index()
		}
		nd.Exchange(out)
		return nil
	}
	if _, err := Run(Config{Graph: g, Seed: 1, Chooser: ch}, prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(pools) != 1 || len(pools[0]) != 2 || pools[0][0] != 0 || pools[0][1] != 2 {
		t.Fatalf("sender pools = %v, want one call with [0 2]", pools)
	}
}

// TestChooserRunsAreDeterministic: two runs with the same replaying
// chooser produce identical event streams — the choice-point sequence
// is a deterministic function of the run inputs, which is what the
// model checker's prefix-replay exploration relies on.
func TestChooserRunsAreDeterministic(t *testing.T) {
	g := graph.Complete(4, graph.GenConfig{Seed: 5})
	mk := func() Chooser {
		step := 0
		return &hookChooser{
			onWake: func(node int, intended int64) int64 {
				step++
				if step%5 == 0 {
					return intended + 1
				}
				return intended
			},
			onSender: func(round int64, remaining []int) int {
				step++
				return step % len(remaining)
			},
			onFault: func(round int64, from, port, to int) bool {
				step++
				return step%7 == 0
			},
		}
	}
	a := traceLines(t, g, Config{Seed: 9, Chooser: mk()}, chatter(3))
	b := traceLines(t, g, Config{Seed: 9, Chooser: mk()}, chatter(3))
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across replays:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
