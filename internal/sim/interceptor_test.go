package sim

import (
	"errors"
	"strings"
	"testing"
)

// hookInterceptor is a test interceptor assembled from closures; nil
// fields are no-ops.
type hookInterceptor struct {
	onMessage func(ev *MessageEvent)
	onWake    func(node int, intended int64) int64
	crash     func(node int) int64
}

func (h *hookInterceptor) BeginRun(n int) {}
func (h *hookInterceptor) InterceptMessage(ev *MessageEvent) {
	if h.onMessage != nil {
		h.onMessage(ev)
	}
}
func (h *hookInterceptor) InterceptWake(node int, intended int64) int64 {
	if h.onWake != nil {
		return h.onWake(node, intended)
	}
	return intended
}
func (h *hookInterceptor) CrashRound(node int) int64 {
	if h.crash != nil {
		return h.crash(node)
	}
	return 0
}

// chatter is a program where every node exchanges for rounds rounds,
// sending its index on every port.
func chatter(rounds int64) Program {
	return func(nd *Node) error {
		for r := int64(0); r < rounds; r++ {
			out := Outbox{}
			for p := 0; p < nd.Degree(); p++ {
				out[p] = nd.Index()
			}
			nd.Exchange(out)
		}
		return nil
	}
}

func TestInterceptorDropLosesMessages(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{onMessage: func(ev *MessageEvent) { ev.Drop = true }}
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, chatter(2))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MessagesSent != 4 || res.MessagesDelivered != 0 {
		t.Errorf("sent=%d delivered=%d, want 4/0", res.MessagesSent, res.MessagesDelivered)
	}
	if res.MessagesDropped != 4 || res.MessagesLost != 4 {
		t.Errorf("dropped=%d lost=%d, want 4/4", res.MessagesDropped, res.MessagesLost)
	}
}

func TestInterceptorDelayShiftsDelivery(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{onMessage: func(ev *MessageEvent) { ev.Delay = 1 }}
	var got []interface{}
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, func(nd *Node) error {
		for r := int64(1); r <= 3; r++ {
			in := nd.Exchange(Outbox{0: r})
			if nd.Index() == 1 {
				got = append(got, in[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Round 1 delivers nothing; rounds 2 and 3 deliver the copies sent
	// in rounds 1 and 2. The copies sent in round 3 die in flight.
	if len(got) != 3 || got[0] != nil || got[1] != int64(1) || got[2] != int64(2) {
		t.Errorf("received sequence = %v, want [nil 1 2]", got)
	}
	if res.MessagesDelayed != 6 {
		t.Errorf("delayed = %d, want 6", res.MessagesDelayed)
	}
	if res.MessagesDelivered != 4 || res.MessagesLost != 2 {
		t.Errorf("delivered=%d lost=%d, want 4/2 (in-flight copies lost at run end)",
			res.MessagesDelivered, res.MessagesLost)
	}
}

func TestInterceptorDuplicateReplaysNextRound(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{onMessage: func(ev *MessageEvent) {
		if ev.Round == 1 {
			ev.Duplicate = 1
		}
	}}
	var got []interface{}
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, func(nd *Node) error {
		in := nd.Exchange(Outbox{0: "fresh"})
		if nd.Index() == 1 {
			got = append(got, in[0])
		}
		in = nd.Exchange(nil) // round 2: only the replayed copy arrives
		if nd.Index() == 1 {
			got = append(got, in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 2 || got[0] != "fresh" || got[1] != "fresh" {
		t.Errorf("received = %v, want [fresh fresh]", got)
	}
	if res.MessagesDuplicated != 2 {
		t.Errorf("duplicated = %d, want 2", res.MessagesDuplicated)
	}
}

func TestInterceptorCrashStopsNode(t *testing.T) {
	g := pathGraph(t, 3)
	itc := &hookInterceptor{crash: func(node int) int64 {
		if node == 2 {
			return 5
		}
		return 0
	}}
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, chatter(10))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.CrashRound == nil || res.CrashRound[2] != 5 {
		t.Fatalf("CrashRound = %v, want node 2 crashed at 5", res.CrashRound)
	}
	if res.AwakePerNode[2] != 4 {
		t.Errorf("crashed node awake = %d, want 4 (rounds 1..4)", res.AwakePerNode[2])
	}
	if res.AwakePerNode[0] != 10 || res.AwakePerNode[1] != 10 {
		t.Errorf("surviving nodes awake = %d/%d, want 10/10",
			res.AwakePerNode[0], res.AwakePerNode[1])
	}
	// Node 1 keeps sending to the dead node 2 in rounds 5..10.
	if res.MessagesLost != 6 {
		t.Errorf("lost = %d, want 6 (sends to the crashed node)", res.MessagesLost)
	}
}

func TestInterceptorCrashAtRoundOneNeverWakes(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{crash: func(node int) int64 {
		if node == 0 {
			return 1
		}
		return 0
	}}
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, chatter(2))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.AwakePerNode[0] != 0 {
		t.Errorf("node 0 awake = %d, want 0 (crashed before round 1)", res.AwakePerNode[0])
	}
	if res.CrashRound[0] != 1 {
		t.Errorf("CrashRound[0] = %d, want 1", res.CrashRound[0])
	}
}

func TestInterceptorOversleepClampsSleepUntil(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{onWake: func(node int, intended int64) int64 {
		if node == 1 && intended == 1 {
			return 4 // node 1 oversleeps through its planned rounds 1 and 2
		}
		return intended
	}}
	var wokeAt []int64
	res, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, func(nd *Node) error {
		nd.Exchange(nil)
		if nd.Index() == 1 {
			wokeAt = append(wokeAt, nd.Round()-1)
		}
		// A clean node would now be before round 2; the overslept node
		// is already past it and must not panic here.
		nd.SleepUntil(2)
		nd.Exchange(nil)
		if nd.Index() == 1 {
			wokeAt = append(wokeAt, nd.Round()-1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(wokeAt) != 2 || wokeAt[0] != 4 || wokeAt[1] != 5 {
		t.Errorf("node 1 woke at %v, want [4 5]", wokeAt)
	}
	if res.WakesPerturbed != 1 {
		t.Errorf("WakesPerturbed = %d, want 1", res.WakesPerturbed)
	}
}

func TestSleepUntilStillPanicsWithoutPerturbation(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{}
	_, err := Run(Config{Graph: g, Seed: 1, Interceptor: itc}, func(nd *Node) error {
		nd.Exchange(nil)
		nd.SleepUntil(1) // past round: programming error, must still panic
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "cannot sleep until past round") {
		t.Fatalf("err = %v, want sleep-until panic", err)
	}
}

// TestReceiveSideBitCap is the regression test for receive-side
// CONGEST enforcement: a payload that grows after the send-side check
// (here: replaced by the interceptor) must fail the run with an error
// naming the round, the sender, and the port.
func TestReceiveSideBitCap(t *testing.T) {
	g := pathGraph(t, 2)
	itc := &hookInterceptor{onMessage: func(ev *MessageEvent) {
		if ev.Round == 2 && ev.From == 0 {
			ev.Payload = sizedMsg{bits: 999}
			ev.Mutated = true
		}
	}}
	res, err := Run(Config{Graph: g, Seed: 1, BitCap: 64, Interceptor: itc}, chatter(3))
	if err == nil {
		t.Fatal("want bit-cap error, got nil")
	}
	if !errors.Is(err, ErrBitCap) || !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrBitCap wrapped in ErrAborted", err)
	}
	for _, want := range []string{"999-bit", "round 2", "node 0", "port 0", "received"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err.Error(), want)
		}
	}
	if res.MessagesCorrupted != 1 {
		t.Errorf("corrupted = %d, want 1", res.MessagesCorrupted)
	}
}

func TestSendSideBitCapStillEnforced(t *testing.T) {
	g := pathGraph(t, 2)
	for _, itc := range []Interceptor{nil, &hookInterceptor{}} {
		_, err := Run(Config{Graph: g, Seed: 1, BitCap: 8, Interceptor: itc}, func(nd *Node) error {
			nd.Exchange(Outbox{0: sizedMsg{bits: 100}})
			return nil
		})
		if !errors.Is(err, ErrBitCap) {
			t.Errorf("interceptor=%v: err = %v, want ErrBitCap", itc != nil, err)
		}
	}
}

func TestTypedErrors(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 3}, func(nd *Node) error {
		for {
			nd.Exchange(nil)
		}
	})
	if !errors.Is(err, ErrRoundCap) {
		t.Errorf("round cap err = %v, want ErrRoundCap", err)
	}
	_, err = Run(Config{Graph: g, Seed: 1, AwakeBudget: 2}, func(nd *Node) error {
		for i := 0; i < 5; i++ {
			nd.Exchange(nil)
		}
		return nil
	})
	if !errors.Is(err, ErrAwakeBudget) {
		t.Errorf("awake budget err = %v, want ErrAwakeBudget", err)
	}
}
