package sim

import (
	"fmt"
	"iter"
)

// The event engine: the default, goroutine-free scheduler core.
//
// Node programs still read as sequential Go code, but instead of one
// goroutine per node they run as coroutine continuations (iter.Pull)
// resumed and parked on the scheduler's own thread. A park is a direct
// continuation switch — no channel handshake, no runtime scheduler
// latency, no per-node stack held hot — which is what moves the
// per-awake-node-round cost from microseconds to ~100 ns and makes
// n = 10^5 routine and n = 10^6 reachable on one machine.
//
// Equivalence with the goroutine engine is structural, not accidental:
// this file replays the exact statement order of the legacy loop
// (engine_goroutine.go) per event. The one behavioral difference — parks
// arrive in ascending node index instead of goroutine-completion order —
// is unobservable, because every hook the order could reach is order-
// independent: the Chooser path sorts the goroutine batch to the same
// ascending order, the Interceptor contract requires coordinate-keyed
// randomness, the trace recorder writes order-insensitive per-node
// streams, and metrics are additive. The enginediff tests hold the two
// engines byte-identical on every registered problem.

// nodeCoro is one node program suspended inside Exchange: next resumes
// the continuation (false when the program finished), stop unwinds it
// via the abort sentinel.
type nodeCoro struct {
	next func() (struct{}, bool)
	stop func()
}

// runEvent drives all node programs as coroutines on the calling
// goroutine.
func (rt *runtime) runEvent(prog Program) {
	n := len(rt.nodes)
	coros := make([]nodeCoro, n)
	for i := 0; i < n; i++ {
		nd := rt.nodes[i]
		seq := func(yield func(struct{}) bool) {
			nd.yield = yield
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						return
					}
					nd.exitErr = fmt.Errorf("sim: node %d panicked: %v", nd.idx, r)
				}
			}()
			nd.exitErr = prog(nd)
		}
		coros[i].next, coros[i].stop = iter.Pull(seq)
	}
	e := &eventEngine{rt: rt, coros: coros, parked: make([]bool, n), live: n}
	e.run()
}

// eventEngine is the per-run scheduler state, struct-of-arrays style:
// the wake queue is the event queue, parked marks which indices hold a
// live continuation, live counts unfinished programs.
//
// The wake queue is two-tier. Nodes waking in the very next round —
// the dominant case in dense phases, where every participant of round
// r parks for r+1 — go into bucket, a plain slice that stays in
// ascending index order by construction. Only nodes sleeping further
// ahead pay the wake heap's O(log n) push/pop. A round's participants
// are the merge of the bucket with the heap's equal-round prefix, so
// the order is identical to the heap-only scheme (ascending index),
// just without the per-node-round heap traffic.
type eventEngine struct {
	rt     *runtime
	coros  []nodeCoro
	parked []bool
	wakes  wakeHeap
	live   int

	// bucket holds nodes waking exactly at bucketRound (the round
	// after the one last executed); its backing array is recycled
	// every round.
	bucket      []int
	bucketRound int64
}

// step resumes node idx and processes the outcome: either the program
// parked again inside Exchange (park bookkeeping, mirroring the batch
// body of the goroutine loop) or it finished (exit bookkeeping). The
// resume is a direct continuation switch on this thread, so unlike the
// goroutine engine there is no batch collection: the park is processed
// synchronously, in the order the scheduler resumes nodes — ascending
// index, the same order the goroutine loop sorts into for choosers.
func (e *eventEngine) step(idx int) {
	rt := e.rt
	nd := rt.nodes[idx]
	if _, parkedAgain := e.coros[idx].next(); !parkedAgain {
		e.live--
		if nd.exitErr != nil && rt.failed == nil {
			rt.failed = fmt.Errorf("node %d: %w", idx, nd.exitErr)
		}
		return
	}
	if ch := rt.cfg.Chooser; ch != nil {
		if w := ch.ChooseWake(idx, nd.wake); w > nd.wake {
			nd.wake = w
			nd.perturbed = true
			rt.res.WakesPerturbed++
		}
	}
	if itc := rt.cfg.Interceptor; itc != nil {
		if w := itc.InterceptWake(idx, nd.wake); w > nd.wake {
			nd.wake = w
			nd.perturbed = true
			rt.res.WakesPerturbed++
		}
		if cr := itc.CrashRound(idx); cr > 0 && nd.wake >= cr {
			// Crash-stop: unwind the continuation synchronously. The
			// program cannot exit with an error from an abort unwind, so
			// this cannot disturb first-error-wins ordering.
			rt.res.CrashRound[idx] = cr
			if rt.rec != nil {
				rt.rec.Crash(idx, cr)
			}
			nd.aborted = true
			e.coros[idx].stop()
			e.live--
			return
		}
	}
	if rt.rec != nil {
		// A real sleep gap: the node skips >= 1 round between its last
		// awake round (0 = never) and its next wake.
		if last := rt.res.HaltRound[idx]; nd.wake > last+1 {
			rt.rec.Sleep(idx, last, nd.wake)
		}
	}
	e.parked[idx] = true
	if nd.wake == e.bucketRound {
		// step runs over participants in ascending index order, so the
		// bucket stays sorted without ever comparing.
		e.bucket = append(e.bucket, idx)
	} else {
		e.wakes.push(wakeEntry{round: nd.wake, idx: idx})
	}
}

// run is the event loop. Invariant at the top of each iteration: every
// live node is parked inside Exchange with exactly one entry in the
// bucket or the wake heap.
func (e *eventEngine) run() {
	rt := e.rt
	// Round 0: start every program; each runs until its first Exchange
	// (or exit). Ascending index — the goroutine engine's sorted-batch
	// order. Rounds start at 1, so the bucket initially collects nodes
	// whose first Exchange lands there (the common case).
	e.bucketRound = 1
	for idx := range e.coros {
		e.step(idx)
	}
	var p []int // participants scratch, reused across rounds
	for {
		if rt.failed != nil {
			e.drain()
			return
		}
		if e.live == 0 {
			return
		}
		// Next busy round: minimum wake among parked nodes. Every heap
		// entry has round >= bucketRound (a smaller round would already
		// have been executed), so a non-empty bucket decides.
		var round int64
		if len(e.bucket) > 0 {
			round = e.bucketRound
		} else {
			round = e.wakes[0].round
		}
		if round > rt.cfg.MaxRounds {
			rt.failed = fmt.Errorf("sim: round %d exceeds cap %d: %w (%w)", round, rt.cfg.MaxRounds, ErrRoundCap, ErrAborted)
			e.drain()
			return
		}
		if rt.cfg.canceled() {
			rt.failed = fmt.Errorf("sim: run canceled at round %d: %w (%w)", round, ErrCanceled, ErrAborted)
			e.drain()
			return
		}
		// Participants of this round: merge the bucket (ascending by
		// construction) with the heap's equal-round prefix (heap pops
		// with equal rounds come out in increasing index order), so p
		// is sorted ascending — the order every downstream consumer
		// (deliver, accounting, resume) assumes.
		p = p[:0]
		bucket, bi := e.bucket, 0
		for len(e.wakes) > 0 && e.wakes[0].round == round {
			idx := e.wakes.pop().idx
			for bi < len(bucket) && bucket[bi] < idx {
				p = append(p, bucket[bi])
				bi++
			}
			p = append(p, idx)
		}
		p = append(p, bucket[bi:]...)
		e.bucket = e.bucket[:0]
		e.bucketRound = round + 1
		if err := rt.deliver(round, p); err != nil {
			rt.failed = err
			e.drain()
			return
		}
		rt.res.BusyRounds++
		if round > rt.res.Rounds {
			rt.res.Rounds = round
		}
		// Account for ALL participants before resuming any: a resumed
		// program observes (via AwakeCount, Round) a world in which the
		// whole round completed, exactly as under the goroutine engine,
		// and a budget failure is charged to the lowest-index violator
		// of the round regardless of resume order.
		for _, idx := range p {
			nd := rt.nodes[idx]
			nd.awake++
			rt.res.AwakePerNode[idx]++
			if rt.rec != nil {
				rt.rec.Awake(round, idx)
			}
			if rt.cfg.AwakeBudget > 0 && nd.awake > rt.cfg.AwakeBudget && rt.failed == nil {
				rt.failed = fmt.Errorf("sim: node %d exceeded awake budget %d in round %d: %w (%w)",
					idx, rt.cfg.AwakeBudget, round, ErrAwakeBudget, ErrAborted)
			}
			rt.res.HaltRound[idx] = round
			if rt.cfg.RecordAwakeRounds {
				rt.res.AwakeRounds[idx] = append(rt.res.AwakeRounds[idx], round)
			}
			nd.wake = round + 1
			e.parked[idx] = false
		}
		// Resume the round's participants. Even after a budget failure
		// every participant still runs to its next park and has that
		// park fully processed (InterceptWake, sleep records, heap
		// push) — matching the goroutine engine, where the batch is
		// always collected in full before the failure check; the drain
		// at the top of the next iteration then unwinds everyone.
		for _, idx := range p {
			e.step(idx)
		}
	}
}

// drain unwinds every parked continuation via the abort sentinel.
func (e *eventEngine) drain() {
	for idx, isParked := range e.parked {
		if !isParked {
			continue
		}
		nd := e.rt.nodes[idx]
		nd.aborted = true
		e.parked[idx] = false
		e.coros[idx].stop()
	}
}
