// Package sim implements the synchronous sleeping-model CONGEST
// runtime of the paper (§1.1).
//
// Node programs are ordinary sequential Go code written against the
// Node API: Exchange participates in the node's next wake round
// (sending and receiving O(log n)-bit messages on ports), SleepUntil
// schedules the next wake round, and returning from the program
// terminates the node. The scheduler advances directly to the minimum
// next-wake round, so rounds in which every node sleeps cost O(1) —
// the deterministic algorithm's O(nN log n) round counts are metered
// without being paid in wall clock.
//
// Two engines execute that contract (see Engine). The default event
// engine is a goroutine-free scheduler core: node programs run as
// coroutine continuations on the scheduler's own thread, resumed and
// parked without channel handshakes, with per-round work queues that
// visit only awake nodes and pooled message buffers — the engine that
// reaches n = 10^5–10^6 on one machine. The legacy goroutine engine
// (one goroutine per node, channel handshakes per awake round) stays
// compiled behind Config.Engine as the differential-testing reference;
// both engines are bit-for-bit equivalent on fixed seeds.
//
// Semantics, matching the paper: rounds are numbered from 1 and all
// nodes are initially awake; a node awake in round r sends at the start
// of r and receives at the end of r; a message sent to a node that is
// asleep in round r is lost; local computation between rounds is free;
// only awake rounds count toward awake complexity.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"sleepmst/internal/graph"
	"sleepmst/internal/metrics"
	"sleepmst/internal/trace"
	"sleepmst/internal/transport"
)

// Sizer lets a message type declare its size in bits for congestion
// accounting. Messages that do not implement Sizer are charged
// DefaultMessageBits.
type Sizer interface {
	Bits() int
}

// Kinded lets a message type declare a stable kind label; delivered
// messages are then tallied per kind into the msgs/type/<kind> metric
// when Config.Metrics is set. Messages without a kind tally as
// "other".
type Kinded interface {
	MsgKind() string
}

// kindOf returns the metric label of a message.
func kindOf(msg interface{}) string {
	if k, ok := msg.(Kinded); ok {
		return k.MsgKind()
	}
	return "other"
}

// DefaultMessageBits is the size charged to messages that do not
// implement Sizer.
const DefaultMessageBits = 64

// Interceptor is the chaos hook surface: a fault-injection layer that
// observes and perturbs the runtime at its two decision points — the
// message delivery point and wake scheduling — plus a crash-stop
// schedule. A nil Config.Interceptor keeps the clean-model semantics
// and costs nothing on the hot path.
//
// All methods are called from the scheduler goroutine only, never
// concurrently. Implementations that want deterministic replay must
// derive their randomness from the event coordinates (round, node,
// port) rather than from sequential RNG state, or reset that state in
// BeginRun.
type Interceptor interface {
	// BeginRun is called once before round 1 with the network size, so
	// per-run state (crash tables, first-fault round) can be reset.
	BeginRun(n int)
	// InterceptMessage is called once per staged message at the
	// delivery point, before routing. The implementation may drop,
	// delay, duplicate, or replace the payload by mutating ev.
	InterceptMessage(ev *MessageEvent)
	// InterceptWake is called when a node parks with the round it
	// intends to be awake in next; the return value replaces that
	// round. Returns < intended are clamped to intended: the adversary
	// can make a node oversleep, never wake it early (an early wake
	// would need the node program's cooperation).
	InterceptWake(node int, intended int64) int64
	// CrashRound returns the round from which node is crash-stopped —
	// the node is not awake in any round >= the returned value and its
	// pending messages are discarded. 0 means the node never crashes.
	CrashRound(node int) int64
}

// MessageEvent is one message at the delivery point. The interceptor
// mutates the verdict fields; the runtime applies them in order: a
// dropped message is lost outright; otherwise the (possibly replaced)
// payload is delivered Delay rounds late, plus Duplicate extra copies
// in the rounds after that. A delayed copy reaches the receiver only
// if the receiver is awake in the delivery round, exactly like a
// freshly sent message.
type MessageEvent struct {
	// Round, From, Port, To identify the send: node From sent Payload
	// on its port Port (towards node To) in round Round.
	Round int64
	From  int
	Port  int
	To    int
	// Payload is the message; the interceptor may replace it (e.g.
	// with a bit-flipped copy). Replacements are re-measured against
	// Config.BitCap on the receive side.
	Payload interface{}

	// Drop loses the message (metered as dropped + lost).
	Drop bool
	// Delay postpones delivery by that many rounds (0 = this round).
	Delay int64
	// Duplicate delivers that many extra copies in consecutive rounds
	// after the primary copy.
	Duplicate int
	// Mutated marks the payload as corrupted for metering.
	Mutated bool
}

// Outbox maps port number -> message to send on that port.
type Outbox map[int]interface{}

// Inbox maps port number -> message received on that port.
type Inbox map[int]interface{}

// Program is the code run by every node.
type Program func(nd *Node) error

// Config parameterizes a simulation run.
type Config struct {
	// Graph is the network. Required.
	Graph *graph.Graph
	// Engine selects the scheduler implementation. The zero value is
	// EngineEvent, the goroutine-free event-driven core; EngineGoroutine
	// selects the legacy one-goroutine-per-node scheduler. Both produce
	// byte-identical traces, verdicts, and metrics on fixed seeds.
	Engine Engine
	// Seed seeds the per-node private randomness.
	Seed int64
	// MaxRounds aborts the run if the simulated round counter exceeds
	// it. 0 means DefaultMaxRounds.
	MaxRounds int64
	// BitCap, if positive, makes the runtime fail the run when a
	// single message exceeds BitCap bits (CONGEST enforcement).
	BitCap int
	// AwakeBudget, if positive, fails the run as soon as any node
	// exceeds that many awake rounds — runtime enforcement of awake
	// complexity claims (e.g. c·log n for the paper's algorithms).
	AwakeBudget int64
	// RecordAwakeRounds records, per node, the exact rounds in which
	// the node was awake (for traces and schedule tests).
	RecordAwakeRounds bool
	// Interceptor, if non-nil, is invoked at the delivery point and at
	// wake scheduling (fault injection; see Interceptor). Nil keeps
	// the clean model.
	Interceptor Interceptor
	// Chooser, if non-nil, selects among admissible nondeterminism
	// branches at wake scheduling, message-routing order, and
	// per-message fault injection (model checking; see Chooser). Nil —
	// the default — keeps today's fixed choices bit-identically.
	Chooser Chooser
	// Trace, if non-nil, records structured events (awake, sleep gaps,
	// sends, deliveries, losses, crashes, plus whatever the node
	// program emits via EmitPhase/EmitStep/EmitMerge) into the given
	// recorder. Nil — the default — keeps recording entirely off the
	// hot path; when set, recording stays allocation-bounded by the
	// recorder's ring capacity. The recorder serves this one run: Run
	// calls Trace.Begin itself.
	Trace *trace.Recorder
	// Metrics, if non-nil, receives runtime counters (msgs/type/<kind>
	// tallies from the scheduler; node programs may add their own via
	// Node.Metrics). Nil disables the accounting.
	Metrics *metrics.Registry
	// Transport, if non-nil, carries every same-round delivery as an
	// encoded wire frame through the given backend (see
	// internal/transport). The simulator keeps all model decisions —
	// losses to sleeping receivers, the CONGEST bit cap, awake
	// metering — so the run's traces, verdicts, metrics, and Result
	// are byte-identical to the in-memory run. Run calls
	// Transport.Listen; the caller owns Close. Incompatible with
	// Chooser (model checking stays in-memory). Nil — the default —
	// keeps delivery entirely in-process with no wire encoding.
	Transport transport.Transport
	// Cancel, if non-nil, aborts the run at the next busy-round
	// barrier once the channel is closed: every node program unwinds,
	// Run returns ErrCanceled (wrapped), and the partial Result stays
	// valid — the mechanism behind per-request deadlines in
	// internal/service. The check is a non-blocking poll once per busy
	// round, so a nil or never-closed channel costs nothing
	// observable. Nil — the default — keeps runs uncancellable.
	Cancel <-chan struct{}
}

// DefaultMaxRounds caps runaway simulations.
const DefaultMaxRounds = int64(1) << 40

// Result aggregates the metrics of a completed run.
type Result struct {
	// Rounds is the largest round number in which any node was awake.
	Rounds int64
	// BusyRounds is the number of distinct rounds with >= 1 awake node
	// (the simulation's real cost).
	BusyRounds int64
	// AwakePerNode[i] is node i's awake-round count A_v.
	AwakePerNode []int64
	// HaltRound[i] is the last round in which node i was awake; in the
	// traditional always-awake model this is node i's awake time.
	HaltRound []int64
	// MessagesSent / MessagesDelivered / MessagesLost count messages;
	// lost messages were sent to sleeping neighbors.
	MessagesSent, MessagesDelivered, MessagesLost int64
	// MessagesSentPerNode[i] counts messages sent by node i (for
	// per-node energy accounting).
	MessagesSentPerNode []int64
	// BitsSent is the total message payload sent.
	BitsSent int64
	// BitsReceivedPerNode meters congestion per node — the quantity
	// Theorem 4 charges against awake time.
	BitsReceivedPerNode []int64
	// AwakeRounds[i] lists the rounds node i was awake, if
	// Config.RecordAwakeRounds was set.
	AwakeRounds [][]int64

	// Chaos metering. All fields below stay zero/nil unless
	// Config.Interceptor was set.

	// MessagesDropped counts messages lost to interceptor or chooser
	// drops (they are also counted in MessagesLost).
	MessagesDropped int64
	// MessagesDelayed counts primary copies postponed by the
	// interceptor; MessagesDuplicated counts injected extra copies.
	MessagesDelayed, MessagesDuplicated int64
	// MessagesCorrupted counts payloads the interceptor marked
	// Mutated.
	MessagesCorrupted int64
	// WakesPerturbed counts wake rounds the interceptor or chooser
	// moved.
	WakesPerturbed int64
	// CrashRound[i] is the round from which node i was crash-stopped
	// (0 = never). Nil when no interceptor was configured.
	CrashRound []int64
}

// MaxAwake returns the worst-case awake complexity max_v A_v.
func (r *Result) MaxAwake() int64 {
	var m int64
	for _, a := range r.AwakePerNode {
		if a > m {
			m = a
		}
	}
	return m
}

// MeanAwake returns the node-averaged awake complexity.
func (r *Result) MeanAwake() float64 {
	if len(r.AwakePerNode) == 0 {
		return 0
	}
	var s int64
	for _, a := range r.AwakePerNode {
		s += a
	}
	return float64(s) / float64(len(r.AwakePerNode))
}

// MaxHaltRound returns the traditional-model round complexity: the
// last round any node was awake.
func (r *Result) MaxHaltRound() int64 {
	var m int64
	for _, h := range r.HaltRound {
		if h > m {
			m = h
		}
	}
	return m
}

// MaxBitsReceived returns the largest per-node received-bit count.
func (r *Result) MaxBitsReceived() int64 {
	var m int64
	for _, b := range r.BitsReceivedPerNode {
		if b > m {
			m = b
		}
	}
	return m
}

// TraceView projects the result onto the renderer-facing view
// consumed by trace.Timeline and trace.Histogram. The slices are
// shared, not copied.
func (r *Result) TraceView() trace.RunView {
	return trace.RunView{
		Rounds:       r.Rounds,
		AwakePerNode: r.AwakePerNode,
		AwakeRounds:  r.AwakeRounds,
		CrashRound:   r.CrashRound,
	}
}

// ErrAborted is returned (wrapped) when the run was torn down after a
// node failed.
var ErrAborted = errors.New("sim: run aborted")

// Typed failure causes, wrapped into the returned error so callers
// (e.g. the chaos oracle) can classify runs with errors.Is.
var (
	// ErrRoundCap: the round counter exceeded Config.MaxRounds.
	ErrRoundCap = errors.New("round cap exceeded")
	// ErrAwakeBudget: a node exceeded Config.AwakeBudget awake rounds.
	ErrAwakeBudget = errors.New("awake budget exceeded")
	// ErrBitCap: a message exceeded Config.BitCap bits.
	ErrBitCap = errors.New("bit cap exceeded")
	// ErrCanceled: Config.Cancel was closed while the run was in
	// flight; the run aborted at the next busy-round barrier.
	ErrCanceled = errors.New("run canceled")
)

// canceled reports whether Config.Cancel is closed (non-blocking).
func (c Config) canceled() bool {
	if c.Cancel == nil {
		return false
	}
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// abortPanic is the sentinel used to unwind node programs on abort.
type abortPanic struct{}

type parkEvent struct {
	idx    int
	exited bool
	err    error
}

// Node is the per-node handle passed to Programs. Methods must only be
// called from that node's program (its goroutine under the goroutine
// engine, its coroutine continuation under the event engine).
type Node struct {
	rt  *runtime
	idx int
	rng *rand.Rand // created lazily on first Rand call

	wake      int64 // round of the next Exchange
	awake     int64
	halted    bool
	aborted   bool
	perturbed bool // wake was delayed by the interceptor

	out Outbox // staged by Exchange, consumed by the scheduler
	in  Inbox  // set by the scheduler before resuming

	// Inbox recycling: recycle is the map returned by the previous
	// Exchange (still owned by the program until the next call); spare
	// is a cleared map the scheduler may refill via deposit.
	recycle Inbox
	spare   Inbox

	// Outbox recycling: outSpare is the map handed out by the previous
	// Outbox call, recycled on the next one (see Outbox).
	outSpare Outbox

	// Event engine: yield parks the node's coroutine inside Exchange;
	// exitErr is the program's return value, read by the scheduler
	// after the continuation completes. Nil yield means the goroutine
	// engine is driving this node.
	yield   func(struct{}) bool
	exitErr error

	resume chan struct{}
}

// Index returns the node's 0-based index in the graph.
func (nd *Node) Index() int { return nd.idx }

// ID returns the node's identifier.
func (nd *Node) ID() int64 { return nd.rt.cfg.Graph.ID(nd.idx) }

// N returns the network size, known to all nodes per the model.
func (nd *Node) N() int { return nd.rt.cfg.Graph.N() }

// MaxID returns the largest identifier N; the deterministic algorithm
// assumes nodes know it.
func (nd *Node) MaxID() int64 { return nd.rt.maxID }

// Degree returns the node's degree (number of ports).
func (nd *Node) Degree() int { return nd.rt.cfg.Graph.Degree(nd.idx) }

// Ports returns the node's port table: for each port, the edge weight
// is local knowledge; the neighbor index is exposed for convenience but
// algorithms faithful to the model must not use it as knowledge (they
// learn neighbor identity through messages).
func (nd *Node) Ports() []graph.Port { return nd.rt.cfg.Graph.Ports(nd.idx) }

// PortWeight returns the weight of the edge on port p.
func (nd *Node) PortWeight(p int) int64 { return nd.rt.cfg.Graph.Ports(nd.idx)[p].Weight }

// Round returns the round the next Exchange will occupy.
func (nd *Node) Round() int64 { return nd.wake }

// AwakeCount returns the number of awake rounds consumed so far.
func (nd *Node) AwakeCount() int64 { return nd.awake }

// Rand returns the node's private source of randomness. The source is
// created lazily on first use — deterministic algorithms never pay for
// it, which matters at n = 10^6 (a default rand source is ~5 KB of
// state per node) — and is seeded purely from (Config.Seed, node
// index), so the stream is identical under both engines and unaffected
// by when the first call happens.
func (nd *Node) Rand() *rand.Rand {
	if nd.rng == nil {
		nd.rng = rand.New(rand.NewSource(nd.rt.cfg.Seed*1_000_003 + int64(nd.idx)*7_919 + 1))
	}
	return nd.rng
}

// Outbox returns a cleared message-staging map owned by the runtime,
// recycling the map handed out by the node's previous Outbox call. The
// returned map is valid until that next call — the usual pattern
// (fill, Exchange, repeat) never allocates after the first round. A
// program that needs to retain a staged outbox must build its own map
// with make instead.
func (nd *Node) Outbox() Outbox {
	if nd.outSpare == nil {
		nd.outSpare = make(Outbox, nd.Degree())
		return nd.outSpare
	}
	clear(nd.outSpare)
	return nd.outSpare
}

// Metrics returns the run's metrics registry. It is nil when the run
// was configured without one, which every registry method tolerates,
// so instrumented programs call it unconditionally.
func (nd *Node) Metrics() *metrics.Registry { return nd.rt.cfg.Metrics }

// EmitPhase records the node entering 1-based phase as a member of
// fragment frag, stamped with the node's next wake round. No-op
// without a configured trace recorder.
func (nd *Node) EmitPhase(phase int, frag int64) {
	if rec := nd.rt.cfg.Trace; rec != nil {
		rec.Phase(nd.idx, nd.wake, phase, frag)
	}
}

// EmitStep records the node completing a phase step on which it spent
// awake awake rounds, stamped with the node's next wake round. No-op
// without a configured trace recorder.
func (nd *Node) EmitStep(phase int, step trace.Step, awake int64) {
	if rec := nd.rt.cfg.Trace; rec != nil {
		rec.StepDone(nd.idx, nd.wake, phase, step, awake)
	}
}

// EmitMerge records the node leaving fragment prev for fragment frag,
// stamped with the node's next wake round. No-op without a configured
// trace recorder.
func (nd *Node) EmitMerge(prev, frag int64) {
	if rec := nd.rt.cfg.Trace; rec != nil {
		rec.Merge(nd.idx, nd.wake, prev, frag)
	}
}

// EmitNbrs records the node's fragment-supergraph degree deg in the
// given phase (emitted by fragment roots after the NBR-INFO
// broadcast), stamped with the node's next wake round. No-op without a
// configured trace recorder.
func (nd *Node) EmitNbrs(phase, deg int) {
	if rec := nd.rt.cfg.Trace; rec != nil {
		rec.Nbrs(nd.idx, nd.wake, phase, deg)
	}
}

// SleepUntil schedules the next Exchange for round r. It panics if r
// precedes the node's next available round (a programming error in the
// algorithm, not a runtime condition) — unless an interceptor already
// delayed the node past r, in which case the target is clamped: a
// node that overslept through round r simply wakes at its next
// opportunity, which is exactly how it misses a merge wave.
func (nd *Node) SleepUntil(r int64) {
	if r < nd.wake {
		if nd.perturbed {
			return
		}
		panic(fmt.Sprintf("sim: node %d cannot sleep until past round %d (next available %d)", nd.idx, r, nd.wake))
	}
	nd.wake = r
}

// Exchange spends one awake round: the node is awake in round Round(),
// sends out[port] on each listed port, and receives the messages sent
// to it this round by awake neighbors. After Exchange returns the node
// is positioned before round Round()+1. A nil out sends nothing.
//
// The returned Inbox is owned by the runtime and valid only until the
// node's next Exchange call, which recycles it; programs that need a
// message beyond that must copy it out first.
func (nd *Node) Exchange(out Outbox) Inbox {
	if nd.aborted {
		panic(abortPanic{})
	}
	for p := range out {
		if p < 0 || p >= nd.Degree() {
			panic(fmt.Sprintf("sim: node %d sends on invalid port %d (degree %d)", nd.idx, p, nd.Degree()))
		}
	}
	// Reclaim the inbox handed out by the previous Exchange: the
	// program's lease on it ends here, before the node parks, so the
	// scheduler can refill it without racing the node goroutine.
	if nd.recycle != nil {
		clear(nd.recycle)
		nd.spare = nd.recycle
		nd.recycle = nil
	}
	nd.out = out
	if nd.yield != nil {
		// Event engine: suspend the coroutine until the scheduler
		// resumes it; a false return means the scheduler tore the run
		// down (crash-stop or abort) while the node was parked.
		if !nd.yield(struct{}{}) {
			panic(abortPanic{})
		}
	} else {
		nd.rt.park <- parkEvent{idx: nd.idx}
		<-nd.resume
	}
	if nd.aborted {
		panic(abortPanic{})
	}
	in := nd.in
	nd.in = nil
	nd.out = nil
	nd.recycle = in
	return in
}

// runtime is the scheduler state.
type runtime struct {
	cfg    Config
	maxID  int64
	nodes  []*Node
	park   chan parkEvent
	res    *Result
	failed error

	// rec mirrors cfg.Trace; kindTally batches per-kind delivery
	// counts locally (scheduler goroutine only) and is flushed into
	// cfg.Metrics once at the end of the run.
	rec       *trace.Recorder
	kindTally map[string]int64

	delayed delayHeap // in-flight messages postponed by the interceptor
	seq     int64     // FIFO tiebreak for delayed messages

	// awakeStamp[v] == r iff node v participates in round r; replaces
	// a per-round map (rounds start at 1, so 0 means "never stamped").
	awakeStamp []int64

	// sendOrder/sendPool are chooseSendOrder scratch, reused across
	// rounds; nil unless a Chooser is configured.
	sendOrder, sendPool []int

	// tx is the transport shim state; nil unless Config.Transport is
	// set (see transport.go).
	tx *txState
}

// delayedMsg is one interceptor-postponed message copy: it reaches
// node to on port rev in round round iff to is awake then.
type delayedMsg struct {
	round    int64
	seq      int64
	from     int
	fromPort int
	to       int
	rev      int
	msg      interface{}
}

// delayHeap is a hand-rolled min-heap ordered by (round, seq). The
// typed push/pop avoid the interface boxing container/heap would pay
// per staged message; popped slots keep their backing capacity.
type delayHeap []delayedMsg

func (h delayHeap) less(i, j int) bool {
	if h[i].round != h[j].round {
		return h[i].round < h[j].round
	}
	return h[i].seq < h[j].seq
}

func (h *delayHeap) push(d delayedMsg) {
	*h = append(*h, d)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *delayHeap) pop() delayedMsg {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = delayedMsg{} // release the payload reference
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && s.less(l, least) {
			least = l
		}
		if r < len(s) && s.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Run executes prog on every node of the configured graph and returns
// the metrics. It returns an error if any node program fails, panics,
// violates the bit cap, or the round cap is exceeded; the returned
// Result is valid (partial) even on error.
func Run(cfg Config, prog Program) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: config requires a graph")
	}
	if !cfg.Engine.valid() {
		return nil, fmt.Errorf("sim: config names unknown engine %v", cfg.Engine)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	n := cfg.Graph.N()
	rt := &runtime{
		cfg:        cfg,
		maxID:      cfg.Graph.MaxID(),
		nodes:      make([]*Node, n),
		awakeStamp: make([]int64, n),
		res: &Result{
			AwakePerNode:        make([]int64, n),
			HaltRound:           make([]int64, n),
			BitsReceivedPerNode: make([]int64, n),
			MessagesSentPerNode: make([]int64, n),
		},
	}
	if cfg.RecordAwakeRounds {
		rt.res.AwakeRounds = make([][]int64, n)
	}
	if cfg.Interceptor != nil {
		rt.res.CrashRound = make([]int64, n)
		cfg.Interceptor.BeginRun(n)
	}
	if cfg.Trace != nil {
		rt.rec = cfg.Trace
		rt.rec.Begin(n)
	}
	if cfg.Metrics != nil {
		rt.kindTally = make(map[string]int64)
	}
	if cfg.Transport != nil {
		if cfg.Chooser != nil {
			return nil, errors.New("sim: config cannot combine Transport with Chooser (model checking stays in-memory)")
		}
		if err := cfg.Transport.Listen(n); err != nil {
			return nil, fmt.Errorf("sim: transport listen: %w", err)
		}
		rt.tx = newTxState(cfg.Transport, n)
	}
	// One contiguous node arena (struct-of-arrays style bookkeeping
	// lives in rt.res and the engines; the program-facing handles sit
	// cache-adjacent here instead of n separate heap objects).
	arena := make([]Node, n)
	for i := 0; i < n; i++ {
		arena[i] = Node{rt: rt, idx: i, wake: 1}
		rt.nodes[i] = &arena[i]
	}
	switch cfg.Engine {
	case EngineGoroutine:
		rt.runGoroutine(prog)
	default:
		rt.runEvent(prog)
	}
	// Messages still in flight when the run ends never reach anyone.
	rt.res.MessagesLost += int64(len(rt.delayed))
	if rt.rec != nil {
		for _, d := range rt.delayed {
			rt.rec.Lost(d.round, d.from, d.fromPort, d.to)
		}
	}
	for kind, c := range rt.kindTally {
		cfg.Metrics.Add(metrics.MsgName(kind), c)
	}
	if cfg.Metrics != nil {
		// Node-averaged awake accounting: the sum and the denominator
		// are recorded separately so the average stays exact (and
		// worker-count independent) under registry merging.
		var sum int64
		for _, a := range rt.res.AwakePerNode {
			sum += a
		}
		cfg.Metrics.Add(metrics.NodeAvgSum, sum)
		cfg.Metrics.Add(metrics.NodeAvgNodes, int64(n))
	}
	if rt.failed != nil {
		return rt.res, rt.failed
	}
	return rt.res, nil
}

// wakeEntry is a min-heap entry: a parked node and its wake round.
// Every parked node has exactly one live entry (entries are pushed on
// park and popped exactly when the node is resumed), so entries are
// never stale.
type wakeEntry struct {
	round int64
	idx   int
}

// wakeHeap is a hand-rolled min-heap ordered by (round, idx); the
// typed push/pop avoid per-entry interface boxing and the slice keeps
// its capacity across rounds. Because the order is total, repeated
// pops for one round yield participants in increasing index order.
type wakeHeap []wakeEntry

func (h wakeHeap) less(i, j int) bool {
	if h[i].round != h[j].round {
		return h[i].round < h[j].round
	}
	return h[i].idx < h[j].idx
}

func (h *wakeHeap) push(e wakeEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *wakeHeap) pop() wakeEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && s.less(l, least) {
			least = l
		}
		if r < len(s) && s.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// deliver routes the staged outboxes of the round's participants to
// participants that are awake, metering messages and bits. With an
// interceptor configured it also applies message verdicts and flushes
// previously delayed copies; delayed copies land before fresh sends,
// so a fresh message overwrites a stale replay arriving on the same
// port in the same round.
func (rt *runtime) deliver(round int64, participants []int) error {
	for _, idx := range participants {
		rt.awakeStamp[idx] = round
		rt.nodes[idx].in = nil
	}
	itc := rt.cfg.Interceptor
	ch := rt.cfg.Chooser
	if itc != nil {
		if err := rt.deliverDelayed(round); err != nil {
			return err
		}
	}
	// The chooser selects the routing order of the round's staged
	// outboxes (the adversarial within-round delivery order); without
	// one, ascending node index as before.
	senders := participants
	if ch != nil {
		senders = rt.chooseSendOrder(round, participants)
	}
	for _, idx := range senders {
		nd := rt.nodes[idx]
		ports := rt.cfg.Graph.Ports(idx)
		if itc == nil && rt.rec == nil && ch == nil && rt.tx == nil {
			for p, msg := range nd.out {
				bits := MessageBits(msg)
				if rt.cfg.BitCap > 0 && bits > rt.cfg.BitCap {
					return fmt.Errorf("sim: node %d sent %d-bit message on port %d in round %d, cap %d: %w (%w)",
						idx, bits, p, round, rt.cfg.BitCap, ErrBitCap, ErrAborted)
				}
				rt.res.MessagesSent++
				rt.res.MessagesSentPerNode[idx]++
				rt.res.BitsSent += int64(bits)
				if rt.awakeStamp[ports[p].To] != round {
					rt.res.MessagesLost++
					continue
				}
				if err := rt.deposit(round, idx, p, ports[p].To, ports[p].RevPort, msg); err != nil {
					return err
				}
			}
			continue
		}
		// Ordered path, taken with an interceptor, trace recorder, or
		// chooser: iterate ports in index order so a stateful
		// interceptor — and the recorder's event stream, and the
		// chooser's fault choice points — sees a deterministic event
		// sequence (the clean path above may range over the outbox map
		// in any order — harmless there because metering is additive).
		for p := range ports {
			msg, staged := nd.out[p]
			if !staged {
				continue
			}
			bits := MessageBits(msg)
			if rt.cfg.BitCap > 0 && bits > rt.cfg.BitCap {
				return fmt.Errorf("sim: node %d sent %d-bit message on port %d in round %d, cap %d: %w (%w)",
					idx, bits, p, round, rt.cfg.BitCap, ErrBitCap, ErrAborted)
			}
			rt.res.MessagesSent++
			rt.res.MessagesSentPerNode[idx]++
			rt.res.BitsSent += int64(bits)
			if rt.rec != nil {
				rt.rec.Send(round, idx, p, ports[p].To)
			}
			if ch != nil && ch.ChooseFault(round, idx, p, ports[p].To) {
				rt.res.MessagesDropped++
				rt.res.MessagesLost++
				if rt.rec != nil {
					rt.rec.Lost(round, idx, p, ports[p].To)
				}
				continue
			}
			if itc == nil {
				// Recording or choosing without chaos: clean delivery
				// semantics.
				if rt.awakeStamp[ports[p].To] != round {
					rt.res.MessagesLost++
					if rt.rec != nil {
						rt.rec.Lost(round, idx, p, ports[p].To)
					}
					continue
				}
				if err := rt.route(round, 0, idx, p, ports[p].To, ports[p].RevPort, msg); err != nil {
					return err
				}
				continue
			}
			ev := MessageEvent{Round: round, From: idx, Port: p, To: ports[p].To, Payload: msg}
			itc.InterceptMessage(&ev)
			if ev.Mutated {
				rt.res.MessagesCorrupted++
			}
			if ev.Drop {
				rt.res.MessagesDropped++
				rt.res.MessagesLost++
				if rt.rec != nil {
					rt.rec.Lost(round, idx, p, ports[p].To)
				}
				continue
			}
			if ev.Delay < 0 {
				ev.Delay = 0
			}
			if ev.Delay > 0 {
				rt.res.MessagesDelayed++
			}
			for c := 0; c <= ev.Duplicate; c++ {
				if c > 0 {
					rt.res.MessagesDuplicated++
				}
				at := round + ev.Delay + int64(c)
				if at == round {
					if rt.awakeStamp[ports[p].To] != round {
						rt.res.MessagesLost++
						if rt.rec != nil {
							rt.rec.Lost(round, idx, p, ports[p].To)
						}
						continue
					}
					if err := rt.route(round, 0, idx, p, ports[p].To, ports[p].RevPort, ev.Payload); err != nil {
						return err
					}
					continue
				}
				rt.seq++
				rt.delayed.push(delayedMsg{
					round: at, seq: rt.seq,
					from: idx, fromPort: p,
					to: ports[p].To, rev: ports[p].RevPort,
					msg: ev.Payload,
				})
			}
		}
	}
	if rt.tx != nil {
		return rt.txDrain(round)
	}
	return nil
}

// deliverDelayed flushes interceptor-postponed copies scheduled for
// this round or earlier. Copies whose delivery round passed while the
// receiver slept (the scheduler never ran that round, or the receiver
// was not a participant) are lost, like any send to a sleeping node.
func (rt *runtime) deliverDelayed(round int64) error {
	for len(rt.delayed) > 0 && rt.delayed[0].round <= round {
		d := rt.delayed.pop()
		if d.round < round || rt.awakeStamp[d.to] != round {
			rt.res.MessagesLost++
			if rt.rec != nil {
				rt.rec.Lost(d.round, d.from, d.fromPort, d.to)
			}
			continue
		}
		if err := rt.route(round, d.seq, d.from, d.fromPort, d.to, d.rev, d.msg); err != nil {
			return err
		}
	}
	return nil
}

// deposit hands one message copy to an awake receiver, enforcing the
// bit cap on the receive side — the size is re-measured here so that a
// payload replaced after the send-side check (or a Sizer whose Bits
// changed) still cannot smuggle an oversized message past CONGEST
// enforcement.
func (rt *runtime) deposit(round int64, from, fromPort, to, rev int, msg interface{}) error {
	bits := MessageBits(msg)
	if rt.cfg.BitCap > 0 && bits > rt.cfg.BitCap {
		return fmt.Errorf("sim: node %d received %d-bit message in round %d sent by node %d on port %d, cap %d: %w (%w)",
			to, bits, round, from, fromPort, rt.cfg.BitCap, ErrBitCap, ErrAborted)
	}
	rt.res.MessagesDelivered++
	rt.res.BitsReceivedPerNode[to] += int64(bits)
	if rt.rec != nil {
		rt.rec.Deliver(round, to, rev, from)
	}
	if rt.kindTally != nil {
		rt.kindTally[kindOf(msg)]++
	}
	rcv := rt.nodes[to]
	if rcv.in == nil {
		if rcv.spare != nil {
			rcv.in = rcv.spare
			rcv.spare = nil
		} else {
			rcv.in = make(Inbox, 2)
		}
	}
	rcv.in[rev] = msg
	return nil
}

// MessageBits returns the size charged to a message: its Bits() if it
// implements Sizer, DefaultMessageBits otherwise.
func MessageBits(msg interface{}) int {
	if s, ok := msg.(Sizer); ok {
		return s.Bits()
	}
	return DefaultMessageBits
}
