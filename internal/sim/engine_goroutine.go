package sim

import (
	"fmt"
	"sort"
)

// The legacy goroutine engine: one goroutine per node, parked on a
// channel handshake inside every Exchange. It is kept compiled behind
// Config.Engine for one release as the reference implementation the
// differential harness replays against the event engine; the two are
// bit-for-bit equivalent on fixed seeds. Prefer EngineEvent — this
// engine pays a scheduler round-trip per awake node per round plus a
// goroutine stack per node, which caps it around n ≈ 10^4.

// runGoroutine starts one goroutine per node and drives them with the
// lock-step channel scheduler.
func (rt *runtime) runGoroutine(prog Program) {
	rt.park = make(chan parkEvent, len(rt.nodes))
	for _, nd := range rt.nodes {
		// Buffered so the scheduler can release a whole round's
		// participants without blocking on each handoff.
		nd.resume = make(chan struct{}, 1)
		go rt.runNode(nd, prog)
	}
	rt.loop()
}

// runNode wraps one node goroutine, translating panics and returns
// into park events.
func (rt *runtime) runNode(nd *Node, prog Program) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortPanic); ok {
				rt.park <- parkEvent{idx: nd.idx, exited: true}
				return
			}
			rt.park <- parkEvent{idx: nd.idx, exited: true, err: fmt.Errorf("sim: node %d panicked: %v", nd.idx, r)}
			return
		}
	}()
	err := prog(nd)
	rt.park <- parkEvent{idx: nd.idx, exited: true, err: err}
}

// loop is the lock-step scheduler. Invariant at the top of each
// iteration: every live node goroutine is parked inside Exchange.
func (rt *runtime) loop() {
	live := len(rt.nodes)
	parked := make([]bool, len(rt.nodes))
	nParked := 0
	var wakes wakeHeap
	var p []int         // participants scratch, reused across rounds
	var batch []int     // parked-node scratch, reused across collections
	awaitEvents := live // all goroutines start running
	for {
		batch = batch[:0]
		for i := 0; i < awaitEvents; i++ {
			ev := <-rt.park
			if ev.exited {
				live--
				if ev.err != nil && rt.failed == nil {
					rt.failed = fmt.Errorf("node %d: %w", ev.idx, ev.err)
				}
				continue
			}
			batch = append(batch, ev.idx)
		}
		// Park events arrive in goroutine-completion order — scheduler
		// noise. A Chooser replays recorded choice sequences by call
		// position, so it must see the batch in a deterministic order:
		// ascending node index. Without a chooser the arrival order
		// stands — the hooks below are coordinate-keyed (Interceptor
		// contract) or write per-node streams (recorder), so it is
		// unobservable — and the hot path pays nothing. (The event
		// engine always parks in ascending index order, which is why
		// the two engines stay trace-identical either way.)
		if rt.cfg.Chooser != nil {
			sort.Ints(batch)
		}
		crashed := 0
		for _, idx := range batch {
			nd := rt.nodes[idx]
			if ch := rt.cfg.Chooser; ch != nil {
				if w := ch.ChooseWake(idx, nd.wake); w > nd.wake {
					nd.wake = w
					nd.perturbed = true
					rt.res.WakesPerturbed++
				}
			}
			if itc := rt.cfg.Interceptor; itc != nil {
				if w := itc.InterceptWake(idx, nd.wake); w > nd.wake {
					nd.wake = w
					nd.perturbed = true
					rt.res.WakesPerturbed++
				}
				if cr := itc.CrashRound(idx); cr > 0 && nd.wake >= cr {
					// Crash-stop: the node never reaches its next wake
					// round. Unwind its goroutine; the exit event lands
					// on rt.park and is collected after this batch.
					rt.res.CrashRound[idx] = cr
					if rt.rec != nil {
						// The node is parked, so the scheduler may write
						// its stream (it never will again after abort).
						rt.rec.Crash(idx, cr)
					}
					nd.aborted = true
					nd.resume <- struct{}{}
					crashed++
					continue
				}
			}
			if rt.rec != nil {
				// A real sleep gap: the node skips >= 1 round between
				// its last awake round (0 = never) and its next wake.
				// Recorded into the node's stream while it is parked.
				if last := rt.res.HaltRound[idx]; nd.wake > last+1 {
					rt.rec.Sleep(idx, last, nd.wake)
				}
			}
			parked[idx] = true
			nParked++
			wakes.push(wakeEntry{round: nd.wake, idx: idx})
		}
		// Collect the exit events of crash-stopped nodes now, so the
		// park channel is empty again at the top of the next iteration.
		for i := 0; i < crashed; i++ {
			ev := <-rt.park
			live--
			if ev.err != nil && rt.failed == nil {
				rt.failed = fmt.Errorf("node %d: %w", ev.idx, ev.err)
			}
		}
		if rt.failed != nil {
			rt.drain(parked, nParked)
			return
		}
		if live == 0 {
			return
		}
		// Next busy round: minimum wake among parked nodes.
		round := wakes[0].round
		if round > rt.cfg.MaxRounds {
			rt.failed = fmt.Errorf("sim: round %d exceeds cap %d: %w (%w)", round, rt.cfg.MaxRounds, ErrRoundCap, ErrAborted)
			rt.drain(parked, nParked)
			return
		}
		if rt.cfg.canceled() {
			rt.failed = fmt.Errorf("sim: run canceled at round %d: %w (%w)", round, ErrCanceled, ErrAborted)
			rt.drain(parked, nParked)
			return
		}
		// Participants of this round; heap pops with equal rounds come
		// out in increasing index order, so p is already sorted.
		p = p[:0]
		for len(wakes) > 0 && wakes[0].round == round {
			p = append(p, wakes.pop().idx)
		}
		if err := rt.deliver(round, p); err != nil {
			rt.failed = err
			rt.drain(parked, nParked)
			return
		}
		rt.res.BusyRounds++
		if round > rt.res.Rounds {
			rt.res.Rounds = round
		}
		for _, idx := range p {
			nd := rt.nodes[idx]
			nd.awake++
			rt.res.AwakePerNode[idx]++
			if rt.rec != nil {
				rt.rec.Awake(round, idx)
			}
			if rt.cfg.AwakeBudget > 0 && nd.awake > rt.cfg.AwakeBudget && rt.failed == nil {
				rt.failed = fmt.Errorf("sim: node %d exceeded awake budget %d in round %d: %w (%w)",
					idx, rt.cfg.AwakeBudget, round, ErrAwakeBudget, ErrAborted)
			}
			rt.res.HaltRound[idx] = round
			if rt.cfg.RecordAwakeRounds {
				rt.res.AwakeRounds[idx] = append(rt.res.AwakeRounds[idx], round)
			}
			nd.wake = round + 1
			parked[idx] = false
			nParked--
			// The resume channels are buffered, so the whole batch is
			// released without a scheduler<->node context switch each.
			nd.resume <- struct{}{}
		}
		awaitEvents = len(p)
	}
}

// drain aborts all parked nodes and waits for their goroutines (and
// only theirs) to unwind.
func (rt *runtime) drain(parked []bool, nParked int) {
	rt.abort(parked)
	for i := 0; i < nParked; i++ {
		<-rt.park
	}
}

// abort marks all parked nodes aborted and resumes them so their
// goroutines unwind via the abort sentinel.
func (rt *runtime) abort(parked []bool) {
	for idx, isParked := range parked {
		if !isParked {
			continue
		}
		nd := rt.nodes[idx]
		nd.aborted = true
		nd.resume <- struct{}{}
	}
}
