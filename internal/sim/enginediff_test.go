package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/metrics"
	"sleepmst/internal/trace"
)

// Scheduler-level differential tests: the problem-suite harness
// (internal/problem/enginediff_test.go) proves the engines agree on
// whole algorithm runs; the tests here pin the low-level surfaces a
// full run may never isolate — the Chooser call sequence, the failure
// paths (awake budget, round cap, bit cap, program error, panic), and
// the delayed-message machinery — on both engines.

// loggingChooser records every hook call in order and perturbs the
// schedule nontrivially: it oversleeps every third park, routes
// senders in descending order, and drops one specific message.
type loggingChooser struct {
	calls []string
}

func (c *loggingChooser) ChooseWake(node int, intended int64) int64 {
	c.calls = append(c.calls, fmt.Sprintf("wake %d@%d", node, intended))
	if node%3 == 2 {
		return intended + 1
	}
	return intended
}

func (c *loggingChooser) ChooseSender(round int64, remaining []int) int {
	c.calls = append(c.calls, fmt.Sprintf("send r%d %v", round, remaining))
	return len(remaining) - 1
}

func (c *loggingChooser) ChooseFault(round int64, from, port, to int) bool {
	c.calls = append(c.calls, fmt.Sprintf("fault r%d %d:%d->%d", round, from, port, to))
	return round == 2 && from == 1 && port == 0
}

// delayingInterceptor exercises the delay/dup machinery with
// coordinate-keyed (stateless) decisions.
type delayingInterceptor struct{}

func (delayingInterceptor) BeginRun(n int) {}
func (delayingInterceptor) InterceptMessage(ev *MessageEvent) {
	switch {
	case ev.Round%5 == 1 && ev.Port == 0:
		ev.Delay = 2
	case ev.Round%7 == 2:
		ev.Duplicate = 1
	}
}
func (delayingInterceptor) InterceptWake(node int, intended int64) int64 {
	if node%4 == 1 && intended%6 == 3 {
		return intended + 2
	}
	return intended
}
func (delayingInterceptor) CrashRound(node int) int64 {
	if node == 5 {
		return 9
	}
	return 0
}

// gossip is a small synthetic program with data-dependent sleeps: each
// node relays the max index it has heard for a few awake rounds,
// sleeping (idx mod 3) rounds between exchanges.
func gossip(rounds int) Program {
	return func(nd *Node) error {
		best := nd.Index()
		for i := 0; i < rounds; i++ {
			out := nd.Outbox()
			for p := 0; p < nd.Degree(); p++ {
				out[p] = best
			}
			in := nd.Exchange(out)
			for _, v := range in {
				if got := v.(int); got > best {
					best = got
				}
			}
			nd.SleepUntil(nd.Round() + int64(nd.Index()%3))
		}
		return nil
	}
}

// diffRun executes one config on both engines (everything but Engine
// shared) and returns the per-engine artifacts.
func diffRun(t *testing.T, mk func() Config, prog Program) (gor, evt *Result, gorErr, evtErr error, gorTrace, evtTrace []byte) {
	t.Helper()
	run := func(e Engine) (*Result, error, []byte) {
		cfg := mk()
		cfg.Engine = e
		rec := trace.NewRecorder(1 << 14)
		cfg.Trace = rec
		res, err := Run(cfg, prog)
		var buf bytes.Buffer
		if werr := rec.WriteJSONL(&buf); werr != nil {
			t.Fatalf("write trace: %v", werr)
		}
		return res, err, buf.Bytes()
	}
	gor, gorErr, gorTrace = run(EngineGoroutine)
	evt, evtErr, evtTrace = run(EngineEvent)
	return
}

func TestEngineDiffGossipCleanAndChaos(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.GenConfig{Seed: 9})
	for _, chaotic := range []bool{false, true} {
		name := "clean"
		if chaotic {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() Config {
				cfg := Config{Graph: g, Seed: 3, RecordAwakeRounds: true, Metrics: metrics.New()}
				if chaotic {
					cfg.Interceptor = delayingInterceptor{}
				}
				return cfg
			}
			gor, evt, gorErr, evtErr, gorTrace, evtTrace := diffRun(t, mk, gossip(12))
			if gorErr != nil || evtErr != nil {
				t.Fatalf("errors: goroutine=%v event=%v", gorErr, evtErr)
			}
			if !bytes.Equal(gorTrace, evtTrace) {
				t.Error("trace JSONL diverges")
			}
			if !reflect.DeepEqual(gor, evt) {
				t.Errorf("results diverge:\ngoroutine: %+v\nevent:     %+v", gor, evt)
			}
		})
	}
}

// TestEngineDiffChooserCallSequence proves the Chooser decision points
// enumerate identically on both engines — the property the model
// checker's positional replay depends on.
func TestEngineDiffChooserCallSequence(t *testing.T) {
	g := graph.Cycle(6, graph.GenConfig{Seed: 2})
	run := func(e Engine) (*loggingChooser, *Result, error) {
		ch := &loggingChooser{}
		res, err := Run(Config{Graph: g, Seed: 4, Engine: e, Chooser: ch}, gossip(8))
		return ch, res, err
	}
	gorCh, gorRes, gorErr := run(EngineGoroutine)
	evtCh, evtRes, evtErr := run(EngineEvent)
	if gorErr != nil || evtErr != nil {
		t.Fatalf("errors: goroutine=%v event=%v", gorErr, evtErr)
	}
	if !reflect.DeepEqual(gorCh.calls, evtCh.calls) {
		for i := 0; i < len(gorCh.calls) && i < len(evtCh.calls); i++ {
			if gorCh.calls[i] != evtCh.calls[i] {
				t.Fatalf("chooser call %d diverges: goroutine %q, event %q", i, gorCh.calls[i], evtCh.calls[i])
			}
		}
		t.Fatalf("chooser call counts diverge: goroutine %d, event %d", len(gorCh.calls), len(evtCh.calls))
	}
	if !reflect.DeepEqual(gorRes, evtRes) {
		t.Errorf("results diverge:\ngoroutine: %+v\nevent:     %+v", gorRes, evtRes)
	}
}

// TestEngineDiffFailurePaths drives each abort cause on both engines
// and demands the same typed error and the same partial result.
func TestEngineDiffFailurePaths(t *testing.T) {
	g := graph.Path(8, graph.GenConfig{Seed: 1})
	cases := []struct {
		name string
		mk   func() Config
		prog Program
		want error
	}{
		{
			name: "awake-budget",
			mk:   func() Config { return Config{Graph: g, Seed: 1, AwakeBudget: 3} },
			prog: gossip(10),
			want: ErrAwakeBudget,
		},
		{
			name: "round-cap",
			mk:   func() Config { return Config{Graph: g, Seed: 1, MaxRounds: 5} },
			prog: func(nd *Node) error {
				for {
					nd.Exchange(nil)
					nd.SleepUntil(nd.Round() + 3)
				}
			},
			want: ErrRoundCap,
		},
		{
			name: "bit-cap",
			mk:   func() Config { return Config{Graph: g, Seed: 1, BitCap: 8} },
			prog: func(nd *Node) error {
				out := Outbox{}
				if nd.Index() == 3 && nd.Degree() > 0 {
					out[0] = "oversized payload"
				}
				nd.Exchange(out)
				return nil
			},
			want: ErrBitCap,
		},
		{
			name: "program-error",
			mk:   func() Config { return Config{Graph: g, Seed: 1} },
			prog: func(nd *Node) error {
				nd.Exchange(nil)
				if nd.Index() == 2 {
					return errors.New("node 2 gives up")
				}
				nd.Exchange(nil)
				return nil
			},
			want: nil, // plain program error, no sentinel
		},
		{
			name: "program-panic",
			mk:   func() Config { return Config{Graph: g, Seed: 1} },
			prog: func(nd *Node) error {
				nd.Exchange(nil)
				if nd.Index() == 4 {
					panic("node 4 explodes")
				}
				nd.Exchange(nil)
				return nil
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gor, evt, gorErr, evtErr, gorTrace, evtTrace := diffRun(t, tc.mk, tc.prog)
			if gorErr == nil || evtErr == nil {
				t.Fatalf("want failure on both engines, got goroutine=%v event=%v", gorErr, evtErr)
			}
			if tc.want != nil {
				if !errors.Is(gorErr, tc.want) || !errors.Is(evtErr, tc.want) {
					t.Fatalf("want %v on both engines, got goroutine=%v event=%v", tc.want, gorErr, evtErr)
				}
			}
			// Only one node fails in each case, so even the error text —
			// nondeterministic when several nodes fail in one batch under
			// the goroutine engine — must agree here.
			if gorErr.Error() != evtErr.Error() {
				t.Errorf("error text diverges:\ngoroutine: %v\nevent:     %v", gorErr, evtErr)
			}
			if !bytes.Equal(gorTrace, evtTrace) {
				t.Error("trace JSONL diverges")
			}
			if !reflect.DeepEqual(gor, evt) {
				t.Errorf("partial results diverge:\ngoroutine: %+v\nevent:     %+v", gor, evt)
			}
		})
	}
}

// TestEngineParse pins the CLI spellings.
func TestEngineParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"event", EngineEvent, true},
		{"", EngineEvent, true},
		{"goroutine", EngineGoroutine, true},
		{"threads", 0, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if EngineEvent.String() != "event" || EngineGoroutine.String() != "goroutine" {
		t.Errorf("String spellings drifted: %q %q", EngineEvent, EngineGoroutine)
	}
	if bad := Engine(42); bad.valid() {
		t.Error("Engine(42) must be invalid")
	}
}
