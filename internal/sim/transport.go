package sim

import (
	"fmt"
	"sort"

	"sleepmst/internal/transport"
)

// The transport shim: with Config.Transport set, every same-round
// message copy that would reach an awake receiver is encoded into a
// wire frame, carried by the backend, and decoded back before it is
// deposited into the receiver's inbox. The simulator keeps all model
// decisions — sleeping-receiver losses are decided at the sending
// radio and never transmitted, the CONGEST bit cap is enforced on the
// declared size at both ends, and awake metering is untouched — so a
// run over a transport is byte-identical (traces, verdicts, metrics,
// Result) to the in-memory run, which the differential suite in
// internal/problem enforces.
//
// Delivery stays two-phase per round: the scheduler ships all of the
// round's surviving copies, then drains each receiver until the
// expected number of distinct frames arrived — wire duplicates from
// at-least-once retries are filtered, not counted — and deposits in
// the canonical order (scheduler-delayed copies first, by their FIFO
// sequence, then fresh sends by sender and port — exactly the
// in-memory deposit order).

// txState is the per-run transport bookkeeping, owned by the
// scheduler goroutine.
type txState struct {
	tx    transport.Transport
	n     int
	links map[int64]transport.Link
	// expect[v] counts frames shipped towards v this round; pending
	// lists the v with expect[v] > 0.
	expect  []int
	pending []int
	frames  []transport.Frame     // drain scratch
	seen    map[frameKey]struct{} // per-drain dedup scratch
}

// frameKey identifies one routed copy within a (round, receiver)
// drain: fresh sends are unique per (sender, port), delayed replays
// per FIFO sequence, so two frames sharing a key are wire duplicates.
type frameKey struct {
	seq        int64
	from, port int32
}

func newTxState(tx transport.Transport, n int) *txState {
	return &txState{tx: tx, n: n, links: make(map[int64]transport.Link), expect: make([]int, n)}
}

// route carries one message copy towards an awake receiver: straight
// to deposit without a transport, over the wire otherwise. seq is 0
// for a fresh same-round send and the scheduler's FIFO sequence for a
// copy the interceptor delayed into this round.
func (rt *runtime) route(round, seq int64, from, fromPort, to, rev int, msg interface{}) error {
	if rt.tx == nil {
		return rt.deposit(round, from, fromPort, to, rev, msg)
	}
	if err := rt.tx.ship(round, seq, from, fromPort, to, rev, msg); err != nil {
		return fmt.Errorf("sim: transport: %w (%w)", err, ErrAborted)
	}
	return nil
}

// ship encodes the payload and hands the frame to the backend.
func (s *txState) ship(round, seq int64, from, fromPort, to, rev int, msg interface{}) (err error) {
	defer transport.RecoverEncode(&err)
	// Each frame owns its payload: backends hold the slice until the
	// drain, so the encode buffer cannot be recycled across sends.
	payload, err := transport.EncodeMessage(nil, msg)
	if err != nil {
		return err
	}
	key := int64(from)*int64(s.n) + int64(to)
	link, ok := s.links[key]
	if !ok {
		if link, err = s.tx.Dial(from, to); err != nil {
			return err
		}
		s.links[key] = link
	}
	f := transport.Frame{
		Round: round, Seq: seq,
		From: int32(from), Port: int32(fromPort),
		To: int32(to), Rev: int32(rev),
		Payload: payload,
	}
	if err := link.Send(f); err != nil {
		return err
	}
	if s.expect[to] == 0 {
		s.pending = append(s.pending, to)
	}
	s.expect[to]++
	return nil
}

// txDrain receives every frame shipped this round and deposits the
// decoded copies in the canonical in-memory order.
func (rt *runtime) txDrain(round int64) error {
	s := rt.tx
	if len(s.pending) == 0 {
		return nil
	}
	sort.Ints(s.pending)
	if s.seen == nil {
		s.seen = make(map[frameKey]struct{})
	}
	for _, to := range s.pending {
		want := s.expect[to]
		s.expect[to] = 0
		s.frames = s.frames[:0]
		clear(s.seen)
		// Drain-and-filter until `want` distinct frames arrive: the wire
		// is at-least-once (a sender's retry can duplicate a frame that
		// did reach us before the write error surfaced), so duplicates —
		// same coordinates this round, or a stale retransmit of an
		// earlier round — are dropped without counting toward want.
		for len(s.frames) < want {
			f, err := s.tx.Recv(to)
			if err != nil {
				return fmt.Errorf("sim: transport: round %d node %d: received %d of %d frame(s): %w (%w)",
					round, to, len(s.frames), want, err, ErrAborted)
			}
			if int(f.To) != to || f.Round > round {
				return fmt.Errorf("sim: transport: node %d drained stray frame (round %d from %d) during round %d: %w",
					to, f.Round, f.From, round, ErrAborted)
			}
			if f.Round < round {
				continue // stale duplicate of an already-drained round
			}
			key := frameKey{seq: f.Seq, from: f.From, port: f.Port}
			if _, dup := s.seen[key]; dup {
				continue // same-round wire duplicate
			}
			s.seen[key] = struct{}{}
			s.frames = append(s.frames, f)
		}
		// Canonical deposit order: scheduler-delayed copies first, in
		// their FIFO sequence, then fresh sends by (sender, port) — the
		// order the in-memory path deposits in, so a fresh message
		// overwrites a stale same-port replay, not vice versa.
		sort.Slice(s.frames, func(i, j int) bool {
			a, b := s.frames[i], s.frames[j]
			if (a.Seq > 0) != (b.Seq > 0) {
				return a.Seq > 0
			}
			if a.Seq > 0 {
				return a.Seq < b.Seq
			}
			if a.From != b.From {
				return a.From < b.From
			}
			return a.Port < b.Port
		})
		for _, f := range s.frames {
			msg, err := transport.DecodePayload(f.Payload)
			if err != nil {
				return fmt.Errorf("sim: transport: node %d round %d: %w (%w)", to, round, err, ErrAborted)
			}
			if err := rt.deposit(round, int(f.From), int(f.Port), int(f.To), int(f.Rev), msg); err != nil {
				return err
			}
		}
	}
	s.pending = s.pending[:0]
	return nil
}
