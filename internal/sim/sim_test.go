package sim

import (
	"errors"
	"strings"
	"testing"

	"sleepmst/internal/graph"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graph.Path(n, graph.GenConfig{Seed: 1})
}

func TestExchangeDeliversBetweenAwakeNeighbors(t *testing.T) {
	g := pathGraph(t, 2)
	res, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		in := nd.Exchange(Outbox{0: nd.Index()})
		got, ok := in[0]
		if !ok {
			t.Errorf("node %d: no message received", nd.Index())
			return nil
		}
		want := 1 - nd.Index()
		if got != want {
			t.Errorf("node %d: got %v, want %v", nd.Index(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MessagesDelivered != 2 || res.MessagesLost != 0 {
		t.Errorf("delivered=%d lost=%d, want 2/0", res.MessagesDelivered, res.MessagesLost)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

func TestSleepingNodeLosesMessages(t *testing.T) {
	g := pathGraph(t, 2)
	res, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		if nd.Index() == 0 {
			nd.Exchange(Outbox{0: "hello"}) // round 1: node 1 is asleep
			return nil
		}
		nd.SleepUntil(2)
		in := nd.Exchange(nil)
		if len(in) != 0 {
			t.Errorf("sleeping node received %v, want nothing", in)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MessagesLost != 1 {
		t.Errorf("lost = %d, want 1", res.MessagesLost)
	}
	if res.AwakePerNode[0] != 1 || res.AwakePerNode[1] != 1 {
		t.Errorf("awake = %v, want [1 1]", res.AwakePerNode)
	}
}

func TestEmptyRoundsAreSkipped(t *testing.T) {
	g := pathGraph(t, 3)
	const far = int64(1_000_000_000)
	res, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		nd.SleepUntil(far)
		nd.Exchange(nil)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Rounds != far {
		t.Errorf("rounds = %d, want %d", res.Rounds, far)
	}
	if res.BusyRounds != 1 {
		t.Errorf("busy rounds = %d, want 1", res.BusyRounds)
	}
}

func TestRoundCounterAndAwakeAccounting(t *testing.T) {
	g := pathGraph(t, 2)
	res, err := Run(Config{Graph: g, Seed: 1, RecordAwakeRounds: true}, func(nd *Node) error {
		nd.Exchange(nil) // round 1
		nd.SleepUntil(5)
		nd.Exchange(nil) // round 5
		nd.Exchange(nil) // round 6
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := res.MaxAwake(); got != 3 {
		t.Errorf("max awake = %d, want 3", got)
	}
	if res.Rounds != 6 {
		t.Errorf("rounds = %d, want 6", res.Rounds)
	}
	want := []int64{1, 5, 6}
	for i, rounds := range res.AwakeRounds {
		if len(rounds) != 3 || rounds[0] != want[0] || rounds[1] != want[1] || rounds[2] != want[2] {
			t.Errorf("node %d awake rounds = %v, want %v", i, rounds, want)
		}
	}
	if res.HaltRound[0] != 6 {
		t.Errorf("halt round = %d, want 6", res.HaltRound[0])
	}
}

func TestNodeErrorAbortsRun(t *testing.T) {
	g := pathGraph(t, 3)
	boom := errors.New("boom")
	_, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		if nd.Index() == 1 {
			return boom
		}
		for {
			nd.Exchange(nil)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestNodePanicIsReported(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		if nd.Index() == 0 {
			panic("kaboom")
		}
		nd.Exchange(nil)
		nd.Exchange(nil)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic report", err)
	}
}

func TestMaxRoundsCap(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 10}, func(nd *Node) error {
		nd.SleepUntil(11)
		nd.Exchange(nil)
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

type sizedMsg struct{ bits int }

func (m sizedMsg) Bits() int { return m.bits }

func TestBitCapEnforced(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1, BitCap: 32}, func(nd *Node) error {
		nd.Exchange(Outbox{0: sizedMsg{bits: 64}})
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted on oversized message", err)
	}
}

func TestBitMetering(t *testing.T) {
	g := pathGraph(t, 2)
	res, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		if nd.Index() == 0 {
			nd.Exchange(Outbox{0: sizedMsg{bits: 17}})
			return nil
		}
		nd.Exchange(nil)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.BitsSent != 17 {
		t.Errorf("bits sent = %d, want 17", res.BitsSent)
	}
	if res.BitsReceivedPerNode[1] != 17 || res.BitsReceivedPerNode[0] != 0 {
		t.Errorf("bits received = %v, want [0 17]", res.BitsReceivedPerNode)
	}
	if res.MaxBitsReceived() != 17 {
		t.Errorf("max bits received = %d, want 17", res.MaxBitsReceived())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.RandomConnected(40, 80, graph.GenConfig{Seed: 7})
	run := func() []int64 {
		res, err := Run(Config{Graph: g, Seed: 42}, func(nd *Node) error {
			// Random sleep pattern driven by the node's private RNG.
			for i := 0; i < 5; i++ {
				nd.SleepUntil(nd.Round() + int64(nd.Rand().Intn(10)))
				nd.Exchange(Outbox{0: nd.Rand().Int63()})
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out := append([]int64{res.Rounds, res.MessagesDelivered, res.MessagesLost}, res.AwakePerNode...)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSleepUntilPastPanics(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		nd.Exchange(nil) // now positioned before round 2
		nd.SleepUntil(1) // must panic
		return nil
	})
	if err == nil {
		t.Fatal("want error from SleepUntil in the past")
	}
}

func TestInvalidPortPanics(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		nd.Exchange(Outbox{5: "x"})
		return nil
	})
	if err == nil {
		t.Fatal("want error from invalid port")
	}
}

func TestNodeAccessors(t *testing.T) {
	g := graph.Star(5, graph.GenConfig{Seed: 3})
	_, err := Run(Config{Graph: g, Seed: 1}, func(nd *Node) error {
		if nd.N() != 5 {
			t.Errorf("N = %d, want 5", nd.N())
		}
		if nd.MaxID() != 5 {
			t.Errorf("MaxID = %d, want 5", nd.MaxID())
		}
		if nd.ID() != int64(nd.Index()+1) {
			t.Errorf("ID = %d, want %d", nd.ID(), nd.Index()+1)
		}
		wantDeg := 1
		if nd.Index() == 0 {
			wantDeg = 4
		}
		if nd.Degree() != wantDeg {
			t.Errorf("degree = %d, want %d", nd.Degree(), wantDeg)
		}
		for p := 0; p < nd.Degree(); p++ {
			if nd.PortWeight(p) <= 0 {
				t.Errorf("port %d weight = %d, want positive", p, nd.PortWeight(p))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestAwakeBudgetEnforced(t *testing.T) {
	g := pathGraph(t, 2)
	_, err := Run(Config{Graph: g, Seed: 1, AwakeBudget: 3}, func(nd *Node) error {
		for i := 0; i < 10; i++ {
			nd.Exchange(nil)
		}
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted on awake budget", err)
	}
}

func TestAwakeBudgetNotTriggeredWithinLimit(t *testing.T) {
	g := pathGraph(t, 2)
	res, err := Run(Config{Graph: g, Seed: 1, AwakeBudget: 10}, func(nd *Node) error {
		for i := 0; i < 10; i++ {
			nd.Exchange(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MaxAwake() != 10 {
		t.Errorf("awake = %d, want 10", res.MaxAwake())
	}
}
