package sim

import "fmt"

// Engine selects the scheduler implementation executing a run. Both
// engines implement the same sleeping-model semantics and are proven
// equivalent by the differential harness (enginediff tests): on a
// fixed (graph, seed, program, chaos policy) tuple they produce
// byte-identical traces, verdicts, and metrics.
type Engine int

const (
	// EngineEvent is the default: a goroutine-free scheduler core that
	// runs node programs as coroutines on the scheduler's own thread
	// (iter.Pull continuations, no channel handshakes), visits only
	// awake nodes via the typed wake heap, and keeps its bookkeeping in
	// struct-of-arrays form. This is the engine that reaches n = 10^5
	// to 10^6 on one machine.
	EngineEvent Engine = iota
	// EngineGoroutine is the legacy scheduler: one goroutine per node
	// with channel handshakes per awake round. Kept compiled for one
	// release as the differential-testing reference; it tops out around
	// n ≈ 10^4 (goroutine stacks and scheduler latency dominate).
	EngineGoroutine
)

// String returns the CLI spelling of the engine name.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine converts a CLI name into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event", "":
		return EngineEvent, nil
	case "goroutine":
		return EngineGoroutine, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want event|goroutine)", s)
	}
}

// valid reports whether e names a compiled engine.
func (e Engine) valid() bool { return e == EngineEvent || e == EngineGoroutine }
