package chaos

import (
	"encoding/json"
	"strings"
	"testing"

	"sleepmst/internal/core"
)

func TestParseFault(t *testing.T) {
	for _, name := range []string{"drop", "delay", "dup", "flip", "crash", "oversleep"} {
		f, err := ParseFault(name)
		if err != nil {
			t.Errorf("ParseFault(%q): %v", name, err)
		}
		if f.String() != name {
			t.Errorf("round trip %q -> %v", name, f)
		}
	}
	if _, err := ParseFault("nope"); err == nil {
		t.Error("want error for unknown fault")
	}
}

func TestSweepRateZeroIsAllCorrect(t *testing.T) {
	g := testGraph(t, 20)
	res, err := RunSweep(SweepConfig{
		Graph: g,
		Runners: []Runner{
			{"randomized", core.RunRandomized},
			{"baseline", core.RunBaseline},
		},
		Fault: FaultDrop,
		Rates: []float64{0},
		Seeds: 3,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, cell := range res.Cells {
		if cell.Counts[CorrectMST.String()] != cell.Runs {
			t.Errorf("%s rate 0: counts = %v, want all %d correct-mst",
				cell.Algorithm, cell.Counts, cell.Runs)
		}
		if cell.Diverged != 0 {
			t.Errorf("%s rate 0: diverged = %d", cell.Algorithm, cell.Diverged)
		}
	}
}

func TestSweepCountsAndTable(t *testing.T) {
	g := testGraph(t, 20)
	res, err := RunSweep(SweepConfig{
		Graph:   g,
		Runners: []Runner{{"randomized", core.RunRandomized}},
		Fault:   FaultDrop,
		Rates:   []float64{0, 0.05},
		Seeds:   3,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, cell := range res.Cells {
		total := 0
		for _, c := range cell.Counts {
			total += c
		}
		if total != cell.Runs || cell.Runs != 3 {
			t.Errorf("cell %v: counts sum %d over %d runs", cell, total, cell.Runs)
		}
	}
	table := res.Table()
	for _, want := range []string{"randomized", "correct-mst", "disconnected", "fault=drop"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestSweepParallelMatchesSerial is the engine-determinism guard: a
// sweep over 3 algorithms × 8 seeds must produce byte-identical JSON
// aggregates whether it runs serially or fanned across any number of
// workers. Run under -race (CI does) this also exercises the worker
// pool for data races.
func TestSweepParallelMatchesSerial(t *testing.T) {
	g := testGraph(t, 20)
	cfg := SweepConfig{
		Graph: g,
		Runners: []Runner{
			{"randomized", core.RunRandomized},
			{"deterministic", core.RunDeterministic},
			{"baseline", core.RunBaseline},
		},
		Fault:    FaultDrop,
		Rates:    []float64{0, 0.05},
		Seeds:    8,
		BaseSeed: 11,
	}
	serialCfg := cfg
	serialCfg.Workers = 1
	serial, err := RunSweep(serialCfg)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	want, err := serial.JSON()
	if err != nil {
		t.Fatalf("serial json: %v", err)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		parCfg := cfg
		parCfg.Workers = workers
		par, err := RunSweep(parCfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := par.JSON()
		if err != nil {
			t.Fatalf("workers=%d json: %v", workers, err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: aggregates differ from serial path:\n%s\n%s", workers, got, want)
		}
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	g := testGraph(t, 16)
	res, err := RunSweep(SweepConfig{
		Graph:   g,
		Runners: []Runner{{"randomized", core.RunRandomized}},
		Fault:   FaultOversleep,
		Rates:   []float64{0.02},
		Seeds:   2,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back SweepResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.N != 16 || back.Fault != "oversleep" || len(back.Cells) != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
	// Determinism: the artifact must be byte-stable across reruns.
	res2, err := RunSweep(SweepConfig{
		Graph:   g,
		Runners: []Runner{{"randomized", core.RunRandomized}},
		Fault:   FaultOversleep,
		Rates:   []float64{0.02},
		Seeds:   2,
	})
	if err != nil {
		t.Fatalf("sweep rerun: %v", err)
	}
	b2, _ := res2.JSON()
	if string(b) != string(b2) {
		t.Errorf("sweep JSON not reproducible:\n%s\n%s", b, b2)
	}
}
