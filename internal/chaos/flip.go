package chaos

import (
	"reflect"
	"unsafe"
)

// maxFlipBit bounds which bit of an integer field gets flipped. Low
// bits produce plausible-looking corruption (a fragment ID off by a
// few, a level bumped by one) — far more insidious than a value
// smashed to garbage, and exactly what a single wire bit-flip does to
// a compact CONGEST encoding.
const maxFlipBit = 12

// flipBit returns a copy of msg with one bit flipped in one integer
// field, chosen deterministically from h. The original message is
// never mutated (payloads may be shared across ports). Struct fields
// are walked recursively, including unexported ones — wire corruption
// does not respect Go visibility — and one level of interface
// indirection (e.g. the LDT wave wrapper's payload) is descended into.
// Returns (msg, false) when the payload holds no flippable integer.
func flipBit(msg interface{}, h uint64) (interface{}, bool) {
	if msg == nil {
		return msg, false
	}
	v := reflect.ValueOf(msg)
	wasPtr := v.Kind() == reflect.Ptr
	if wasPtr {
		if v.IsNil() {
			return msg, false
		}
		v = v.Elem()
	}
	cp := reflect.New(v.Type()).Elem()
	cp.Set(v)
	ints, ifaces := flipTargets(cp)
	if len(ints)+len(ifaces) == 0 {
		return msg, false
	}
	pick := int(h % uint64(len(ints)+len(ifaces)))
	flipped := false
	if pick < len(ints) {
		t := ints[pick]
		bit := (h >> 17) % maxFlipBit
		if t.CanInt() {
			t.SetInt(t.Int() ^ int64(1)<<bit)
		} else {
			t.SetUint(t.Uint() ^ uint64(1)<<bit)
		}
		flipped = true
	} else {
		f := ifaces[pick-len(ints)]
		if inner, ok := flipBit(f.Interface(), splitmix64(h)); ok {
			f.Set(reflect.ValueOf(inner))
			flipped = true
		}
	}
	if !flipped {
		return msg, false
	}
	if wasPtr {
		pp := reflect.New(cp.Type())
		pp.Elem().Set(cp)
		return pp.Interface(), true
	}
	return cp.Interface(), true
}

// flipTargets walks an addressable copy and collects the flippable
// integer values plus the non-nil interface fields (candidate nested
// payloads). Unexported fields are made writable via unsafe: the copy
// is private to the flipper, so this cannot corrupt shared state.
func flipTargets(root reflect.Value) (ints, ifaces []reflect.Value) {
	var walk func(rv reflect.Value)
	walk = func(rv reflect.Value) {
		switch rv.Kind() {
		case reflect.Struct:
			for i := 0; i < rv.NumField(); i++ {
				f := rv.Field(i)
				if !f.CanSet() {
					f = reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
				}
				walk(f)
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if rv.CanSet() {
				ints = append(ints, rv)
			}
		case reflect.Interface:
			if !rv.IsNil() && rv.CanSet() {
				ifaces = append(ifaces, rv)
			}
		}
	}
	walk(root)
	return ints, ifaces
}
