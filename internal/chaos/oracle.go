package chaos

import (
	"errors"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// Classification is the oracle's verdict on one run.
type Classification int

const (
	// CorrectMST: the run produced the graph's minimum spanning tree.
	CorrectMST Classification = iota
	// WrongTree: the run terminated but its output is not the MST —
	// a non-minimum or structurally invalid tree, or a run aborted by
	// protocol-state corruption (node panic, violated LDT invariant,
	// CONGEST bit-cap violation from a corrupted payload).
	WrongTree
	// Disconnected: the computed edge set does not connect the graph —
	// typically the phase budget ran out with more than one fragment
	// left, e.g. because crashed nodes partitioned the fragment forest.
	Disconnected
	// Deadlock: the run made no progress until the round cap
	// (Config.MaxRounds) killed it.
	Deadlock
	// AwakeBudgetBlown: a node exceeded Config.AwakeBudget awake
	// rounds — the faults forced more wake-ups than the paper's
	// O(log n) awake bound allows.
	AwakeBudgetBlown

	// NumClassifications is the number of verdict kinds.
	NumClassifications
)

func (c Classification) String() string {
	switch c {
	case CorrectMST:
		return "correct-mst"
	case WrongTree:
		return "wrong-tree"
	case Disconnected:
		return "disconnected"
	case Deadlock:
		return "deadlock"
	case AwakeBudgetBlown:
		return "awake-blown"
	default:
		return "unknown"
	}
}

// Classifications lists all verdicts in display order.
func Classifications() []Classification {
	out := make([]Classification, NumClassifications)
	for i := range out {
		out[i] = Classification(i)
	}
	return out
}

// Classify is the outcome oracle: given the graph, the (possibly
// partial or nil) outcome, and the run error, it decides what the run
// amounted to. The reference is the sequential Kruskal MST; on graphs
// with non-distinct weights any spanning tree of minimum total weight
// counts as correct.
func Classify(g *graph.Graph, out *core.Outcome, err error) Classification {
	if err != nil {
		switch {
		case errors.Is(err, sim.ErrAwakeBudget):
			return AwakeBudgetBlown
		case errors.Is(err, sim.ErrRoundCap):
			return Deadlock
		case errors.Is(err, core.ErrNotConverged):
			return Disconnected
		default:
			return WrongTree
		}
	}
	if out == nil || len(out.MSTEdges) == 0 {
		return Disconnected
	}
	ref := graph.Kruskal(g)
	if graph.SameEdgeSet(out.MSTEdges, ref) {
		return CorrectMST
	}
	if !graph.IsSpanningTree(g, out.MSTEdges) {
		return Disconnected
	}
	if graph.TotalWeight(out.MSTEdges) == graph.TotalWeight(ref) {
		return CorrectMST
	}
	return WrongTree
}
