package chaos

import (
	"fmt"
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

func TestClassifyErrorMapping(t *testing.T) {
	g := testGraph(t, 8)
	cases := []struct {
		err  error
		want Classification
	}{
		{fmt.Errorf("node 3: %w (%w)", sim.ErrAwakeBudget, sim.ErrAborted), AwakeBudgetBlown},
		{fmt.Errorf("sim: round 9 exceeds cap: %w (%w)", sim.ErrRoundCap, sim.ErrAborted), Deadlock},
		{fmt.Errorf("%w: 3 fragments remain", core.ErrNotConverged), Disconnected},
		{fmt.Errorf("node 2: %w (%w)", sim.ErrBitCap, sim.ErrAborted), WrongTree},
		{fmt.Errorf("node 5 panicked: interface conversion"), WrongTree},
	}
	for _, tc := range cases {
		if got := Classify(g, nil, tc.err); got != tc.want {
			t.Errorf("Classify(err=%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestClassifyTrees(t *testing.T) {
	g := testGraph(t, 10)
	ref := graph.Kruskal(g)
	if got := Classify(g, &core.Outcome{MSTEdges: ref}, nil); got != CorrectMST {
		t.Errorf("reference MST classified %v", got)
	}

	// A spanning tree that is not the MST: swap one MST edge for a
	// heavier non-tree edge that keeps the graph connected.
	inTree := graph.EdgeSet(ref)
	var wrong []graph.Edge
	found := false
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if _, ok := inTree[[2]int{a, b}]; ok {
			continue
		}
		// Adding non-tree edge e closes a cycle; drop the heaviest
		// tree edge on that cycle... simplest valid construction:
		// replace the MST edge whose removal leaves e reconnecting the
		// two sides. Try all tree edges and keep the first swap that
		// still spans.
		for i := range ref {
			cand := append([]graph.Edge{}, ref[:i]...)
			cand = append(cand, ref[i+1:]...)
			cand = append(cand, e)
			if graph.IsSpanningTree(g, cand) && graph.TotalWeight(cand) != graph.TotalWeight(ref) {
				wrong = cand
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("could not build a non-minimum spanning tree on the test graph")
	}
	if got := Classify(g, &core.Outcome{MSTEdges: wrong}, nil); got != WrongTree {
		t.Errorf("non-minimum tree classified %v, want wrong-tree", got)
	}

	// A forest that does not span is Disconnected.
	if got := Classify(g, &core.Outcome{MSTEdges: ref[:len(ref)-2]}, nil); got != Disconnected {
		t.Errorf("partial forest classified %v, want disconnected", got)
	}
	if got := Classify(g, nil, nil); got != Disconnected {
		t.Errorf("nil outcome classified %v, want disconnected", got)
	}
}

func TestClassificationStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classifications() {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Errorf("classification %d has bad or duplicate name %q", int(c), s)
		}
		seen[s] = true
	}
}
