package chaos

import (
	"encoding/json"
	"bytes"
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graph.RandomConnected(n, 3*n, graph.GenConfig{Seed: 9})
}

func TestZeroOptionsInjectNothing(t *testing.T) {
	p := New(Options{Seed: 3})
	if p.Active() {
		t.Fatal("zero-rate policy reports Active")
	}
	g := testGraph(t, 24)
	for _, r := range []Runner{
		{"randomized", core.RunRandomized},
		{"deterministic", core.RunDeterministic},
		{"baseline", core.RunBaseline},
	} {
		out, err := r.Run(g, core.Options{Seed: 5, Interceptor: New(Options{Seed: 3})})
		if err != nil {
			t.Fatalf("%s with inactive policy: %v", r.Name, err)
		}
		if got := Classify(g, out, err); got != CorrectMST {
			t.Errorf("%s classified %v, want correct-mst", r.Name, got)
		}
		if out.Result.MessagesDropped != 0 || out.Result.WakesPerturbed != 0 {
			t.Errorf("%s: inactive policy injected faults: %+v", r.Name, out.Result)
		}
	}
}

// TestDeterministicReplay is the replay regression: two runs with an
// identical Config — including a chaos policy and seed — must produce
// byte-identical Result metrics and identical oracle classifications.
func TestDeterministicReplay(t *testing.T) {
	g := testGraph(t, 32)
	run := func() ([]byte, Classification, int64) {
		policy := New(Options{Seed: 11, DropRate: 0.03, DelayRate: 0.02, FlipRate: 0.01, OversleepRate: 0.01})
		out, err := core.RunRandomized(g, core.Options{Seed: 4, Interceptor: policy})
		var res *sim.Result
		if out != nil {
			res = out.Result
		}
		b, jerr := json.Marshal(res)
		if jerr != nil {
			t.Fatalf("marshal: %v", jerr)
		}
		return b, Classify(g, out, err), FirstDivergence(policy, res)
	}
	b1, c1, f1 := run()
	b2, c2, f2 := run()
	if !bytes.Equal(b1, b2) {
		t.Errorf("replay produced different Result metrics:\n%s\n%s", b1, b2)
	}
	if c1 != c2 {
		t.Errorf("replay classified %v then %v", c1, c2)
	}
	if f1 != f2 {
		t.Errorf("replay first-divergence %d then %d", f1, f2)
	}
}

func TestPolicyHashIsStateless(t *testing.T) {
	a, b := New(Options{Seed: 7, DropRate: 0.5}), New(Options{Seed: 7, DropRate: 0.5})
	a.BeginRun(10)
	b.BeginRun(10)
	for r := int64(1); r <= 50; r++ {
		evA := sim.MessageEvent{Round: r, From: int(r) % 10, Port: 0, Payload: r}
		evB := evA
		a.InterceptMessage(&evA)
		// Interleave unrelated queries on b: decisions must not depend
		// on call order.
		b.InterceptWake(3, r)
		b.InterceptMessage(&evB)
		if evA.Drop != evB.Drop {
			t.Fatalf("round %d: drop decisions diverge (%v vs %v)", r, evA.Drop, evB.Drop)
		}
	}
}

func TestCrashTableFromFraction(t *testing.T) {
	p := New(Options{Seed: 1, CrashFrac: 0.25, CrashWindow: 100})
	p.BeginRun(40)
	crashed := 0
	for v := 0; v < 40; v++ {
		if cr := p.CrashRound(v); cr != 0 {
			crashed++
			if cr < 1 || cr > 100 {
				t.Errorf("node %d crash round %d outside [1, 100]", v, cr)
			}
		}
	}
	if crashed != 10 {
		t.Errorf("crashed %d nodes, want 10 (25%% of 40)", crashed)
	}
	// Same options, fresh policy: identical table.
	q := New(Options{Seed: 1, CrashFrac: 0.25, CrashWindow: 100})
	q.BeginRun(40)
	for v := 0; v < 40; v++ {
		if p.CrashRound(v) != q.CrashRound(v) {
			t.Fatalf("crash tables differ at node %d", v)
		}
	}
}

func TestExplicitCrashSchedule(t *testing.T) {
	p := New(Options{Seed: 1, Crash: []CrashEvent{{Node: 3, Round: 7}, {Node: 99, Round: 2}, {Node: -1, Round: 5}}})
	p.BeginRun(10)
	if p.CrashRound(3) != 7 {
		t.Errorf("CrashRound(3) = %d, want 7", p.CrashRound(3))
	}
	if p.CrashRound(5) != 0 {
		t.Errorf("CrashRound(5) = %d, want 0", p.CrashRound(5))
	}
	// Out-of-range entries are ignored.
	if p.CrashRound(99) != 0 || p.CrashRound(-1) != 0 {
		t.Error("out-of-range crash entries not ignored")
	}
}

func TestCrashedRunsDisconnect(t *testing.T) {
	g := testGraph(t, 24)
	policy := New(Options{Seed: 2, Crash: []CrashEvent{{Node: 5, Round: 3}}})
	out, err := core.RunRandomized(g, core.Options{Seed: 2, Interceptor: policy})
	if err == nil {
		t.Fatal("want convergence failure with a crashed node")
	}
	if got := Classify(g, out, err); got != Disconnected {
		t.Errorf("classified %v, want disconnected (err=%v)", got, err)
	}
	if out != nil && out.Result.CrashRound[5] != 3 {
		t.Errorf("CrashRound[5] = %v, want 3", out.Result.CrashRound)
	}
}

type flipStruct struct {
	fragID int64
	level  int
	label  string
}

type flipWrapper struct {
	payload interface{}
}

func TestFlipBitMutatesUnexportedInts(t *testing.T) {
	orig := flipStruct{fragID: 0b1000, level: 2, label: "x"}
	flippedAny := false
	for h := uint64(0); h < 32; h++ {
		got, ok := flipBit(orig, splitmix64(h))
		if !ok {
			t.Fatalf("h=%d: flipBit failed on int-bearing struct", h)
		}
		fs := got.(flipStruct)
		if fs.label != "x" {
			t.Errorf("h=%d: non-integer field changed: %+v", h, fs)
		}
		if fs != orig {
			flippedAny = true
		}
	}
	if !flippedAny {
		t.Error("no hash produced an observable flip")
	}
	if orig.fragID != 0b1000 || orig.level != 2 {
		t.Errorf("original mutated: %+v", orig)
	}
}

func TestFlipBitDescendsIntoInterfacePayloads(t *testing.T) {
	inner := flipStruct{fragID: 5, level: 1, label: "y"}
	msg := flipWrapper{payload: inner}
	changed := false
	for h := uint64(0); h < 64; h++ {
		got, ok := flipBit(msg, splitmix64(h^0xabc))
		if !ok {
			t.Fatalf("h=%d: flipBit failed on wrapper", h)
		}
		fw := got.(flipWrapper)
		if fw.payload.(flipStruct) != inner {
			changed = true
		}
	}
	if !changed {
		t.Error("wrapper payload never mutated")
	}
	if msg.payload.(flipStruct) != inner {
		t.Errorf("original wrapper mutated: %+v", msg)
	}
}

func TestFlipBitHandlesHopelessPayloads(t *testing.T) {
	for _, msg := range []interface{}{nil, "just a string", struct{ S string }{"s"}, (*flipStruct)(nil)} {
		if _, ok := flipBit(msg, 12345); ok {
			t.Errorf("flipBit claimed success on %#v", msg)
		}
	}
}

func TestFlipBitScalarAndPointerMessages(t *testing.T) {
	if got, ok := flipBit(int64(8), 1); !ok || got.(int64) == 8 {
		t.Errorf("scalar flip: got %v ok=%v, want a changed int64", got, ok)
	}
	orig := &flipStruct{fragID: 3}
	got, ok := flipBit(orig, 99)
	if !ok {
		t.Fatal("pointer flip failed")
	}
	if got.(*flipStruct) == orig {
		t.Error("pointer flip returned the original pointer (shared mutation)")
	}
	if orig.fragID != 3 {
		t.Errorf("original mutated through pointer: %+v", orig)
	}
}
