package chaos

import (
	"errors"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// MISClassification is the outcome oracle's verdict on one MIS run
// under fault injection.
type MISClassification int

const (
	// CorrectMIS: the run produced a valid maximal independent set.
	CorrectMIS MISClassification = iota
	// NotIndependent: the output set contains at least one edge — a
	// lost or corrupted join announcement let two neighbors both join.
	NotIndependent
	// NotMaximal: some node is neither in the set nor adjacent to it —
	// a spurious join signal (or a missed decline window) made a node
	// retire uncovered.
	NotMaximal
	// MISDeadlock: the run made no progress until the round cap
	// (Config.MaxRounds) killed it.
	MISDeadlock
	// MISAwakeBlown: a node exceeded Config.AwakeBudget awake rounds.
	MISAwakeBlown

	// NumMISClassifications is the number of MIS verdict kinds.
	NumMISClassifications
)

func (c MISClassification) String() string {
	switch c {
	case CorrectMIS:
		return "correct-mis"
	case NotIndependent:
		return "not-independent"
	case NotMaximal:
		return "not-maximal"
	case MISDeadlock:
		return "deadlock"
	case MISAwakeBlown:
		return "awake-blown"
	default:
		return "unknown"
	}
}

// MISClassifications lists all MIS verdicts in display order.
func MISClassifications() []MISClassification {
	out := make([]MISClassification, NumMISClassifications)
	for i := range out {
		out[i] = MISClassification(i)
	}
	return out
}

// ClassifyMIS is the MIS outcome oracle: given the graph, the (possibly
// nil) membership vector, and the run error, it decides what the run
// amounted to. Independence violations rank above maximality
// violations when both are present.
func ClassifyMIS(g *graph.Graph, inMIS []bool, err error) MISClassification {
	if err != nil {
		switch {
		case errors.Is(err, sim.ErrAwakeBudget):
			return MISAwakeBlown
		default:
			return MISDeadlock
		}
	}
	if len(inMIS) != g.N() {
		return MISDeadlock
	}
	notIndependent, notMaximal := graph.MISViolations(g, inMIS)
	switch {
	case notIndependent > 0:
		return NotIndependent
	case notMaximal > 0:
		return NotMaximal
	default:
		return CorrectMIS
	}
}
