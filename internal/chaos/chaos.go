// Package chaos is a deterministic, seed-driven fault-injection layer
// for the sleeping-model simulator, plus an outcome oracle that
// classifies every run.
//
// The paper's algorithms are proved correct under a clean synchronous
// sleeping model: messages to sleeping nodes are silently lost, but
// awake-round delivery is perfect and nodes never crash. Fragment
// leaders and members stay consistent only because their wake
// schedules are exactly synchronized. This package measures how
// brittle those assumptions are: a Policy perturbs a run at the
// simulator's two decision points (message delivery and wake
// scheduling, see sim.Interceptor) with seeded fault processes —
// i.i.d. message drop, bounded delay, duplication, payload bit-flips,
// crash-stop, and adversarial oversleep — and the Oracle classifies
// what came out the other end.
//
// Every fault decision is derived by hashing the event coordinates
// (round, node, port) with the policy seed rather than by consuming
// sequential RNG state, so a Policy is stateless across runs: two
// sim.Run invocations with the same Config produce byte-identical
// results, and re-running a single interesting (fault, rate, seed)
// cell reproduces it exactly.
package chaos

import (
	"fmt"

	"sleepmst/internal/sim"
)

// CrashEvent schedules one crash-stop: Node is not awake in any round
// >= Round.
type CrashEvent struct {
	Node  int   `json:"node"`
	Round int64 `json:"round"`
}

// Options selects the fault processes of a Policy. The rate fields are
// per-event probabilities in [0, 1]; every fault kind with rate zero
// is disabled, so the zero Options value injects nothing.
type Options struct {
	// Seed drives every fault decision. Two policies with equal
	// Options behave identically.
	Seed int64

	// DropRate is the i.i.d. probability that a sent message is lost
	// even though the receiver is awake.
	DropRate float64

	// DelayRate is the probability that a message is delivered 1..
	// MaxDelay rounds late (it still reaches the receiver only if the
	// receiver is awake in the late round). MaxDelay defaults to 3.
	DelayRate float64
	MaxDelay  int64

	// DupRate is the probability that a message is replayed: 1..MaxDup
	// extra copies arrive in the rounds after the primary copy.
	// MaxDup defaults to 2.
	DupRate float64
	MaxDup  int

	// FlipRate is the probability that one low bit of one integer
	// field of the payload is flipped — corruption below the type
	// system, stressing the CONGEST encodings.
	FlipRate float64

	// OversleepRate is the probability that a node's next wake round
	// is pushed 1..MaxOversleep rounds later, making it miss whatever
	// wave it had synchronized with. MaxOversleep defaults to 16.
	OversleepRate float64
	MaxOversleep  int64

	// Crash, if non-empty, is an explicit crash-stop schedule.
	// Otherwise CrashFrac > 0 crash-stops round(CrashFrac·n) nodes
	// chosen by seed, each at a round uniform in [1, CrashWindow]
	// (default 4n).
	Crash       []CrashEvent
	CrashFrac   float64
	CrashWindow int64
}

// Policy implements sim.Interceptor for one Options value.
type Policy struct {
	opts Options

	// Per-run state, reset by BeginRun.
	n          int
	crash      map[int]int64
	firstFault int64 // earliest round a fault was injected (0 = none)
}

// New returns a Policy for opts with defaults resolved.
func New(opts Options) *Policy {
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 3
	}
	if opts.MaxDup <= 0 {
		opts.MaxDup = 2
	}
	if opts.MaxOversleep <= 0 {
		opts.MaxOversleep = 16
	}
	return &Policy{opts: opts}
}

// Active reports whether the policy can inject any fault at all.
func (p *Policy) Active() bool {
	o := p.opts
	return o.DropRate > 0 || o.DelayRate > 0 || o.DupRate > 0 || o.FlipRate > 0 ||
		o.OversleepRate > 0 || o.CrashFrac > 0 || len(o.Crash) > 0
}

// FirstFaultRound returns the earliest round in which this run's
// policy injected a message fault or wake perturbation (0 = none).
// Crash-stops are reported by the runtime in Result.CrashRound; see
// FirstDivergence for the combined figure.
func (p *Policy) FirstFaultRound() int64 { return p.firstFault }

// BeginRun resets per-run state and materializes the crash table.
func (p *Policy) BeginRun(n int) {
	p.n = n
	p.firstFault = 0
	p.crash = nil
	if len(p.opts.Crash) > 0 {
		p.crash = make(map[int]int64, len(p.opts.Crash))
		for _, c := range p.opts.Crash {
			if c.Node >= 0 && c.Node < n && c.Round > 0 {
				p.crash[c.Node] = c.Round
			}
		}
		return
	}
	if p.opts.CrashFrac <= 0 {
		return
	}
	k := int(p.opts.CrashFrac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	if k == 0 {
		return
	}
	window := p.opts.CrashWindow
	if window <= 0 {
		window = 4 * int64(n)
	}
	// Seeded Fisher–Yates prefix: the first k slots of a permutation
	// of [0, n) pick the victims.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	p.crash = make(map[int]int64, k)
	for i := 0; i < k; i++ {
		j := i + int(p.hash(kindCrashSel, uint64(i))%uint64(n-i))
		perm[i], perm[j] = perm[j], perm[i]
		v := perm[i]
		p.crash[v] = 1 + int64(p.hash(kindCrashRound, uint64(v))%uint64(window))
	}
}

// InterceptMessage applies the message fault processes. Drop wins over
// everything; delay, duplication and bit-flip compose.
func (p *Policy) InterceptMessage(ev *sim.MessageEvent) {
	r, f, q := uint64(ev.Round), uint64(ev.From), uint64(ev.Port)
	if p.opts.DropRate > 0 && p.unit(kindDrop, r, f, q) < p.opts.DropRate {
		ev.Drop = true
		p.note(ev.Round)
		return
	}
	if p.opts.DelayRate > 0 && p.unit(kindDelay, r, f, q) < p.opts.DelayRate {
		ev.Delay = 1 + int64(p.hash(kindDelayAmt, r, f, q)%uint64(p.opts.MaxDelay))
		p.note(ev.Round)
	}
	if p.opts.DupRate > 0 && p.unit(kindDup, r, f, q) < p.opts.DupRate {
		ev.Duplicate = 1 + int(p.hash(kindDupAmt, r, f, q)%uint64(p.opts.MaxDup))
		p.note(ev.Round)
	}
	if p.opts.FlipRate > 0 && p.unit(kindFlip, r, f, q) < p.opts.FlipRate {
		if mutated, ok := flipBit(ev.Payload, p.hash(kindFlipPick, r, f, q)); ok {
			ev.Payload = mutated
			ev.Mutated = true
			p.note(ev.Round)
		}
	}
}

// InterceptWake perturbs a node's next wake round (oversleep).
func (p *Policy) InterceptWake(node int, intended int64) int64 {
	if p.opts.OversleepRate <= 0 {
		return intended
	}
	v, r := uint64(node), uint64(intended)
	if p.unit(kindWake, v, r) >= p.opts.OversleepRate {
		return intended
	}
	p.note(intended)
	return intended + 1 + int64(p.hash(kindWakeAmt, v, r)%uint64(p.opts.MaxOversleep))
}

// CrashRound returns node's scheduled crash-stop round (0 = never).
func (p *Policy) CrashRound(node int) int64 { return p.crash[node] }

func (p *Policy) note(round int64) {
	if p.firstFault == 0 || round < p.firstFault {
		p.firstFault = round
	}
}

// FirstDivergence returns the earliest round at which the run left the
// clean model: the first injected message/wake fault or the first
// applied crash-stop, whichever came first (0 = the run was clean).
func FirstDivergence(p *Policy, res *sim.Result) int64 {
	first := p.FirstFaultRound()
	if res != nil {
		for _, cr := range res.CrashRound {
			if cr > 0 && (first == 0 || cr < first) {
				first = cr
			}
		}
	}
	return first
}

// String summarizes the enabled fault processes.
func (p *Policy) String() string {
	o := p.opts
	s := fmt.Sprintf("chaos(seed=%d", o.Seed)
	if o.DropRate > 0 {
		s += fmt.Sprintf(" drop=%g", o.DropRate)
	}
	if o.DelayRate > 0 {
		s += fmt.Sprintf(" delay=%g/%d", o.DelayRate, o.MaxDelay)
	}
	if o.DupRate > 0 {
		s += fmt.Sprintf(" dup=%g/%d", o.DupRate, o.MaxDup)
	}
	if o.FlipRate > 0 {
		s += fmt.Sprintf(" flip=%g", o.FlipRate)
	}
	if o.OversleepRate > 0 {
		s += fmt.Sprintf(" oversleep=%g/%d", o.OversleepRate, o.MaxOversleep)
	}
	if len(o.Crash) > 0 {
		s += fmt.Sprintf(" crash=%d", len(o.Crash))
	} else if o.CrashFrac > 0 {
		s += fmt.Sprintf(" crashfrac=%g", o.CrashFrac)
	}
	return s + ")"
}

// Hash-based randomness ---------------------------------------------------

// Fault-kind domain separators for the decision hashes.
const (
	kindDrop = iota + 1
	kindDelay
	kindDelayAmt
	kindDup
	kindDupAmt
	kindFlip
	kindFlipPick
	kindWake
	kindWakeAmt
	kindCrashSel
	kindCrashRound
)

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes the policy seed, a fault kind, and event coordinates into
// one 64-bit decision value.
func (p *Policy) hash(kind uint64, coords ...uint64) uint64 {
	h := splitmix64(uint64(p.opts.Seed) ^ kind<<56)
	for _, c := range coords {
		h = splitmix64(h ^ c)
	}
	return h
}

// unit maps a decision hash to [0, 1).
func (p *Policy) unit(kind uint64, coords ...uint64) float64 {
	return float64(p.hash(kind, coords...)>>11) / float64(uint64(1)<<53)
}
