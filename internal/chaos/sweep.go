package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sweep"
)

// Fault names one fault process for a sweep; the sweep varies its rate
// while leaving every other process off.
type Fault int

const (
	FaultDrop Fault = iota
	FaultDelay
	FaultDup
	FaultFlip
	FaultCrash
	FaultOversleep
)

func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultFlip:
		return "flip"
	case FaultCrash:
		return "crash"
	case FaultOversleep:
		return "oversleep"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// ParseFault converts a CLI name into a Fault.
func ParseFault(s string) (Fault, error) {
	for _, f := range []Fault{FaultDrop, FaultDelay, FaultDup, FaultFlip, FaultCrash, FaultOversleep} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault %q (want drop|delay|dup|flip|crash|oversleep)", s)
}

// PolicyOptions builds the single-fault policy for one sweep cell. For
// message and wake faults, rate is the per-event probability; for
// crash, rate is the crashed fraction of nodes.
func (f Fault) PolicyOptions(rate float64, seed int64) Options {
	o := Options{Seed: seed}
	switch f {
	case FaultDrop:
		o.DropRate = rate
	case FaultDelay:
		o.DelayRate = rate
	case FaultDup:
		o.DupRate = rate
	case FaultFlip:
		o.FlipRate = rate
	case FaultCrash:
		o.CrashFrac = rate
	case FaultOversleep:
		o.OversleepRate = rate
	}
	return o
}

// Runner is one algorithm under test.
type Runner struct {
	Name string
	Run  func(*graph.Graph, core.Options) (*core.Outcome, error)
}

// SweepConfig parameterizes RunSweep.
type SweepConfig struct {
	// Graph is the network every run executes on. Required.
	Graph *graph.Graph
	// Runners are the algorithms to sweep. Required.
	Runners []Runner
	// Fault is the fault process to vary.
	Fault Fault
	// Rates are the fault rates to sweep over (0 is a valid rate: the
	// policy is wired in but never fires — the clean-model control).
	Rates []float64
	// Seeds is the number of runs per (runner, rate) cell; run i uses
	// seed BaseSeed+i for both the algorithm and the fault policy.
	// Defaults to 5.
	Seeds    int
	BaseSeed int64
	// Opts is the template for per-run core options (BitCap,
	// AwakeBudget, MaxPhases...); Seed and Interceptor are overwritten
	// per run.
	Opts core.Options
	// Workers is the parallel worker-pool size (see sweep.Config): 0
	// means GOMAXPROCS, 1 is the serial control. Aggregates are
	// byte-identical for every value because each run builds its own
	// seeded policy and results are folded in grid order.
	Workers int
}

// Cell aggregates one (algorithm, fault, rate) sweep cell.
type Cell struct {
	Algorithm string         `json:"algorithm"`
	Fault     string         `json:"fault"`
	Rate      float64        `json:"rate"`
	Runs      int            `json:"runs"`
	Counts    map[string]int `json:"counts"`
	// Diverged counts runs not classified CorrectMST;
	// MeanFirstDivergence averages their first-divergence rounds (the
	// earliest round a fault was injected into the run), 0 if none.
	Diverged            int     `json:"diverged"`
	MeanFirstDivergence float64 `json:"mean_first_divergence_round"`
	// MeanMaxAwake / MeanRounds average the runs that produced
	// metrics, including failed ones.
	MeanMaxAwake float64 `json:"mean_max_awake"`
	MeanRounds   float64 `json:"mean_rounds"`
}

// SweepResult is the machine-readable product of a chaos sweep.
type SweepResult struct {
	N        int     `json:"n"`
	M        int     `json:"m"`
	Fault    string  `json:"fault"`
	Seeds    int     `json:"seeds"`
	BaseSeed int64   `json:"base_seed"`
	Cells    []Cell  `json:"cells"`
}

// RunSweep runs Seeds runs for every (runner, rate) pair and
// classifies each with the oracle.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("chaos: sweep requires a graph")
	}
	if len(cfg.Runners) == 0 {
		return nil, fmt.Errorf("chaos: sweep requires at least one runner")
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 0.01, 0.05}
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	res := &SweepResult{
		N:        cfg.Graph.N(),
		M:        cfg.Graph.M(),
		Fault:    cfg.Fault.String(),
		Seeds:    cfg.Seeds,
		BaseSeed: cfg.BaseSeed,
	}

	// Fan the (runner × rate × seed) grid across the worker pool.
	// Every run is self-contained — its policy, options, and seed are
	// derived from the grid coordinates — and the fold below walks the
	// results in grid order, so the aggregate is identical whether the
	// runs finished in order or not.
	type runRecord struct {
		cls        Classification
		hasMetrics bool
		maxAwake   float64
		rounds     float64
		firstDiv   float64
	}
	grid := sweep.NewGrid(len(cfg.Runners), len(cfg.Rates), cfg.Seeds)
	records, err := sweep.Run(sweep.Config{Workers: cfg.Workers}, grid.Size(), func(idx int) (runRecord, error) {
		c := grid.Coords(idx)
		r, rate, seed := cfg.Runners[c[0]], cfg.Rates[c[1]], cfg.BaseSeed+int64(c[2])
		policy := New(cfg.Fault.PolicyOptions(rate, seed))
		opts := cfg.Opts
		opts.Seed = seed
		opts.Interceptor = policy
		out, err := r.Run(cfg.Graph, opts)
		rec := runRecord{cls: Classify(cfg.Graph, out, err)}
		if out != nil && out.Result != nil {
			rec.hasMetrics = true
			rec.maxAwake = float64(out.Result.MaxAwake())
			rec.rounds = float64(out.Result.Rounds)
		}
		if rec.cls != CorrectMST {
			if out != nil {
				rec.firstDiv = float64(FirstDivergence(policy, out.Result))
			} else {
				rec.firstDiv = float64(policy.FirstFaultRound())
			}
		}
		return rec, nil
	})
	if err != nil {
		return nil, err
	}

	for ri, r := range cfg.Runners {
		for rj, rate := range cfg.Rates {
			cell := Cell{
				Algorithm: r.Name,
				Fault:     cfg.Fault.String(),
				Rate:      rate,
				Counts:    make(map[string]int, NumClassifications),
			}
			var divergenceSum float64
			var metered int
			for i := 0; i < cfg.Seeds; i++ {
				rec := records[(ri*len(cfg.Rates)+rj)*cfg.Seeds+i]
				cell.Runs++
				cell.Counts[rec.cls.String()]++
				if rec.hasMetrics {
					metered++
					cell.MeanMaxAwake += rec.maxAwake
					cell.MeanRounds += rec.rounds
				}
				if rec.cls != CorrectMST {
					cell.Diverged++
					divergenceSum += rec.firstDiv
				}
			}
			if metered > 0 {
				cell.MeanMaxAwake /= float64(metered)
				cell.MeanRounds /= float64(metered)
			}
			if cell.Diverged > 0 {
				cell.MeanFirstDivergence = divergenceSum / float64(cell.Diverged)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Table renders the sweep as an outcome-frequency table: one row per
// (algorithm, rate), one column per oracle classification.
func (r *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: fault=%s graph n=%d m=%d, %d seeds per cell\n",
		r.Fault, r.N, r.M, r.Seeds)
	fmt.Fprintf(&b, "%-14s %8s", "algorithm", "rate")
	for _, c := range Classifications() {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, " %10s %10s\n", "first-div", "max-awake")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "%-14s %8.4f", cell.Algorithm, cell.Rate)
		for _, c := range Classifications() {
			fmt.Fprintf(&b, " %12d", cell.Counts[c.String()])
		}
		fd := "-"
		if cell.Diverged > 0 {
			fd = fmt.Sprintf("%.0f", cell.MeanFirstDivergence)
		}
		fmt.Fprintf(&b, " %10s %10.1f\n", fd, cell.MeanMaxAwake)
	}
	return b.String()
}

// JSON renders the sweep deterministically (cells in run order, map
// keys sorted by encoding/json) for use as a robustness-trajectory
// artifact.
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SortCells orders cells by (algorithm, rate) — handy for stable
// diffing when runners were added out of order.
func (r *SweepResult) SortCells() {
	sort.SliceStable(r.Cells, func(i, j int) bool {
		if r.Cells[i].Algorithm != r.Cells[j].Algorithm {
			return r.Cells[i].Algorithm < r.Cells[j].Algorithm
		}
		return r.Cells[i].Rate < r.Cells[j].Rate
	})
}
