package problem

import (
	"errors"
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// coreOptions is the minimal run configuration the unit tests use.
func coreOptions(seed int64) core.Options { return core.Options{Seed: seed} }

// misTopologies is the validity-test topology axis: structured graphs
// stress degenerate degrees (path ends, star hub, clique), the random
// families stress the sparsify stage's probabilistic thinning.
var misTopologies = []struct {
	name  string
	build func(seed int64) *graph.Graph
}{
	{"path", func(s int64) *graph.Graph { return graph.Path(33, graph.GenConfig{Seed: s}) }},
	{"cycle", func(s int64) *graph.Graph { return graph.Cycle(40, graph.GenConfig{Seed: s}) }},
	{"star", func(s int64) *graph.Graph { return graph.Star(25, graph.GenConfig{Seed: s}) }},
	{"complete", func(s int64) *graph.Graph { return graph.Complete(17, graph.GenConfig{Seed: s}) }},
	{"grid", func(s int64) *graph.Graph { return graph.Grid(6, 7, graph.GenConfig{Seed: s}) }},
	{"tree", func(s int64) *graph.Graph { return graph.BinaryTree(31, graph.GenConfig{Seed: s}) }},
	{"random", func(s int64) *graph.Graph { return graph.RandomConnected(48, 144, graph.GenConfig{Seed: s}) }},
	{"geometric", func(s int64) *graph.Graph { return graph.RandomGeometric(40, 0.35, graph.GenConfig{Seed: s}) }},
}

// TestRunMISValidAcrossTopologies: on every topology and several run
// seeds, the output must be a valid MIS (deterministically — only the
// awake bound is probabilistic) and stay within the calibrated awake
// envelope.
func TestRunMISValidAcrossTopologies(t *testing.T) {
	for _, tc := range misTopologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(11)
			budget, _ := MISAwakeBudget(g.N())
			for seed := int64(1); seed <= 5; seed++ {
				r, err := RunMIS(g, coreOptions(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if ni, nm := graph.MISViolations(g, r.InMIS); ni != 0 || nm != 0 {
					t.Fatalf("seed %d: invalid MIS: %d in-set edges, %d uncovered", seed, ni, nm)
				}
				if got := r.Sim.MaxAwake(); got > budget {
					t.Errorf("seed %d: max awake %d exceeds budget %d", seed, got, budget)
				}
			}
		})
	}
}

// TestRunMISDisconnected: unlike the MST runners, MIS must accept a
// disconnected graph — each component gets its own maximal set.
func TestRunMISDisconnected(t *testing.T) {
	// Two disjoint triangles.
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, Weight: 1}, {U: 1, V: 2, Weight: 2}, {U: 0, V: 2, Weight: 3},
		{U: 3, V: 4, Weight: 4}, {U: 4, V: 5, Weight: 5}, {U: 3, V: 5, Weight: 6},
	})
	r, err := RunMIS(g, coreOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if ni, nm := graph.MISViolations(g, r.InMIS); ni != 0 || nm != 0 {
		t.Fatalf("invalid MIS on disconnected graph: %d in-set edges, %d uncovered", ni, nm)
	}
	size := 0
	for _, in := range r.InMIS {
		if in {
			size++
		}
	}
	if size != 2 {
		t.Errorf("two triangles admit exactly one MIS member each, got %d", size)
	}
}

// TestRunMISEdgeGraphs pins the degenerate inputs: a single node is
// its own MIS, and a nil graph is an error, not a panic.
func TestRunMISEdgeGraphs(t *testing.T) {
	r, err := RunMIS(graph.MustNew(1, nil), coreOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.InMIS) != 1 || !r.InMIS[0] {
		t.Errorf("singleton graph: want InMIS=[true], got %v", r.InMIS)
	}
	if _, err := RunMIS(nil, coreOptions(1)); err == nil {
		t.Error("nil graph: want error, got nil")
	}
}

// TestRunMISRespectsAwakeBudgetOption: the simulator's hard awake
// budget must cut an MIS run off with ErrAwakeBudget like any other
// resident.
func TestRunMISRespectsAwakeBudgetOption(t *testing.T) {
	g := graph.RandomConnected(32, 96, graph.GenConfig{Seed: 4})
	opts := coreOptions(1)
	opts.AwakeBudget = 1
	_, err := RunMIS(g, opts)
	if !errors.Is(err, sim.ErrAwakeBudget) {
		t.Fatalf("want ErrAwakeBudget, got %v", err)
	}
}

// TestMISAwakeBudgetValues pins the calibrated envelope at the matrix
// sizes (BudgetCMIS=5; measured worst awake was 8/10/11/13) and the
// small-n clamp.
func TestMISAwakeBudgetValues(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int64
	}{{16, 15}, {64, 18}, {256, 20}, {1024, 22}, {1, 10}, {4, 10}} {
		got, ok := MISAwakeBudget(tc.n)
		if !ok || got != tc.want {
			t.Errorf("MISAwakeBudget(%d) = %d,%v; want %d,true", tc.n, got, ok, tc.want)
		}
	}
}

// TestMISPhases pins the sparsify shape: P is the smallest count with
// 2^(P-1) >= L plus one margin phase, and tiny n degrades gracefully.
func TestMISPhases(t *testing.T) {
	for _, tc := range []struct {
		n, wantL, wantP int
	}{{1, 1, 1}, {2, 1, 1}, {16, 4, 3}, {64, 6, 4}, {256, 8, 4}, {1024, 10, 5}} {
		L, P := misPhases(tc.n)
		if L != tc.wantL || P != tc.wantP {
			t.Errorf("misPhases(%d) = (%d, %d); want (%d, %d)", tc.n, L, P, tc.wantL, tc.wantP)
		}
	}
}

// TestMISMessageBits: every MIS message kind must report a positive
// CONGEST-sized bit count and a stable kind name (the per-kind metrics
// key space).
func TestMISMessageBits(t *testing.T) {
	msgs := []struct {
		m    sim.Sizer
		kind string
	}{
		{misSampleMsg{id: 7, rank: 3, candidate: true}, "mis-sample"},
		{misJoinMsg{}, "mis-join"},
		{misSyncMsg{id: 7}, "mis-sync"},
		{misDecideMsg{join: true}, "mis-decide"},
	}
	for _, tc := range msgs {
		if b := tc.m.Bits(); b <= 0 || b > 128 {
			t.Errorf("%T.Bits() = %d, want a positive CONGEST-word size", tc.m, b)
		}
		k, ok := tc.m.(sim.Kinded)
		if !ok || k.MsgKind() != tc.kind {
			t.Errorf("%T: want kind %q", tc.m, tc.kind)
		}
	}
}
