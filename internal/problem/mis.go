package problem

import (
	"errors"
	"math"
	"sort"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/metrics"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// The MIS algorithm, in the style of Ghaffari–Moses–Pandurangan
// (arXiv 2204.08359): O(log log n) worst-case awake complexity w.h.p.
//
// Stage 1, sparsify (misPhases(n) phases of 2 awake rounds each):
// every undecided node wakes in both rounds of every phase. In round
// one of phase i it becomes a candidate with probability 2^(-L/2^i)
// (L = ceil(log2 n); the probability doubles its exponent each phase,
// reaching >= 1/2 by the last phase) and exchanges (id, rank,
// candidate) with all neighbors. A candidate joins the MIS iff its
// (rank, id) pair is strictly smallest among candidate neighbors —
// a total order, so two adjacent candidates never join together. In
// round two joiners announce; undecided receivers become covered and
// exit. After the last phase the residual graph has small degree
// w.h.p., so the serial cleanup below stays within the budget.
//
// Stage 2, cleanup: one sync round in which the residual (still
// undecided) nodes exchange IDs, then an ID-slotted serial greedy:
// node v announces join/decline at round slot(v) = sync + ID(v), and
// wakes only at the slots of its lower-ID residual neighbors. v joins
// iff no lower-ID residual neighbor joined; silence at a slot means
// decline, so covered nodes simply stop waking. Slots are globally
// unique, the scheduler skips all-asleep rounds, and only awake
// rounds are charged — the ID-sized window is free.
//
// Correctness is deterministic (both stages preserve independence and
// leave no uncovered undecided node); only the awake bound is
// probabilistic, which is why the conformance envelope carries
// BudgetSlack under chaos.

// BudgetCMIS is the measured awake-budget constant for the MIS
// problem: the worst awake/envelope ratio over seeded
// RandomConnected(n, 3n) sweeps (200 seeds, n up to 1024) is ~3.0
// against the log2 log2 n + 1 envelope; the constant leaves ~1.5x
// headroom so the budget catches regressions without flaking on seed
// variance (the same calibration style as the MST constants in
// internal/conform).
const BudgetCMIS = 5

// MISAwakeBudget returns the per-node awake envelope for an n-node
// MIS run: ceil(BudgetCMIS · (log2 log2 n + 1)), with n clamped to 4
// so the double logarithm stays positive. ok is always true.
func MISAwakeBudget(n int) (budget int64, ok bool) {
	if n < 4 {
		n = 4
	}
	loglog := math.Log2(math.Log2(float64(n)))
	return int64(math.Ceil(BudgetCMIS * (loglog + 1))), true
}

// misPhases returns the sparsify-stage shape for n nodes: L = ceil(
// log2 n) and the phase count P = ceil(log2 L) + 1, the smallest
// count that lets the candidacy probability 2^(-L/2^i) reach 1/2,
// plus one extra phase of margin.
func misPhases(n int) (L, P int) {
	if n < 2 {
		return 1, 1
	}
	L = int(math.Ceil(math.Log2(float64(n))))
	if L < 1 {
		L = 1
	}
	P = 0
	for 1<<P < L {
		P++
	}
	return L, P + 1
}

// misSampleMsg is the round-one exchange of a sparsify phase.
type misSampleMsg struct {
	id        int64
	rank      uint32
	candidate bool
}

func (m misSampleMsg) Bits() int { return ldt.FieldBits(m.id) + 32 + 1 }

func (misSampleMsg) MsgKind() string { return "mis-sample" }

// misJoinMsg announces an MIS join in round two of a sparsify phase.
type misJoinMsg struct{}

func (misJoinMsg) Bits() int { return 1 }

func (misJoinMsg) MsgKind() string { return "mis-join" }

// misSyncMsg is the cleanup sync exchange among residual nodes.
type misSyncMsg struct {
	id int64
}

func (m misSyncMsg) Bits() int { return ldt.FieldBits(m.id) }

func (misSyncMsg) MsgKind() string { return "mis-sync" }

// misDecideMsg is a cleanup-slot announcement.
type misDecideMsg struct {
	join bool
}

func (misDecideMsg) Bits() int { return 1 }

func (misDecideMsg) MsgKind() string { return "mis-decide" }

// misProblem is the MIS entry of the problem registry.
type misProblem struct{}

func (misProblem) Name() string { return "mis" }

func (misProblem) Budget(n int) (int64, bool) { return MISAwakeBudget(n) }

func (misProblem) Run(g *graph.Graph, opts core.Options) (*Result, error) {
	return RunMIS(g, opts)
}

func (misProblem) ConformCheck(g *graph.Graph, r *Result) conform.Check {
	return conform.MISCheck(graph.MISViolations(g, r.InMIS))
}

func (p misProblem) Verify(g *graph.Graph, r *Result) error {
	if r == nil || len(r.InMIS) != g.N() {
		return errors.New("problem: MIS run produced no membership vector")
	}
	if c := p.ConformCheck(g, r); c.Status != conform.StatusPass {
		return errors.New("problem: " + c.Detail)
	}
	return nil
}

// node decision states of the MIS program.
const (
	misUndecided = iota
	misIn
	misOut
)

// RunMIS computes a maximal independent set of g in the sleeping
// model. The result's InMIS marks membership per node index; Phases
// reports the sparsify phase count plus one for cleanup. Unlike the
// MST runners, g need not be connected.
func RunMIS(g *graph.Graph, opts core.Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("problem: nil graph")
	}
	n := g.N()
	L, P := misPhases(n)
	inMIS := make([]bool, n) // each node writes only its own index

	cfg := sim.Config{
		Graph:             g,
		Engine:            opts.Engine,
		Seed:              opts.Seed,
		BitCap:            opts.BitCap,
		AwakeBudget:       opts.AwakeBudget,
		RecordAwakeRounds: opts.RecordAwakeRounds,
		Interceptor:       opts.Interceptor,
		Chooser:           opts.Chooser,
		Trace:             opts.Trace,
		Metrics:           opts.Metrics,
		Transport:         opts.Transport,
		Cancel:            opts.Cancel,
	}
	res, err := sim.Run(cfg, func(nd *sim.Node) error {
		deg := nd.Degree()
		id := nd.ID()
		state := misUndecided

		// stepDone attributes the awake rounds spent since the last
		// call to one step, keeping the attributed==charged identity
		// the conformance checker verifies.
		stepAwake := int64(0)
		stepDone := func(phase int, step trace.Step) {
			d := nd.AwakeCount() - stepAwake
			stepAwake = nd.AwakeCount()
			if d == 0 {
				return
			}
			nd.EmitStep(phase, step, d)
			if m := nd.Metrics(); m != nil {
				m.Add(metrics.StepName(step.String()), d)
				m.Add(metrics.PhaseName(phase), d)
			}
		}

		// Stage 1: sparsify. Phase i occupies rounds 2i-1 and 2i.
		for i := 1; i <= P && state == misUndecided; i++ {
			nd.EmitPhase(i, 0)
			nd.SleepUntil(int64(2*i - 1))
			prob := math.Exp2(-float64(L) / float64(int64(1)<<uint(i)))
			candidate := nd.Rand().Float64() < prob
			rank := nd.Rand().Uint32()
			out := make(sim.Outbox, deg)
			for pt := 0; pt < deg; pt++ {
				out[pt] = misSampleMsg{id: id, rank: rank, candidate: candidate}
			}
			in := nd.Exchange(out)
			join := candidate
			if candidate {
				for _, raw := range in {
					m, ok := raw.(misSampleMsg)
					if !ok || !m.candidate {
						continue
					}
					if m.rank < rank || (m.rank == rank && m.id < id) {
						join = false
						break
					}
				}
			}
			var announce sim.Outbox
			if join {
				announce = make(sim.Outbox, deg)
				for pt := 0; pt < deg; pt++ {
					announce[pt] = misJoinMsg{}
				}
			}
			in = nd.Exchange(announce)
			switch {
			case join:
				state = misIn
			default:
				for _, raw := range in {
					if _, ok := raw.(misJoinMsg); ok {
						state = misOut
						break
					}
				}
			}
			stepDone(i, trace.StepMISSample)
		}

		// Stage 2: cleanup of the residual graph.
		if state == misUndecided {
			nd.EmitPhase(P+1, 0)
			sync := int64(2*P + 1)
			nd.SleepUntil(sync)
			out := make(sim.Outbox, deg)
			for pt := 0; pt < deg; pt++ {
				out[pt] = misSyncMsg{id: id}
			}
			in := nd.Exchange(out)
			var lower []int64
			for _, raw := range in {
				if m, ok := raw.(misSyncMsg); ok && m.id < id {
					lower = append(lower, m.id)
				}
			}
			sort.Slice(lower, func(i, j int) bool { return lower[i] < lower[j] })
			for _, nbr := range lower {
				nd.SleepUntil(sync + nbr)
				in := nd.Exchange(nil)
				for _, raw := range in {
					if m, ok := raw.(misDecideMsg); ok && m.join {
						state = misOut
						break
					}
				}
				if state != misUndecided {
					break
				}
			}
			if state == misUndecided {
				nd.SleepUntil(sync + id)
				announce := make(sim.Outbox, deg)
				for pt := 0; pt < deg; pt++ {
					announce[pt] = misDecideMsg{join: true}
				}
				nd.Exchange(announce)
				state = misIn
			}
			stepDone(P+1, trace.StepMISCleanup)
		}

		inMIS[nd.Index()] = state == misIn
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Problem: "mis", InMIS: inMIS, Sim: res, Phases: P + 1}, nil
}
