package problem

import (
	"reflect"

	"sleepmst/internal/transport"
)

// Wire codecs for the problem-suite message vocabulary (transport
// kind range 64-79), registered at init so every registered problem
// can run over a real transport without further setup.

func init() {
	transport.Register(transport.Codec{
		Kind: 64, Name: "mis/sample", Type: reflect.TypeOf(misSampleMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(misSampleMsg)
			w.Int(m.id)
			w.Uint(uint64(m.rank))
			w.Bool(m.candidate)
		},
		Decode: func(r *transport.Reader) interface{} {
			return misSampleMsg{id: r.Int(), rank: uint32(r.Uvarint()), candidate: r.Bool()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 65, Name: "mis/join", Type: reflect.TypeOf(misJoinMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {},
		Decode: func(r *transport.Reader) interface{} { return misJoinMsg{} },
	})
	transport.Register(transport.Codec{
		Kind: 66, Name: "mis/sync", Type: reflect.TypeOf(misSyncMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Int(msg.(misSyncMsg).id)
		},
		Decode: func(r *transport.Reader) interface{} {
			return misSyncMsg{id: r.Int()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 67, Name: "mis/decide", Type: reflect.TypeOf(misDecideMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Bool(msg.(misDecideMsg).join)
		},
		Decode: func(r *transport.Reader) interface{} {
			return misDecideMsg{join: r.Bool()}
		},
	})
}
