package problem_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sleepmst/internal/chaos"
	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/metrics"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// The differential engine harness: the event engine's correctness
// proof. For every registered problem × size × clean/chaos cell, the
// same (graph, seed, problem, chaos policy) tuple is replayed on both
// engines and the full observable surface is compared — trace JSONL
// byte-for-byte, conform verdict JSON byte-for-byte, sim.Result
// field-for-field, and the merged metrics registry — so any semantic
// drift between the schedulers fails loudly with the first differing
// artifact. Run errors are compared by outcome classification, not
// text: when several node programs fail in one batch the goroutine
// engine reports whichever parked first (scheduler noise), so the
// error string is the one surface that was never deterministic.

// diffSizes is the size sweep of the differential suite; the largest
// size is skipped under -short.
var diffSizes = []int{4, 16, 64, 256}

// diffChaos is the chaos policy of the chaos cells: every fault
// process at once, coordinate-hashed (stateless), so both engines see
// identical perturbations regardless of event arrival order.
func diffChaos(seed int64) sim.Interceptor {
	return chaos.New(chaos.Options{
		Seed:          seed,
		DropRate:      0.02,
		DelayRate:     0.03,
		DupRate:       0.02,
		OversleepRate: 0.02,
		CrashFrac:     0.1,
	})
}

// engineRun is everything one engine produced for one cell.
type engineRun struct {
	trace   []byte
	verdict []byte
	metrics string
	sim     *sim.Result
	result  *problem.Result
	err     error
}

// runCell executes one (problem, n, chaos) cell on the given engine
// with the full observability surface enabled.
func runCell(t *testing.T, p problem.Problem, g *graph.Graph, engine sim.Engine, withChaos bool) engineRun {
	t.Helper()
	rec := trace.NewRecorder(1 << 15)
	reg := metrics.New()
	opts := core.Options{
		Engine:            engine,
		Seed:              1,
		RecordAwakeRounds: true,
		Trace:             rec,
		Metrics:           reg,
	}
	if withChaos {
		opts.Interceptor = diffChaos(7)
	}
	r, err := p.Run(g, opts)

	var tr bytes.Buffer
	if werr := rec.WriteJSONL(&tr); werr != nil {
		t.Fatalf("%s: write trace: %v", p.Name(), werr)
	}
	suite := conform.Suite{
		Info:   conform.RunInfo{Algorithm: p.Name(), N: g.N(), Seed: 1, Budget: p.Budget},
		Meta:   rec.Meta(),
		Events: rec.Events(),
	}
	if r != nil {
		suite.Extra = []conform.Check{p.ConformCheck(g, r)}
	}
	var vj bytes.Buffer
	if werr := suite.Verdict().WriteJSON(&vj); werr != nil {
		t.Fatalf("%s: write verdict: %v", p.Name(), werr)
	}
	out := engineRun{
		trace:   tr.Bytes(),
		verdict: vj.Bytes(),
		metrics: reg.String(),
		result:  r,
		err:     err,
	}
	if r != nil {
		out.sim = r.Sim
	}
	return out
}

// classify reduces a run to its outcome class, the error-insensitive
// verdict the chaos sweeps report.
func classify(p problem.Problem, g *graph.Graph, r *problem.Result, err error) string {
	if p.Name() == "mis" {
		var inMIS []bool
		if r != nil {
			inMIS = r.InMIS
		}
		return chaos.ClassifyMIS(g, inMIS, err).String()
	}
	var out *core.Outcome
	if r != nil {
		out = r.Outcome
	}
	return chaos.Classify(g, out, err).String()
}

// firstLineDiff locates the first differing JSONL line for a readable
// failure message.
func firstLineDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  goroutine: %s\n  event:     %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: goroutine %d lines, event %d lines", len(al), len(bl))
}

// TestEngineDifferential replays every registered problem on both
// engines across the size sweep, clean and under chaos, and asserts
// the engines are byte-identical on every deterministic surface.
func TestEngineDifferential(t *testing.T) {
	for _, name := range problem.Names() {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range diffSizes {
			for _, withChaos := range []bool{false, true} {
				mode := "clean"
				if withChaos {
					mode = "chaos"
				}
				t.Run(fmt.Sprintf("%s/n=%d/%s", name, n, mode), func(t *testing.T) {
					if testing.Short() && n > 64 {
						t.Skip("large cell skipped in -short")
					}
					g := graph.RandomConnected(n, 3*n, graph.GenConfig{Seed: int64(n)})
					gor := runCell(t, p, g, sim.EngineGoroutine, withChaos)
					evt := runCell(t, p, g, sim.EngineEvent, withChaos)

					if !bytes.Equal(gor.trace, evt.trace) {
						t.Errorf("trace JSONL diverges:\n%s", firstLineDiff(gor.trace, evt.trace))
					}
					if !bytes.Equal(gor.verdict, evt.verdict) {
						t.Errorf("conform verdict diverges:\n%s", firstLineDiff(gor.verdict, evt.verdict))
					}
					if gor.metrics != evt.metrics {
						t.Errorf("metrics diverge:\ngoroutine:\n%s\nevent:\n%s", gor.metrics, evt.metrics)
					}
					if (gor.err == nil) != (evt.err == nil) {
						t.Errorf("error presence diverges: goroutine=%v event=%v", gor.err, evt.err)
					}
					if cg, ce := classify(p, g, gor.result, gor.err), classify(p, g, evt.result, evt.err); cg != ce {
						t.Errorf("outcome class diverges: goroutine=%s event=%s", cg, ce)
					}
					if gor.sim != nil && evt.sim != nil && !reflect.DeepEqual(gor.sim, evt.sim) {
						t.Errorf("sim.Result diverges:\ngoroutine: %+v\nevent:     %+v", gor.sim, evt.sim)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialMergedMetrics fans one problem's seed sweep
// into a merged registry per engine — the aggregation path the sweep
// pool uses — and asserts the merged registries agree, proving
// commutativity holds across engines, not just per-run equality.
func TestEngineDifferentialMergedMetrics(t *testing.T) {
	p, err := problem.Lookup("mst/randomized")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(32, 96, graph.GenConfig{Seed: 32})
	merged := make(map[sim.Engine]*metrics.Registry)
	for _, engine := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		regs := make([]*metrics.Registry, 0, 4)
		for seed := int64(0); seed < 4; seed++ {
			reg := metrics.New()
			if _, err := p.Run(g, core.Options{Engine: engine, Seed: seed, Metrics: reg}); err != nil {
				t.Fatalf("engine %v seed %d: %v", engine, seed, err)
			}
			regs = append(regs, reg)
		}
		merged[engine] = metrics.MergeAll(regs)
	}
	if got, want := merged[sim.EngineEvent].String(), merged[sim.EngineGoroutine].String(); got != want {
		t.Errorf("merged metrics diverge:\ngoroutine:\n%s\nevent:\n%s", want, got)
	}
}
