// MIS conformance matrix: the problem suite's MIS resident, at n ∈
// {16, 64, 256}, must satisfy the strict invariant catalog plus the
// mis-valid oracle on a clean run, and the relaxed catalog (plus the
// MIS chaos oracle's correct-mis verdict) under calibrated drop and
// delay injection — the same matrix shape internal/core pins for the
// MST algorithms. An external test package so it exercises the facade
// and registry the way sleepsim and mstbench do.
package problem_test

import (
	"bytes"
	"fmt"
	"testing"

	"sleepmst"
	"sleepmst/internal/chaos"
	"sleepmst/internal/conform"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// conformCap is the recorder capacity used by the matrix: big enough
// that no n=256 cell drops events (drops would skip most checks).
const conformCap = 1 << 21

// conformSizes is the node-count axis of the matrix. n=256 cells are
// skipped in -short mode.
var conformSizes = []int{16, 64, 256}

// conformGraph is the matrix topology: random connected, average
// degree 6, one deterministic instance per size — the same family the
// MST matrix uses, so envelope constants are comparable.
func conformGraph(n int) *sleepmst.Graph {
	return sleepmst.RandomConnected(n, 3*n, int64(n*1000))
}

// misSuite bundles a recorded MIS run for conformance assertion: the
// registry budget wired through RunInfo.Budget and the mis-valid
// oracle appended via Extra.
func misSuite(p problem.Problem, g *sleepmst.Graph, rec *trace.Recorder, r *problem.Result, info conform.RunInfo) conform.Suite {
	info.Algorithm = p.Name()
	info.Budget = p.Budget
	return conform.Suite{
		Info:   info,
		Meta:   rec.Meta(),
		Events: rec.Events(),
		Extra:  []conform.Check{p.ConformCheck(g, r)},
	}
}

// TestMISConformanceCleanMatrix runs the strict catalog — no slack,
// no relaxations — on drop-free MIS traces, and demands that both the
// awake-budget envelope and the mis-valid oracle are exercised (not
// skipped) in every cell.
func TestMISConformanceCleanMatrix(t *testing.T) {
	p, err := problem.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range conformSizes {
		n := n
		t.Run(fmt.Sprintf("mis/n=%d", n), func(t *testing.T) {
			if testing.Short() && n > 64 {
				t.Skip("n=256 cell skipped in short mode")
			}
			g := conformGraph(n)
			rec := trace.NewRecorder(conformCap)
			r, err := p.Run(g, sleepmst.Options{Seed: 1, Trace: rec})
			if err != nil {
				t.Fatalf("mis n=%d: %v", n, err)
			}
			if d := rec.Dropped(); d != 0 {
				t.Fatalf("recorder dropped %d events; raise conformCap", d)
			}
			v := misSuite(p, g, rec, r, conform.RunInfo{N: n, Seed: 1}).Assert(t)
			for _, name := range []string{conform.CheckAwakeBudget, conform.CheckMISValid} {
				if c := v.Lookup(name); c == nil || c.Status != conform.StatusPass {
					t.Errorf("%s not exercised: %+v", name, c)
				}
			}
		})
	}
}

// conformFaults is the fault axis: message drops and message delays,
// both at a per-cell calibrated rate (~0.5 injected faults per run,
// matching the MST matrix calibration).
var conformFaults = []struct {
	name string
	opts func(rate float64, seed int64) chaos.Options
}{
	{"drop", func(rate float64, seed int64) chaos.Options {
		return chaos.Options{Seed: seed, DropRate: rate}
	}},
	{"delay", func(rate float64, seed int64) chaos.Options {
		return chaos.Options{Seed: seed, DelayRate: rate, MaxDelay: 2}
	}},
}

// TestMISConformanceChaosMatrix injects calibrated drops/delays into
// every cell and asserts the MIS oracle still reports correct-mis and
// the relaxed catalog passes. Chaos seeds are searched the same way
// the MST matrix does, absorbing drift in message counts.
func TestMISConformanceChaosMatrix(t *testing.T) {
	p, err := problem.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range conformSizes {
		for _, fault := range conformFaults {
			n, fault := n, fault
			t.Run(fmt.Sprintf("mis/n=%d/%s", n, fault.name), func(t *testing.T) {
				if testing.Short() && n > 64 {
					t.Skip("n=256 cell skipped in short mode")
				}
				g := conformGraph(n)
				clean, err := p.Run(g, sleepmst.Options{Seed: 1})
				if err != nil {
					t.Fatalf("clean run: %v", err)
				}
				rate := 0.5 / float64(clean.Sim.MessagesSent)
				for seed := int64(1); seed <= 12; seed++ {
					pol := chaos.New(fault.opts(rate, seed))
					rec := trace.NewRecorder(conformCap)
					r, err := p.Run(g, sleepmst.Options{Seed: 1, Trace: rec, Interceptor: pol})
					var inMIS []bool
					if r != nil {
						inMIS = r.InMIS
					}
					if chaos.ClassifyMIS(g, inMIS, err) != chaos.CorrectMIS {
						continue
					}
					if seed > 2 {
						t.Logf("surviving chaos seed drifted to %d (calibrated ≤ 2)", seed)
					}
					misSuite(p, g, rec, r, conform.RunInfo{N: n, Seed: 1,
						Relaxed: true, BudgetSlack: 2}).Assert(t)
					return
				}
				t.Fatalf("no chaos seed in 1..12 yields correct-mis at rate %.3g", rate)
			})
		}
	}
}

// TestMISFixedSeedReplayBitIdentical is the replay half of the matrix
// contract: the same (graph, seed) cell run twice in-process must
// produce byte-identical JSONL traces and identical membership
// vectors.
func TestMISFixedSeedReplayBitIdentical(t *testing.T) {
	p, err := problem.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{16, 64} {
		g := conformGraph(n)
		run := func() ([]byte, []bool) {
			rec := trace.NewRecorder(conformCap)
			r, err := p.Run(g, sleepmst.Options{Seed: 3, Trace: rec})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			var buf bytes.Buffer
			if err := rec.WriteJSONL(&buf); err != nil {
				t.Fatalf("n=%d: write: %v", n, err)
			}
			return buf.Bytes(), r.InMIS
		}
		firstTrace, firstSet := run()
		secondTrace, secondSet := run()
		if !bytes.Equal(firstTrace, secondTrace) {
			t.Errorf("n=%d: MIS trace not reproducible across runs", n)
		}
		for v := range firstSet {
			if firstSet[v] != secondSet[v] {
				t.Errorf("n=%d: node %d membership differs across replays", n, v)
			}
		}
	}
}
