// Registry and adapter tests for the problem suite, from the outside:
// qualified names, bare MST aliases, the listed-choices error, and the
// MST adapter's oracle/budget wiring.
package problem_test

import (
	"strings"
	"testing"

	"sleepmst"
	"sleepmst/internal/conform"
	"sleepmst/internal/metrics"
	"sleepmst/internal/problem"
)

// TestNamesSortedAndComplete pins the registry surface: the qualified
// spelling of every problem, in sorted order.
func TestNamesSortedAndComplete(t *testing.T) {
	want := []string{"mis", "mst/baseline", "mst/deterministic", "mst/ghs", "mst/logstar", "mst/randomized"}
	got := problem.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLookupAliases: every bare MST spelling must resolve to the same
// problem as its qualified name.
func TestLookupAliases(t *testing.T) {
	for bare, qualified := range map[string]string{
		"randomized":    "mst/randomized",
		"deterministic": "mst/deterministic",
		"logstar":       "mst/logstar",
		"baseline":      "mst/baseline",
		"ghs":           "mst/ghs",
	} {
		p, err := problem.Lookup(bare)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", bare, err)
		}
		if p.Name() != qualified {
			t.Errorf("Lookup(%q).Name() = %q, want %q", bare, p.Name(), qualified)
		}
		q, err := problem.Lookup(qualified)
		if err != nil || q.Name() != p.Name() {
			t.Errorf("Lookup(%q) = %v, %v; want same problem as alias", qualified, q, err)
		}
	}
}

// TestLookupUnknownListsChoices: the rejection error must name every
// valid spelling, qualified and bare — it is what mstbench prints.
func TestLookupUnknownListsChoices(t *testing.T) {
	_, err := problem.Lookup("mst/bogus")
	if err == nil {
		t.Fatal("Lookup(mst/bogus): want error, got nil")
	}
	for _, choice := range append(problem.Names(), "randomized", "ghs") {
		if !strings.Contains(err.Error(), choice) {
			t.Errorf("error %q does not list choice %q", err, choice)
		}
	}
}

// TestMSTAdapter runs an MST problem through the generic interface and
// checks the full contract: a verified spanning tree, a passing weight
// check, and a budget that matches the conform catalog envelope.
func TestMSTAdapter(t *testing.T) {
	p, err := problem.Lookup("mst/randomized")
	if err != nil {
		t.Fatal(err)
	}
	n := 32
	g := sleepmst.RandomConnected(n, 3*n, 7)
	r, err := p.Run(g, sleepmst.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Problem != "mst/randomized" || r.Outcome == nil || r.InMIS != nil {
		t.Fatalf("MST result shape wrong: %+v", r)
	}
	if err := p.Verify(g, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if c := p.ConformCheck(g, r); c.Status != conform.StatusPass {
		t.Errorf("ConformCheck: %+v", c)
	}
	gotBudget, gotOK := p.Budget(n)
	wantBudget, wantOK := conform.AwakeBudget(conform.AlgoRandomized, n)
	if gotBudget != wantBudget || gotOK != wantOK {
		t.Errorf("Budget(%d) = %d,%v; want catalog envelope %d,%v", n, gotBudget, gotOK, wantBudget, wantOK)
	}
}

// TestBaselineBudgetSkipped: the comparators carry no paper envelope,
// so their Budget must report ok=false (the conformance budget check
// then skips rather than inventing a bound).
func TestBaselineBudgetSkipped(t *testing.T) {
	for _, name := range []string{"mst/baseline", "mst/ghs"} {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := p.Budget(64); ok {
			t.Errorf("%s: Budget = %d, ok=true; comparators have no envelope", name, b)
		}
	}
}

// TestNodeAvgRecordedForAllProblems: every registry entry, run with a
// metrics registry, must record the node-averaged awake pair — the
// accounting the problem suite promises uniformly.
func TestNodeAvgRecordedForAllProblems(t *testing.T) {
	n := 24
	g := sleepmst.RandomConnected(n, 3*n, 9)
	for _, name := range problem.Names() {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		r, err := p.Run(g, sleepmst.Options{Seed: 1, Metrics: reg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nodes := reg.Get(metrics.NodeAvgNodes); nodes != int64(n) {
			t.Errorf("%s: %s = %d, want %d", name, metrics.NodeAvgNodes, nodes, n)
		}
		if sum := reg.Get(metrics.NodeAvgSum); sum <= 0 {
			t.Errorf("%s: %s = %d, want positive", name, metrics.NodeAvgSum, sum)
		}
		avg := metrics.NodeAvgAwake(reg)
		if avg <= 0 || avg > float64(r.Sim.MaxAwake()) {
			t.Errorf("%s: node-avg awake %.2f outside (0, max=%d]", name, avg, r.Sim.MaxAwake())
		}
	}
}
