package problem_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"sleepmst/internal/chaos"
	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/metrics"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
	"sleepmst/internal/transport"
)

// The transport differential harness: the wire layer's correctness
// proof, in the image of the engine harness above. For every cell the
// same (graph, seed, problem) tuple runs three ways — without a
// transport, over the in-process backend, and over real TCP sockets —
// and the full observable surface must agree byte-for-byte: the
// in-memory run pins the model semantics, the Inproc run proves the
// codec round-trips every message type faithfully, and the TCP run
// proves the socket backend adds nothing but wire.

// runCellOpts executes one cell with the full observability surface
// enabled, after applying mut to the base options.
func runCellOpts(t *testing.T, p problem.Problem, g *graph.Graph, mut func(*core.Options)) engineRun {
	t.Helper()
	rec := trace.NewRecorder(1 << 15)
	reg := metrics.New()
	opts := core.Options{
		Seed:              1,
		RecordAwakeRounds: true,
		Trace:             rec,
		Metrics:           reg,
	}
	mut(&opts)
	r, err := p.Run(g, opts)

	var tr bytes.Buffer
	if werr := rec.WriteJSONL(&tr); werr != nil {
		t.Fatalf("%s: write trace: %v", p.Name(), werr)
	}
	suite := conform.Suite{
		Info:   conform.RunInfo{Algorithm: p.Name(), N: g.N(), Seed: 1, Budget: p.Budget},
		Meta:   rec.Meta(),
		Events: rec.Events(),
	}
	if r != nil {
		suite.Extra = []conform.Check{p.ConformCheck(g, r)}
	}
	var vj bytes.Buffer
	if werr := suite.Verdict().WriteJSON(&vj); werr != nil {
		t.Fatalf("%s: write verdict: %v", p.Name(), werr)
	}
	out := engineRun{
		trace:   tr.Bytes(),
		verdict: vj.Bytes(),
		metrics: reg.String(),
		result:  r,
		err:     err,
	}
	if r != nil {
		out.sim = r.Sim
	}
	return out
}

// runTxCell executes one cell with the full observability surface,
// carrying deliveries over tx (nil = the plain in-memory path).
func runTxCell(t *testing.T, p problem.Problem, g *graph.Graph, tx transport.Transport, withChaos bool) engineRun {
	t.Helper()
	if tx != nil {
		defer tx.Close()
	}
	return runCellOpts(t, p, g, func(opts *core.Options) {
		opts.Transport = tx
		if withChaos {
			opts.Interceptor = diffChaos(7)
		}
	})
}

// diffTxCompare asserts two runs of one cell agree on every
// deterministic surface.
func diffTxCompare(t *testing.T, labelA, labelB string, a, b engineRun) {
	t.Helper()
	if !bytes.Equal(a.trace, b.trace) {
		t.Errorf("%s vs %s: trace JSONL diverges:\n%s", labelA, labelB, firstLineDiff(a.trace, b.trace))
	}
	if !bytes.Equal(a.verdict, b.verdict) {
		t.Errorf("%s vs %s: conform verdict diverges:\n%s", labelA, labelB, firstLineDiff(a.verdict, b.verdict))
	}
	if a.metrics != b.metrics {
		t.Errorf("%s vs %s: metrics diverge:\n%s:\n%s\n%s:\n%s", labelA, labelB, labelA, a.metrics, labelB, b.metrics)
	}
	if (a.err == nil) != (b.err == nil) {
		t.Errorf("%s vs %s: error presence diverges: %v vs %v", labelA, labelB, a.err, b.err)
	}
	if a.sim != nil && b.sim != nil && !reflect.DeepEqual(a.sim, b.sim) {
		t.Errorf("%s vs %s: sim.Result diverges:\n%s: %+v\n%s: %+v", labelA, labelB, labelA, a.sim, labelB, b.sim)
	}
}

// TestTransportDifferential sweeps the headline problems across sizes,
// clean and under chaos (chaos exercises delayed-copy frames, whose
// FIFO replay order must survive the wire).
func TestTransportDifferential(t *testing.T) {
	for _, name := range []string{"mst/randomized", "mis"} {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{4, 16, 64} {
			for _, withChaos := range []bool{false, true} {
				mode := "clean"
				if withChaos {
					mode = "chaos"
				}
				t.Run(fmt.Sprintf("%s/n=%d/%s", name, n, mode), func(t *testing.T) {
					if testing.Short() && n > 16 {
						t.Skip("large cell skipped in -short")
					}
					// Sparse graphs: each undirected edge costs two TCP
					// connections, so the cell stays far inside the fd
					// budget.
					g := graph.RandomConnected(n, 2*n, graph.GenConfig{Seed: int64(n)})
					plain := runTxCell(t, p, g, nil, withChaos)
					inproc := runTxCell(t, p, g, transport.NewInproc(), withChaos)
					tcp := runTxCell(t, p, g, transport.NewTCP(transport.TCPConfig{}), withChaos)
					diffTxCompare(t, "plain", "inproc", plain, inproc)
					diffTxCompare(t, "inproc", "tcp", inproc, tcp)
				})
			}
		}
	}
}

// TestTransportAllProblems runs every registered problem over both
// backends at a small size — the codec-coverage sweep: any message
// type a problem ships that lacks a codec, or round-trips inexactly,
// fails its cell here.
func TestTransportAllProblems(t *testing.T) {
	for _, name := range problem.Names() {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			g := graph.RandomConnected(8, 16, graph.GenConfig{Seed: 8})
			plain := runTxCell(t, p, g, nil, false)
			inproc := runTxCell(t, p, g, transport.NewInproc(), false)
			tcp := runTxCell(t, p, g, transport.NewTCP(transport.TCPConfig{}), false)
			if plain.err != nil {
				t.Fatalf("plain run failed: %v", plain.err)
			}
			diffTxCompare(t, "plain", "inproc", plain, inproc)
			diffTxCompare(t, "inproc", "tcp", inproc, tcp)
		})
	}
}

// dupTransport wraps a backend to act like the worst legal
// at-least-once wire: every frame is shipped twice, and the first
// send of each new round re-ships the link's previous frame — a
// retransmission surfacing after its round already drained. The
// simulator's drain must filter both duplicate kinds (same-round by
// frame coordinates, stale by round), so a run over this wire stays
// byte-identical to the plain in-memory run.
type dupTransport struct {
	transport.Transport
}

func (d dupTransport) Dial(from, to int) (transport.Link, error) {
	l, err := d.Transport.Dial(from, to)
	if err != nil {
		return nil, err
	}
	return &dupLink{inner: l}, nil
}

type dupLink struct {
	inner transport.Link
	last  transport.Frame
	has   bool
}

func (l *dupLink) Send(f transport.Frame) error {
	if l.has && l.last.Round < f.Round {
		// Stale duplicate: the original was drained last round.
		if err := l.inner.Send(l.last); err != nil {
			return err
		}
	}
	l.last, l.has = f, true
	if err := l.inner.Send(f); err != nil {
		return err
	}
	// Same-round duplicate of every frame.
	return l.inner.Send(f)
}

// TestTransportDuplicateDelivery pins the receiver-side dedup: TCP
// redial-and-resend can deliver a frame twice (a send error does not
// prove loss), and the drain must not let a duplicate displace a real
// frame or abort a later round as a stray. The delays mode adds a
// delay/dup interceptor to produce Seq > 0 delayed-copy frames, so
// their dedup key is exercised too; like the chaos cells of the main
// sweep, that mode only demands byte-identical behavior (chaos may
// legitimately break the algorithm, but it must break both runs
// identically — before the dedup fix the dup wire aborted with
// "drained stray frame" errors the plain run never produced).
func TestTransportDuplicateDelivery(t *testing.T) {
	for _, name := range []string{"mst/randomized", "mis"} {
		p, err := problem.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, withDelays := range []bool{false, true} {
			mode := "clean"
			if withDelays {
				mode = "delays"
			}
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				g := graph.RandomConnected(16, 32, graph.GenConfig{Seed: 16})
				run := func(tx transport.Transport) engineRun {
					if tx != nil {
						defer tx.Close()
					}
					return runCellOpts(t, p, g, func(opts *core.Options) {
						opts.Transport = tx
						if withDelays {
							opts.Interceptor = chaos.New(chaos.Options{Seed: 7, DelayRate: 0.15, DupRate: 0.05})
						}
					})
				}
				plain := run(nil)
				dup := run(dupTransport{transport.NewInproc()})
				if !withDelays && plain.err != nil {
					t.Fatalf("plain run failed: %v", plain.err)
				}
				diffTxCompare(t, "plain", "dup-wire", plain, dup)
			})
		}
	}
}

// TestTransportFaultInjection runs MST over TCP with injected wire
// drops and delays. The retry budget must mask every injected drop,
// so the run still produces a correct MST — transport faults below
// the model leave the sleeping-model semantics untouched.
func TestTransportFaultInjection(t *testing.T) {
	p, err := problem.Lookup("mst/randomized")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(32, 64, graph.GenConfig{Seed: 32})
	tx := transport.WithFaults(transport.NewTCP(transport.TCPConfig{}), transport.FaultConfig{
		Seed:      3,
		DropProb:  0.05,
		DelayProb: 0.05,
		MaxDelay:  500 * time.Microsecond,
		Retries:   8,
	})
	faulty := runTxCell(t, p, g, tx, false)
	if faulty.err != nil {
		t.Fatalf("faulty run failed: %v", faulty.err)
	}
	if err := p.Verify(g, faulty.result); err != nil {
		t.Fatalf("faulty run produced incorrect output: %v", err)
	}
	s := tx.TransportStats()
	if s.InjectedDrops == 0 && s.InjectedDelays == 0 {
		t.Fatalf("fault injector idle: stats %+v", s)
	}
	clean := runTxCell(t, p, g, nil, false)
	diffTxCompare(t, "clean", "faulty-tcp", clean, faulty)
}
