// Package problem is the sleeping-model problem suite: a uniform
// interface over every distributed problem the simulator can run —
// the paper's three awake-optimal MST algorithms (plus the baseline
// and classic-GHS comparators) and a randomized maximal independent
// set with O(log log n) worst-case awake complexity (in the style of
// Ghaffari–Moses–Pandurangan, arXiv 2204.08359).
//
// A Problem bundles what the drivers need to treat algorithms
// generically: how to run it on a graph (Run), the per-node awake
// envelope its conformance verdict is checked against (Budget), a
// correctness oracle over the produced output (Verify), and the
// trace-checker check that encodes that oracle for verdicts
// (ConformCheck). Problems are addressed by qualified registry names
// (`mis`, `mst/randomized`, ...); the bare MST spellings used by older
// CLIs (`randomized`, `ghs`, ...) resolve as aliases.
//
// All runs flow through internal/sim, so every problem inherits the
// sleeping-model accounting for free: worst-case awake per node,
// node-averaged awake (the awake/node-avg/* metric pair), structured
// traces, and chaos interception.
package problem

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// Result is the output of one problem run. Exactly one of the
// problem-specific fields is populated: Outcome for MST problems,
// InMIS for the MIS problem.
type Result struct {
	// Problem is the qualified registry name of the problem that
	// produced the result.
	Problem string
	// Outcome is the MST outcome (tree edges, LDT states, fragment
	// decay); nil for non-MST problems.
	Outcome *core.Outcome
	// InMIS marks, per node index, membership in the computed maximal
	// independent set; nil for non-MIS problems.
	InMIS []bool
	// Sim holds the runtime accounting (awake complexity, rounds,
	// messages, bits) common to every problem.
	Sim *sim.Result
	// Phases is the number of algorithm phases executed.
	Phases int
}

// Problem is one distributed problem the simulator can run end to
// end: the algorithm, its awake-budget envelope, and its correctness
// oracle.
type Problem interface {
	// Name returns the qualified registry name (e.g. "mst/randomized",
	// "mis").
	Name() string
	// Run executes the problem on g under the given options and
	// returns the run's result.
	Run(g *graph.Graph, opts core.Options) (*Result, error)
	// Budget returns the per-node awake envelope for an n-node run,
	// or ok=false when the problem has no calibrated envelope (the
	// conformance budget check is then skipped).
	Budget(n int) (int64, bool)
	// Verify is the correctness oracle: it returns nil iff r is a
	// correct output for the problem on g.
	Verify(g *graph.Graph, r *Result) error
	// ConformCheck encodes the correctness oracle as a trace-checker
	// check, for appending to a conformance verdict.
	ConformCheck(g *graph.Graph, r *Result) conform.Check
}

// registry maps qualified names to problems. Bare MST algorithm
// spellings are resolved through aliases, so both spellings reach the
// same Problem value.
var registry = map[string]Problem{
	"mis":               misProblem{},
	"mst/randomized":    mstProblem{name: "mst/randomized", algo: conform.AlgoRandomized, run: core.RunRandomized},
	"mst/deterministic": mstProblem{name: "mst/deterministic", algo: conform.AlgoDeterministic, run: core.RunDeterministic},
	"mst/logstar":       mstProblem{name: "mst/logstar", algo: conform.AlgoLogStar, run: core.RunLogStar},
	"mst/baseline":      mstProblem{name: "mst/baseline", algo: "baseline", run: core.RunBaseline},
	"mst/ghs":           mstProblem{name: "mst/ghs", algo: "ghs", run: core.RunClassicGHS},
}

// aliases maps the bare MST spellings accepted by the older CLIs onto
// qualified registry names.
var aliases = map[string]string{
	"randomized":    "mst/randomized",
	"deterministic": "mst/deterministic",
	"logstar":       "mst/logstar",
	"baseline":      "mst/baseline",
	"ghs":           "mst/ghs",
}

// Names returns the qualified problem names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a problem by qualified name or bare MST alias. An
// unknown name is an error listing every valid choice.
func Lookup(name string) (Problem, error) {
	key := strings.TrimSpace(name)
	if q, ok := aliases[key]; ok {
		key = q
	}
	if p, ok := registry[key]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("problem: unknown problem %q (want %s, or a bare MST alias %s)",
		name, strings.Join(Names(), "|"), strings.Join(aliasNames(), "|"))
}

// aliasNames returns the bare MST aliases, sorted.
func aliasNames() []string {
	out := make([]string, 0, len(aliases))
	for name := range aliases {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// mstProblem adapts one core MST runner onto the Problem interface.
type mstProblem struct {
	name string
	algo string // conform catalog spelling for the awake envelope
	run  func(*graph.Graph, core.Options) (*core.Outcome, error)
}

func (p mstProblem) Name() string { return p.name }

func (p mstProblem) Run(g *graph.Graph, opts core.Options) (*Result, error) {
	out, err := p.run(g, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Problem: p.name, Outcome: out, Sim: out.Result, Phases: out.Phases}, nil
}

func (p mstProblem) Budget(n int) (int64, bool) {
	return conform.AwakeBudget(p.algo, n)
}

func (p mstProblem) ConformCheck(g *graph.Graph, r *Result) conform.Check {
	want := graph.TotalWeight(graph.Kruskal(g))
	got := graph.TotalWeight(r.Outcome.MSTEdges)
	return conform.WeightCheck(got, want)
}

func (p mstProblem) Verify(g *graph.Graph, r *Result) error {
	if r == nil || r.Outcome == nil {
		return errors.New("problem: MST run produced no outcome")
	}
	if !graph.IsSpanningTree(g, r.Outcome.MSTEdges) {
		return errors.New("problem: output is not a spanning tree")
	}
	if c := p.ConformCheck(g, r); c.Status != conform.StatusPass {
		return fmt.Errorf("problem: %s", c.Detail)
	}
	return nil
}
