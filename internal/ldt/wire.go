package ldt

import (
	"reflect"

	"sleepmst/internal/graph"
	"sleepmst/internal/transport"
)

// Wire codecs for the LDT message vocabulary (transport kind range
// 16-31). Registration happens at init so any run that threads a
// transport under the simulator can ship LDT waves without further
// setup; the encodings mirror the Bits() declarations field for field.

func init() {
	transport.Register(transport.Codec{
		Kind: 16, Name: "ldt/wire", Type: reflect.TypeOf(wireMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Nested(msg.(wireMsg).payload)
		},
		Decode: func(r *transport.Reader) interface{} {
			return wireMsg{payload: r.Nested()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 17, Name: "ldt/min-item", Type: reflect.TypeOf(MinItem{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(MinItem)
			w.Int(m.Key.W)
			w.Int(m.Key.A)
			w.Int(m.Key.B)
			w.Nested(m.Payload)
		},
		Decode: func(r *transport.Reader) interface{} {
			return MinItem{
				Key:     graph.WeightKey{W: r.Int(), A: r.Int(), B: r.Int()},
				Payload: r.Nested(),
			}
		},
	})
	transport.Register(transport.Codec{
		Kind: 18, Name: "ldt/ta-merge", Type: reflect.TypeOf(taMergeMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(taMergeMsg)
			w.Int(m.fragID)
			w.Int(int64(m.level))
			w.Bool(m.attach)
		},
		Decode: func(r *transport.Reader) interface{} {
			return taMergeMsg{fragID: r.Int(), level: int(r.Int()), attach: r.Bool()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 19, Name: "ldt/merge-wave", Type: reflect.TypeOf(waveMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(waveMsg)
			w.Int(m.fragID)
			w.Int(int64(m.level))
			w.Bool(m.empty)
		},
		Decode: func(r *transport.Reader) interface{} {
			return waveMsg{fragID: r.Int(), level: int(r.Int()), empty: r.Bool()}
		},
	})
}
