// Package ldt implements the paper's Labeled Distance Tree toolbox
// (§2.1 and Appendix B): the transmission schedule, fragment
// broadcast, convergecast, adjacent-fragment transmission, and the
// Merging-Fragments procedure.
//
// A Labeled Distance Tree (LDT) is a rooted tree fragment in which
// every node knows the fragment ID (the root's ID), its parent and
// child ports, and its hop distance from the root. Given that
// knowledge, each procedure below costs O(1) awake rounds per node and
// one or more "blocks" of 2n+1 simulated rounds, where n is the
// network size. All fragments of the network run the same block
// layout simultaneously; waves travel along tree ports only, so
// fragments never interfere.
package ldt

import (
	"fmt"
	"sort"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// BlockLen returns the length in rounds of one transmission-schedule
// block for network size n: the paper's 2n+1.
func BlockLen(n int) int64 { return 2*int64(n) + 1 }

// Schedule holds the absolute rounds of the five named rounds of the
// paper's Transmission-Schedule for one node in one block. A value of
// -1 means the node has no such round (the root neither down-receives
// nor up-sends).
type Schedule struct {
	DownReceive int64
	DownSend    int64
	Side        int64
	UpReceive   int64
	UpSend      int64
}

// ScheduleFor computes the schedule for a node at the given distance
// from the root (level), in a block whose local round 1 is the
// absolute round start, on a network of n nodes.
//
// With start = 1 this reproduces the paper's numbering exactly:
// non-root nodes at distance i get rounds i, i+1, n+1, 2n-i+1, 2n-i+2
// (Down-Receive, Down-Send, Side-Send-Receive, Up-Receive, Up-Send)
// and the root gets 1, n+1, 2n+1 (Down-Send, Side, Up-Receive).
func ScheduleFor(start int64, level int, n int) Schedule {
	if level < 0 || level >= n {
		panic(fmt.Sprintf("ldt: level %d out of range for n=%d", level, n))
	}
	i, nn := int64(level), int64(n)
	if level == 0 {
		return Schedule{
			DownReceive: -1,
			DownSend:    start,
			Side:        start + nn,
			UpReceive:   start + 2*nn,
			UpSend:      -1,
		}
	}
	return Schedule{
		DownReceive: start + i - 1,
		DownSend:    start + i,
		Side:        start + nn,
		UpReceive:   start + 2*nn - i,
		UpSend:      start + 2*nn - i + 1,
	}
}

// State is the per-node LDT bookkeeping: which fragment the node
// belongs to and where it sits in the fragment tree.
type State struct {
	// FragID is the fragment identifier — the ID of the fragment root.
	FragID int64
	// Level is the hop distance from the fragment root.
	Level int
	// ParentPort is the port leading to the parent, -1 at the root.
	ParentPort int
	// Children lists the ports leading to children, sorted.
	Children []int
}

// NewRootState returns the state of a singleton fragment rooted at a
// node with the given ID (the initial state of every node).
func NewRootState(id int64) *State {
	return &State{FragID: id, Level: 0, ParentPort: -1}
}

// IsRoot reports whether the node is its fragment's root.
func (st *State) IsRoot() bool { return st.ParentPort == -1 }

// HasChildren reports whether the node has any children.
func (st *State) HasChildren() bool { return len(st.Children) > 0 }

// AddChild inserts a child port, keeping Children sorted.
func (st *State) AddChild(port int) {
	i := sort.SearchInts(st.Children, port)
	if i < len(st.Children) && st.Children[i] == port {
		return
	}
	st.Children = append(st.Children, 0)
	copy(st.Children[i+1:], st.Children[i:])
	st.Children[i] = port
}

// TreePorts returns all tree ports (parent + children).
func (st *State) TreePorts() []int {
	out := make([]int, 0, len(st.Children)+1)
	if st.ParentPort >= 0 {
		out = append(out, st.ParentPort)
	}
	out = append(out, st.Children...)
	return out
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	c := *st
	c.Children = append([]int(nil), st.Children...)
	return &c
}

// payload wrappers ------------------------------------------------------

// wireMsg wraps a user payload for the down/up waves; it charges a
// 2-bit tag on top of the payload size.
type wireMsg struct {
	payload interface{}
}

func (m wireMsg) Bits() int { return sim.MessageBits(m.payload) + 2 }

// MsgKind tags the wave wrapper with its payload's kind so message
// tallies distinguish e.g. wave-carried colors from direct exchanges.
func (m wireMsg) MsgKind() string {
	if k, ok := m.payload.(sim.Kinded); ok {
		return "wave-" + k.MsgKind()
	}
	return "wave"
}

// Down runs one top-down wave over the fragment tree within the block
// starting at round start. The root's incoming value is rootVal; every
// other node receives the value forwarded by its parent (nil if the
// parent forwarded nothing to it). split maps the received value to
// per-child-port messages; a nil return forwards nothing. Down returns
// the node's received value.
//
// Cost: at most 2 awake rounds (Down-Receive and Down-Send); leaves and
// nodes that forward nothing skip the Down-Send round.
func Down(nd *sim.Node, st *State, start int64, rootVal interface{},
	split func(received interface{}) map[int]interface{}) interface{} {
	sched := ScheduleFor(start, st.Level, nd.N())
	var received interface{}
	if st.IsRoot() {
		received = rootVal
	} else {
		nd.SleepUntil(sched.DownReceive)
		in := nd.Exchange(nil)
		if raw, ok := in[st.ParentPort]; ok {
			received = raw.(wireMsg).payload
		}
	}
	outs := split(received)
	if len(outs) > 0 {
		out := make(sim.Outbox, len(outs))
		for port, msg := range outs {
			out[port] = wireMsg{payload: msg}
		}
		nd.SleepUntil(sched.DownSend)
		nd.Exchange(out)
	}
	return received
}

// Broadcast implements the paper's Fragment-Broadcast: the root's msg
// reaches every node of the fragment; every node returns the message
// (the root returns its own). Cost: one block, <= 2 awake rounds.
func Broadcast(nd *sim.Node, st *State, start int64, msg interface{}) interface{} {
	return Down(nd, st, start, msg, func(received interface{}) map[int]interface{} {
		if received == nil || len(st.Children) == 0 {
			return nil
		}
		out := make(map[int]interface{}, len(st.Children))
		for _, c := range st.Children {
			out[c] = received
		}
		return out
	})
}

// Up runs one bottom-up wave (convergecast) within the block starting
// at round start. Each node combines its own value with the values
// received from its children and forwards the result to its parent;
// the root's combined value is the fragment-wide result. Up returns
// the node's combined value.
//
// Cost: at most 2 awake rounds (Up-Receive for non-leaves, Up-Send for
// non-roots).
func Up(nd *sim.Node, st *State, start int64, own interface{},
	combine func(own interface{}, fromChildren map[int]interface{}) interface{}) interface{} {
	sched := ScheduleFor(start, st.Level, nd.N())
	fromChildren := make(map[int]interface{})
	if len(st.Children) > 0 {
		nd.SleepUntil(sched.UpReceive)
		in := nd.Exchange(nil)
		for _, c := range st.Children {
			if raw, ok := in[c]; ok {
				fromChildren[c] = raw.(wireMsg).payload
			}
		}
	}
	combined := combine(own, fromChildren)
	if !st.IsRoot() {
		nd.SleepUntil(sched.UpSend)
		nd.Exchange(sim.Outbox{st.ParentPort: wireMsg{payload: combined}})
	}
	return combined
}

// FieldBits returns the number of bits needed to encode x (sign
// included), used to charge realistic message sizes.
func FieldBits(x int64) int {
	if x < 0 {
		x = -x
	}
	n := 1 // sign / presence bit
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// MinItem is a (key, payload) pair for UpcastMin.
type MinItem struct {
	Key     graph.WeightKey
	Payload interface{}
}

// Bits charges the key fields plus the payload.
func (m MinItem) Bits() int {
	return FieldBits(m.Key.W) + FieldBits(m.Key.A) + FieldBits(m.Key.B) + sim.MessageBits(m.Payload)
}

// MsgKind names Upcast-Min traffic in message tallies.
func (MinItem) MsgKind() string { return "upcast-min" }

// UpcastMin implements the paper's Upcast-Min: the minimum-key item
// held by any node of the fragment reaches the root. Nodes with no
// item pass nil. Every node returns the minimum over its subtree; the
// root's return value is the fragment-wide minimum (nil if no node
// held an item).
func UpcastMin(nd *sim.Node, st *State, start int64, mine *MinItem) *MinItem {
	res := Up(nd, st, start, mine, func(own interface{}, fromChildren map[int]interface{}) interface{} {
		best := own.(*MinItem)
		for _, v := range fromChildren {
			if v == nil {
				continue
			}
			it, ok := v.(MinItem)
			if !ok {
				continue
			}
			if best == nil || it.Key.Less(best.Key) {
				cp := it
				best = &cp
			}
		}
		if best == nil {
			return nil
		}
		return *best // send by value over the wire
	})
	if res == nil {
		return nil
	}
	it := res.(MinItem)
	return &it
}

// TransmitAdjacent implements the paper's Transmit-Adjacent: every
// node is awake in the block's Side-Send-Receive round and exchanges
// the given per-port messages with all its neighbors (in this and
// other fragments). It returns the inbox. Cost: one block, exactly 1
// awake round.
func TransmitAdjacent(nd *sim.Node, start int64, out sim.Outbox) sim.Inbox {
	side := start + int64(nd.N())
	nd.SleepUntil(side)
	return nd.Exchange(out)
}
