package ldt

import (
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// TestMergingFragmentsDeepTailsMidAttach merges a long path fragment
// whose attachment node sits mid-tree, exercising both wave instances
// over many hops.
func TestMergingFragmentsDeepTailsMidAttach(t *testing.T) {
	// Tails: path 0..9 rooted at 0. Heads: single node 10 (level 0).
	// The MOE connects node 5 (mid-path) to 10.
	const tailLen = 10
	var edges []graph.Edge
	for i := 0; i+1 < tailLen; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, Weight: int64(10 + i)})
	}
	edges = append(edges, graph.Edge{U: 5, V: 10, Weight: 1})
	g := graph.MustNew(11, edges)

	parents := make([]int, 11)
	for i := 0; i < tailLen; i++ {
		parents[i] = i - 1
	}
	parents[10] = -1
	states, err := StatesFromParents(g, parents)
	if err != nil {
		t.Fatalf("states: %v", err)
	}
	moePort := -1
	for p, pt := range g.Ports(5) {
		if pt.To == 10 {
			moePort = p
		}
	}
	res, err := sim.Run(sim.Config{Graph: g, Seed: 2}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		dec := NoMerge
		if nd.Index() < tailLen {
			dec = MergeDecision{Merging: true, AttachPort: -1}
			if nd.Index() == 5 {
				dec.AttachPort = moePort
			}
		}
		MergingFragments(nd, st, 1, dec)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Levels: 10 is root (0); 5 attaches at level 1; the path fans out
	// from node 5 in both directions.
	wantLevels := map[int]int{10: 0, 5: 1, 4: 2, 6: 2, 3: 3, 7: 3, 2: 4, 8: 4, 1: 5, 9: 5, 0: 6}
	for v, want := range wantLevels {
		if states[v].Level != want {
			t.Errorf("node %d level = %d, want %d", v, states[v].Level, want)
		}
	}
	if m := res.MaxAwake(); m > 5 {
		t.Errorf("awake = %d, want <= 5 regardless of fragment depth", m)
	}
}

// TestMergingFragmentsChainOfPhases drives three successive merge
// waves, revalidating the forest between waves.
func TestMergingFragmentsChainOfPhases(t *testing.T) {
	g := graph.Path(8, graph.GenConfig{Seed: 5})
	states := SingletonStates(g)
	blk := BlockLen(g.N())

	// Wave 1: odd singletons merge left; wave 2: pairs merge into
	// 4-chains; wave 3: one fragment remains.
	type wavePlan struct {
		merging map[int]int // node -> attach port (port to its left neighbor)
	}
	portTo := func(v, w int) int {
		for p, pt := range g.Ports(v) {
			if pt.To == w {
				return p
			}
		}
		return -1
	}
	waves := []wavePlan{
		{merging: map[int]int{1: portTo(1, 0), 3: portTo(3, 2), 5: portTo(5, 4), 7: portTo(7, 6)}},
		{merging: map[int]int{2: portTo(2, 1), 6: portTo(6, 5)}},
		{merging: map[int]int{4: portTo(4, 3)}},
	}
	_, err := sim.Run(sim.Config{Graph: g, Seed: 3}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		for w, plan := range waves {
			start := 1 + int64(w)*int64(MergeBlocks)*blk
			dec := NoMerge
			// A node merges if its fragment root is a designated merger;
			// in this constructed scenario fragment membership is known.
			for mover, port := range plan.merging {
				if st.FragID == g.ID(mover) {
					dec = MergeDecision{Merging: true, AttachPort: -1}
					if nd.Index() == mover {
						dec.AttachPort = port
					}
				}
			}
			MergingFragments(nd, st, start, dec)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if FragmentCount(states) != 1 {
		t.Errorf("fragments = %d, want 1", FragmentCount(states))
	}
	// The final tree is the path rooted at node 0.
	for v := 0; v < g.N(); v++ {
		if states[v].Level != v {
			t.Errorf("node %d level = %d, want %d", v, states[v].Level, v)
		}
	}
}
