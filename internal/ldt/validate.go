package ldt

import (
	"fmt"
	"sort"

	"sleepmst/internal/graph"
)

// Validate checks that states describes a valid Forest of Labeled
// Distance Trees (FLDT) over g: every fragment is a rooted tree along
// graph edges, levels equal hop distance from the root, the fragment
// ID is the root's node ID, and parent/child pointers are symmetric.
func Validate(g *graph.Graph, states []*State) error {
	if len(states) != g.N() {
		return fmt.Errorf("ldt: %d states for %d nodes", len(states), g.N())
	}
	for v, st := range states {
		if st == nil {
			return fmt.Errorf("ldt: node %d has nil state", v)
		}
		ports := g.Ports(v)
		if st.IsRoot() {
			if st.Level != 0 {
				return fmt.Errorf("ldt: root %d has level %d", v, st.Level)
			}
			if st.FragID != g.ID(v) {
				return fmt.Errorf("ldt: root %d has fragment ID %d, want own ID %d", v, st.FragID, g.ID(v))
			}
		} else {
			if st.ParentPort < 0 || st.ParentPort >= len(ports) {
				return fmt.Errorf("ldt: node %d parent port %d out of range", v, st.ParentPort)
			}
			pp := ports[st.ParentPort]
			parent := states[pp.To]
			if parent.Level != st.Level-1 {
				return fmt.Errorf("ldt: node %d level %d but parent %d level %d", v, st.Level, pp.To, parent.Level)
			}
			if parent.FragID != st.FragID {
				return fmt.Errorf("ldt: node %d fragment %d but parent %d fragment %d", v, st.FragID, pp.To, parent.FragID)
			}
			if !containsInt(parent.Children, pp.RevPort) {
				return fmt.Errorf("ldt: node %d claims parent %d, but parent lacks child port %d", v, pp.To, pp.RevPort)
			}
		}
		if !sort.IntsAreSorted(st.Children) {
			return fmt.Errorf("ldt: node %d children %v not sorted", v, st.Children)
		}
		seen := map[int]bool{}
		for _, c := range st.Children {
			if c < 0 || c >= len(ports) {
				return fmt.Errorf("ldt: node %d child port %d out of range", v, c)
			}
			if c == st.ParentPort {
				return fmt.Errorf("ldt: node %d lists parent port %d as child", v, c)
			}
			if seen[c] {
				return fmt.Errorf("ldt: node %d duplicate child port %d", v, c)
			}
			seen[c] = true
			cp := ports[c]
			child := states[cp.To]
			if child.ParentPort != cp.RevPort {
				return fmt.Errorf("ldt: node %d lists %d as child, but child's parent port is %d (want %d)",
					v, cp.To, child.ParentPort, cp.RevPort)
			}
			if child.Level != st.Level+1 {
				return fmt.Errorf("ldt: node %d level %d but child %d level %d", v, st.Level, cp.To, child.Level)
			}
			if child.FragID != st.FragID {
				return fmt.Errorf("ldt: node %d fragment %d but child %d fragment %d", v, st.FragID, cp.To, child.FragID)
			}
		}
	}
	// Every parent walk must reach a root within n steps (no cycles).
	for v := range states {
		cur, steps := v, 0
		for !states[cur].IsRoot() {
			cur = g.Ports(cur)[states[cur].ParentPort].To
			steps++
			if steps > g.N() {
				return fmt.Errorf("ldt: parent walk from node %d does not terminate", v)
			}
		}
		if states[v].FragID != g.ID(cur) {
			return fmt.Errorf("ldt: node %d fragment %d, but its root %d has ID %d", v, states[v].FragID, cur, g.ID(cur))
		}
	}
	return nil
}

// Fragments groups node indices by fragment ID.
func Fragments(states []*State) map[int64][]int {
	out := make(map[int64][]int)
	for v, st := range states {
		out[st.FragID] = append(out[st.FragID], v)
	}
	return out
}

// FragmentCount returns the number of distinct fragments.
func FragmentCount(states []*State) int { return len(Fragments(states)) }

// TreeEdges returns the set of (parent, child) graph edges used by the
// forest, as graph.Edge values with the real weights.
func TreeEdges(g *graph.Graph, states []*State) []graph.Edge {
	var out []graph.Edge
	for v, st := range states {
		if st.ParentPort >= 0 {
			p := g.Ports(v)[st.ParentPort]
			out = append(out, g.Edge(p.EdgeIdx))
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
