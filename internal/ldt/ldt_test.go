package ldt

import (
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

func TestScheduleMatchesPaperNumbering(t *testing.T) {
	// With start=1 the paper's numbering is rounds i, i+1, n+1,
	// 2n-i+1, 2n-i+2 for non-root nodes at distance i and 1, n+1,
	// 2n+1 for the root.
	const n = 10
	root := ScheduleFor(1, 0, n)
	if root.DownSend != 1 || root.Side != n+1 || root.UpReceive != 2*n+1 {
		t.Errorf("root schedule = %+v", root)
	}
	if root.DownReceive != -1 || root.UpSend != -1 {
		t.Errorf("root must have no down-receive/up-send, got %+v", root)
	}
	for i := 1; i < n; i++ {
		s := ScheduleFor(1, i, n)
		if s.DownReceive != int64(i) || s.DownSend != int64(i+1) || s.Side != n+1 ||
			s.UpReceive != int64(2*n-i+1) || s.UpSend != int64(2*n-i+2) {
			t.Errorf("level %d schedule = %+v", i, s)
		}
	}
}

func TestScheduleParentChildAlignment(t *testing.T) {
	const n = 64
	for start := int64(1); start <= 2; start++ {
		for i := 1; i < n; i++ {
			child := ScheduleFor(start, i, n)
			parent := ScheduleFor(start, i-1, n)
			if child.DownReceive != parent.DownSend {
				t.Fatalf("level %d: down-receive %d != parent down-send %d", i, child.DownReceive, parent.DownSend)
			}
			if child.UpSend != parent.UpReceive {
				t.Fatalf("level %d: up-send %d != parent up-receive %d", i, child.UpSend, parent.UpReceive)
			}
		}
	}
}

func TestScheduleStaysInsideBlock(t *testing.T) {
	const n = 17
	start := int64(100)
	end := start + BlockLen(n) - 1
	for i := 0; i < n; i++ {
		s := ScheduleFor(start, i, n)
		for _, r := range []int64{s.DownReceive, s.DownSend, s.Side, s.UpReceive, s.UpSend} {
			if r == -1 {
				continue
			}
			if r < start || r > end {
				t.Fatalf("level %d round %d outside block [%d,%d]", i, r, start, end)
			}
		}
	}
}

// runForest runs prog over g with the FLDT given by parents and
// returns the result plus final states.
func runForest(t *testing.T, g *graph.Graph, parents []int,
	prog func(nd *sim.Node, st *State) error) ([]*State, *sim.Result) {
	t.Helper()
	states, err := StatesFromParents(g, parents)
	if err != nil {
		t.Fatalf("states: %v", err)
	}
	res, err := sim.Run(sim.Config{Graph: g, Seed: 11}, func(nd *sim.Node) error {
		return prog(nd, states[nd.Index()])
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return states, res
}

type testPayload struct{ v int64 }

func (p testPayload) Bits() int { return FieldBits(p.v) }

func TestBroadcastReachesAllNodes(t *testing.T) {
	// Path 0-1-2-3-4 rooted at node 2 (levels 2,1,0,1,2).
	g := graph.Path(5, graph.GenConfig{Seed: 1})
	parents := []int{1, 2, -1, 2, 3}
	got := make([]interface{}, g.N())
	states, res := runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		var msg interface{}
		if st.IsRoot() {
			msg = testPayload{v: 42}
		}
		got[nd.Index()] = Broadcast(nd, st, 1, msg)
		return nil
	})
	for v := range got {
		if got[v] != (testPayload{v: 42}) {
			t.Errorf("node %d received %v, want 42", v, got[v])
		}
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if m := res.MaxAwake(); m > 2 {
		t.Errorf("broadcast awake complexity %d, want <= 2", m)
	}
	if res.Rounds > BlockLen(g.N()) {
		t.Errorf("broadcast used %d rounds, block is %d", res.Rounds, BlockLen(g.N()))
	}
}

func TestUpcastMinFindsGlobalMin(t *testing.T) {
	// Star with hub 0 as root; values live at the leaves.
	g := graph.Star(6, graph.GenConfig{Seed: 2})
	parents := []int{-1, 0, 0, 0, 0, 0}
	vals := []int64{0, 50, 30, 99, 12, 77} // root holds none
	var rootGot *MinItem
	_, res := runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		var mine *MinItem
		if !st.IsRoot() {
			mine = &MinItem{Key: graph.WeightKey{W: vals[nd.Index()]}, Payload: testPayload{v: vals[nd.Index()]}}
		}
		out := UpcastMin(nd, st, 1, mine)
		if st.IsRoot() {
			rootGot = out
		}
		return nil
	})
	if rootGot == nil || rootGot.Key.W != 12 {
		t.Fatalf("root got %+v, want key 12", rootGot)
	}
	if rootGot.Payload != (testPayload{v: 12}) {
		t.Fatalf("root payload %v, want 12", rootGot.Payload)
	}
	if m := res.MaxAwake(); m > 2 {
		t.Errorf("upcast awake complexity %d, want <= 2", m)
	}
}

func TestUpcastMinDeepTree(t *testing.T) {
	// A path rooted at one end exercises multi-hop upcast.
	const n = 33
	g := graph.Path(n, graph.GenConfig{Seed: 3})
	parents := make([]int, n)
	for i := range parents {
		parents[i] = i - 1 // rooted at node 0
	}
	var rootGot *MinItem
	_, res := runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		mine := &MinItem{Key: graph.WeightKey{W: int64(100 + (nd.Index()*37)%n)}}
		out := UpcastMin(nd, st, 1, mine)
		if st.IsRoot() {
			rootGot = out
		}
		return nil
	})
	if rootGot == nil || rootGot.Key.W != 100 {
		t.Fatalf("root got %+v, want key 100", rootGot)
	}
	if m := res.MaxAwake(); m > 2 {
		t.Errorf("awake complexity %d, want <= 2", m)
	}
}

func TestUpcastMinNilEverywhere(t *testing.T) {
	g := graph.Path(4, graph.GenConfig{Seed: 4})
	parents := []int{-1, 0, 1, 2}
	var rootGot *MinItem
	runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		out := UpcastMin(nd, st, 1, nil)
		if st.IsRoot() {
			rootGot = out
		}
		return nil
	})
	if rootGot != nil {
		t.Fatalf("root got %+v, want nil", rootGot)
	}
}

func TestTransmitAdjacentCrossesFragments(t *testing.T) {
	// Path 0-1-2-3: two 2-node fragments {0,1} and {2,3}.
	g := graph.Path(4, graph.GenConfig{Seed: 5})
	parents := []int{-1, 0, -1, 2}
	type adjMsg struct{ frag int64 }
	heard := make([]map[int]int64, g.N())
	_, res := runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		out := make(sim.Outbox, nd.Degree())
		for p := 0; p < nd.Degree(); p++ {
			out[p] = adjMsg{frag: st.FragID}
		}
		in := TransmitAdjacent(nd, 1, out)
		m := make(map[int]int64)
		for p, raw := range in {
			m[p] = raw.(adjMsg).frag
		}
		heard[nd.Index()] = m
		return nil
	})
	// Node 1 (fragment rooted at 0, ID 1) must hear fragment ID 3 from
	// node 2 and vice versa.
	found := false
	for _, f := range heard[1] {
		if f == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("node 1 heard %v, want fragment 3 among them", heard[1])
	}
	found = false
	for _, f := range heard[2] {
		if f == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("node 2 heard %v, want fragment 1 among them", heard[2])
	}
	if m := res.MaxAwake(); m != 1 {
		t.Errorf("transmit-adjacent awake complexity %d, want exactly 1", m)
	}
}

func TestDownDistributesDistinctValues(t *testing.T) {
	// Token-distribution shape: root splits a budget across children.
	g := graph.Star(4, graph.GenConfig{Seed: 6})
	parents := []int{-1, 0, 0, 0}
	got := make([]interface{}, g.N())
	runForest(t, g, parents, func(nd *sim.Node, st *State) error {
		rcv := Down(nd, st, 1, testPayload{v: 6}, func(received interface{}) map[int]interface{} {
			if received == nil || len(st.Children) == 0 {
				return nil
			}
			total := received.(testPayload).v
			out := make(map[int]interface{}, len(st.Children))
			share := total / int64(len(st.Children))
			for _, c := range st.Children {
				out[c] = testPayload{v: share}
			}
			return out
		})
		got[nd.Index()] = rcv
		return nil
	})
	for v := 1; v < 4; v++ {
		if got[v] != (testPayload{v: 2}) {
			t.Errorf("leaf %d got %v, want 2", v, got[v])
		}
	}
}

// TestMergingFragmentsFigures reproduces the Appendix C walkthrough
// (Figures 2-5): a tails fragment re-roots at its MOE node and hangs
// below the heads fragment with correct levels and IDs.
func TestMergingFragmentsFigures(t *testing.T) {
	// Heads fragment: 0 <- 1 (u_H = 1, level 1).
	// Tails fragment: path 2 <- 3 <- 4 rooted at 2, and u_T = 4 at
	// level 2, with the MOE edge 4-1.
	g := graph.MustNew(5, []graph.Edge{
		{U: 0, V: 1, Weight: 10},
		{U: 1, V: 4, Weight: 1}, // the MOE
		{U: 2, V: 3, Weight: 20},
		{U: 3, V: 4, Weight: 30},
	})
	parents := []int{-1, 0, -1, 2, 3}
	states, err := StatesFromParents(g, parents)
	if err != nil {
		t.Fatalf("states: %v", err)
	}
	moePort := -1
	for p, pt := range g.Ports(4) {
		if pt.To == 1 {
			moePort = p
		}
	}
	if moePort < 0 {
		t.Fatal("no MOE port")
	}
	res, err := sim.Run(sim.Config{Graph: g, Seed: 1}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		dec := NoMerge
		if st.FragID == g.ID(2) { // tails fragment
			dec = MergeDecision{Merging: true, AttachPort: -1}
			if nd.Index() == 4 {
				dec.AttachPort = moePort
			}
		}
		MergingFragments(nd, st, 1, dec)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("post-merge validate: %v", err)
	}
	// One fragment, rooted at node 0, with the paper's final labels:
	// 0:0, 1:1, 4:2, 3:3, 2:4.
	wantLevels := []int{0, 1, 4, 3, 2}
	for v, want := range wantLevels {
		if states[v].Level != want {
			t.Errorf("node %d level %d, want %d", v, states[v].Level, want)
		}
		if states[v].FragID != g.ID(0) {
			t.Errorf("node %d fragment %d, want %d", v, states[v].FragID, g.ID(0))
		}
	}
	if FragmentCount(states) != 1 {
		t.Errorf("fragments = %d, want 1", FragmentCount(states))
	}
	if m := res.MaxAwake(); m > 5 {
		t.Errorf("merge awake complexity %d, want <= 5", m)
	}
	if res.Rounds > int64(MergeBlocks)*BlockLen(g.N()) {
		t.Errorf("merge used %d rounds, budget %d", res.Rounds, int64(MergeBlocks)*BlockLen(g.N()))
	}
}

func TestMergingFragmentsSingleton(t *testing.T) {
	// A singleton fragment (node 2) merges into a 2-node heads
	// fragment below node 1.
	g := graph.Path(3, graph.GenConfig{Seed: 7})
	parents := []int{-1, 0, -1}
	states, err := StatesFromParents(g, parents)
	if err != nil {
		t.Fatalf("states: %v", err)
	}
	_, err = sim.Run(sim.Config{Graph: g, Seed: 1}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		dec := NoMerge
		if nd.Index() == 2 {
			dec = MergeDecision{Merging: true, AttachPort: 0} // its only port
		}
		MergingFragments(nd, st, 1, dec)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if states[2].Level != 2 || states[2].FragID != g.ID(0) {
		t.Errorf("singleton state = %+v, want level 2 fragment %d", states[2], g.ID(0))
	}
}

func TestMergingFragmentsMultipleTailsIntoOneHead(t *testing.T) {
	// Star: hub 0 is a heads singleton; leaves 1..4 are tails
	// singletons all attaching to the hub.
	g := graph.Star(5, graph.GenConfig{Seed: 8})
	states := SingletonStates(g)
	_, err := sim.Run(sim.Config{Graph: g, Seed: 1}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		dec := NoMerge
		if nd.Index() != 0 {
			dec = MergeDecision{Merging: true, AttachPort: 0}
		}
		MergingFragments(nd, st, 1, dec)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if FragmentCount(states) != 1 {
		t.Errorf("fragments = %d, want 1", FragmentCount(states))
	}
	if len(states[0].Children) != 4 {
		t.Errorf("hub children = %v, want 4 ports", states[0].Children)
	}
}

func TestValidateRejectsBrokenForests(t *testing.T) {
	g := graph.Path(3, graph.GenConfig{Seed: 9})
	states, err := StatesFromParents(g, []int{-1, 0, 1})
	if err != nil {
		t.Fatalf("states: %v", err)
	}
	if err := Validate(g, states); err != nil {
		t.Fatalf("valid forest rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func([]*State)
	}{
		{"wrong level", func(ss []*State) { ss[2].Level = 7 }},
		{"wrong fragment", func(ss []*State) { ss[2].FragID = 999 }},
		{"root with level", func(ss []*State) { ss[0].Level = 1 }},
		{"orphan child", func(ss []*State) { ss[1].Children = nil }},
		{"parent as child", func(ss []*State) { ss[1].Children = append(ss[1].Children, ss[1].ParentPort) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ss := make([]*State, len(states))
			for i, s := range states {
				ss[i] = s.Clone()
			}
			tc.break_(ss)
			if err := Validate(g, ss); err == nil {
				t.Error("broken forest accepted")
			}
		})
	}
}

func TestStatesFromParentsRejectsNonEdges(t *testing.T) {
	g := graph.Path(3, graph.GenConfig{Seed: 10})
	if _, err := StatesFromParents(g, []int{-1, 0, 0}); err == nil {
		t.Error("want error for parent not adjacent")
	}
}

func TestFieldBits(t *testing.T) {
	cases := []struct {
		x    int64
		want int
	}{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {255, 9}, {-255, 9}, {1 << 20, 22}}
	for _, tc := range cases {
		if got := FieldBits(tc.x); got != tc.want {
			t.Errorf("FieldBits(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}
