package ldt

import (
	"fmt"

	"sleepmst/internal/sim"
)

// MergeBlocks is the number of transmission-schedule blocks consumed
// by one MergingFragments call (one Transmit-Adjacent plus the two
// wave instances of the paper's §2.2).
const MergeBlocks = 3

// MergeDecision tells a node how its fragment behaves in one
// MergingFragments wave. Every node of a merging ("tails") fragment
// sets Merging; exactly one node of the fragment — the attachment node
// u_T — also sets AttachPort to the port of the inter-fragment edge it
// merges along. Nodes of non-merging ("heads") fragments leave the
// zero value.
type MergeDecision struct {
	Merging    bool
	AttachPort int // -1 unless this node is u_T
}

// NoMerge is the decision of heads-fragment nodes.
var NoMerge = MergeDecision{Merging: false, AttachPort: -1}

// taMergeMsg is exchanged in the Transmit-Adjacent step: current
// fragment ID and level, plus an attach request on the merge edge.
type taMergeMsg struct {
	fragID int64
	level  int
	attach bool
}

func (m taMergeMsg) Bits() int { return FieldBits(m.fragID) + FieldBits(int64(m.level)) + 1 }

func (taMergeMsg) MsgKind() string { return "ta-merge" }

// waveMsg carries the NEW-FRAGMENT-ID / NEW-LEVEL-NUM pair of the
// paper's merge waves; empty encodes the paper's ⊥.
type waveMsg struct {
	fragID int64
	level  int
	empty  bool
}

func (m waveMsg) Bits() int { return FieldBits(m.fragID) + FieldBits(int64(m.level)) + 1 }

func (waveMsg) MsgKind() string { return "merge-wave" }

// MergingFragments implements the paper's Procedure
// Merging-Fragments: every merging fragment re-roots itself at its
// attachment node u_T and attaches below the node u_H on the other
// side of the merge edge, adopting u_H's fragment ID and level+1
// labeling; see Figures 2-5 of the paper. Non-merging fragments are
// unchanged except that nodes receiving an attachment gain a child.
//
// All nodes of the network must call it for the same start round; it
// consumes MergeBlocks blocks and costs at most 5 awake rounds for
// merging-fragment nodes and 1 for all others. st is updated in
// place.
func MergingFragments(nd *sim.Node, st *State, start int64, dec MergeDecision) {
	n := nd.N()
	blk := BlockLen(n)

	// Block A: Transmit-Adjacent. Everyone advertises (fragID, level);
	// the attachment node u_T raises the attach flag on its merge edge.
	out := make(sim.Outbox, nd.Degree())
	for p := 0; p < nd.Degree(); p++ {
		out[p] = taMergeMsg{
			fragID: st.FragID,
			level:  st.Level,
			attach: dec.Merging && p == dec.AttachPort,
		}
	}
	in := TransmitAdjacent(nd, start, out)

	// Heads-side bookkeeping: adopt attaching neighbors as children.
	for p := 0; p < nd.Degree(); p++ {
		raw, ok := in[p]
		if !ok {
			continue
		}
		if msg := raw.(taMergeMsg); msg.attach {
			st.AddChild(p)
		}
	}

	// NEW-FRAGMENT-ID / NEW-LEVEL-NUM (⊥ encoded as newLevel < 0) and
	// the deferred re-orientation.
	newLevel, newFrag := -1, int64(0)
	reorient := false
	var newParent int
	var newChildren []int

	if dec.Merging && dec.AttachPort >= 0 {
		raw, ok := in[dec.AttachPort]
		if !ok {
			panic(fmt.Sprintf("ldt: node %d: no merge-partner info on port %d", nd.Index(), dec.AttachPort))
		}
		uh := raw.(taMergeMsg)
		newLevel, newFrag = uh.level+1, uh.fragID
		reorient = true
		newParent = dec.AttachPort
		newChildren = st.TreePorts() // old parent and children all become children
		// u_T initiates exactly one wave per merging fragment, so this
		// is the canonical place to count waves and track depth.
		nd.Metrics().Add("merge/waves", 1)
		nd.Metrics().Max("merge/depth/max", int64(st.Level))
	}

	if !dec.Merging {
		// Heads fragments sleep through the two wave blocks.
		return
	}

	// Block B (first Transmission-Schedule instance): the values
	// propagate up the old tree from u_T to the old root; every node on
	// that path flips its orientation toward u_T.
	sched := ScheduleFor(start+blk, st.Level, n)
	if len(st.Children) > 0 {
		nd.SleepUntil(sched.UpReceive)
		rcv := nd.Exchange(nil)
		for _, c := range st.Children {
			raw, ok := rcv[c]
			if !ok {
				continue
			}
			msg := raw.(waveMsg)
			if msg.empty {
				continue
			}
			if newLevel >= 0 {
				// Only one attachment edge exists per fragment, so a
				// node can see at most one non-empty wave.
				panic(fmt.Sprintf("ldt: node %d: conflicting merge waves", nd.Index()))
			}
			newLevel, newFrag = msg.level+1, msg.fragID
			reorient = true
			newParent = c
			newChildren = newChildren[:0]
			for _, tp := range st.TreePorts() {
				if tp != c {
					newChildren = append(newChildren, tp)
				}
			}
		}
	}
	if !st.IsRoot() {
		nd.SleepUntil(sched.UpSend)
		nd.Exchange(sim.Outbox{st.ParentPort: waveMsg{fragID: newFrag, level: newLevel, empty: newLevel < 0}})
	}

	// Block C (second instance): the values flow down the old tree to
	// every remaining node; orientation of off-path nodes is unchanged.
	sched = ScheduleFor(start+2*blk, st.Level, n)
	if !st.IsRoot() {
		nd.SleepUntil(sched.DownReceive)
		rcv := nd.Exchange(nil)
		if raw, ok := rcv[st.ParentPort]; ok {
			msg := raw.(waveMsg)
			if !msg.empty && newLevel < 0 {
				newLevel, newFrag = msg.level+1, msg.fragID
			}
		}
	}
	if len(st.Children) > 0 {
		downOut := make(sim.Outbox, len(st.Children))
		for _, c := range st.Children {
			downOut[c] = waveMsg{fragID: newFrag, level: newLevel, empty: newLevel < 0}
		}
		nd.SleepUntil(sched.DownSend)
		nd.Exchange(downOut)
	}

	// Commit the temporary variables (the paper's end-of-step update).
	if newLevel < 0 {
		panic(fmt.Sprintf("ldt: node %d of merging fragment %d finished merge with empty level", nd.Index(), st.FragID))
	}
	if newFrag != st.FragID {
		nd.EmitMerge(st.FragID, newFrag)
	}
	st.Level = newLevel
	st.FragID = newFrag
	if reorient {
		st.ParentPort = newParent
		st.Children = st.Children[:0]
		for _, c := range newChildren {
			st.AddChild(c)
		}
	}
}
