package ldt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// randomForest builds a random FLDT over a random connected graph:
// a random subset of a random spanning forest, with arbitrary roots.
func randomForest(seed int64) (*graph.Graph, []int) {
	r := rand.New(rand.NewSource(seed))
	n := 8 + r.Intn(25)
	g := graph.RandomConnected(n, n+r.Intn(2*n), graph.GenConfig{Seed: seed})
	// Random spanning forest: BFS trees from random roots over a
	// random subset of nodes claimed greedily.
	parents := make([]int, n)
	for i := range parents {
		parents[i] = -2 // unclaimed
	}
	order := r.Perm(n)
	var stack []int
	for _, root := range order {
		if parents[root] != -2 {
			continue
		}
		// Start a new fragment at root with random growth probability.
		parents[root] = -1
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Ports(v) {
				if parents[p.To] == -2 && r.Intn(3) > 0 {
					parents[p.To] = v
					stack = append(stack, p.To)
				}
			}
		}
	}
	// Any leftovers become singleton fragments.
	for i := range parents {
		if parents[i] == -2 {
			parents[i] = -1
		}
	}
	return g, parents
}

func TestQuickStatesFromParentsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		g, parents := randomForest(seed)
		states, err := StatesFromParents(g, parents)
		if err != nil {
			return false
		}
		return Validate(g, states) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBroadcastReachesEveryFragmentMember(t *testing.T) {
	f := func(seed int64) bool {
		g, parents := randomForest(seed)
		states, err := StatesFromParents(g, parents)
		if err != nil {
			return false
		}
		got := make([]int64, g.N())
		_, err = sim.Run(sim.Config{Graph: g, Seed: seed}, func(nd *sim.Node) error {
			st := states[nd.Index()]
			var msg interface{}
			if st.IsRoot() {
				msg = testPayload{v: st.FragID * 1000}
			}
			res := Broadcast(nd, st, 1, msg)
			got[nd.Index()] = res.(testPayload).v
			return nil
		})
		if err != nil {
			return false
		}
		for v := range got {
			if got[v] != states[v].FragID*1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickUpcastMinMatchesSequentialMin(t *testing.T) {
	f := func(seed int64) bool {
		g, parents := randomForest(seed)
		states, err := StatesFromParents(g, parents)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed + 1))
		vals := make([]int64, g.N())
		for v := range vals {
			vals[v] = r.Int63n(1 << 30)
		}
		// Sequential per-fragment minima.
		want := map[int64]int64{}
		for v, st := range states {
			if cur, ok := want[st.FragID]; !ok || vals[v] < cur {
				want[st.FragID] = vals[v]
			}
		}
		rootGot := make([]int64, g.N())
		for i := range rootGot {
			rootGot[i] = -1
		}
		_, err = sim.Run(sim.Config{Graph: g, Seed: seed}, func(nd *sim.Node) error {
			st := states[nd.Index()]
			mine := &MinItem{Key: graph.WeightKey{W: vals[nd.Index()]}}
			out := UpcastMin(nd, st, 1, mine)
			if st.IsRoot() {
				rootGot[nd.Index()] = out.Key.W
			}
			return nil
		})
		if err != nil {
			return false
		}
		for v, st := range states {
			if st.IsRoot() && rootGot[v] != want[st.FragID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeWavePreservesInvariant drives random single-fragment
// merges: pick a random fragment with an outgoing edge, merge it into
// the neighbor across a random outgoing edge, and validate the FLDT
// after every wave.
func TestQuickMergeWavePreservesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g, parents := randomForest(seed)
		states, err := StatesFromParents(g, parents)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed + 2))
		// Choose the merging fragment and its attachment edge: a random
		// node with a cross-fragment edge.
		type attach struct {
			node, port int
		}
		var candidates []attach
		for v := 0; v < g.N(); v++ {
			for p, pt := range g.Ports(v) {
				if states[pt.To].FragID != states[v].FragID {
					candidates = append(candidates, attach{node: v, port: p})
				}
			}
		}
		if len(candidates) == 0 {
			return true // single fragment, nothing to merge
		}
		pick := candidates[r.Intn(len(candidates))]
		mergingFrag := states[pick.node].FragID
		_, err = sim.Run(sim.Config{Graph: g, Seed: seed}, func(nd *sim.Node) error {
			st := states[nd.Index()]
			dec := NoMerge
			if st.FragID == mergingFrag {
				dec = MergeDecision{Merging: true, AttachPort: -1}
				if nd.Index() == pick.node {
					dec.AttachPort = pick.port
				}
			}
			MergingFragments(nd, st, 1, dec)
			return nil
		})
		if err != nil {
			return false
		}
		if err := Validate(g, states); err != nil {
			return false
		}
		// The merging fragment must have disappeared.
		for _, st := range states {
			if st.FragID == mergingFrag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
