package ldt

import (
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// fuzzByte consumes one byte of fuzz input, defaulting to 0 when the
// input is exhausted.
type fuzzBytes struct {
	data []byte
	pos  int
}

func (f *fuzzBytes) next() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

// FuzzMergingFragments drives the paper's Merging-Fragments procedure
// with fuzzer-chosen forests and merge decisions and asserts the LDT
// well-formedness invariant is preserved: after any legal wave the
// per-node states still describe a valid labeled-distance forest
// (Validate) with exactly one fragment per non-merging head.
func FuzzMergingFragments(f *testing.F) {
	f.Add(int64(1), []byte{5, 2, 1, 0, 1, 0, 1, 1, 0})
	f.Add(int64(7), []byte{8, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1})
	f.Add(int64(42), []byte{3, 1, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		fb := &fuzzBytes{data: data}
		n := 2 + int(fb.next())%9 // 2..10 nodes
		m := n - 1 + int(fb.next())%n
		g := graph.RandomConnected(n, m, graph.GenConfig{Seed: seed})

		// A valid forest: each node either stays a root or hangs off a
		// lower-indexed neighbor, so the parent relation is acyclic by
		// construction.
		parent := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			parent[v] = -1
			var candidates []int
			for _, pt := range g.Ports(v) {
				if pt.To < v {
					candidates = append(candidates, pt.To)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			if pick := int(fb.next()) % (len(candidates) + 1); pick > 0 {
				parent[v] = candidates[pick-1]
			}
		}
		states, err := StatesFromParents(g, parent)
		if err != nil {
			t.Fatalf("forest construction: %v", err)
		}

		// Fuzzer-chosen tails, demoted to heads until every remaining
		// tail has an outgoing edge into a head fragment (the
		// procedure's precondition: tails attach to non-merging
		// fragments).
		fragOf := make([]int64, g.N())
		for v, st := range states {
			fragOf[v] = st.FragID
		}
		wantTail := map[int64]bool{}
		frags := Fragments(states)
		var fragIDs []int64
		for id := range frags {
			fragIDs = append(fragIDs, id)
		}
		// Deterministic order for byte consumption.
		for i := 0; i < len(fragIDs); i++ {
			for j := i + 1; j < len(fragIDs); j++ {
				if fragIDs[j] < fragIDs[i] {
					fragIDs[i], fragIDs[j] = fragIDs[j], fragIDs[i]
				}
			}
		}
		for _, id := range fragIDs {
			wantTail[id] = fb.next()%2 == 1
		}
		attachNode := map[int64]int{}
		attachPort := map[int64]int{}
		for changed := true; changed; {
			changed = false
			for _, id := range fragIDs {
				if !wantTail[id] {
					continue
				}
				// Minimum-key outgoing edge into a head fragment.
				bestKey := graph.MaxWeightKey
				bestNode, bestPort := -1, -1
				for _, v := range frags[id] {
					for p, pt := range g.Ports(v) {
						if fragOf[pt.To] == id || wantTail[fragOf[pt.To]] {
							continue
						}
						if k := g.Edge(pt.EdgeIdx).Key(); k.Less(bestKey) {
							bestKey, bestNode, bestPort = k, v, p
						}
					}
				}
				if bestNode < 0 {
					wantTail[id] = false // no head to attach to: demote
					changed = true
					continue
				}
				attachNode[id], attachPort[id] = bestNode, bestPort
			}
		}
		heads := 0
		for _, id := range fragIDs {
			if !wantTail[id] {
				heads++
			}
		}

		_, err = sim.Run(sim.Config{Graph: g, Seed: seed}, func(nd *sim.Node) error {
			st := states[nd.Index()]
			dec := NoMerge
			if wantTail[st.FragID] {
				dec = MergeDecision{Merging: true, AttachPort: -1}
				if attachNode[st.FragID] == nd.Index() {
					dec.AttachPort = attachPort[st.FragID]
				}
			}
			MergingFragments(nd, st, 1, dec)
			return nil
		})
		if err != nil {
			t.Fatalf("merge run: %v", err)
		}
		if err := Validate(g, states); err != nil {
			t.Fatalf("LDT invariant broken after merge: %v", err)
		}
		if got := FragmentCount(states); got != heads {
			t.Fatalf("fragment count %d after merge, want %d heads", got, heads)
		}
	})
}
