package ldt

import (
	"fmt"

	"sleepmst/internal/graph"
)

// StatesFromParents builds FLDT states from a parent assignment:
// parent[v] is the node index of v's parent, or -1 if v is a fragment
// root. Each (v, parent[v]) pair must be a graph edge; levels,
// children and fragment IDs are derived. Useful for tests, examples
// and constructing initial configurations.
func StatesFromParents(g *graph.Graph, parent []int) ([]*State, error) {
	if len(parent) != g.N() {
		return nil, fmt.Errorf("ldt: %d parents for %d nodes", len(parent), g.N())
	}
	states := make([]*State, g.N())
	for v := range states {
		states[v] = &State{ParentPort: -1}
	}
	portTo := func(v, w int) int {
		for p, pt := range g.Ports(v) {
			if pt.To == w {
				return p
			}
		}
		return -1
	}
	for v, p := range parent {
		if p < 0 {
			continue
		}
		pp := portTo(v, p)
		if pp < 0 {
			return nil, fmt.Errorf("ldt: no edge between node %d and its parent %d", v, p)
		}
		states[v].ParentPort = pp
		states[p].AddChild(portTo(p, v))
	}
	// Levels and fragment IDs by walking to roots (memoized via level
	// computed flags).
	var resolve func(v int, depth int) error
	level := make([]int, g.N())
	frag := make([]int64, g.N())
	done := make([]bool, g.N())
	resolve = func(v, depth int) error {
		if depth > g.N() {
			return fmt.Errorf("ldt: cycle in parent assignment at node %d", v)
		}
		if done[v] {
			return nil
		}
		if parent[v] < 0 {
			level[v], frag[v], done[v] = 0, g.ID(v), true
			return nil
		}
		if err := resolve(parent[v], depth+1); err != nil {
			return err
		}
		level[v], frag[v], done[v] = level[parent[v]]+1, frag[parent[v]], true
		return nil
	}
	for v := range parent {
		if err := resolve(v, 0); err != nil {
			return nil, err
		}
	}
	for v := range states {
		states[v].Level = level[v]
		states[v].FragID = frag[v]
	}
	return states, nil
}

// SingletonStates returns the initial configuration in which every
// node is its own fragment.
func SingletonStates(g *graph.Graph) []*State {
	states := make([]*State, g.N())
	for v := range states {
		states[v] = NewRootState(g.ID(v))
	}
	return states
}
