package service

import (
	"bufio"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// The fault-path battery: every documented failure mode — deadline
// exceeded, queue-full rejection, malformed request frame, and a
// mid-request drain — returns its documented status code, and none of
// them leaks a goroutine: after Drain/Shutdown the process is back to
// its pre-test goroutine count.

// assertNoLeaks polls until the goroutine count settles back to the
// before snapshot (scheduler teardown is asynchronous), failing with
// a full stack dump if it never does.
func assertNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultDeadline: an expired per-request deadline cancels the
// running cell at a round barrier on both engines — StatusDeadline,
// no partial artifact, no leaked node programs.
func TestFaultDeadline(t *testing.T) {
	for _, engine := range []string{"event", "goroutine"} {
		t.Run(engine, func(t *testing.T) {
			before := runtime.NumGoroutine()
			svc := New(Config{Workers: 1})
			resp := svc.Submit(Request{
				ID: 1, Problem: "mst/randomized", Graph: "random", N: 512,
				Seed: 1, Engine: engine, Deadline: time.Nanosecond,
			})
			svc.Drain()
			if resp.Status != StatusDeadline {
				t.Fatalf("status %v (%s), want deadline", resp.Status, resp.Detail)
			}
			if !strings.Contains(resp.Detail, "deadline") {
				t.Errorf("detail %q does not mention the deadline", resp.Detail)
			}
			if len(resp.Artifact) != 0 {
				t.Error("deadline response carries a partial artifact")
			}
			if got := svc.Metrics().Get("service/status/deadline"); got != 1 {
				t.Errorf("service/status/deadline = %d, want 1", got)
			}
			assertNoLeaks(t, before)
		})
	}
}

// TestFaultDeadlineCountsQueueWait: the deadline clock starts at
// Submit, so a request stuck in the admission queue past its deadline
// is answered StatusDeadline without ever running — queue wait is not
// free time on top of the documented end-to-end bound.
func TestFaultDeadlineCountsQueueWait(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 1})
	// Wedge the only worker so the request can't leave the queue.
	release := make(chan struct{})
	if err := svc.pool.TrySubmit(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	done := make(chan Response, 1)
	go func() {
		done <- svc.Submit(Request{
			ID: 9, Problem: "mis", Graph: "ring", N: 8,
			Deadline: 20 * time.Millisecond,
		})
	}()
	time.Sleep(100 * time.Millisecond) // let the deadline expire in the queue
	close(release)
	resp := <-done
	svc.Drain()
	if resp.Status != StatusDeadline {
		t.Fatalf("status %v (%s), want deadline", resp.Status, resp.Detail)
	}
	if !strings.Contains(resp.Detail, "queued") {
		t.Errorf("detail %q does not attribute the expiry to queue wait", resp.Detail)
	}
	if len(resp.Artifact) != 0 {
		t.Error("queued-past-deadline response carries an artifact")
	}
	assertNoLeaks(t, before)
}

// TestFaultOverload: with one worker and a queue of one, a burst of
// concurrent requests splits into the two documented outcomes — ok
// for the admitted, overloaded for the rejected — and every response
// is one of them.
func TestFaultOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 1, QueueDepth: 1})
	const burst = 12
	responses := make([]Response, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = svc.Submit(Request{
				ID: int64(i), Problem: "mst/randomized", Graph: "random", N: 400, Seed: int64(i),
			})
		}(i)
	}
	wg.Wait()
	svc.Drain()

	var ok, overloaded int
	for _, resp := range responses {
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusOverloaded:
			overloaded++
			if !strings.Contains(resp.Detail, "queue full") {
				t.Errorf("overload detail %q does not mention the queue", resp.Detail)
			}
		default:
			t.Errorf("request %d: undocumented burst outcome %v (%s)", resp.ID, resp.Status, resp.Detail)
		}
	}
	if ok == 0 || overloaded == 0 {
		t.Errorf("burst did not exercise both outcomes: %d ok, %d overloaded", ok, overloaded)
	}
	if got := svc.Metrics().Get("service/status/overloaded"); got != int64(overloaded) {
		t.Errorf("service/status/overloaded = %d, want %d", got, overloaded)
	}
	assertNoLeaks(t, before)
}

// TestFaultMalformedFrame: an undecodable frame is answered with the
// documented bad-frame response (ID -1, StatusInvalid), counted in
// service/frames/bad, and the connection is hung up.
func TestFaultMalformedFrame(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		// A uvarint length prefix far over MaxFrameBytes.
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
		// A well-formed length prefix over a garbage body.
		{"garbage body", append([]byte{4}, 0xde, 0xad, 0xbe, 0xef)},
		// A response frame where a request belongs.
		{"wrong kind", mustFrame(Response{ID: 9, Status: StatusOK})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			svc := New(Config{Workers: 1})
			srv := NewServer(svc)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveErr := make(chan error, 1)
			go func() { serveErr <- srv.Serve(ln) }()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(tc.frame); err != nil {
				t.Fatal(err)
			}
			br := bufio.NewReader(conn)
			resp, err := ReadResponse(br)
			if err != nil {
				t.Fatalf("no bad-frame response: %v", err)
			}
			if resp.ID != BadFrameID || resp.Status != StatusInvalid {
				t.Fatalf("bad frame answered with id=%d status=%v, want id=%d status=invalid",
					resp.ID, resp.Status, BadFrameID)
			}
			if !strings.Contains(resp.Detail, "malformed request frame") {
				t.Errorf("detail %q does not carry the documented code", resp.Detail)
			}
			// Past the bad-frame response the server hangs up.
			if _, err := br.ReadByte(); !errors.Is(err, io.EOF) {
				t.Errorf("connection still open after bad frame: %v", err)
			}
			if got := svc.Metrics().Get("service/frames/bad"); got != 1 {
				t.Errorf("service/frames/bad = %d, want 1", got)
			}
			srv.Shutdown()
			if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
				t.Errorf("Serve returned %v", err)
			}
			assertNoLeaks(t, before)
		})
	}
}

// mustFrame encodes a protocol message frame for test input.
func mustFrame(msg interface{}) []byte {
	buf, err := appendFrame(nil, msg)
	if err != nil {
		panic(err)
	}
	return buf
}

// TestFaultShutdownDrain: a drain beginning while a request is
// running lets it finish and delivers its response, rejects new
// requests with StatusShuttingDown, and leaves no goroutines behind —
// the mechanism behind the daemon's SIGTERM handling.
func TestFaultShutdownDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 1, QueueDepth: 1})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A request slow enough to still be running when the drain starts.
	if err := WriteRequest(conn, Request{ID: 50, Problem: "mst/randomized", Graph: "random", N: 512, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it be admitted
	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()

	br := bufio.NewReader(conn)
	resp, err := ReadResponse(br)
	if err != nil {
		t.Fatalf("in-flight response lost in drain: %v", err)
	}
	if resp.ID != 50 || resp.Status != StatusOK {
		t.Fatalf("in-flight request answered id=%d status=%v (%s), want 50/ok", resp.ID, resp.Status, resp.Detail)
	}
	<-done
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}

	// Post-drain submissions get the documented rejection.
	late := svc.Submit(Request{ID: 51, Problem: "mis", Graph: "ring", N: 8})
	if late.Status != StatusShuttingDown {
		t.Errorf("post-drain submit: status %v, want shutting-down", late.Status)
	}
	if got := svc.Metrics().Get("service/status/shutting-down"); got != 1 {
		t.Errorf("service/status/shutting-down = %d, want 1", got)
	}
	assertNoLeaks(t, before)
}
