package service

import (
	"fmt"

	"sleepmst/internal/graph"
)

// BuildGraph constructs the named topology, mirroring cmd/sleepsim's
// flags with a sparser random default (m = 2n): every undirected edge
// of a request run over a tcp backend costs two socket connections.
// Shared by the service's per-request execution and cmd/mstserve's
// one-shot mode.
func BuildGraph(kind string, n, m, rows int, radius float64, seed int64) (*graph.Graph, error) {
	cfg := graph.GenConfig{Seed: seed}
	switch kind {
	case "random":
		if m <= 0 {
			m = 2 * n
		}
		return graph.RandomConnected(n, m, cfg), nil
	case "ring":
		if n < 3 {
			return nil, fmt.Errorf("service: ring requires n >= 3, got %d", n)
		}
		return graph.Cycle(n, cfg), nil
	case "path":
		return graph.Path(n, cfg), nil
	case "grid":
		if rows > n {
			return nil, fmt.Errorf("service: rows=%d exceeds n=%d", rows, n)
		}
		if rows <= 0 {
			rows = intSqrt(n)
		}
		return graph.Grid(rows, (n+rows-1)/rows, cfg), nil
	case "complete":
		return graph.Complete(n, cfg), nil
	case "sensor":
		if radius <= 0 {
			radius = 0.2
		}
		return graph.RandomGeometric(n, radius, cfg), nil
	default:
		return nil, fmt.Errorf("service: unknown graph kind %q (want %s)", kind, GraphKindList)
	}
}

// GraphKindList is the documented topology vocabulary, for flag help
// strings and validation errors.
const GraphKindList = "random|ring|path|grid|complete|sensor"

// validGraphKind reports whether kind names a buildable topology.
func validGraphKind(kind string) bool {
	switch kind {
	case "random", "ring", "path", "grid", "complete", "sensor":
		return true
	}
	return false
}

// intSqrt returns the smallest r with r*r >= n.
func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
