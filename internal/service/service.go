// Package service is the persistent concurrent MST service: a request
// scheduler that runs many certified sleeping-model computations at
// once over a bounded worker pool, with explicit admission control
// and per-request isolation.
//
// One Service owns a sweep.Pool. Every admitted request runs as its
// own cell — own graph, seed, engine, trace recorder, metrics
// registry, and (optionally) its own wire backend — and produces a
// JSON Artifact holding the conformance verdict, the run summary, and
// any wire accounting. Per-request registries are folded into one
// service-level metrics registry; because every counter commutes, the
// merged registry is byte-identical for any worker count and any
// completion order, which is the service's determinism contract: a
// fixed-seed request mix yields identical per-request verdicts and
// identical merged metrics whether it is served by one worker or
// eight.
//
// Admission is explicit, never implicit queueing delay: a full queue
// rejects with StatusOverloaded, an invalid request with
// StatusInvalid, a draining service with StatusShuttingDown. An
// admitted request is bounded by a deadline whose clock starts at
// admission (queue wait counts) and that cancels the running cell at
// a round barrier (sim.ErrCanceled), so a stuck or oversized run can
// neither wedge a worker forever nor leak its node programs.
//
// Server (server.go) exposes the same Submit surface over a
// length-prefixed request/response wire protocol (wire.go);
// cmd/mstserve -serve is the daemon around it and cmd/mstload the
// closed-loop client.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/metrics"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
	"sleepmst/internal/sweep"
	"sleepmst/internal/trace"
	"sleepmst/internal/transport"
)

// Service defaults; every Config zero field falls back to one.
const (
	// DefaultQueueDepth bounds the admission queue (waiting requests;
	// requests a worker already picked up do not count).
	DefaultQueueDepth = 64
	// DefaultDeadline bounds one request end to end: the clock starts
	// at admission, so time spent waiting in the queue counts against
	// it.
	DefaultDeadline = 2 * time.Minute
	// DefaultMaxN caps the per-request node count at admission.
	DefaultMaxN = 4096
	// DefaultTraceCap is the per-request trace-recorder capacity when
	// the request does not choose one.
	DefaultTraceCap = 1 << 18
	// DefaultMaxTraceCap caps the capacity a request may choose.
	DefaultMaxTraceCap = 1 << 20
)

// Config parameterizes a Service. The zero value is usable: every
// field falls back to the package default.
type Config struct {
	// Workers is the worker-pool size (0 or negative = GOMAXPROCS; 1
	// serializes requests, the determinism control).
	Workers int
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	QueueDepth int
	// DefaultDeadline bounds requests that do not set their own
	// deadline (0 = DefaultDeadline).
	DefaultDeadline time.Duration
	// MaxN caps the per-request node count (0 = DefaultMaxN).
	MaxN int
	// MaxTraceCap caps the per-request trace capacity (0 =
	// DefaultMaxTraceCap).
	MaxTraceCap int
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = DefaultDeadline
	}
	if c.MaxN <= 0 {
		c.MaxN = DefaultMaxN
	}
	if c.MaxTraceCap <= 0 {
		c.MaxTraceCap = DefaultMaxTraceCap
	}
	return c
}

// Service schedules certified-computation requests over a bounded
// worker pool. Create with New, stop with Drain; Submit is safe for
// concurrent use from any number of goroutines.
type Service struct {
	cfg  Config
	pool *sweep.Pool
	reg  *metrics.Registry
}

// New starts a service with cfg.Workers workers and a bounded
// admission queue. Pair every New with a Drain.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:  cfg,
		pool: sweep.NewPool(sweep.Config{Workers: cfg.Workers}, cfg.QueueDepth),
		reg:  metrics.New(),
	}
}

// Metrics returns the live service-level registry: per-request run
// registries folded together plus the service/* request accounting.
// Snapshot it after Drain for a stable view.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Drain stops admission (new Submits return StatusShuttingDown),
// finishes every admitted request, and returns once the pool is idle.
// Safe to call more than once.
func (s *Service) Drain() { s.pool.Drain() }

// Submit runs one request to completion — through validation,
// admission, execution, and certification — and returns its response.
// It blocks the calling goroutine for the request's lifetime (the
// closed-loop client model); concurrency comes from concurrent
// callers, capacity from the worker pool.
func (s *Service) Submit(req Request) Response {
	p, detail := s.validate(&req)
	if detail != "" {
		return s.finish(req, Response{ID: req.ID, Status: StatusInvalid, Detail: detail}, "")
	}
	// The deadline clock starts here, before admission, so queue wait
	// counts against it: a request cannot spend QueueDepth x deadline
	// waiting for a worker.
	deadline := req.Deadline
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	cancel := make(chan struct{})
	timer := time.AfterFunc(deadline, func() { close(cancel) })
	defer timer.Stop()
	done := make(chan Response, 1)
	err := s.pool.TrySubmit(func() { done <- s.execute(req, p, deadline, cancel) })
	switch {
	case errors.Is(err, sweep.ErrPoolSaturated):
		return s.finish(req, Response{ID: req.ID, Status: StatusOverloaded,
			Detail: fmt.Sprintf("admission queue full (%d waiting requests)", s.cfg.QueueDepth)}, "")
	case err != nil:
		return s.finish(req, Response{ID: req.ID, Status: StatusShuttingDown,
			Detail: "service is draining"}, "")
	}
	return <-done
}

// validate checks the request against the admission contract and
// resolves the problem. A non-empty detail string is the rejection
// reason (StatusInvalid).
func (s *Service) validate(req *Request) (problem.Problem, string) {
	p, err := problem.Lookup(req.Problem)
	if err != nil {
		return nil, err.Error()
	}
	if !validGraphKind(req.Graph) {
		return nil, fmt.Sprintf("unknown graph kind %q (want %s)", req.Graph, GraphKindList)
	}
	if req.N < 1 || req.N > s.cfg.MaxN {
		return nil, fmt.Sprintf("n=%d outside the admitted range [1, %d]", req.N, s.cfg.MaxN)
	}
	if req.M < 0 || req.Rows < 0 {
		return nil, fmt.Sprintf("negative m=%d or rows=%d", req.M, req.Rows)
	}
	if req.Graph == "ring" && req.N < 3 {
		return nil, fmt.Sprintf("ring requires n >= 3, got %d", req.N)
	}
	if req.Rows > req.N {
		return nil, fmt.Sprintf("rows=%d exceeds n=%d", req.Rows, req.N)
	}
	if req.Graph == "sensor" && (math.IsNaN(req.Radius) || req.Radius < 0 || req.Radius > 2) {
		return nil, fmt.Sprintf("sensor radius %v outside [0, 2]", req.Radius)
	}
	if req.Engine != "" {
		if _, err := sim.ParseEngine(req.Engine); err != nil {
			return nil, err.Error()
		}
	}
	switch req.Transport {
	case "", "none", "inproc", "tcp":
	default:
		return nil, fmt.Sprintf("unknown transport %q (want none, inproc, or tcp)", req.Transport)
	}
	if req.TraceCap < 0 || req.TraceCap > s.cfg.MaxTraceCap {
		return nil, fmt.Sprintf("trace cap %d outside [0, %d]", req.TraceCap, s.cfg.MaxTraceCap)
	}
	if req.Deadline < 0 {
		return nil, fmt.Sprintf("negative deadline %v", req.Deadline)
	}
	return p, ""
}

// execute runs one admitted request as an isolated cell on a pool
// worker and certifies the result. The deadline clock started in
// Submit; cancel closes when it expires. A panic anywhere in the cell
// is recovered into StatusInternal so no request can kill the worker
// pool (and with it the daemon).
func (s *Service) execute(req Request, p problem.Problem, deadline time.Duration, cancel <-chan struct{}) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = s.finish(req, Response{ID: req.ID, Status: StatusInternal,
				Detail: fmt.Sprintf("panic in request cell: %v", r)}, "")
		}
	}()
	select {
	case <-cancel:
		// The deadline expired while the request sat in the admission
		// queue; don't start work that is already overdue.
		return s.finish(req, Response{ID: req.ID, Status: StatusDeadline,
			Detail: fmt.Sprintf("deadline %v exceeded while queued", deadline)}, "")
	default:
	}
	g, err := BuildGraph(req.Graph, req.N, req.M, req.Rows, req.Radius, req.Seed)
	if err != nil {
		return s.finish(req, Response{ID: req.ID, Status: StatusInternal, Detail: err.Error()}, "")
	}
	// Validation bounds the request's N, but derived topologies (grid
	// rounds n up to rows*cols) can build more nodes than asked for;
	// re-check the built size against the same admission cap.
	if g.N() > s.cfg.MaxN {
		return s.finish(req, Response{ID: req.ID, Status: StatusInvalid,
			Detail: fmt.Sprintf("built %s graph has %d nodes, over the admitted cap %d", req.Graph, g.N(), s.cfg.MaxN)}, "")
	}
	var tx transport.Transport
	switch req.Transport {
	case "inproc":
		tx = transport.NewInproc()
	case "tcp":
		tx = transport.NewTCP(transport.TCPConfig{})
	}
	if tx != nil {
		defer tx.Close()
	}
	engine := sim.EngineEvent
	if req.Engine != "" {
		engine, _ = sim.ParseEngine(req.Engine) // validated at admission
	}
	traceCap := req.TraceCap
	if traceCap == 0 {
		traceCap = DefaultTraceCap
	}

	rec := trace.NewRecorder(traceCap)
	reg := metrics.New()
	r, err := p.Run(g, core.Options{
		Engine:    engine,
		Seed:      req.Seed,
		Trace:     rec,
		Metrics:   reg,
		Transport: tx,
		Cancel:    cancel,
	})
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			return s.finish(req, Response{ID: req.ID, Status: StatusDeadline,
				Detail: fmt.Sprintf("deadline %v exceeded: %v", deadline, err)}, "")
		}
		return s.finish(req, Response{ID: req.ID, Status: StatusInternal, Detail: err.Error()}, "")
	}

	verdict := conform.Suite{
		Info:   conform.RunInfo{Algorithm: p.Name(), N: g.N(), Seed: req.Seed, Budget: p.Budget},
		Meta:   rec.Meta(),
		Events: rec.Events(),
		Extra:  []conform.Check{p.ConformCheck(g, r)},
	}.Verdict()
	verify := p.Verify(g, r)

	a := Artifact{
		Schema:    ArtifactSchema,
		ID:        req.ID,
		Problem:   p.Name(),
		Graph:     req.Graph,
		N:         g.N(),
		M:         g.M(),
		Seed:      req.Seed,
		Transport: req.Transport,
		Verdict:   verdict,
		Run: RunSummary{
			AwakeMax:     r.Sim.MaxAwake(),
			AwakeAvg:     r.Sim.MeanAwake(),
			Rounds:       r.Sim.Rounds,
			BusyRounds:   r.Sim.BusyRounds,
			Sent:         r.Sim.MessagesSent,
			Delivered:    r.Sim.MessagesDelivered,
			Lost:         r.Sim.MessagesLost,
			BitsSent:     r.Sim.BitsSent,
			Phases:       r.Phases,
			VerifyPassed: verify == nil,
		},
	}
	if r.Outcome != nil {
		a.Run.MSTWeight = graph.TotalWeight(r.Outcome.MSTEdges)
	}
	if st, ok := tx.(transport.Statser); ok {
		w := st.TransportStats()
		a.Wire = &WireSummary{
			FramesSent:     w.FramesSent,
			FramesRecv:     w.FramesRecv,
			WireBytes:      w.WireBytes,
			Dials:          w.Dials,
			Redials:        w.Redials,
			SendRetries:    w.SendRetries,
			InjectedDrops:  w.InjectedDrops,
			InjectedDelays: w.InjectedDelays,
		}
	}

	resp = Response{ID: req.ID, Status: StatusOK}
	if !verdict.Pass || verify != nil {
		resp.Status = StatusViolation
		resp.Detail = violationDetail(verdict, verify)
	}
	data, err := json.Marshal(a)
	if err != nil {
		return s.finish(req, Response{ID: req.ID, Status: StatusInternal,
			Detail: fmt.Sprintf("artifact marshal: %v", err)}, "")
	}
	resp.Artifact = data
	if req.WantTrace {
		var b bytes.Buffer
		if err := rec.WriteJSONL(&b); err != nil {
			return s.finish(req, Response{ID: req.ID, Status: StatusInternal,
				Detail: fmt.Sprintf("trace render: %v", err)}, "")
		}
		resp.Trace = b.Bytes()
	}
	// Fold the completed run's counters into the service registry —
	// only completed runs: a canceled cell's partial counters would
	// depend on where the deadline happened to land.
	s.reg.Merge(reg)
	return s.finish(req, resp, p.Name())
}

// finish records the request accounting and returns resp. canonical
// is the resolved problem name for completed runs ("" otherwise).
func (s *Service) finish(req Request, resp Response, canonical string) Response {
	s.reg.Add(metrics.ServiceRequests, 1)
	s.reg.Add(metrics.ServiceStatusName(resp.Status.String()), 1)
	if canonical != "" {
		s.reg.Add(metrics.ServiceProblemName(canonical), 1)
	}
	return resp
}

// violationDetail summarizes the failing checks of a violation.
func violationDetail(v *conform.Verdict, verify error) string {
	var parts []string
	for _, c := range v.Failures() {
		parts = append(parts, c.Name)
	}
	if verify != nil {
		parts = append(parts, verify.Error())
	}
	return "failed: " + strings.Join(parts, ", ")
}
