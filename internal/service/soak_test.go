package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"testing"

	"sleepmst/internal/conform"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// TestSoakConcurrentClients is the race-enabled soak: several
// concurrent wire clients pound one in-process server with a mixed
// MST+MIS workload, every request ships its trace back, and every
// verdict is independently re-certified client-side by replaying the
// trace through conform.CheckTrace — the client does not have to
// trust the server's verdict. Run under -race (CI does) this is also
// the data-race probe for the scheduler, the pool, and the per-conn
// response writers.
func TestSoakConcurrentClients(t *testing.T) {
	const (
		clients   = 6
		perClient = 8
	)
	svc := New(Config{Workers: 4})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	// soakRequest derives a deterministic mixed request from its
	// global index: alternating problems and topologies, fixed seeds.
	soakRequest := func(id int64) Request {
		problems := []string{"mst/randomized", "mis", "mst/baseline"}
		graphs := []string{"random", "ring", "grid"}
		return Request{
			ID:        id,
			Problem:   problems[id%3],
			Graph:     graphs[(id/3)%3],
			N:         24 + int(id%4)*8,
			Seed:      1000 + id,
			WantTrace: true,
		}
	}

	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			errs <- func() error {
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					return err
				}
				defer conn.Close()
				want := map[int64]Request{}
				for i := 0; i < perClient; i++ {
					req := soakRequest(int64(c*perClient + i))
					want[req.ID] = req
					if err := WriteRequest(conn, req); err != nil {
						return fmt.Errorf("client %d: %w", c, err)
					}
				}
				br := bufio.NewReader(conn)
				for i := 0; i < perClient; i++ {
					resp, err := ReadResponse(br)
					if err != nil {
						return fmt.Errorf("client %d: %w", c, err)
					}
					req, ok := want[resp.ID]
					if !ok {
						return fmt.Errorf("client %d: response for unknown id %d", c, resp.ID)
					}
					delete(want, resp.ID)
					if resp.Status != StatusOK {
						return fmt.Errorf("request %d: status %v (%s)", resp.ID, resp.Status, resp.Detail)
					}
					if err := recheck(req, resp); err != nil {
						return fmt.Errorf("request %d: %w", resp.ID, err)
					}
				}
				return nil
			}()
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// recheck independently re-certifies one response: the artifact's
// verdict must pass, and replaying the shipped trace through
// conform.CheckTrace must pass too.
func recheck(req Request, resp Response) error {
	var a Artifact
	if err := json.Unmarshal(resp.Artifact, &a); err != nil {
		return fmt.Errorf("artifact does not parse: %w", err)
	}
	if a.Verdict == nil || !a.Verdict.Pass || !a.Run.VerifyPassed {
		return fmt.Errorf("server verdict did not pass: %+v", a.Verdict)
	}
	if len(resp.Trace) == 0 {
		return fmt.Errorf("no trace shipped despite WantTrace")
	}
	meta, events, err := trace.ReadJSONL(bytes.NewReader(resp.Trace))
	if err != nil {
		return fmt.Errorf("trace does not parse: %w", err)
	}
	p, err := problem.Lookup(a.Problem)
	if err != nil {
		return err
	}
	v := conform.CheckTrace(meta, events, conform.RunInfo{
		Algorithm: a.Problem, N: a.N, Seed: a.Seed, Budget: p.Budget,
	})
	if !v.Pass {
		var failing []string
		for _, c := range v.Failures() {
			failing = append(failing, c.Name)
		}
		return fmt.Errorf("client-side CheckTrace failed: %v", failing)
	}
	return nil
}
