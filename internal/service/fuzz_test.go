package service

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sleepmst/internal/transport"
)

// fuzzSeeds are the interesting request-frame bodies: canonical
// encodings, truncations at every prefix length, oversized and
// non-minimal length fields, garbage, and frames of the wrong kind.
// The committed corpus under testdata/fuzz/FuzzDecodeRequest mirrors
// them (regenerate with SERVICE_REGEN_CORPUS=1).
func fuzzSeeds() [][]byte {
	full := Request{
		ID: 42, Problem: "mst/randomized", Graph: "sensor", N: 64, M: 128,
		Rows: 8, Radius: 0.25, Seed: -7, Engine: "goroutine", Transport: "tcp",
		TraceCap: 1 << 16, Deadline: 3 * time.Second, WantTrace: true,
	}
	zero := Request{}
	nan := Request{ID: 1, Problem: "mis", Graph: "sensor", N: 8, Radius: math.NaN()}
	enc := func(req Request) []byte {
		body, err := transport.EncodeMessage(nil, req)
		if err != nil {
			panic(err)
		}
		return body
	}
	fullBody := enc(full)
	seeds := [][]byte{
		fullBody,
		enc(zero),
		enc(nan),
		fullBody[:1],               // kind byte only
		fullBody[:len(fullBody)/2], // truncated mid-body
		append(fullBody[:len(fullBody):len(fullBody)], 0), // trailing byte
		{},                       // empty body
		{0xff, 0xff, 0xff, 0xff}, // unregistered kind, garbage
		{80, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // request kind, absurd first varint
		{80, 2, 0xfe, 0xff, 0xff, 0xff, 0x0f},                            // string length over remaining bytes
	}
	if respBody, err := transport.EncodeMessage(nil, Response{ID: 3, Status: StatusOK}); err == nil {
		seeds = append(seeds, respBody) // wrong kind for DecodeRequest
	}
	return seeds
}

// FuzzDecodeRequest hardens the request decoder the same way
// trace.FuzzReadJSONL hardens the trace reader: arbitrary bytes must
// never panic or over-allocate, and whatever decodes must be stable —
// re-encoding the decoded request and decoding again must reproduce
// the same canonical bytes. The framed path (ReadRequest) is driven
// over the same input with a length prefix attached, so truncated and
// oversized frames exercise the cap-before-allocate guard.
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err == nil {
			// Canonical re-encoding must be a fixed point (byte
			// comparison sidesteps NaN != NaN on Radius).
			enc, err := transport.EncodeMessage(nil, req)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			req2, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("canonical encoding does not decode: %v", err)
			}
			enc2, err := transport.EncodeMessage(nil, req2)
			if err != nil {
				t.Fatalf("re-decoded request does not re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("canonical encoding is not a fixed point:\n%x\n%x", enc, enc2)
			}
		}

		// The framed reader over the same body: must agree with the
		// body decoder and must never read past the declared length.
		framed, err := AppendRequest(nil, Request{ID: 1, Problem: "mis", Graph: "ring", N: 4})
		if err != nil {
			t.Fatal(err)
		}
		framed = append(framed, body...) // trailing garbage after a valid frame
		br := bufio.NewReader(bytes.NewReader(framed))
		if _, err := ReadRequest(br); err != nil {
			t.Fatalf("valid frame rejected with trailing garbage present: %v", err)
		}
	})
}

// TestRegenFuzzCorpus rewrites the committed seed corpus from
// fuzzSeeds when SERVICE_REGEN_CORPUS=1; otherwise it verifies the
// corpus is present and in the `go test fuzz v1` format, so the seeds
// and the committed files cannot drift silently.
func TestRegenFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeRequest")
	if os.Getenv("SERVICE_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds() {
			name := filepath.Join(dir, fmt.Sprintf("seed_%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (run with SERVICE_REGEN_CORPUS=1 to generate): %v", err)
	}
	if len(entries) < len(fuzzSeeds()) {
		t.Fatalf("corpus has %d files, seeds define %d (regenerate with SERVICE_REGEN_CORPUS=1)",
			len(entries), len(fuzzSeeds()))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Errorf("%s is not in go test fuzz v1 format", e.Name())
		}
	}
}
