package service

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"sleepmst/internal/transport"
)

// The service request/response protocol: length-prefixed binary
// frames whose bodies are self-describing transport codec messages
// (kind range 80-95 per the internal/transport allocation). A client
// writes Request frames on a connection and reads Response frames
// back; responses carry the request's ID and may arrive out of order
// when the client pipelines. The decoder is hardened the same way the
// frame reader is: an oversized length prefix is stream corruption,
// not an allocation request, and a body must be consumed exactly.

// Codec kinds of the service protocol.
const (
	// KindRequest is the wire kind of Request.
	KindRequest = 80
	// KindResponse is the wire kind of Response.
	KindResponse = 81
)

// MaxFrameBytes bounds one request or response frame. Responses carry
// JSON artifacts and optional JSONL traces, so the cap is wider than
// the per-message transport cap.
const MaxFrameBytes = 8 << 20

// BadFrameID is the Response.ID the server uses when it answers an
// undecodable frame: the request's own ID never decoded, so no real
// ID can be echoed. The server hangs up after sending it (the stream
// may be corrupt beyond the one frame).
const BadFrameID = -1

// Status classifies one request's outcome. The String spellings are
// the documented error codes: they key the service/status/<status>
// metrics and appear in artifacts and reports.
type Status uint8

// The documented request outcomes.
const (
	// StatusOK: the run completed and the conformance verdict plus the
	// problem's correctness oracle both passed.
	StatusOK Status = iota
	// StatusViolation: the run completed but the verdict or the
	// oracle failed; the artifact holds the failing checks.
	StatusViolation
	// StatusInvalid: the request failed validation (unknown problem,
	// graph kind, engine or transport; out-of-range n, rows, trace cap
	// or deadline; a per-kind topology minimum like ring n >= 3; or a
	// built graph over the node cap) — or, with BadFrameID, the frame
	// itself was undecodable.
	StatusInvalid
	// StatusOverloaded: the admission queue was full; the request was
	// rejected without running. Back off and retry.
	StatusOverloaded
	// StatusDeadline: the per-request deadline expired; the running
	// cell was canceled at a round barrier.
	StatusDeadline
	// StatusShuttingDown: the service is draining after SIGTERM; the
	// request was rejected without running.
	StatusShuttingDown
	// StatusInternal: an infrastructure failure (graph construction,
	// transport bring-up, simulator abort other than cancellation).
	StatusInternal

	statusCount // sentinel for decode validation
)

// String returns the documented spelling of the status code.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusViolation:
		return "violation"
	case StatusInvalid:
		return "invalid"
	case StatusOverloaded:
		return "overloaded"
	case StatusDeadline:
		return "deadline"
	case StatusShuttingDown:
		return "shutting-down"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Request is one certified-computation request: which problem to run
// on which topology with which seed, plus the per-request isolation
// knobs (engine, wire backend, trace capacity, deadline). The zero
// value of every optional field means "service default".
type Request struct {
	// ID is the client-assigned correlation id echoed in the response.
	ID int64
	// Problem is the qualified problem name (e.g. "mst/randomized",
	// "mis") or a bare MST alias.
	Problem string
	// Graph is the topology kind: random|ring|path|grid|complete|sensor.
	Graph string
	// N is the node count (required, 1 <= N <= the service's MaxN).
	N int
	// M is the edge count for random graphs (0 = 2n).
	M int
	// Rows is the row count for grid graphs (0 = isqrt(n)).
	Rows int
	// Radius is the connection radius for sensor graphs (0 = 0.2).
	Radius float64
	// Seed seeds topology, weights, and algorithm randomness.
	Seed int64
	// Engine selects the scheduler: "", "event", or "goroutine".
	Engine string
	// Transport selects the per-request wire backend: "" or "none"
	// (in-memory), "inproc", or "tcp".
	Transport string
	// TraceCap is the trace-recorder event capacity (0 = service
	// default; bounded by the service's MaxTraceCap).
	TraceCap int
	// Deadline bounds the request end to end (0 = service default); an
	// expired deadline cancels the running cell at a round barrier.
	Deadline time.Duration
	// WantTrace ships the full JSONL event trace in the response, so
	// clients can re-certify the verdict with conform.CheckTrace.
	WantTrace bool
}

// Response is the service's answer to one Request.
type Response struct {
	// ID echoes the request id (BadFrameID for undecodable frames).
	ID int64
	// Status is the documented outcome code.
	Status Status
	// Detail explains non-OK statuses.
	Detail string
	// Artifact is the per-request JSON artifact (see Artifact) for
	// StatusOK and StatusViolation; empty otherwise.
	Artifact []byte
	// Trace is the JSONL event trace when the request set WantTrace
	// and the run completed; empty otherwise.
	Trace []byte
}

func init() {
	transport.Register(transport.Codec{
		Kind: KindRequest, Name: "service/request", Type: reflect.TypeOf(Request{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			q := msg.(Request)
			w.Int(q.ID)
			w.Bytes([]byte(q.Problem))
			w.Bytes([]byte(q.Graph))
			w.Int(int64(q.N))
			w.Int(int64(q.M))
			w.Int(int64(q.Rows))
			w.Uint(math.Float64bits(q.Radius))
			w.Int(q.Seed)
			w.Bytes([]byte(q.Engine))
			w.Bytes([]byte(q.Transport))
			w.Int(int64(q.TraceCap))
			w.Int(int64(q.Deadline))
			w.Bool(q.WantTrace)
		},
		Decode: func(r *transport.Reader) interface{} {
			return Request{
				ID:        r.Int(),
				Problem:   string(r.Bytes()),
				Graph:     string(r.Bytes()),
				N:         int(r.Int()),
				M:         int(r.Int()),
				Rows:      int(r.Int()),
				Radius:    math.Float64frombits(r.Uvarint()),
				Seed:      r.Int(),
				Engine:    string(r.Bytes()),
				Transport: string(r.Bytes()),
				TraceCap:  int(r.Int()),
				Deadline:  time.Duration(r.Int()),
				WantTrace: r.Bool(),
			}
		},
	})
	transport.Register(transport.Codec{
		Kind: KindResponse, Name: "service/response", Type: reflect.TypeOf(Response{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			p := msg.(Response)
			w.Int(p.ID)
			w.Uint(uint64(p.Status))
			w.Bytes([]byte(p.Detail))
			w.Bytes(p.Artifact)
			w.Bytes(p.Trace)
		},
		Decode: func(r *transport.Reader) interface{} {
			return Response{
				ID:       r.Int(),
				Status:   decodeStatus(r.Uvarint()),
				Detail:   string(r.Bytes()),
				Artifact: append([]byte(nil), r.Bytes()...),
				Trace:    append([]byte(nil), r.Bytes()...),
			}
		},
	})
}

// decodeStatus maps a raw wire status onto Status without letting the
// uint8 conversion wrap an out-of-range value (e.g. 256) back into a
// valid code: anything >= statusCount decodes to an invalid sentinel
// that DecodeResponse's unknown-status check rejects.
func decodeStatus(raw uint64) Status {
	if raw >= uint64(statusCount) {
		return Status(math.MaxUint8)
	}
	return Status(raw)
}

// appendFrame appends the length-prefixed encoding of a registered
// protocol message.
func appendFrame(buf []byte, msg interface{}) ([]byte, error) {
	body, err := transport.EncodeMessage(nil, msg)
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrameBytes {
		return nil, fmt.Errorf("service: %T frame is %d bytes, over the %d cap", msg, len(body), MaxFrameBytes)
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...), nil
}

// readFrameBody reads one length-prefixed frame body off br, capping
// the declared length before allocating.
func readFrameBody(br *bufio.Reader) ([]byte, error) {
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if length > MaxFrameBytes {
		return nil, fmt.Errorf("service: frame length %d exceeds cap %d (stream corrupt?)", length, MaxFrameBytes)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("service: truncated frame: %w", err)
	}
	return body, nil
}

// AppendRequest appends the length-prefixed frame encoding of req.
func AppendRequest(buf []byte, req Request) ([]byte, error) {
	return appendFrame(buf, req)
}

// DecodeRequest decodes one request frame body (without the length
// prefix): the exact inverse of AppendRequest's body. It rejects
// truncated bodies, trailing bytes, and frames of any other kind.
func DecodeRequest(body []byte) (Request, error) {
	msg, err := transport.DecodePayload(body)
	if err != nil {
		return Request{}, err
	}
	req, ok := msg.(Request)
	if !ok {
		return Request{}, fmt.Errorf("service: frame carries %T, want a request", msg)
	}
	return req, nil
}

// ReadRequest reads and decodes one request frame off br.
func ReadRequest(br *bufio.Reader) (Request, error) {
	body, err := readFrameBody(br)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(body)
}

// WriteRequest writes one request frame to w.
func WriteRequest(w io.Writer, req Request) error {
	buf, err := AppendRequest(nil, req)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendResponse appends the length-prefixed frame encoding of resp.
func AppendResponse(buf []byte, resp Response) ([]byte, error) {
	return appendFrame(buf, resp)
}

// DecodeResponse decodes one response frame body (without the length
// prefix), rejecting unknown status codes on top of the structural
// checks DecodeRequest applies.
func DecodeResponse(body []byte) (Response, error) {
	msg, err := transport.DecodePayload(body)
	if err != nil {
		return Response{}, err
	}
	resp, ok := msg.(Response)
	if !ok {
		return Response{}, fmt.Errorf("service: frame carries %T, want a response", msg)
	}
	if resp.Status >= statusCount {
		return Response{}, fmt.Errorf("service: response carries an unknown status code (>= %d)", uint8(statusCount))
	}
	return resp, nil
}

// ReadResponse reads and decodes one response frame off br.
func ReadResponse(br *bufio.Reader) (Response, error) {
	body, err := readFrameBody(br)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(body)
}

// WriteResponse writes one response frame to w.
func WriteResponse(w io.Writer, resp Response) error {
	buf, err := AppendResponse(nil, resp)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
