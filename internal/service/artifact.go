package service

import "sleepmst/internal/conform"

// ArtifactSchema versions the per-request service artifact. It tracks
// cmd/mstserve's one-shot artifact shape (same run and wire summaries)
// with the request correlation id added.
const ArtifactSchema = 1

// Artifact is the per-request JSON artifact carried in
// Response.Artifact for every completed run (StatusOK or
// StatusViolation): the conformance verdict, the sleeping-model run
// summary, and — when the request ran over a metered wire backend —
// the physical transport accounting.
type Artifact struct {
	Schema    int    `json:"schema"`
	ID        int64  `json:"id"`
	Problem   string `json:"problem"`
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Seed      int64  `json:"seed"`
	Transport string `json:"transport,omitempty"`

	// Verdict is the conformance verdict over the run's trace plus the
	// problem's correctness oracle — byte-identical across backends.
	Verdict *conform.Verdict `json:"verdict"`

	// Run summarizes the sleeping-model accounting.
	Run RunSummary `json:"run"`

	// Wire is the physical transport accounting; timing-dependent
	// counters (retries, redials) live here and only here, never in
	// the deterministic service metrics registry.
	Wire *WireSummary `json:"wire,omitempty"`
}

// RunSummary is the sleeping-model accounting of one completed run.
type RunSummary struct {
	AwakeMax     int64   `json:"awake_max"`
	AwakeAvg     float64 `json:"awake_avg"`
	Rounds       int64   `json:"rounds"`
	BusyRounds   int64   `json:"busy_rounds"`
	Sent         int64   `json:"messages_sent"`
	Delivered    int64   `json:"messages_delivered"`
	Lost         int64   `json:"messages_lost"`
	BitsSent     int64   `json:"bits_sent"`
	MSTWeight    int64   `json:"mst_weight,omitempty"`
	Phases       int     `json:"phases,omitempty"`
	VerifyPassed bool    `json:"verify_passed"`
}

// WireSummary is the physical wire accounting of one request that ran
// over a metered backend (inproc or tcp).
type WireSummary struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesRecv     int64 `json:"frames_recv"`
	WireBytes      int64 `json:"wire_bytes"`
	Dials          int64 `json:"dials"`
	Redials        int64 `json:"redials,omitempty"`
	SendRetries    int64 `json:"send_retries,omitempty"`
	InjectedDrops  int64 `json:"injected_drops,omitempty"`
	InjectedDelays int64 `json:"injected_delays,omitempty"`
}
