package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/problem"
)

// testMix is a fixed request mix spanning problems, topologies,
// engines, and backends — the workload both determinism tests replay.
func testMix() []Request {
	return []Request{
		{ID: 1, Problem: "mst/randomized", Graph: "random", N: 32, Seed: 7},
		{ID: 2, Problem: "mis", Graph: "ring", N: 48, Seed: 3},
		{ID: 3, Problem: "mst/baseline", Graph: "grid", N: 25, Seed: 11},
		{ID: 4, Problem: "mst/randomized", Graph: "path", N: 24, Seed: 5, Engine: "goroutine"},
		{ID: 5, Problem: "mst/ghs", Graph: "complete", N: 12, Seed: 2},
		{ID: 6, Problem: "randomized", Graph: "random", N: 28, M: 80, Seed: 9}, // bare alias
		{ID: 7, Problem: "mis", Graph: "grid", N: 36, Seed: 1, WantTrace: true},
		{ID: 8, Problem: "mst/randomized", Graph: "sensor", N: 40, Radius: 0.5, Seed: 13},
		{ID: 9, Problem: "mst/logstar", Graph: "ring", N: 32, Seed: 4},
		{ID: 10, Problem: "mst/randomized", Graph: "random", N: 32, Seed: 7, Transport: "inproc"},
	}
}

// runMix submits the fixed mix to a fresh service from 8 concurrent
// client goroutines and returns every response plus the drained
// service metrics rendering.
func runMix(t *testing.T, workers int) (map[int64]Response, string) {
	t.Helper()
	svc := New(Config{Workers: workers})
	reqs := make(chan Request)
	var (
		mu  sync.Mutex
		got = map[int64]Response{}
		wg  sync.WaitGroup
	)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range reqs {
				resp := svc.Submit(req)
				mu.Lock()
				got[req.ID] = resp
				mu.Unlock()
			}
		}()
	}
	for _, req := range testMix() {
		reqs <- req
	}
	close(reqs)
	wg.Wait()
	svc.Drain()
	return got, svc.Metrics().String()
}

// TestServiceDeterministicAcrossWorkers is the acceptance pin: the
// fixed-seed mix produces identical per-request responses (status,
// artifact bytes, trace bytes) and a byte-identical merged service
// metrics registry with 1 worker and with 8.
func TestServiceDeterministicAcrossWorkers(t *testing.T) {
	seq, seqMetrics := runMix(t, 1)
	par, parMetrics := runMix(t, 8)

	if len(seq) != len(testMix()) {
		t.Fatalf("lost responses: got %d, want %d", len(seq), len(testMix()))
	}
	for id, want := range seq {
		gotR, ok := par[id]
		if !ok {
			t.Fatalf("request %d: no response at workers=8", id)
		}
		if !reflect.DeepEqual(gotR, want) {
			t.Errorf("request %d: response differs across worker counts:\n 1: %+v\n 8: %+v", id, want, gotR)
		}
		if want.Status != StatusOK {
			t.Errorf("request %d: status %v (%s), want ok", id, want.Status, want.Detail)
			continue
		}
		var a Artifact
		if err := json.Unmarshal(want.Artifact, &a); err != nil {
			t.Fatalf("request %d: artifact does not parse: %v", id, err)
		}
		if a.ID != id || a.Verdict == nil || !a.Verdict.Pass || !a.Run.VerifyPassed {
			t.Errorf("request %d: artifact not a passing verdict: %+v", id, a)
		}
	}
	if seqMetrics != parMetrics {
		t.Errorf("service metrics differ across worker counts:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", seqMetrics, parMetrics)
	}
	if seqMetrics == "" {
		t.Error("service metrics empty")
	}
}

// TestServiceRequestFeatures spot-checks per-request isolation knobs
// on single responses: traces arrive only when asked for, the inproc
// request carries wire accounting, and the in-memory ones do not.
func TestServiceRequestFeatures(t *testing.T) {
	seq, _ := runMix(t, 1)
	if len(seq[7].Trace) == 0 {
		t.Error("WantTrace request returned no trace")
	}
	if len(seq[1].Trace) != 0 {
		t.Error("trace shipped without WantTrace")
	}
	var withWire, without Artifact
	if err := json.Unmarshal(seq[10].Artifact, &withWire); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(seq[1].Artifact, &without); err != nil {
		t.Fatal(err)
	}
	if withWire.Wire == nil || withWire.Wire.FramesSent == 0 {
		t.Errorf("inproc request carries no wire accounting: %+v", withWire.Wire)
	}
	if without.Wire != nil {
		t.Errorf("in-memory request carries wire accounting: %+v", without.Wire)
	}
}

// TestServiceInvalidRequests pins the StatusInvalid vocabulary: every
// way a request can fail validation is rejected before admission with
// a detail naming the offending field.
func TestServiceInvalidRequests(t *testing.T) {
	svc := New(Config{Workers: 1, MaxN: 100})
	defer svc.Drain()
	cases := []struct {
		name   string
		req    Request
		detail string
	}{
		{"unknown problem", Request{Problem: "tsp", Graph: "ring", N: 8}, "unknown problem"},
		{"unknown graph", Request{Problem: "mis", Graph: "torus", N: 8}, "unknown graph kind"},
		{"n too small", Request{Problem: "mis", Graph: "ring", N: 0}, "outside the admitted range"},
		{"n too large", Request{Problem: "mis", Graph: "ring", N: 101}, "outside the admitted range"},
		{"negative m", Request{Problem: "mis", Graph: "random", N: 8, M: -1}, "negative m"},
		{"ring n=1", Request{Problem: "mis", Graph: "ring", N: 1}, "ring requires n >= 3"},
		{"ring n=2", Request{Problem: "mis", Graph: "ring", N: 2}, "ring requires n >= 3"},
		{"rows over n", Request{Problem: "mis", Graph: "grid", N: 9, Rows: 1 << 40}, "exceeds n"},
		{"bad engine", Request{Problem: "mis", Graph: "ring", N: 8, Engine: "warp"}, "unknown engine"},
		{"bad transport", Request{Problem: "mis", Graph: "ring", N: 8, Transport: "udp"}, "unknown transport"},
		{"nan radius", Request{Problem: "mis", Graph: "sensor", N: 8, Radius: math.NaN()}, "radius"},
		{"trace cap", Request{Problem: "mis", Graph: "ring", N: 8, TraceCap: DefaultMaxTraceCap + 1}, "trace cap"},
		{"negative deadline", Request{Problem: "mis", Graph: "ring", N: 8, Deadline: -time.Second}, "negative deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := svc.Submit(tc.req)
			if resp.Status != StatusInvalid {
				t.Fatalf("status %v (%s), want invalid", resp.Status, resp.Detail)
			}
			if !bytes.Contains([]byte(resp.Detail), []byte(tc.detail)) {
				t.Errorf("detail %q does not mention %q", resp.Detail, tc.detail)
			}
			if len(resp.Artifact) != 0 {
				t.Error("invalid request carries an artifact")
			}
		})
	}
}

// TestServiceBuiltGraphCap: a topology whose construction rounds the
// node count up past the requested N (grid builds rows x cols >= n)
// is re-checked against MaxN after the build, so the admission cap
// cannot be bypassed through derived sizes.
func TestServiceBuiltGraphCap(t *testing.T) {
	svc := New(Config{Workers: 1, MaxN: 8})
	defer svc.Drain()
	// rows=7 passes validation (7 <= n=8) but grid builds 7x2 = 14.
	resp := svc.Submit(Request{ID: 1, Problem: "mis", Graph: "grid", N: 8, Rows: 7})
	if resp.Status != StatusInvalid {
		t.Fatalf("status %v (%s), want invalid", resp.Status, resp.Detail)
	}
	if !bytes.Contains([]byte(resp.Detail), []byte("over the admitted cap")) {
		t.Errorf("detail %q does not name the cap", resp.Detail)
	}
}

// panicProblem stands in for any construction-or-run bug inside a
// request cell: its Run panics unconditionally.
type panicProblem struct{}

func (panicProblem) Name() string { return "test/panic" }
func (panicProblem) Run(*graph.Graph, core.Options) (*problem.Result, error) {
	panic("cell bug")
}
func (panicProblem) Budget(int) (int64, bool)                   { return 0, false }
func (panicProblem) Verify(*graph.Graph, *problem.Result) error { return nil }
func (panicProblem) ConformCheck(*graph.Graph, *problem.Result) conform.Check {
	return conform.Check{}
}

// TestExecutePanicIsInternal: a panic anywhere in a request cell is
// recovered into StatusInternal instead of unwinding a pool worker
// goroutine and killing the daemon.
func TestExecutePanicIsInternal(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Drain()
	resp := svc.execute(Request{ID: 77, Graph: "path", N: 4}, panicProblem{},
		time.Minute, make(chan struct{}))
	if resp.Status != StatusInternal {
		t.Fatalf("status %v (%s), want internal", resp.Status, resp.Detail)
	}
	if !bytes.Contains([]byte(resp.Detail), []byte("panic in request cell")) {
		t.Errorf("detail %q does not name the panic", resp.Detail)
	}
	if got := svc.Metrics().Get("service/status/internal"); got != 1 {
		t.Errorf("service/status/internal = %d, want 1", got)
	}
}

// TestDecodeResponseUnknownStatus: a wire status outside the
// vocabulary is rejected even when its uint8 truncation would land on
// a valid code (256 % 256 = 0 = StatusOK).
func TestDecodeResponseUnknownStatus(t *testing.T) {
	for _, raw := range []uint64{uint64(statusCount), 200, 256, 1 << 32} {
		body := binary.AppendUvarint(nil, KindResponse)
		body = binary.AppendVarint(body, 5)    // ID
		body = binary.AppendUvarint(body, raw) // status
		body = binary.AppendUvarint(body, 0)   // detail
		body = binary.AppendUvarint(body, 0)   // artifact
		body = binary.AppendUvarint(body, 0)   // trace
		if _, err := DecodeResponse(body); err == nil {
			t.Errorf("status %d on the wire decoded cleanly, want unknown-status rejection", raw)
		}
	}
	// The boundary below statusCount still decodes.
	body := binary.AppendUvarint(nil, KindResponse)
	body = binary.AppendVarint(body, 5)
	body = binary.AppendUvarint(body, uint64(statusCount-1))
	body = binary.AppendUvarint(body, 0)
	body = binary.AppendUvarint(body, 0)
	body = binary.AppendUvarint(body, 0)
	resp, err := DecodeResponse(body)
	if err != nil {
		t.Fatalf("status %d rejected: %v", statusCount-1, err)
	}
	if resp.Status != statusCount-1 {
		t.Errorf("decoded status %v, want %v", resp.Status, statusCount-1)
	}
}

// TestServerEndToEnd drives the wire protocol over real loopback
// sockets: pipelined mixed MST+MIS requests on one connection,
// responses correlated by ID, artifacts certified, and a clean
// Shutdown that makes Serve return ErrServerClosed.
func TestServerEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 4})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqs := []Request{
		{ID: 100, Problem: "mst/randomized", Graph: "random", N: 24, Seed: 6},
		{ID: 101, Problem: "mis", Graph: "ring", N: 32, Seed: 2},
		{ID: 102, Problem: "mst/baseline", Graph: "path", N: 16, Seed: 8, WantTrace: true},
	}
	for _, req := range reqs {
		if err := WriteRequest(conn, req); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(conn)
	got := map[int64]Response{}
	for range reqs {
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		got[resp.ID] = resp
	}
	for _, req := range reqs {
		resp, ok := got[req.ID]
		if !ok {
			t.Fatalf("no response for request %d", req.ID)
		}
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v (%s)", req.ID, resp.Status, resp.Detail)
		}
		var a Artifact
		if err := json.Unmarshal(resp.Artifact, &a); err != nil {
			t.Fatal(err)
		}
		if !a.Verdict.Pass || !a.Run.VerifyPassed {
			t.Errorf("request %d: verdict did not pass", req.ID)
		}
	}
	if len(got[102].Trace) == 0 {
		t.Error("WantTrace request over the wire returned no trace")
	}

	srv.Shutdown()
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}
