package service

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"sleepmst/internal/metrics"
)

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http's convention: it means the server stopped on purpose, not
// that accepting failed.
var ErrServerClosed = errors.New("service: server closed")

// Server exposes a Service over the length-prefixed wire protocol: it
// accepts connections, decodes Request frames, and answers each with
// a Response frame. Requests on one connection are pipelined — each
// runs on its own goroutine and responses are written in completion
// order, correlated by ID.
//
// An undecodable frame gets a Response with ID = BadFrameID and
// StatusInvalid, then the connection is closed: past one corrupt
// frame the stream offsets cannot be trusted.
type Server struct {
	svc *Service

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps svc. The caller keeps ownership of svc's lifecycle
// insofar as Metrics() access goes, but Shutdown drains it.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Shutdown. It returns
// ErrServerClosed after a clean Shutdown, or the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown is the graceful drain behind SIGTERM: stop accepting,
// finish every admitted request, flush every pending response, close
// every connection, and return once all handler goroutines are gone.
// New requests arriving mid-drain are answered StatusShuttingDown.
// Safe to call more than once; later calls wait for the same drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Drain the pool first: every in-flight Submit returns, so every
	// pending response gets written before readers are unblocked.
	s.svc.Drain()
	s.mu.Lock()
	for conn := range s.conns {
		// Unblock handlers parked in ReadRequest; they exit silently
		// on the deadline error after flushing in-flight responses.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// handle serves one connection: a read loop that decodes request
// frames and fans each out to its own goroutine, plus a write mutex
// serializing response frames.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	var (
		writeMu  sync.Mutex
		inflight sync.WaitGroup
	)
	// Before the connection closes, wait for every dispatched request
	// to finish writing its response (runs before the conn.Close
	// defer above).
	defer inflight.Wait()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if isHangup(err) {
				return
			}
			// Malformed frame: answer with the documented bad-frame
			// response, then hang up — offsets past a corrupt frame
			// cannot be trusted.
			s.svc.reg.Add(metrics.ServiceBadFrames, 1)
			writeMu.Lock()
			WriteResponse(conn, Response{
				ID:     BadFrameID,
				Status: StatusInvalid,
				Detail: "malformed request frame: " + err.Error(),
			})
			writeMu.Unlock()
			return
		}
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			resp := s.svc.Submit(req)
			writeMu.Lock()
			defer writeMu.Unlock()
			if err := WriteResponse(conn, resp); err != nil {
				// The client went away; its response is undeliverable.
				// The request itself completed and is accounted for.
				return
			}
		}()
	}
}

// isHangup reports whether a read error means "the connection is
// done" (clean close, peer reset, or the Shutdown read deadline)
// rather than a malformed frame worth answering.
func isHangup(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, syscall.ECONNRESET)
}
