package lowerbound

import (
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
)

func TestHeaviestEdgeSeparation(t *testing.T) {
	res := HeaviestEdgeSeparation(256, 2000, 1)
	// Exact probability that two uniform positions on a ring are at
	// least len/4 apart is about 1/2; allow Monte-Carlo slack.
	if res.FracSeparated < 0.40 || res.FracSeparated > 0.62 {
		t.Errorf("separation fraction = %.3f, want ≈ 0.5", res.FracSeparated)
	}
	// Mean separation of two uniform points on a ring is len/4.
	if res.MeanSeparation < 0.20*256 || res.MeanSeparation > 0.30*256 {
		t.Errorf("mean separation = %.1f, want ≈ %d", res.MeanSeparation, 256/4)
	}
}

func TestKnowledgeSegmentGameLemma11(t *testing.T) {
	rows := KnowledgeSegmentGame(13*13+5, 2, 120, 7)
	if len(rows) < 3 {
		t.Fatalf("got %d rows, want >= 3 (a = 0, 1, 2)", len(rows))
	}
	if rows[0].ProbU != 1 {
		t.Errorf("Pr[U(I,0)] = %.2f, want 1", rows[0].ProbU)
	}
	for _, row := range rows {
		if row.ProbU < 0.5 {
			t.Errorf("a=%d: Pr[U] = %.3f, Lemma 11 claims >= 1/2", row.A, row.ProbU)
		}
		if row.SegmentLen != pow13(row.A) {
			t.Errorf("a=%d: segment length %d, want 13^a", row.A, row.SegmentLen)
		}
	}
}

func pow13(a int) int {
	out := 1
	for i := 0; i < a; i++ {
		out *= 13
	}
	return out
}

func TestRingInstanceDistinctWeights(t *testing.T) {
	g := RingInstance(64, 3)
	if !g.HasDistinctWeights() {
		t.Error("ring weights not distinct")
	}
	if g.N() != 64 || g.M() != 64 {
		t.Errorf("ring shape n=%d m=%d", g.N(), g.M())
	}
}

func TestDSDEncodingConnectivity(t *testing.T) {
	grc, err := graph.NewGRC(5, 32, graph.GenConfig{Seed: 1})
	if err != nil {
		t.Fatalf("grc: %v", err)
	}
	cases := []struct {
		name string
		x, y []bool
		want bool // disjoint <=> marked subgraph connected
	}{
		{"all zero", []bool{false, false, false, false}, []bool{false, false, false, false}, true},
		{"x ones only", []bool{true, true, true, true}, []bool{false, false, false, false}, true},
		{"intersect at 0", []bool{true, false, false, false}, []bool{true, false, false, false}, false},
		{"intersect at 3", []bool{false, false, false, true}, []bool{true, true, false, true}, false},
		{"complementary", []bool{true, false, true, false}, []bool{false, true, false, true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ins, err := NewDSDInstance(grc, tc.x, tc.y)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if ins.Disjoint() != tc.want {
				t.Fatalf("ground truth mismatch: Disjoint()=%v", ins.Disjoint())
			}
			if got := ins.MarkedConnected(); got != tc.want {
				t.Errorf("marked connected = %v, want %v (CSS encoding broken)", got, tc.want)
			}
			// The sequential reference MST must agree too.
			mst := graph.Kruskal(ins.MSTInstance())
			if got := DecodeMST(mst); got != tc.want {
				t.Errorf("kruskal decode = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDSDInstanceValidation(t *testing.T) {
	grc, err := graph.NewGRC(4, 16, graph.GenConfig{Seed: 2})
	if err != nil {
		t.Fatalf("grc: %v", err)
	}
	if _, err := NewDSDInstance(grc, []bool{true}, []bool{false, false, false}); err == nil {
		t.Error("want error for wrong bit-string length")
	}
}

func TestSolveSDViaMSTEndToEnd(t *testing.T) {
	// The full Theorem 4 pipeline: random instances, distributed MST
	// in the sleeping model, decoded answers must match ground truth.
	grc, err := graph.NewGRC(4, 16, graph.GenConfig{Seed: 3})
	if err != nil {
		t.Fatalf("grc: %v", err)
	}
	for seed := int64(0); seed < 6; seed++ {
		x := RandomBits(grc.R-1, seed*2+1)
		y := RandomBits(grc.R-1, seed*2+2)
		ins, err := NewDSDInstance(grc, x, y)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		res, err := SolveSDViaMST(ins, core.RunRandomized, core.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Disjoint != ins.Disjoint() {
			t.Errorf("seed %d: decoded %v, truth %v (x=%v y=%v)", seed, res.Disjoint, ins.Disjoint(), x, y)
		}
	}
}

func TestTradeoffExperiment(t *testing.T) {
	pt, err := TradeoffExperiment(4, 16, core.RunRandomized, 5)
	if err != nil {
		t.Fatalf("tradeoff: %v", err)
	}
	if pt.Awake <= 0 || pt.Rounds <= 0 || pt.Product != pt.Awake*pt.Rounds {
		t.Errorf("bad point %+v", pt)
	}
	// The trade-off bound: product must be Ω(n) (here just sanity that
	// it clears n, which the paper's bound guarantees up to polylog).
	if pt.Product < int64(pt.N) {
		t.Errorf("awake×rounds = %d below n = %d", pt.Product, pt.N)
	}
}

func TestRandomBitsDeterministic(t *testing.T) {
	a, b := RandomBits(32, 9), RandomBits(32, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestDSDAllOnesIntersects(t *testing.T) {
	grc, err := graph.NewGRC(4, 16, graph.GenConfig{Seed: 4})
	if err != nil {
		t.Fatalf("grc: %v", err)
	}
	ones := []bool{true, true, true}
	ins, err := NewDSDInstance(grc, ones, ones)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if ins.Disjoint() || ins.MarkedConnected() {
		t.Error("all-ones must intersect and disconnect every row")
	}
	// Every heavy row must force a heavy MST edge per disconnected row.
	mst := graph.Kruskal(ins.MSTInstance())
	heavy := 0
	for _, e := range mst {
		if e.Weight >= HeavyWeightBase {
			heavy++
		}
	}
	if heavy != grc.R-1 {
		t.Errorf("heavy MST edges = %d, want %d (one per isolated row)", heavy, grc.R-1)
	}
}

func TestKnowledgeSegmentGameStopsAtRingSize(t *testing.T) {
	rows := KnowledgeSegmentGame(20, 5, 10, 1)
	// 13^2 = 169 > 20, so only a = 0 and a = 1 fit.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestTradeoffGrowsWithInstance(t *testing.T) {
	small, err := TradeoffExperiment(4, 16, core.RunRandomized, 1)
	if err != nil {
		t.Fatalf("small: %v", err)
	}
	large, err := TradeoffExperiment(4, 64, core.RunRandomized, 1)
	if err != nil {
		t.Fatalf("large: %v", err)
	}
	if large.Product <= small.Product {
		t.Errorf("awake x rounds did not grow with n: %d -> %d", small.Product, large.Product)
	}
}
