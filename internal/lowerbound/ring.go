// Package lowerbound implements executable versions of the paper's
// lower-bound arguments.
//
// Theorem 3 (Ω(log n) awake complexity, §3.1): the proof samples a
// ring with random edge weights and argues (Lemma 11) that knowledge
// spreads too slowly under any wake schedule. We provide (a) the
// structural claim — the two heaviest edges of a random ring are far
// apart with constant probability — and (b) a Monte-Carlo simulation
// of the knowledge-segment game over random wake schedules.
//
// Theorem 4 (Ω̃(n) on awake × rounds, §3.2): the proof reduces set
// disjointness to MST on the graph family G_rc. We implement the
// reduction chain SD → DSD → CSS → MST executably: instances are
// encoded as markings/weights of G_rc, our MST algorithms run on them,
// and the answer is decoded from the MST — plus congestion metering at
// the binary-tree nodes I, the quantity the proof charges against
// awake time.
package lowerbound

import (
	"fmt"
	"math/rand"

	"sleepmst/internal/graph"
)

// SeparationResult reports the heaviest-edge separation experiment.
type SeparationResult struct {
	N         int
	Trials    int
	Threshold int // hop-distance threshold (n/4 on a ring of 4n+4)
	// FracSeparated is the fraction of trials in which the two
	// heaviest edges were at least Threshold apart.
	FracSeparated float64
	// MeanSeparation is the average hop distance between the two
	// heaviest edges.
	MeanSeparation float64
}

// HeaviestEdgeSeparation samples rings of ringLen nodes with uniform
// random distinct weights and measures how far apart the two heaviest
// edges fall. The paper's Theorem 3 uses rings of length 4n+4 and
// needs separation >= n+1 with constant probability; with threshold =
// ringLen/4 the empirical probability is ≈ 1/2.
func HeaviestEdgeSeparation(ringLen, trials int, seed int64) SeparationResult {
	if ringLen < 8 {
		panic(fmt.Sprintf("lowerbound: ring length %d too small", ringLen))
	}
	r := rand.New(rand.NewSource(seed))
	threshold := ringLen / 4
	sep := 0
	var meanSep float64
	for t := 0; t < trials; t++ {
		// Random distinct weights = a random permutation; only the
		// positions of the two largest matter.
		perm := r.Perm(ringLen)
		var first, second int
		for i, p := range perm {
			if p == ringLen-1 {
				first = i
			}
			if p == ringLen-2 {
				second = i
			}
		}
		d := first - second
		if d < 0 {
			d = -d
		}
		if ringLen-d < d {
			d = ringLen - d
		}
		meanSep += float64(d)
		if d >= threshold {
			sep++
		}
	}
	return SeparationResult{
		N:              ringLen,
		Trials:         trials,
		Threshold:      threshold,
		FracSeparated:  float64(sep) / float64(trials),
		MeanSeparation: meanSep / float64(trials),
	}
}

// KnowledgeGameResult reports one (a, segment length) row of the
// Lemma 11 simulation.
type KnowledgeGameResult struct {
	A          int     // awake-round budget
	SegmentLen int     // 13^a
	ProbU      float64 // empirical Pr[U(I, a)]
	Trials     int
}

// KnowledgeSegmentGame simulates Lemma 11: on a ring of ringLen nodes,
// every node follows an independent random wake schedule (awake each
// round with probability 1/2); neighbors awake in the same round
// exchange their entire knowledge segments. For each a, the event
// U(I, a) asks whether a fixed segment I of length 13^a contains a
// node whose knowledge after its a-th awake round is still inside I.
// The lemma claims Pr[U(I, a)] >= 1/2; the simulation estimates it.
func KnowledgeSegmentGame(ringLen, maxA, trials int, seed int64) []KnowledgeGameResult {
	segLen := 1
	var rows []KnowledgeGameResult
	for a := 0; a <= maxA; a++ {
		if segLen > ringLen {
			break
		}
		succ := 0
		for t := 0; t < trials; t++ {
			if knowledgeTrial(ringLen, segLen, a, seed+int64(a*trials+t)) {
				succ++
			}
		}
		rows = append(rows, KnowledgeGameResult{
			A:          a,
			SegmentLen: segLen,
			ProbU:      float64(succ) / float64(trials),
			Trials:     trials,
		})
		segLen *= 13
	}
	return rows
}

// knowledgeTrial runs one trial and reports whether the segment
// I = [0, segLen) contains a node whose knowledge segment after its
// a-th awake round is contained in I.
func knowledgeTrial(ringLen, segLen, a int, seed int64) bool {
	r := rand.New(rand.NewSource(seed))
	// Knowledge segments as [left, right] offsets around each node
	// (how far knowledge extends in each direction along the ring).
	left := make([]int, ringLen)
	right := make([]int, ringLen)
	awakeCount := make([]int, ringLen)
	// snapshot[v] = (left, right) at v's a-th awake round, -1 = not yet.
	snapL := make([]int, ringLen)
	snapR := make([]int, ringLen)
	done := make([]bool, ringLen)
	if a == 0 {
		// Zero awake rounds: every node knows only itself; U(I,0)
		// always holds.
		return true
	}
	pending := ringLen
	awake := make([]bool, ringLen)
	for round := 0; pending > 0 && round < 64*a+64; round++ {
		for v := 0; v < ringLen; v++ {
			awake[v] = r.Intn(2) == 0
		}
		// Exchange full states between awake neighbor pairs. Knowledge
		// spreads by the union of segments.
		newL := make([]int, ringLen)
		newR := make([]int, ringLen)
		copy(newL, left)
		copy(newR, right)
		for v := 0; v < ringLen; v++ {
			if !awake[v] {
				continue
			}
			u := (v + 1) % ringLen
			if awake[u] {
				// v learns u's segment: u is 1 step right of v.
				if 1+right[u] > newR[v] {
					newR[v] = 1 + right[u]
				}
				if left[u]-1 > 0 && left[u]-1 > newL[v] {
					newL[v] = left[u] - 1
				}
				// u learns v's segment: v is 1 step left of u.
				if 1+left[v] > newL[u] {
					newL[u] = 1 + left[v]
				}
				if right[v]-1 > 0 && right[v]-1 > newR[u] {
					newR[u] = right[v] - 1
				}
			}
		}
		copy(left, newL)
		copy(right, newR)
		for v := 0; v < ringLen; v++ {
			if awake[v] && !done[v] {
				awakeCount[v]++
				if awakeCount[v] == a {
					snapL[v], snapR[v] = left[v], right[v]
					done[v] = true
					pending--
				}
			}
		}
	}
	for v := 0; v < ringLen; v++ {
		if !done[v] {
			snapL[v], snapR[v] = left[v], right[v]
		}
	}
	// U(I, a): some v in [0, segLen) with [v-snapL, v+snapR] ⊆ I.
	for v := 0; v < segLen; v++ {
		if v-snapL[v] >= 0 && v+snapR[v] < segLen {
			return true
		}
	}
	return false
}

// RingInstance builds the Theorem 3 weighted ring: ringLen nodes with
// distinct random weights from a large space.
func RingInstance(ringLen int, seed int64) *graph.Graph {
	return graph.Cycle(ringLen, graph.GenConfig{Seed: seed, Weights: graph.WeightsRandomLarge})
}
