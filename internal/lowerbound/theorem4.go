package lowerbound

import (
	"fmt"
	"math/rand"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
)

// DSDInstance is a distributed set-disjointness instance on G_rc:
// Alice holds x and Bob holds y (one bit per row 1..r-1), and the
// answer d(x, y) is 1 iff no index has x_i = y_i = 1.
type DSDInstance struct {
	GRC *graph.GRC
	X   []bool // Alice's bits, one per row 1..r-1
	Y   []bool // Bob's bits
	// Marked[e] reports whether graph edge e is marked per the
	// DSD → CSS encoding (Lemma 9): all row paths and tree edges are
	// marked; Alice/Bob attachment edges are marked iff the
	// corresponding bit is 0; spokes are never marked.
	Marked []bool
}

// Disjoint returns the ground-truth answer d(x, y).
func (ins *DSDInstance) Disjoint() bool {
	for i := range ins.X {
		if ins.X[i] && ins.Y[i] {
			return false
		}
	}
	return true
}

// NewDSDInstance encodes (x, y) on the given G_rc. len(x) and len(y)
// must equal r-1.
func NewDSDInstance(grc *graph.GRC, x, y []bool) (*DSDInstance, error) {
	if len(x) != grc.R-1 || len(y) != grc.R-1 {
		return nil, fmt.Errorf("lowerbound: want %d bits, got |x|=%d |y|=%d", grc.R-1, len(x), len(y))
	}
	marked := make([]bool, grc.G.M())
	for e, info := range grc.EdgeInfo {
		switch info.Kind {
		case graph.GRCRow, graph.GRCTree:
			marked[e] = true
		case graph.GRCAlice:
			marked[e] = !x[info.Row-1]
		case graph.GRCBob:
			marked[e] = !y[info.Row-1]
		case graph.GRCSpoke:
			// never marked
		}
	}
	return &DSDInstance{GRC: grc, X: x, Y: y, Marked: marked}, nil
}

// MarkedConnected answers the CSS question directly (reference
// implementation): do the marked edges form a connected spanning
// subgraph of G_rc?
func (ins *DSDInstance) MarkedConnected() bool {
	g := ins.GRC.G
	uf := graph.NewUnionFind(g.N())
	for e, m := range ins.Marked {
		if m {
			uf.Union(g.Edge(e).U, g.Edge(e).V)
		}
	}
	return uf.Count() == 1
}

// HeavyWeightBase is the weight offset given to unmarked edges in the
// CSS → MST reduction; any MST edge at or above it witnesses a
// disconnected marked subgraph.
const HeavyWeightBase = int64(1) << 40

// MSTInstance builds the CSS → MST weighted graph (Lemma 10): marked
// edges get small distinct weights, unmarked edges get distinct
// weights above HeavyWeightBase. The MST then uses an unmarked edge
// iff the marked subgraph is not a connected spanning subgraph.
func (ins *DSDInstance) MSTInstance() *graph.Graph {
	g := ins.GRC.G
	edges := g.Edges()
	light, heavy := int64(1), HeavyWeightBase
	for e := range edges {
		if ins.Marked[e] {
			edges[e].Weight = light
			light++
		} else {
			edges[e].Weight = heavy
			heavy++
		}
	}
	out, err := graph.New(g.N(), edges)
	if err != nil {
		panic(fmt.Sprintf("lowerbound: rebuilding G_rc: %v", err))
	}
	return out
}

// DecodeMST answers the disjointness question from an MST of the
// MSTInstance graph: a heavy edge in the tree means some row was
// disconnected from the marked subgraph, i.e. x and y intersect.
func DecodeMST(mst []graph.Edge) (disjoint bool) {
	for _, e := range mst {
		if e.Weight >= HeavyWeightBase {
			return false
		}
	}
	return true
}

// MSTRunner runs a distributed MST algorithm; the core.Run* functions
// satisfy it.
type MSTRunner func(*graph.Graph, core.Options) (*core.Outcome, error)

// SDViaMSTResult reports one end-to-end reduction run.
type SDViaMSTResult struct {
	Disjoint bool
	Outcome  *core.Outcome
	// TreeCongestion is the maximum received-bit count over the
	// binary-tree internal nodes I — the congestion the Theorem 4
	// proof lower-bounds.
	TreeCongestion int64
}

// SolveSDViaMST executes the full reduction: encode (x, y) on G_rc,
// run the given distributed MST algorithm in the sleeping model, and
// decode disjointness from the resulting tree.
func SolveSDViaMST(ins *DSDInstance, run MSTRunner, opts core.Options) (*SDViaMSTResult, error) {
	g := ins.MSTInstance()
	out, err := run(g, opts)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: reduction MST run: %w", err)
	}
	var cong int64
	for _, v := range ins.GRC.InternalNodes {
		if b := out.Result.BitsReceivedPerNode[v]; b > cong {
			cong = b
		}
	}
	return &SDViaMSTResult{
		Disjoint:       DecodeMST(out.MSTEdges),
		Outcome:        out,
		TreeCongestion: cong,
	}, nil
}

// RandomBits draws k random bits.
func RandomBits(k int, seed int64) []bool {
	r := rand.New(rand.NewSource(seed))
	out := make([]bool, k)
	for i := range out {
		out[i] = r.Intn(2) == 1
	}
	return out
}

// TradeoffPoint is one row of the awake × rounds trade-off experiment
// (Theorem 4): MST runs on G_rc instances and the product of awake and
// round complexity is compared with the Ω̃(n) bound.
type TradeoffPoint struct {
	R, C, N        int
	Awake          int64
	Rounds         int64
	Product        int64
	TreeCongestion int64
}

// TradeoffExperiment runs the given MST algorithm on a G_rc instance
// with random inputs and reports the trade-off quantities.
func TradeoffExperiment(r, c int, run MSTRunner, seed int64) (*TradeoffPoint, error) {
	grc, err := graph.NewGRC(r, c, graph.GenConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	ins, err := NewDSDInstance(grc, RandomBits(r-1, seed+1), RandomBits(r-1, seed+2))
	if err != nil {
		return nil, err
	}
	res, err := SolveSDViaMST(ins, run, core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &TradeoffPoint{
		R: r, C: c, N: grc.G.N(),
		Awake:          res.Outcome.Result.MaxAwake(),
		Rounds:         res.Outcome.Result.Rounds,
		Product:        res.Outcome.Result.MaxAwake() * res.Outcome.Result.Rounds,
		TreeCongestion: res.TreeCongestion,
	}, nil
}
