package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestAddGetMax(t *testing.T) {
	r := New()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Max("m", 7)
	r.Max("m", 4)
	if got := r.Get("a"); got != 5 {
		t.Errorf("Get(a) = %d, want 5", got)
	}
	if got := r.GetMax("m"); got != 7 {
		t.Errorf("GetMax(m) = %d, want 7", got)
	}
	if r.Get("absent") != 0 || r.GetMax("absent") != 0 {
		t.Error("absent metrics should read 0")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Add("a", 1) // must not panic
	r.Max("m", 1)
	r.Merge(New())
	if r.Get("a") != 0 || r.GetMax("m") != 0 || r.Snapshot() != nil {
		t.Error("nil registry should read empty")
	}
}

func TestMergeAllOrderIndependent(t *testing.T) {
	mk := func(seed int64) *Registry {
		rng := rand.New(rand.NewSource(seed))
		r := New()
		for i := 0; i < 50; i++ {
			r.Add(PhaseName(rng.Intn(5)+1), int64(rng.Intn(10)))
			r.Max("merge/depth/max", int64(rng.Intn(20)))
		}
		return r
	}
	regs := []*Registry{mk(1), mk(2), mk(3), nil, mk(4)}
	fwd := MergeAll(regs)
	rev := MergeAll([]*Registry{regs[4], nil, regs[2], regs[1], regs[0]})
	a, b := fwd.Snapshot(), rev.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("metric %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConcurrentAddsAreDeterministic(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("moe/probes", 1)
				r.Max("merge/depth/max", int64(i%13))
			}
		}()
	}
	wg.Wait()
	if got := r.Get("moe/probes"); got != 8000 {
		t.Errorf("moe/probes = %d, want 8000", got)
	}
	if got := r.GetMax("merge/depth/max"); got != 12 {
		t.Errorf("merge/depth/max = %d, want 12", got)
	}
}

func TestSnapshotSortedAndString(t *testing.T) {
	r := New()
	r.Add("b", 1)
	r.Add("a", 2)
	r.Max("a", 3)
	snap := r.Snapshot()
	want := []Metric{{Name: "a", Value: 2}, {Name: "a", Value: 3, IsMax: true}, {Name: "b", Value: 1}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
	s := r.String()
	if !strings.Contains(s, "(max)") || strings.Index(s, "a") > strings.Index(s, "b") {
		t.Errorf("String() = %q", s)
	}
}

func TestCanonicalNames(t *testing.T) {
	if PhaseName(7) != "awake/phase/007" {
		t.Errorf("PhaseName(7) = %q", PhaseName(7))
	}
	if StepName("find-moe") != "awake/step/find-moe" {
		t.Errorf("StepName = %q", StepName("find-moe"))
	}
	if MsgName("wire") != "msgs/type/wire" {
		t.Errorf("MsgName = %q", MsgName("wire"))
	}
}
