// Package metrics is a small deterministic counter registry for
// simulation runs: named monotone counters (Add) and high-water marks
// (Max) that the simulator, the LDT primitives, and the core
// algorithms bump while running. Because both operations are
// commutative and associative, the final value of every metric is
// independent of goroutine interleaving, and MergeAll folds per-run
// registries from a sweep worker pool into an aggregate that is
// byte-identical for any worker count as long as it is called in grid
// order (which internal/sweep guarantees).
//
// Metric names are slash-separated paths; the instrumented names are
// listed in DESIGN.md §8:
//
//	awake/step/<step>    awake rounds per phase step (find-moe, ...)
//	awake/phase/<NNN>    awake rounds per zero-padded phase number
//	moe/probes           Transmit-Adjacent probe messages for MOEs
//	moe/candidates       local MOE candidates upcast to fragment roots
//	merge/waves          Merging-Fragments wave executions
//	merge/depth/max      deepest pre-merge fragment level (Max metric)
//	msgs/type/<kind>     delivered messages per wire-message kind
//	awake/node-avg/sum   total awake rounds summed over all nodes
//	awake/node-avg/nodes node count, denominator of the node average
//
// The awake/node-avg/* pair is recorded by the simulator for every
// run, so the node-averaged awake complexity (Chatterjee–Gmyr–
// Pandurangan) of any problem is sum ÷ nodes — see NodeAvgAwake.
// Both components are plain counters, so the pair stays exact under
// Merge: a sweep's aggregate average is the run-length-weighted mean,
// independent of worker count and fold order.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds named counters and high-water marks for one run (or,
// after MergeAll, for a whole sweep). The zero value is not usable;
// call New. All methods are safe for concurrent use; a nil *Registry
// is a valid no-op sink so instrumented code never branches.
type Registry struct {
	mu     sync.Mutex
	counts map[string]int64
	maxes  map[string]int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{counts: map[string]int64{}, maxes: map[string]int64{}}
}

// Add increments counter name by delta. No-op on a nil registry.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counts[name] += delta
	r.mu.Unlock()
}

// Max raises high-water mark name to v if v is larger. No-op on a nil
// registry.
func (r *Registry) Max(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if v > r.maxes[name] {
		r.maxes[name] = v
	}
	r.mu.Unlock()
}

// Get returns counter name's value (0 if absent or nil registry).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// GetMax returns high-water mark name's value (0 if absent or nil
// registry).
func (r *Registry) GetMax(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxes[name]
}

// Merge folds other into r: counters add, high-water marks take the
// max. Merging is commutative, so any fold order yields the same
// registry; call it in grid order anyway when aggregating sweep
// workers so intermediate snapshots are reproducible too.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	oc := make(map[string]int64, len(other.counts))
	for k, v := range other.counts {
		oc[k] = v
	}
	om := make(map[string]int64, len(other.maxes))
	for k, v := range other.maxes {
		om[k] = v
	}
	other.mu.Unlock()
	r.mu.Lock()
	for k, v := range oc {
		r.counts[k] += v
	}
	for k, v := range om {
		if v > r.maxes[k] {
			r.maxes[k] = v
		}
	}
	r.mu.Unlock()
}

// MergeAll folds every registry of regs (nil entries skipped) into a
// fresh aggregate, in slice order. Pass sweep results in grid order —
// internal/sweep already returns them that way — and the aggregate is
// identical for any worker count.
func MergeAll(regs []*Registry) *Registry {
	out := New()
	for _, r := range regs {
		out.Merge(r)
	}
	return out
}

// Metric is one named value in a registry snapshot.
type Metric struct {
	// Name is the slash-separated metric path.
	Name string
	// Value is the counter total or high-water mark.
	Value int64
	// IsMax reports whether the metric is a high-water mark rather
	// than a counter.
	IsMax bool
}

// Snapshot returns every metric sorted by name (marks after counters
// of the same name). The order is deterministic, making snapshots
// directly comparable in tests and stable in reports.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counts)+len(r.maxes))
	for k, v := range r.counts {
		out = append(out, Metric{Name: k, Value: v})
	}
	for k, v := range r.maxes {
		out = append(out, Metric{Name: k, Value: v, IsMax: true})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return !out[i].IsMax && out[j].IsMax
	})
	return out
}

// String renders the snapshot one metric per line, `name = value`,
// with `(max)` marking high-water marks.
func (r *Registry) String() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		if m.IsMax {
			fmt.Fprintf(&b, "%-24s = %d (max)\n", m.Name, m.Value)
		} else {
			fmt.Fprintf(&b, "%-24s = %d\n", m.Name, m.Value)
		}
	}
	return b.String()
}

// PhaseName returns the canonical zero-padded awake/phase/<NNN>
// metric name for 1-based phase p, so lexicographic snapshot order
// matches numeric phase order.
func PhaseName(p int) string {
	return fmt.Sprintf("awake/phase/%03d", p)
}

// StepName returns the canonical awake/step/<step> metric name.
func StepName(step string) string {
	return "awake/step/" + step
}

// MsgName returns the canonical msgs/type/<kind> metric name.
func MsgName(kind string) string {
	return "msgs/type/" + kind
}

// Service-level request accounting, recorded by internal/service for
// every request the persistent MST service admits or rejects. All of
// these are plain counters, so a service registry — per-request run
// registries folded together plus these — is byte-identical for any
// worker count and any completion order.
const (
	// ServiceRequests counts every request that reached admission,
	// accepted or not.
	ServiceRequests = "service/requests/total"
	// ServiceBadFrames counts undecodable request frames answered
	// with the malformed-frame response and a hang-up.
	ServiceBadFrames = "service/frames/bad"
)

// ServiceStatusName returns the canonical service/status/<status>
// metric name tallying requests by response status.
func ServiceStatusName(status string) string { return "service/status/" + status }

// ServiceProblemName returns the canonical service/problem/<name>
// metric name tallying completed runs per problem.
func ServiceProblemName(problem string) string { return "service/problem/" + problem }

// Node-averaged awake accounting, recorded by the simulator at the end
// of every run that carries a registry.
const (
	// NodeAvgSum is the counter holding sum_v A_v: every node's awake
	// rounds, summed over all nodes and (after Merge) over all runs.
	NodeAvgSum = "awake/node-avg/sum"
	// NodeAvgNodes is the counter holding the node count, the
	// denominator of the node-averaged awake complexity; Merge adds
	// node counts across runs, keeping the aggregate ratio exact.
	NodeAvgNodes = "awake/node-avg/nodes"
)

// NodeAvgAwake returns the node-averaged awake complexity recorded in
// r: awake/node-avg/sum ÷ awake/node-avg/nodes, or 0 when the run (or
// merged sweep) recorded no nodes. On a merged registry this is the
// node-weighted mean over all folded runs, identical for every sweep
// worker count because both components are commutative counters.
func NodeAvgAwake(r *Registry) float64 {
	nodes := r.Get(NodeAvgNodes)
	if nodes == 0 {
		return 0
	}
	return float64(r.Get(NodeAvgSum)) / float64(nodes)
}
