package metrics

import (
	"math/rand"
	"testing"
)

// propNames is a small pool so random registries collide on keys —
// the interesting case for merge algebra.
var propNames = []string{
	"msgs/send", "msgs/deliver", "moe/probes", "merge/waves",
	"awake/steps", "phase/count", "sim/rounds", "frag/final",
}

// randomRegistry builds a registry from a deterministic operation
// stream: random Adds on counters and Maxes on high-water marks.
func randomRegistry(rng *rand.Rand) *Registry {
	r := New()
	for i, ops := 0, 5+rng.Intn(30); i < ops; i++ {
		name := propNames[rng.Intn(len(propNames))]
		if rng.Intn(3) == 0 {
			r.Max("peak/"+name, rng.Int63n(1000))
		} else {
			r.Add(name, rng.Int63n(100))
		}
	}
	return r
}

// merged folds the given registries into a fresh one, left to right.
func merged(regs ...*Registry) *Registry {
	out := New()
	for _, r := range regs {
		out.Merge(r)
	}
	return out
}

// TestMergeCommutativeAssociative is the property behind the sweep
// engine's worker-count independence: for arbitrary registries,
// a⊕b == b⊕a and (a⊕b)⊕c == a⊕(b⊕c), compared via the canonical
// String rendering (which sorts names, so it is the full state).
func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 60; trial++ {
		a, b, c := randomRegistry(rng), randomRegistry(rng), randomRegistry(rng)
		ab, ba := merged(a, b), merged(b, a)
		if ab.String() != ba.String() {
			t.Fatalf("trial %d: merge not commutative:\na⊕b:\n%s\nb⊕a:\n%s", trial, ab, ba)
		}
		left, right := merged(merged(a, b), c), merged(a, merged(b, c))
		if left.String() != right.String() {
			t.Fatalf("trial %d: merge not associative:\n(a⊕b)⊕c:\n%s\na⊕(b⊕c):\n%s", trial, left, right)
		}
	}
}

// TestNodeAvgMergeExact is the property behind node-averaged awake
// reporting under sweeps: the awake/node-avg/* pair is a plain counter
// pair, so any partitioning of per-run registries folds — in any order
// — to the exact global sums, and NodeAvgAwake over the merge is the
// exact weighted average. This is what makes the reported average
// worker-count independent.
func TestNodeAvgMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 40; trial++ {
		parts := make([]*Registry, 1+rng.Intn(6))
		var wantSum, wantNodes int64
		for i := range parts {
			r := New()
			sum, nodes := rng.Int63n(500), 1+rng.Int63n(64)
			r.Add(NodeAvgSum, sum)
			r.Add(NodeAvgNodes, nodes)
			wantSum += sum
			wantNodes += nodes
			parts[i] = r
		}
		fwd := merged(parts...)
		rev := New()
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		if fwd.String() != rev.String() {
			t.Fatalf("trial %d: fold order changed the merge:\n%s\nvs\n%s", trial, fwd, rev)
		}
		if fwd.Get(NodeAvgSum) != wantSum || fwd.Get(NodeAvgNodes) != wantNodes {
			t.Fatalf("trial %d: merged node-avg pair = (%d, %d), want (%d, %d)",
				trial, fwd.Get(NodeAvgSum), fwd.Get(NodeAvgNodes), wantSum, wantNodes)
		}
		if got, want := NodeAvgAwake(fwd), float64(wantSum)/float64(wantNodes); got != want {
			t.Fatalf("trial %d: NodeAvgAwake = %v, want %v", trial, got, want)
		}
	}
}

// TestNodeAvgAwakeEmpty pins the degenerate case: a registry with no
// recorded runs reports 0, not NaN.
func TestNodeAvgAwakeEmpty(t *testing.T) {
	if got := NodeAvgAwake(New()); got != 0 {
		t.Fatalf("NodeAvgAwake(empty) = %v, want 0", got)
	}
}

// TestMergeIdentityAndIdempotentInputs pins the algebra's edges: the
// empty registry is a two-sided identity, and merging must not mutate
// its argument.
func TestMergeIdentityAndIdempotentInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomRegistry(rng)
	before := a.String()
	if got := merged(New(), a).String(); got != before {
		t.Errorf("empty⊕a != a:\n%s\nvs\n%s", got, before)
	}
	if got := merged(a, New()).String(); got != before {
		t.Errorf("a⊕empty != a:\n%s\nvs\n%s", got, before)
	}
	sink := merged(a, a)
	if a.String() != before {
		t.Errorf("Merge mutated its argument:\n%s\nvs\n%s", a, before)
	}
	_ = sink
}
