package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestWriterReaderBytes pins the length-prefixed byte-string field
// used by the service protocol: round-trips (including empty), exact
// offsets, and the truncation hardening — a length prefix larger than
// the remaining buffer must poison the reader without allocating.
func TestWriterReaderBytes(t *testing.T) {
	var w Writer
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.Bytes([]byte{0, 1, 2})
	w.Int(-7)

	r := Reader{buf: w.buf}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("first string: got %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty string: got %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Fatalf("binary string: got %v", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("trailing int: got %d", got)
	}
	if r.Err() != nil {
		t.Fatalf("clean decode errored: %v", r.Err())
	}
	if r.off != len(r.buf) {
		t.Fatalf("decode left %d byte(s) unconsumed", len(r.buf)-r.off)
	}
}

// TestReaderBytesTruncated feeds hostile length prefixes: a length
// beyond the remaining buffer (small and absurd) must error rather
// than allocate or panic, and the poisoned reader must stay poisoned.
func TestReaderBytesTruncated(t *testing.T) {
	for _, n := range []uint64{6, 1 << 40, 1<<64 - 1} {
		buf := binary.AppendUvarint(nil, n)
		buf = append(buf, []byte("short")...)
		r := Reader{buf: buf}
		if got := r.Bytes(); got != nil {
			t.Errorf("length %d: got %d byte(s), want nil", n, len(got))
		}
		if r.Err() == nil {
			t.Errorf("length %d: truncated byte string accepted", n)
		}
		if got := r.Bytes(); got != nil || r.Err() == nil {
			t.Errorf("length %d: poisoned reader produced data", n)
		}
	}
}
