// Package transport is the pluggable wire layer that promotes the
// sleeping-model algorithms off the in-process simulator onto a real
// message-passing deployment: every same-round delivery is encoded
// into a length-prefixed binary frame, carried by a backend, and
// decoded on the receive side before it reaches the node program.
//
// Two backends implement the Transport interface:
//
//   - Inproc — channel-backed endpoints in the same process. Frames
//     still pass through the full encode/decode path, so the backend
//     proves codec fidelity: a run over Inproc is byte-identical to a
//     run without any transport (the enginediff-style differential
//     suite in internal/problem enforces it).
//   - TCP — every node is a long-lived TCP server on a loopback port;
//     links are dialed lazily, frames are length-prefixed binary
//     records, sends retry with deadline/backoff across redials, and
//     Close tears the mesh down gracefully.
//
// WithFaults wraps any backend with transport-level fault injection —
// the chaos drop/delay policies reinterpreted as wire faults: an
// injected drop is a transient send failure masked by the link's
// retry budget, an injected delay is real latency. With retries
// enabled the sleeping-model semantics above the wire are unchanged,
// which is exactly the claim the fault-injection tests certify.
//
// The division of labor with internal/sim: the simulator remains the
// round scheduler and the model's source of truth — it decides which
// receivers are awake (a frame to a sleeping radio is lost at the
// sender and never transmitted), enforces the CONGEST BitCap on the
// declared message size at both ends, and meters awake complexity.
// The transport carries the surviving same-round copies and meters
// the physical wire cost (frames, bytes, retries). A Transport serves
// one run: sim.Run calls Listen once, the owner calls Close.
package transport

import (
	"errors"
	"fmt"
)

// Frame is the wire unit: one routed message copy of one simulated
// round. The header fields are the simulator's routing coordinates;
// Payload is the codec-encoded message body (see EncodeMessage).
type Frame struct {
	// Round is the simulated round the copy is delivered in.
	Round int64
	// Seq orders scheduler-delayed copies within a round: 0 marks a
	// fresh same-round send, positive values replay the simulator's
	// FIFO order for copies an interceptor postponed. Delayed copies
	// sort before fresh ones at the receiver, exactly like the
	// in-memory delivery path.
	Seq int64
	// From and Port identify the send: node From transmitted on its
	// port Port.
	From, Port int32
	// To and Rev identify the receive: node To hears the copy on its
	// port Rev (the reverse port of the send).
	To, Rev int32
	// Payload is the encoded message body.
	Payload []byte
}

// Link is one directed sender-side connection. Send transmits a frame
// towards the link's destination endpoint; implementations retry
// transient failures within their configured budget and return an
// error only when the frame could not be handed to the wire at all.
// Delivery is at-least-once, not exactly-once: a retried send may
// duplicate a frame the receiver already has (the failure can surface
// after the bytes arrived), so receivers must dedup by the frame's
// routing coordinates (Round, Seq, From, Port) — the simulator's
// round drain does.
type Link interface {
	// Send transmits one frame.
	Send(Frame) error
}

// Transport is a backend able to carry frames between the n node
// endpoints of one simulation run. All methods except the endpoint
// internals are called from the scheduler goroutine only; Listen is
// called exactly once, before any Dial or Recv.
type Transport interface {
	// Listen brings up the receive endpoints of nodes 0..n-1.
	Listen(n int) error
	// Dial establishes (or returns) the from->to link.
	Dial(from, to int) (Link, error)
	// Recv blocks for the next frame arrived at node to, up to the
	// backend's receive deadline. It returns ErrTimeout (wrapped) when
	// the deadline passes and ErrClosed after Close.
	Recv(to int) (Frame, error)
	// Close tears the backend down: endpoints stop accepting, links
	// close, and blocked Recv calls return ErrClosed.
	Close() error
}

// Stats is the physical wire accounting of one run. Counters that
// depend on timing (retries, redials) are reported here and kept out
// of the deterministic metrics registry on purpose.
type Stats struct {
	// FramesSent and FramesRecv count frames handed to and read off
	// the wire.
	FramesSent, FramesRecv int64
	// WireBytes is the total encoded frame size put on the wire,
	// retransmissions included.
	WireBytes int64
	// Dials counts link establishments; Redials counts re-dials after
	// a broken connection.
	Dials, Redials int64
	// SendRetries counts frame send attempts beyond the first.
	SendRetries int64
	// InjectedDrops and InjectedDelays count WithFaults perturbations.
	InjectedDrops, InjectedDelays int64
}

// Statser is implemented by backends that meter wire traffic; the
// callers that report wire cost (cmd/mstserve, the sim shim)
// type-assert for it.
type Statser interface {
	// TransportStats returns a snapshot of the wire accounting.
	TransportStats() Stats
}

// Typed failure causes, wrapped into returned errors so callers can
// classify with errors.Is.
var (
	// ErrTimeout: a Recv passed the backend's receive deadline — in a
	// synchronous round this means an expected frame never arrived
	// (e.g. a fault-injected drop outlived the retry budget).
	ErrTimeout = errors.New("transport: receive deadline exceeded")
	// ErrClosed: the backend was closed.
	ErrClosed = errors.New("transport: closed")
)

// checkNode validates a node index against the endpoint count.
func checkNode(who string, node, n int) error {
	if node < 0 || node >= n {
		return fmt.Errorf("transport: %s node %d outside [0, %d)", who, node, n)
	}
	return nil
}
