package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// The wire codec. Every message type that crosses a transport
// registers a Codec under a stable numeric kind; EncodeMessage writes
// a self-describing body (uvarint kind + fields) and DecodeMessage
// reproduces the exact concrete Go value, so receive-side type
// assertions and Sizer/Kinded dispatch behave identically to the
// in-memory delivery path. Codecs may nest: a wrapper message encodes
// its payload with EncodeMessage recursively (kind KindNil carries a
// nil payload).
//
// Kind ranges, to keep registrations collision-free across packages:
// 0 is reserved (nil), 1-15 transport-internal/test, 16-31
// internal/ldt, 32-63 internal/core, 64-79 internal/problem, 80-95
// internal/service (the request/response protocol of the persistent
// MST service).

// KindNil is the reserved kind of a nil payload.
const KindNil = 0

// Codec binds one concrete message type to its wire encoding.
type Codec struct {
	// Kind is the stable wire id (see the range allocation above).
	Kind uint16
	// Name labels the codec in errors.
	Name string
	// Type is the concrete Go type the codec serves.
	Type reflect.Type
	// Encode appends the message body (without the kind tag) to w.
	Encode func(msg interface{}, w *Writer)
	// Decode reads the body back and returns the concrete value.
	Decode func(r *Reader) interface{}
}

var (
	codecMu      sync.RWMutex
	codecsByKind = map[uint16]*Codec{}
	codecsByType = map[reflect.Type]*Codec{}
)

// Register installs a message codec. It panics on a duplicate kind or
// type — registration is an init-time programming contract, not a
// runtime condition.
func Register(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if c.Kind == KindNil {
		panic(fmt.Sprintf("transport: codec %q claims reserved kind 0", c.Name))
	}
	if prev, ok := codecsByKind[c.Kind]; ok {
		panic(fmt.Sprintf("transport: codec kind %d already registered as %q", c.Kind, prev.Name))
	}
	if prev, ok := codecsByType[c.Type]; ok {
		panic(fmt.Sprintf("transport: codec type %v already registered as %q", c.Type, prev.Name))
	}
	cp := c
	codecsByKind[c.Kind] = &cp
	codecsByType[c.Type] = &cp
}

// RegisteredKinds returns the registered codec names sorted by kind,
// for diagnostics and registration-coverage tests.
func RegisteredKinds() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	kinds := make([]int, 0, len(codecsByKind))
	for k := range codecsByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, fmt.Sprintf("%d:%s", k, codecsByKind[uint16(k)].Name))
	}
	return out
}

// EncodeMessage appends the self-describing encoding of msg (uvarint
// kind + body) to buf and returns the extended slice. A nil msg
// encodes as KindNil; an unregistered type is an error — the caller
// aborts the run rather than ship an inexpressible payload.
func EncodeMessage(buf []byte, msg interface{}) ([]byte, error) {
	if msg == nil {
		return binary.AppendUvarint(buf, KindNil), nil
	}
	codecMu.RLock()
	c, ok := codecsByType[reflect.TypeOf(msg)]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no codec registered for message type %T", msg)
	}
	w := Writer{buf: binary.AppendUvarint(buf, uint64(c.Kind))}
	c.Encode(msg, &w)
	return w.buf, nil
}

// DecodeMessage reads one self-describing message from r. It returns
// nil for KindNil and an error for an unknown kind or a truncated
// body.
func DecodeMessage(r *Reader) (interface{}, error) {
	kind := r.Uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if kind == KindNil {
		return nil, nil
	}
	codecMu.RLock()
	c, ok := codecsByKind[uint16(kind)]
	codecMu.RUnlock()
	if !ok || kind > 1<<16-1 {
		return nil, fmt.Errorf("transport: unknown message kind %d on the wire", kind)
	}
	msg := c.Decode(r)
	if r.err != nil {
		return nil, fmt.Errorf("transport: decoding %q: %w", c.Name, r.err)
	}
	return msg, nil
}

// DecodePayload decodes a frame payload produced by EncodeMessage,
// requiring the body to be consumed exactly.
func DecodePayload(payload []byte) (interface{}, error) {
	r := Reader{buf: payload}
	msg, err := DecodeMessage(&r)
	if err != nil {
		return nil, err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("transport: %d trailing payload byte(s) after decode", len(r.buf)-r.off)
	}
	return msg, nil
}

// Writer appends primitive fields in the canonical wire order. The
// zero value writes into a fresh buffer.
type Writer struct {
	buf []byte
}

// Int appends a zig-zag varint.
func (w *Writer) Int(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Uint appends a uvarint.
func (w *Writer) Uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// Bytes appends a uvarint length-prefixed byte string. Strings travel
// the same way: the service protocol encodes them as Bytes of their
// UTF-8 contents.
func (w *Writer) Bytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Nested appends a nested self-describing message; an unregistered
// payload type panics (codecs run inside EncodeMessage, which has no
// error channel per field — the panic is converted to an error at the
// frame boundary by the sim shim's send path).
func (w *Writer) Nested(msg interface{}) {
	buf, err := EncodeMessage(w.buf, msg)
	if err != nil {
		panic(codecPanic{err})
	}
	w.buf = buf
}

// codecPanic carries a nested-encode error through Encode callbacks.
type codecPanic struct{ err error }

// RecoverEncode converts a codecPanic raised by Writer.Nested back
// into an error; other panics are re-raised. Use it in a defer around
// EncodeMessage calls that may hit nested unregistered payloads.
func RecoverEncode(err *error) {
	if r := recover(); r != nil {
		if cp, ok := r.(codecPanic); ok {
			*err = cp.err
			return
		}
		panic(r)
	}
}

// Reader consumes primitive fields in the canonical wire order. The
// first malformed field poisons the reader; check Err (or rely on
// DecodeMessage, which does).
type Reader struct {
	buf []byte
	off int
	err error
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Int reads a zig-zag varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Uvarint reads a uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.err = fmt.Errorf("truncated bool at offset %d", r.off)
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.err = fmt.Errorf("malformed bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// Bytes reads a uvarint length-prefixed byte string. The returned
// slice aliases the reader's buffer — copy it before retaining it
// past the decode. A length prefix that exceeds the remaining buffer
// poisons the reader instead of allocating: a truncated or hostile
// frame can never request more memory than it shipped.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	rem := len(r.buf) - r.off
	if n > uint64(rem) {
		r.err = fmt.Errorf("byte string length %d exceeds %d remaining byte(s) at offset %d", n, rem, r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Nested reads a nested self-describing message.
func (r *Reader) Nested() interface{} {
	if r.err != nil {
		return nil
	}
	msg, err := DecodeMessage(r)
	if err != nil {
		r.err = err
		return nil
	}
	return msg
}

// MaxFrameBytes bounds one marshaled frame; a length prefix beyond it
// is treated as stream corruption rather than an allocation request.
const MaxFrameBytes = 1 << 20

// AppendFrame appends the length-prefixed binary encoding of f to buf:
// uvarint body length, then varint Round and Seq, varint routing
// coordinates, and the uvarint-prefixed payload.
func AppendFrame(buf []byte, f Frame) []byte {
	body := make([]byte, 0, 32+len(f.Payload))
	body = binary.AppendVarint(body, f.Round)
	body = binary.AppendVarint(body, f.Seq)
	body = binary.AppendVarint(body, int64(f.From))
	body = binary.AppendVarint(body, int64(f.Port))
	body = binary.AppendVarint(body, int64(f.To))
	body = binary.AppendVarint(body, int64(f.Rev))
	body = binary.AppendUvarint(body, uint64(len(f.Payload)))
	body = append(body, f.Payload...)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// ReadFrame reads one length-prefixed frame from br.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	if length > MaxFrameBytes {
		return Frame{}, fmt.Errorf("transport: frame length %d exceeds cap %d (stream corrupt?)", length, MaxFrameBytes)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return Frame{}, fmt.Errorf("transport: truncated frame: %w", err)
	}
	r := Reader{buf: body}
	var f Frame
	f.Round = r.Int()
	f.Seq = r.Int()
	f.From = int32(r.Int())
	f.Port = int32(r.Int())
	f.To = int32(r.Int())
	f.Rev = int32(r.Int())
	plen := r.Uvarint()
	if r.err != nil {
		return Frame{}, fmt.Errorf("transport: malformed frame header: %w", r.err)
	}
	if int(plen) != len(body)-r.off {
		return Frame{}, fmt.Errorf("transport: frame payload length %d disagrees with body remainder %d", plen, len(body)-r.off)
	}
	f.Payload = body[r.off:]
	return f, nil
}

// FrameWireBytes returns the exact on-the-wire size of f — the byte
// count AppendFrame would produce — without building the encoding, so
// wire accounting costs no allocation.
func FrameWireBytes(f Frame) int64 {
	body := varintLen(f.Round) + varintLen(f.Seq) +
		varintLen(int64(f.From)) + varintLen(int64(f.Port)) +
		varintLen(int64(f.To)) + varintLen(int64(f.Rev)) +
		uvarintLen(uint64(len(f.Payload))) + int64(len(f.Payload))
	return uvarintLen(uint64(body)) + body
}

// uvarintLen returns the encoded size of x as a uvarint.
func uvarintLen(x uint64) int64 {
	n := int64(1)
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded size of v as a zig-zag varint.
func varintLen(v int64) int64 {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}
