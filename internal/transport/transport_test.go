package transport

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testMsg exercises every Writer/Reader primitive, nested payloads
// included.
type testMsg struct {
	A    int64
	B    uint64
	C    bool
	Body interface{}
}

func init() {
	Register(Codec{
		Kind: 1, Name: "test/msg", Type: reflect.TypeOf(testMsg{}),
		Encode: func(msg interface{}, w *Writer) {
			m := msg.(testMsg)
			w.Int(m.A)
			w.Uint(m.B)
			w.Bool(m.C)
			w.Nested(m.Body)
		},
		Decode: func(r *Reader) interface{} {
			return testMsg{A: r.Int(), B: r.Uvarint(), C: r.Bool(), Body: r.Nested()}
		},
	})
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []interface{}{
		nil,
		testMsg{A: -7, B: 300, C: true},
		testMsg{A: 1 << 40, Body: testMsg{A: 2, C: false}},
		testMsg{Body: testMsg{Body: testMsg{B: 9}}},
	}
	for _, msg := range cases {
		buf, err := EncodeMessage(nil, msg)
		if err != nil {
			t.Fatalf("encode %#v: %v", msg, err)
		}
		got, err := DecodePayload(buf)
		if err != nil {
			t.Fatalf("decode %#v: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip: got %#v want %#v", got, msg)
		}
	}
}

func TestEncodeUnregisteredType(t *testing.T) {
	if _, err := EncodeMessage(nil, struct{ X int }{1}); err == nil {
		t.Fatal("expected error for unregistered top-level type")
	}
	var err error
	func() {
		defer RecoverEncode(&err)
		_, err = EncodeMessage(nil, testMsg{Body: struct{ X int }{1}})
	}()
	if err == nil {
		t.Fatal("expected error for unregistered nested type")
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := DecodePayload([]byte{0xff, 0x01}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	good, err := EncodeMessage(nil, testMsg{A: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(good[:len(good)-1]); err == nil {
		t.Fatal("expected error for truncated body")
	}
	if _, err := DecodePayload(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}

func TestFrameRoundTripAndWireBytes(t *testing.T) {
	frames := []Frame{
		{},
		{Round: 3, Seq: 0, From: 1, Port: 2, To: 4, Rev: 0, Payload: []byte{1, 2, 3}},
		{Round: 1 << 30, Seq: 17, From: 1000, Port: 63, To: 999, Rev: 62, Payload: bytes.Repeat([]byte{0xab}, 300)},
	}
	var stream []byte
	for _, f := range frames {
		enc := AppendFrame(nil, f)
		if got, want := FrameWireBytes(f), int64(len(enc)); got != want {
			t.Fatalf("FrameWireBytes(%+v) = %d, encoding is %d bytes", f, got, want)
		}
		stream = append(stream, enc...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for _, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Round != want.Round || got.Seq != want.Seq || got.From != want.From ||
			got.Port != want.Port || got.To != want.To || got.Rev != want.Rev ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame round trip: got %+v want %+v", got, want)
		}
	}
}

func TestFrameQueue(t *testing.T) {
	q := newFrameQueue()
	q.push(Frame{Round: 1})
	q.push(Frame{Round: 2})
	for want := int64(1); want <= 2; want++ {
		f, err := q.pop(time.Second)
		if err != nil || f.Round != want {
			t.Fatalf("pop: got (%+v, %v), want round %d", f, err, want)
		}
	}
	if _, err := q.pop(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("pop on empty queue: got %v, want ErrTimeout", err)
	}
	q.push(Frame{Round: 3})
	q.close()
	if f, err := q.pop(time.Second); err != nil || f.Round != 3 {
		t.Fatalf("pop drains buffered frame after close: got (%+v, %v)", f, err)
	}
	if _, err := q.pop(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop after close: got %v, want ErrClosed", err)
	}
}

// exerciseBackend runs an all-pairs exchange over tx and checks every
// frame arrives intact.
func exerciseBackend(t *testing.T, tx Transport, n int) {
	t.Helper()
	if err := tx.Listen(n); err != nil {
		t.Fatalf("Listen(%d): %v", n, err)
	}
	defer tx.Close()
	payload, err := EncodeMessage(nil, testMsg{A: 42, C: true})
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			l, err := tx.Dial(from, to)
			if err != nil {
				t.Fatalf("Dial(%d, %d): %v", from, to, err)
			}
			f := Frame{Round: 7, From: int32(from), To: int32(to), Payload: payload}
			if err := l.Send(f); err != nil {
				t.Fatalf("Send %d->%d: %v", from, to, err)
			}
		}
	}
	for to := 0; to < n; to++ {
		seen := map[int32]bool{}
		for i := 0; i < n-1; i++ {
			f, err := tx.Recv(to)
			if err != nil {
				t.Fatalf("Recv(%d) #%d: %v", to, i, err)
			}
			if f.To != int32(to) || f.Round != 7 || seen[f.From] {
				t.Fatalf("Recv(%d): unexpected frame %+v", to, f)
			}
			seen[f.From] = true
			msg, err := DecodePayload(f.Payload)
			if err != nil {
				t.Fatalf("Recv(%d): decode: %v", to, err)
			}
			if got := msg.(testMsg); got.A != 42 || !got.C {
				t.Fatalf("Recv(%d): payload %#v", to, got)
			}
		}
	}
	if st, ok := tx.(Statser); ok {
		s := st.TransportStats()
		want := int64(n * (n - 1))
		if s.FramesSent != want || s.FramesRecv != want {
			t.Fatalf("stats: sent %d recv %d, want %d", s.FramesSent, s.FramesRecv, want)
		}
		if s.WireBytes <= 0 {
			t.Fatalf("stats: WireBytes = %d", s.WireBytes)
		}
	}
}

func TestInprocExchange(t *testing.T) { exerciseBackend(t, NewInproc(), 5) }

func TestTCPExchange(t *testing.T) { exerciseBackend(t, NewTCP(TCPConfig{}), 5) }

func TestFaultyInprocExchange(t *testing.T) {
	inner := NewInproc()
	tx := WithFaults(inner, FaultConfig{Seed: 11, DropProb: 0.5, DelayProb: 0.2, MaxDelay: time.Millisecond, Retries: 8})
	exerciseBackend(t, tx, 5)
	s := tx.TransportStats()
	if s.InjectedDrops == 0 {
		t.Fatalf("expected injected drops at DropProb=0.5, stats %+v", s)
	}
}

func TestFaultyPermanentDrop(t *testing.T) {
	tx := WithFaults(NewInproc(), FaultConfig{Seed: 1, DropProb: 1, Retries: 0})
	if err := tx.Listen(2); err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	l, err := tx.Dial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(Frame{Round: 1, To: 1}); err != nil {
		t.Fatalf("permanent drop should swallow the frame, got %v", err)
	}
	tx.inner.(*Inproc).RecvTimeout = 20 * time.Millisecond
	if _, err := tx.Recv(1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv after permanent drop: got %v, want ErrTimeout", err)
	}
}

func TestTCPRedialAfterBrokenConn(t *testing.T) {
	tx := NewTCP(TCPConfig{Retries: 4, Backoff: time.Millisecond})
	if err := tx.Listen(2); err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	l, err := tx.Dial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(Frame{Round: 1, To: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Recv(1); err != nil {
		t.Fatal(err)
	}
	// Break the established connection under the link; the next Send
	// must redial and still deliver.
	tl := l.(*tcpLink)
	tl.conn.Close()
	if err := l.Send(Frame{Round: 2, To: 1}); err != nil {
		t.Fatalf("Send after broken conn: %v", err)
	}
	f, err := tx.Recv(1)
	if err != nil || f.Round != 2 {
		t.Fatalf("Recv after redial: got (%+v, %v)", f, err)
	}
	if s := tx.TransportStats(); s.Dials < 2 {
		t.Fatalf("expected a redial, stats %+v", s)
	}
}

// TestTCPDialDeadListener is the regression test for the Dial
// self-deadlock: Dial used to hold t.mu across connect(), whose
// closed-flag check re-locked the non-reentrant mutex on any failed
// attempt — Dial hung forever and wedged Recv/Close behind the lock.
// Dialing a node whose listener is gone must instead return the
// documented dial error, with the rest of the backend still live.
func TestTCPDialDeadListener(t *testing.T) {
	tx := NewTCP(TCPConfig{
		Retries: 2, Backoff: time.Millisecond,
		DialTimeout: 200 * time.Millisecond, RecvTimeout: 50 * time.Millisecond,
	})
	if err := tx.Listen(2); err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	tx.listeners[1].Close()
	done := make(chan error, 1)
	go func() {
		_, err := tx.Dial(0, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Dial to a dead listener should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Dial deadlocked instead of returning the dial error")
	}
	// t.mu must be free again: Recv times out normally and Close
	// returns instead of blocking behind a stuck Dial.
	if _, err := tx.Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv after failed Dial: got %v, want ErrTimeout", err)
	}
	if err := tx.Close(); err != nil {
		t.Fatalf("Close after failed Dial: %v", err)
	}
}

// TestTCPRetriesConfig pins the Retries semantics: 0 keeps the zero
// config usable (default budget), NoRetries and any negative value
// mean single-attempt sends, and an exhausted zero budget returns a
// real wrapped cause rather than a nil-wrap ("%!w(<nil>)").
func TestTCPRetriesConfig(t *testing.T) {
	if got := (TCPConfig{}).withDefaults().Retries; got != DefaultRetries {
		t.Fatalf("zero config resolved to %d retries, want DefaultRetries", got)
	}
	if got := (TCPConfig{Retries: NoRetries}).withDefaults().Retries; got != 0 {
		t.Fatalf("NoRetries resolved to %d retries, want 0", got)
	}
	if got := (TCPConfig{Retries: -5}).withDefaults().Retries; got != 0 {
		t.Fatalf("Retries=-5 resolved to %d retries, want 0", got)
	}

	tx := NewTCP(TCPConfig{
		Retries: NoRetries, Backoff: time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	if err := tx.Listen(2); err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	l, err := tx.Dial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the destination and the established connection: the next
	// Send has no retry budget, so it must fail after one attempt.
	tx.listeners[1].Close()
	tl := l.(*tcpLink)
	tl.conn.Close()
	tl.conn = nil
	err = l.Send(Frame{Round: 1, To: 1})
	if err == nil {
		t.Fatal("Send with zero retry budget to a dead node should fail")
	}
	if msg := err.Error(); strings.Contains(msg, "%!w") || strings.Contains(msg, "<nil>") {
		t.Fatalf("Send error wraps a nil cause: %q", msg)
	}
	if s := tx.TransportStats(); s.SendRetries != 0 {
		t.Fatalf("zero budget still retried: stats %+v", s)
	}
}

func TestListenValidation(t *testing.T) {
	for _, tx := range []Transport{NewInproc(), NewTCP(TCPConfig{})} {
		if err := tx.Listen(0); err == nil {
			t.Fatalf("%T: Listen(0) should fail", tx)
		}
		if err := tx.Listen(2); err != nil {
			t.Fatalf("%T: Listen(2): %v", tx, err)
		}
		if err := tx.Listen(2); err == nil {
			t.Fatalf("%T: double Listen should fail", tx)
		}
		if _, err := tx.Dial(0, 5); err == nil {
			t.Fatalf("%T: Dial out of range should fail", tx)
		}
		tx.Close()
		if _, err := tx.Recv(0); !errors.Is(err, ErrClosed) {
			t.Fatalf("%T: Recv after Close: got %v, want ErrClosed", tx, err)
		}
	}
}
