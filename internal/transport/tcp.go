package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig parameterizes the TCP backend. The zero value is usable:
// every field falls back to the package default.
type TCPConfig struct {
	// Addr is the listen host (default "127.0.0.1"); every node binds
	// an ephemeral port on it.
	Addr string
	// Retries is the per-frame send budget beyond the first attempt: a
	// broken connection is redialed with backoff up to this many times
	// before Send gives up. 0 means DefaultRetries (keeping the zero
	// TCPConfig usable); NoRetries — or any negative value — configures
	// single-attempt sends.
	Retries int
	// Backoff is the base retry delay, doubled per attempt up to
	// MaxBackoff (default DefaultBackoff).
	Backoff time.Duration
	// DialTimeout bounds one connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// RecvTimeout bounds one Recv call — the round-barrier deadline
	// (default DefaultRecvTimeout).
	RecvTimeout time.Duration
}

// Defaults for the zero TCPConfig.
const (
	// DefaultRetries is the per-frame send budget beyond attempt one.
	DefaultRetries = 8
	// NoRetries configures single-attempt sends: TCPConfig.Retries == 0
	// means "use the default", so zero retries needs its own sentinel.
	NoRetries = -1
	// DefaultBackoff is the base retry delay.
	DefaultBackoff = 500 * time.Microsecond
	// MaxBackoff caps the exponential retry delay.
	MaxBackoff = 100 * time.Millisecond
	// DefaultDialTimeout bounds one connection attempt.
	DefaultDialTimeout = 2 * time.Second
)

// withDefaults resolves the zero fields.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1"
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	} else if c.Retries < 0 {
		c.Retries = 0 // NoRetries (and any negative): single attempt
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.RecvTimeout <= 0 {
		c.RecvTimeout = DefaultRecvTimeout
	}
	return c
}

// TCP runs every node as a long-lived TCP server on a loopback
// ephemeral port: Listen brings the mesh up, Dial establishes one
// connection per directed neighbor pair on first use, frames travel
// as length-prefixed binary records, and Send survives broken
// connections by redialing with exponential backoff within its retry
// budget. Close shuts the mesh down gracefully: listeners stop,
// connections close, blocked Recv calls return ErrClosed.
type TCP struct {
	cfg TCPConfig

	// closed lives outside mu so the dial/retry paths (which sleep
	// between attempts) can poll it without touching the lock — Dial
	// once deadlocked by holding mu across a connect() that re-locked
	// it via isClosed.
	closed atomic.Bool

	mu        sync.Mutex
	n         int
	listeners []net.Listener
	addrs     []string
	queues    []*frameQueue
	links     map[uint64]*tcpLink
	wg        sync.WaitGroup

	framesSent atomic.Int64
	framesRecv atomic.Int64
	wireBytes  atomic.Int64
	dials      atomic.Int64
	redials    atomic.Int64
	retries    atomic.Int64
}

// NewTCP returns a TCP backend; call Listen before use.
func NewTCP(cfg TCPConfig) *TCP {
	return &TCP{cfg: cfg.withDefaults(), links: map[uint64]*tcpLink{}}
}

// Listen starts one TCP server per node on an ephemeral port and the
// accept/reader goroutines feeding the per-node frame queues.
func (t *TCP) Listen(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listeners != nil {
		return fmt.Errorf("transport: tcp backend already listening on %d nodes", t.n)
	}
	if n <= 0 {
		return fmt.Errorf("transport: tcp backend needs n > 0, got %d", n)
	}
	t.n = n
	t.listeners = make([]net.Listener, n)
	t.addrs = make([]string, n)
	t.queues = make([]*frameQueue, n)
	for i := 0; i < n; i++ {
		ls, err := net.Listen("tcp", net.JoinHostPort(t.cfg.Addr, "0"))
		if err != nil {
			t.teardownLocked()
			return fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		t.listeners[i] = ls
		t.addrs[i] = ls.Addr().String()
		t.queues[i] = newFrameQueue()
		t.wg.Add(1)
		go t.acceptLoop(i, ls)
	}
	return nil
}

// Addr returns node's listen address (host:port), for diagnostics.
func (t *TCP) Addr(node int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if node < 0 || node >= len(t.addrs) {
		return ""
	}
	return t.addrs[node]
}

// acceptLoop accepts connections for one node server and spawns a
// reader per connection.
func (t *TCP) acceptLoop(node int, ls net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ls.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

// readLoop decodes frames off one accepted connection into the node's
// queue until the connection breaks or the backend closes.
func (t *TCP) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !t.isClosed() {
				// A mid-frame failure surfaces as a barrier timeout on
				// the scheduler side; the sender's retry path re-ships
				// the frame on a fresh connection.
				_ = err
			}
			return
		}
		t.framesRecv.Add(1)
		t.queues[node].push(f)
	}
}

// isClosed reports whether Close ran. Lock-free: the retry loops call
// it between backoff sleeps, where holding (or taking) t.mu would
// stall — or deadlock — the rest of the backend.
func (t *TCP) isClosed() bool {
	return t.closed.Load()
}

// tcpLink is one directed sender-side connection with redial + retry.
type tcpLink struct {
	t    *TCP
	addr string
	conn net.Conn
	bw   *bufio.Writer
	buf  []byte // marshal scratch
}

// Dial establishes (or returns) the from->to link. The connection is
// made lazily-but-eagerly here (not on first Send) so dial failures
// surface at link setup with a clear error.
func (t *TCP) Dial(from, to int) (Link, error) {
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if err := checkNode("dialing", from, t.n); err != nil {
		t.mu.Unlock()
		return nil, err
	}
	if err := checkNode("dialed", to, t.n); err != nil {
		t.mu.Unlock()
		return nil, err
	}
	key := uint64(from)<<32 | uint64(uint32(to))
	if l, ok := t.links[key]; ok {
		t.mu.Unlock()
		return l, nil
	}
	l := &tcpLink{t: t, addr: t.addrs[to]}
	t.mu.Unlock()
	// Connect outside t.mu: connect() sleeps between backoff attempts
	// and polls the closed flag, neither of which may happen under the
	// lock (Recv, Close, and Addr all take it).
	if err := l.connect(); err != nil {
		return nil, fmt.Errorf("transport: dial %d->%d (%s): %w", from, to, l.addr, err)
	}
	t.mu.Lock()
	if t.closed.Load() {
		// Close tore the mesh down while we were dialing; don't leak the
		// connection past teardown.
		t.mu.Unlock()
		l.conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.links[key]; ok {
		// A concurrent Dial won the race; keep its link.
		t.mu.Unlock()
		l.conn.Close()
		return existing, nil
	}
	t.links[key] = l
	t.mu.Unlock()
	return l, nil
}

// connect dials the destination with backoff within the retry budget.
func (l *tcpLink) connect() error {
	var err error
	for attempt := 0; attempt <= l.t.cfg.Retries; attempt++ {
		if attempt > 0 {
			l.t.redials.Add(1)
			time.Sleep(backoffDelay(l.t.cfg.Backoff, attempt))
		}
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", l.addr, l.t.cfg.DialTimeout)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // frames are latency-bound round barriers
			}
			l.conn = conn
			l.bw = bufio.NewWriter(conn)
			l.t.dials.Add(1)
			return nil
		}
		if l.t.isClosed() {
			return ErrClosed
		}
	}
	return err
}

// Send marshals and writes one frame, redialing on a broken
// connection until the retry budget is exhausted. Delivery is
// at-least-once: a write error does not prove the frame was lost (TCP
// can surface the failure after the bytes reached the peer), so a
// retried frame may arrive twice — the receiver-side drain dedups by
// frame coordinates.
func (l *tcpLink) Send(f Frame) error {
	l.buf = AppendFrame(l.buf[:0], f)
	var err error
	for attempt := 0; attempt <= l.t.cfg.Retries; attempt++ {
		if attempt > 0 {
			l.t.retries.Add(1)
			time.Sleep(backoffDelay(l.t.cfg.Backoff, attempt))
			if err = l.connect(); err != nil {
				continue
			}
		}
		if l.conn == nil {
			if err = l.connect(); err != nil {
				continue
			}
		}
		if _, err = l.bw.Write(l.buf); err == nil {
			err = l.bw.Flush()
		}
		if err == nil {
			l.t.framesSent.Add(1)
			l.t.wireBytes.Add(int64(len(l.buf)))
			return nil
		}
		if l.t.isClosed() {
			return ErrClosed
		}
		l.conn.Close()
		l.conn = nil
	}
	return fmt.Errorf("transport: send to %s failed after %d attempts: %w", l.addr, l.t.cfg.Retries+1, err)
}

// backoffDelay returns the exponential backoff for the given attempt.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > MaxBackoff || d <= 0 {
		d = MaxBackoff
	}
	return d
}

// Recv pops the next frame arrived at node to, waiting up to the
// configured round-barrier deadline.
func (t *TCP) Recv(to int) (Frame, error) {
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	if err := checkNode("receiving", to, n); err != nil {
		return Frame{}, err
	}
	return t.queues[to].pop(t.cfg.RecvTimeout)
}

// Close shuts the mesh down: listeners stop accepting, sender
// connections close, reader goroutines drain, and blocked Recv calls
// return ErrClosed.
func (t *TCP) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	t.mu.Lock()
	t.teardownLocked()
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// teardownLocked closes listeners, links, and queues; the caller
// holds t.mu.
func (t *TCP) teardownLocked() {
	for _, ls := range t.listeners {
		if ls != nil {
			ls.Close()
		}
	}
	for _, l := range t.links {
		if l.conn != nil {
			l.conn.Close()
		}
	}
	for _, q := range t.queues {
		if q != nil {
			q.close()
		}
	}
}

// TransportStats returns the wire accounting snapshot.
func (t *TCP) TransportStats() Stats {
	return Stats{
		FramesSent:  t.framesSent.Load(),
		FramesRecv:  t.framesRecv.Load(),
		WireBytes:   t.wireBytes.Load(),
		Dials:       t.dials.Load(),
		Redials:     t.redials.Load(),
		SendRetries: t.retries.Load(),
	}
}
