package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Inproc is the in-process reference backend: per-node frame queues
// standing in for sockets. Frames still carry codec-encoded payloads,
// so a run over Inproc exercises the exact wire representation TCP
// ships — which is what lets the differential suite certify the codec
// against the transportless simulator byte-for-byte, and the TCP
// backend against Inproc.
type Inproc struct {
	// RecvTimeout bounds one Recv (0 = DefaultRecvTimeout). The
	// in-process backend cannot lose frames, so a timeout here always
	// indicates a routing bug (or an injected fault that exhausted its
	// retry budget upstream).
	RecvTimeout time.Duration

	mu     sync.Mutex
	queues []*frameQueue
	closed bool

	framesSent atomic.Int64
	framesRecv atomic.Int64
	wireBytes  atomic.Int64
	dials      atomic.Int64
}

// DefaultRecvTimeout bounds a single Recv when the backend does not
// override it.
const DefaultRecvTimeout = 30 * time.Second

// NewInproc returns an in-process backend; call Listen before use.
func NewInproc() *Inproc { return &Inproc{} }

// Listen brings up the n node queues.
func (t *Inproc) Listen(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.queues != nil {
		return fmt.Errorf("transport: inproc backend already listening on %d nodes", len(t.queues))
	}
	if n <= 0 {
		return fmt.Errorf("transport: inproc backend needs n > 0, got %d", n)
	}
	t.queues = make([]*frameQueue, n)
	for i := range t.queues {
		t.queues[i] = newFrameQueue()
	}
	return nil
}

// inprocLink delivers frames straight into the destination queue.
type inprocLink struct {
	t  *Inproc
	to int
}

// Send enqueues the frame at the destination endpoint.
func (l inprocLink) Send(f Frame) error {
	l.t.mu.Lock()
	closed := l.t.closed
	l.t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	l.t.framesSent.Add(1)
	l.t.wireBytes.Add(FrameWireBytes(f))
	l.t.queues[l.to].push(f)
	return nil
}

// Dial returns the from->to link.
func (t *Inproc) Dial(from, to int) (Link, error) {
	t.mu.Lock()
	n := len(t.queues)
	t.mu.Unlock()
	if err := checkNode("dialing", from, n); err != nil {
		return nil, err
	}
	if err := checkNode("dialed", to, n); err != nil {
		return nil, err
	}
	t.dials.Add(1)
	return inprocLink{t: t, to: to}, nil
}

// Recv pops the next frame arrived at node to.
func (t *Inproc) Recv(to int) (Frame, error) {
	t.mu.Lock()
	n := len(t.queues)
	t.mu.Unlock()
	if err := checkNode("receiving", to, n); err != nil {
		return Frame{}, err
	}
	timeout := t.RecvTimeout
	if timeout <= 0 {
		timeout = DefaultRecvTimeout
	}
	f, err := t.queues[to].pop(timeout)
	if err == nil {
		t.framesRecv.Add(1)
	}
	return f, err
}

// Close tears the queues down; blocked Recv calls return ErrClosed.
func (t *Inproc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, q := range t.queues {
		q.close()
	}
	return nil
}

// TransportStats returns the wire accounting snapshot.
func (t *Inproc) TransportStats() Stats {
	return Stats{
		FramesSent: t.framesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
		WireBytes:  t.wireBytes.Load(),
		Dials:      t.dials.Load(),
	}
}
