package transport

import (
	"sync"
	"time"
)

// frameQueue is an unbounded MPSC frame queue: endpoint readers push,
// the scheduler pops. Unbounded on purpose — the scheduler drains a
// round's frames only after it finished sending the round, so a
// bounded queue could deadlock the senders against the drain.
type frameQueue struct {
	mu     sync.Mutex
	buf    []Frame
	sig    chan struct{} // capacity 1: "the queue may be non-empty"
	done   chan struct{} // closed by close()
	closed bool
}

func newFrameQueue() *frameQueue {
	return &frameQueue{sig: make(chan struct{}, 1), done: make(chan struct{})}
}

// push appends a frame and nudges a blocked pop.
func (q *frameQueue) push(f Frame) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.buf = append(q.buf, f)
	q.mu.Unlock()
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// pop removes the oldest frame, blocking up to timeout.
func (q *frameQueue) pop(timeout time.Duration) (Frame, error) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		q.mu.Lock()
		if len(q.buf) > 0 {
			f := q.buf[0]
			q.buf[0] = Frame{} // release the payload reference
			q.buf = q.buf[1:]
			if len(q.buf) == 0 {
				q.buf = nil // let the backing array go once drained
			}
			q.mu.Unlock()
			return f, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return Frame{}, ErrClosed
		}
		if timer == nil {
			timer = time.NewTimer(timeout)
		}
		select {
		case <-q.sig:
		case <-q.done:
		case <-timer.C:
			return Frame{}, ErrTimeout
		}
	}
}

// close wakes blocked pops with ErrClosed once the buffer drains.
func (q *frameQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
}
