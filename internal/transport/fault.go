package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes WithFaults. Probabilities are in [0, 1];
// decisions are a pure hash of (Seed, frame coordinates, attempt), so
// a faulty run is reproducible given the same seed and schedule.
type FaultConfig struct {
	// Seed keys the fault hash.
	Seed uint64
	// DropProb is the per-attempt probability a Send attempt fails
	// transiently. A drop is never injected on a send's final permitted
	// attempt, so with Retries > 0 the underlying link still delivers
	// every frame — faults stress the retry path without changing the
	// algorithm outcome. With Retries == 0 a drop is permanent.
	DropProb float64
	// DelayProb is the per-frame probability a Send sleeps MaxDelay-ish
	// before transmitting.
	DelayProb float64
	// MaxDelay bounds an injected delay (default 2ms).
	MaxDelay time.Duration
	// Retries is the per-frame fault-retry budget beyond the first
	// attempt. It is the faulty link's own loop — independent of any
	// retrying the wrapped backend does below it.
	Retries int
}

// WithFaults wraps a backend with deterministic transport-level fault
// injection: the chaos drop/delay policies reinterpreted as wire
// faults. Injected drops are transient send failures retried within
// cfg.Retries; injected delays are real sleeps before transmission.
func WithFaults(inner Transport, cfg FaultConfig) *Faulty {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0 // NoRetries and below: drops are permanent
	}
	return &Faulty{inner: inner, cfg: cfg}
}

// Faulty decorates a Transport with injected wire faults; see
// WithFaults.
type Faulty struct {
	inner Transport
	cfg   FaultConfig

	injectedDrops  atomic.Int64
	injectedDelays atomic.Int64
}

// Listen brings up the wrapped backend.
func (t *Faulty) Listen(n int) error { return t.inner.Listen(n) }

// Recv delegates to the wrapped backend.
func (t *Faulty) Recv(to int) (Frame, error) { return t.inner.Recv(to) }

// Close tears down the wrapped backend.
func (t *Faulty) Close() error { return t.inner.Close() }

// Dial returns the from->to link with fault injection layered on top.
func (t *Faulty) Dial(from, to int) (Link, error) {
	l, err := t.inner.Dial(from, to)
	if err != nil {
		return nil, err
	}
	return faultyLink{t: t, inner: l}, nil
}

// TransportStats merges the wrapped backend's wire accounting with the
// injection counters.
func (t *Faulty) TransportStats() Stats {
	var s Stats
	if st, ok := t.inner.(Statser); ok {
		s = st.TransportStats()
	}
	s.InjectedDrops = t.injectedDrops.Load()
	s.InjectedDelays = t.injectedDelays.Load()
	return s
}

// faultyLink perturbs Send with hash-derived drops and delays.
type faultyLink struct {
	t     *Faulty
	inner Link
}

// Send transmits the frame, injecting transient drops (retried up to
// the configured budget) and delays along the way.
func (l faultyLink) Send(f Frame) error {
	cfg := l.t.cfg
	if cfg.DelayProb > 0 && faultRoll(cfg.Seed, f, 'y', 0) < cfg.DelayProb {
		l.t.injectedDelays.Add(1)
		time.Sleep(faultDelay(cfg.Seed, f, cfg.MaxDelay))
	}
	for attempt := 0; ; attempt++ {
		if cfg.DropProb > 0 && attempt < cfg.Retries &&
			faultRoll(cfg.Seed, f, 'd', attempt) < cfg.DropProb {
			// Transient injected drop: the frame never reaches the wire
			// this attempt. Never injected on the final attempt, so the
			// retry budget masks every injected drop.
			l.t.injectedDrops.Add(1)
			continue
		}
		if cfg.DropProb > 0 && cfg.Retries == 0 &&
			faultRoll(cfg.Seed, f, 'd', 0) < cfg.DropProb {
			// No retry budget: the drop is permanent. The receiver's
			// round barrier times out and the run fails loudly.
			l.t.injectedDrops.Add(1)
			return nil
		}
		err := l.inner.Send(f)
		if err == nil || attempt >= cfg.Retries {
			if err != nil {
				return fmt.Errorf("transport: faulty link: %w", err)
			}
			return nil
		}
	}
}

// faultRoll maps (seed, frame coordinates, channel, attempt) to a
// uniform float64 in [0, 1) via splitmix64 — stateless, so decisions
// do not depend on goroutine interleaving.
func faultRoll(seed uint64, f Frame, channel byte, attempt int) float64 {
	h := splitmix64(seed ^ uint64(channel))
	h = splitmix64(h ^ uint64(f.Round)<<32 ^ uint64(uint32(f.From)))
	h = splitmix64(h ^ uint64(uint32(f.To))<<32 ^ uint64(uint32(f.Port)))
	h = splitmix64(h ^ uint64(f.Seq)<<16 ^ uint64(attempt))
	return float64(h>>11) / (1 << 53)
}

// faultDelay derives a deterministic delay in (0, max] for the frame.
func faultDelay(seed uint64, f Frame, max time.Duration) time.Duration {
	frac := faultRoll(seed, f, 'l', 0)
	d := time.Duration(frac * float64(max))
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

// splitmix64 is the standard 64-bit mix (same construction the chaos
// package uses for stateless per-event decisions).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
