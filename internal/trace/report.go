package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// jsonlLine is the union of all JSONL line shapes, used only when
// reading a trace back; writing is hand-rolled for byte stability.
type jsonlLine struct {
	K       string `json:"k"`
	N       int    `json:"n"`
	R       int64  `json:"r"`
	V       int32  `json:"v"`
	P       int32  `json:"p"`
	To      int32  `json:"to"`
	From    int64  `json:"from"`
	Ph      int32  `json:"ph"`
	St      string `json:"st"`
	Aw      int64  `json:"aw"`
	F       int64  `json:"f"`
	Pf      int64  `json:"pf"`
	Deg     int64  `json:"deg"`
	Rounds  int64  `json:"rounds"`
	Events  int64  `json:"events"`
	Dropped int64  `json:"dropped"`
}

// ReadJSONL parses a trace stream written by Recorder.WriteJSONL and
// returns its run-level meta plus the events in stream order (which is
// the canonical order). Unknown event kinds, negative coordinates, and
// malformed lines are errors so schema drift and corruption fail
// loudly instead of poisoning downstream aggregation.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	var meta Meta
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			return meta, nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		if ln.R < 0 || ln.V < 0 || ln.P < 0 || ln.N < 0 || ln.Ph < 0 || ln.To < 0 || ln.From < 0 || ln.Aw < 0 {
			return meta, nil, fmt.Errorf("trace: line %d: negative coordinate in %q event", lineNo, ln.K)
		}
		switch ln.K {
		case "begin":
			meta.N = ln.N
		case "end":
			meta.Rounds = ln.Rounds
			meta.Events = ln.Events
			meta.Dropped = ln.Dropped
		case "phase":
			events = append(events, Event{Kind: KindPhase, Round: ln.R, Node: ln.V, Phase: ln.Ph, Frag: ln.F})
		case "step":
			st, err := ParseStep(ln.St)
			if err != nil {
				return meta, nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			events = append(events, Event{Kind: KindStep, Round: ln.R, Node: ln.V, Phase: ln.Ph, Step: st, Aux: ln.Aw})
		case "merge":
			events = append(events, Event{Kind: KindMerge, Round: ln.R, Node: ln.V, Frag: ln.F, Prev: ln.Pf})
		case "sleep":
			events = append(events, Event{Kind: KindSleep, Round: ln.R, Node: ln.V, Aux: ln.From})
		case "awake":
			events = append(events, Event{Kind: KindAwake, Round: ln.R, Node: ln.V})
		case "send":
			events = append(events, Event{Kind: KindSend, Round: ln.R, Node: ln.V, Port: ln.P, Peer: ln.To})
		case "deliver":
			if ln.From > math.MaxInt32 {
				return meta, nil, fmt.Errorf("trace: line %d: sender %d overflows the node range", lineNo, ln.From)
			}
			events = append(events, Event{Kind: KindDeliver, Round: ln.R, Node: ln.V, Port: ln.P, Peer: int32(ln.From)})
		case "lost":
			events = append(events, Event{Kind: KindLost, Round: ln.R, Node: ln.V, Port: ln.P, Peer: ln.To})
		case "crash":
			events = append(events, Event{Kind: KindCrash, Round: ln.R, Node: ln.V})
		case "nbrs":
			if ln.Deg < 0 {
				return meta, nil, fmt.Errorf("trace: line %d: negative degree in nbrs event", lineNo)
			}
			events = append(events, Event{Kind: KindNbrs, Round: ln.R, Node: ln.V, Phase: ln.Ph, Aux: ln.Deg})
		default:
			return meta, nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, ln.K)
		}
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	return meta, events, nil
}

// StepAwake holds awake-round totals indexed by Step.
type StepAwake [StepMISCleanup + 1]int64

// PhaseBudget is the awake-budget breakdown of one algorithm phase
// aggregated over all nodes.
type PhaseBudget struct {
	// Phase is the 1-based phase number.
	Phase int32
	// Nodes is the number of nodes that entered the phase.
	Nodes int64
	// Steps holds awake rounds attributed to each step.
	Steps StepAwake
	// Awake is the total awake rounds attributed to the phase.
	Awake int64
	// Merges is the number of nodes that changed fragment during the
	// phase's Merging-Fragments wave.
	Merges int64
}

// Summary aggregates a structured trace into the per-phase
// awake-budget table reported by `mstbench -exp trace`.
type Summary struct {
	// Meta is the run-level header of the trace.
	Meta Meta
	// Phases holds one budget per phase, ascending.
	Phases []PhaseBudget
	// StepTotal is the awake budget per step summed over all phases.
	StepTotal StepAwake
	// AwakeAttributed is the awake-round total attributed to phase
	// steps (sum over Phases).
	AwakeAttributed int64
	// AwakeEvents counts KindAwake events: the scheduler-side ground
	// truth the attributed total is compared against.
	AwakeEvents int64
	// Sends, Delivers, Lost count the message events.
	Sends, Delivers, Lost int64
	// SleepGaps counts real sleep gaps (KindSleep events).
	SleepGaps int64
	// Crashes counts crash-stopped nodes.
	Crashes int64
}

// Summarize folds a canonical event stream into a Summary. Merge
// events carry no phase, so each node's merges are attributed to the
// last phase it entered.
func Summarize(meta Meta, events []Event) Summary {
	s := Summary{Meta: meta}
	byPhase := map[int32]*PhaseBudget{}
	var order []int32
	get := func(ph int32) *PhaseBudget {
		if b, ok := byPhase[ph]; ok {
			return b
		}
		b := &PhaseBudget{Phase: ph}
		byPhase[ph] = b
		order = append(order, ph)
		return b
	}
	nodePhase := map[int32]int32{}
	for _, ev := range events {
		switch ev.Kind {
		case KindPhase:
			get(ev.Phase).Nodes++
			nodePhase[ev.Node] = ev.Phase
		case KindStep:
			b := get(ev.Phase)
			b.Steps[ev.Step] += ev.Aux
			b.Awake += ev.Aux
			s.StepTotal[ev.Step] += ev.Aux
			s.AwakeAttributed += ev.Aux
		case KindMerge:
			get(nodePhase[ev.Node]).Merges++
		case KindAwake:
			s.AwakeEvents++
		case KindSend:
			s.Sends++
		case KindDeliver:
			s.Delivers++
		case KindLost:
			s.Lost++
		case KindSleep:
			s.SleepGaps++
		case KindCrash:
			s.Crashes++
		}
	}
	for i := 1; i < len(order); i++ { // phases arrive nearly sorted
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ph := range order {
		s.Phases = append(s.Phases, *byPhase[ph])
	}
	return s
}

// Table renders the summary as the per-phase awake-budget table: one
// row per phase, one column per step, plus totals and event counts.
func (s Summary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary  : n=%d rounds=%d events=%d dropped=%d\n",
		s.Meta.N, s.Meta.Rounds, s.Meta.Events, s.Meta.Dropped)
	fmt.Fprintf(&b, "%5s %6s", "phase", "nodes")
	for _, st := range Steps {
		fmt.Fprintf(&b, " %9s", st)
	}
	fmt.Fprintf(&b, " %9s %7s\n", "total", "merges")
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "%5d %6d", p.Phase, p.Nodes)
		for _, st := range Steps {
			fmt.Fprintf(&b, " %9d", p.Steps[st])
		}
		fmt.Fprintf(&b, " %9d %7d\n", p.Awake, p.Merges)
	}
	fmt.Fprintf(&b, "%5s %6s", "all", "")
	for _, st := range Steps {
		fmt.Fprintf(&b, " %9d", s.StepTotal[st])
	}
	fmt.Fprintf(&b, " %9d\n", s.AwakeAttributed)
	fmt.Fprintf(&b, "awake rounds   : %d attributed to steps, %d scheduler-charged\n",
		s.AwakeAttributed, s.AwakeEvents)
	fmt.Fprintf(&b, "messages       : sent=%d delivered=%d lost=%d\n", s.Sends, s.Delivers, s.Lost)
	fmt.Fprintf(&b, "sleep gaps     : %d", s.SleepGaps)
	if s.Crashes > 0 {
		fmt.Fprintf(&b, "  crashes: %d", s.Crashes)
	}
	b.WriteByte('\n')
	return b.String()
}
