// Package trace renders awake-schedule timelines from simulator
// results — a quick visual of *when* each node was awake across a run
// whose round count can be millions while awake counts stay
// logarithmic.
package trace

import (
	"fmt"
	"strings"

	"sleepmst/internal/sim"
)

// Timeline renders one line per node: the run's [1, Rounds] interval
// is split into width buckets and a bucket is marked '#' if the node
// was awake in any of its rounds ('.' otherwise). A node crash-stopped
// by a chaos interceptor renders 'x' from its crash round onward.
// Requires the run to have been executed with Config.RecordAwakeRounds.
func Timeline(res *sim.Result, width int) string {
	if res.AwakeRounds == nil {
		return "trace: awake rounds were not recorded (set RecordAwakeRounds)\n"
	}
	if width <= 0 {
		width = 64
	}
	total := res.Rounds
	if total == 0 {
		return "trace: empty run\n"
	}
	crashed := false
	for _, cr := range res.CrashRound {
		if cr > 0 {
			crashed = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds 1..%d, %d columns (~%d rounds each); '#' = awake",
		total, width, (total+int64(width)-1)/int64(width))
	if crashed {
		b.WriteString(", 'x' = crashed")
	}
	b.WriteByte('\n')
	for v, rounds := range res.AwakeRounds {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, r := range rounds {
			idx := bucket(r, total, width)
			line[idx] = '#'
		}
		note := ""
		if v < len(res.CrashRound) && res.CrashRound[v] > 0 {
			cr := res.CrashRound[v]
			for i := bucket(cr, total, width); i < width; i++ {
				line[i] = 'x'
			}
			note = fmt.Sprintf(" crashed@%d", cr)
		}
		fmt.Fprintf(&b, "node %4d |%s| awake=%d%s\n", v, line, res.AwakePerNode[v], note)
	}
	return b.String()
}

// bucket maps round r in [1, total] to a column, clamping rounds
// outside the run (e.g. a crash scheduled past the last busy round).
func bucket(r, total int64, width int) int {
	idx := int((r - 1) * int64(width) / total)
	if idx < 0 {
		idx = 0
	}
	if idx >= width {
		idx = width - 1
	}
	return idx
}

// Histogram renders the distribution of per-node awake counts.
func Histogram(res *sim.Result, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 50
	}
	counts := map[int64]int{}
	var maxAwake int64
	for _, a := range res.AwakePerNode {
		counts[a]++
		if a > maxAwake {
			maxAwake = a
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	b.WriteString("awake rounds : #nodes\n")
	for a := int64(0); a <= maxAwake; a++ {
		c, ok := counts[a]
		if !ok {
			continue
		}
		bar := strings.Repeat("#", c*barWidth/maxCount)
		if bar == "" && c > 0 {
			bar = "#"
		}
		fmt.Fprintf(&b, "%12d : %-*s %d\n", a, barWidth, bar, c)
	}
	return b.String()
}
