// Package trace is the observability layer: a bounded structured
// event recorder with a stable JSONL schema (Recorder), a per-phase
// awake-budget report over recorded events (Summarize), and ASCII
// renderers for awake schedules (Timeline, Histogram). It is a leaf
// package — the simulator imports it, never the reverse — so
// renderers consume a RunView projection instead of a simulator
// result.
package trace

import (
	"fmt"
	"strings"
)

// RunView is the renderer-facing projection of a simulation result:
// just the awake schedule and crash schedule, decoupled from the
// simulator so this package stays import-cycle-free. Build one with
// sim.Result.TraceView, or by hand in tests.
type RunView struct {
	// Rounds is the last busy round of the run.
	Rounds int64
	// AwakePerNode holds each node's total awake rounds.
	AwakePerNode []int64
	// AwakeRounds holds, per node, the sorted rounds it was awake
	// (nil when the run did not record them).
	AwakeRounds [][]int64
	// CrashRound holds, per node, the round it was crash-stopped
	// (0 = never crashed); may be empty for fault-free runs.
	CrashRound []int64
}

// Clip returns a view restricted to the first n nodes, for rendering
// a prefix of a large run.
func (v RunView) Clip(n int) RunView {
	if len(v.AwakePerNode) > n {
		v.AwakePerNode = v.AwakePerNode[:n]
	}
	if len(v.AwakeRounds) > n {
		v.AwakeRounds = v.AwakeRounds[:n]
	}
	if len(v.CrashRound) > n {
		v.CrashRound = v.CrashRound[:n]
	}
	return v
}

// Timeline renders one line per node: the run's [1, Rounds] interval
// is split into width buckets and a bucket is marked '#' if the node
// was awake in any of its rounds ('.' otherwise). A node crash-stopped
// by a chaos interceptor renders 'x' from its crash round onward.
//
// Rounds outside [1, Rounds] are clamped to the first/last column.
// This matters for crash rounds: a chaos policy may schedule a crash
// past the round the run actually ended in, and the marker is then
// pinned to the last column with the note flagging it "(after end)"
// rather than being dropped. Requires the run to have been executed
// with Config.RecordAwakeRounds.
func Timeline(v RunView, width int) string {
	if v.AwakeRounds == nil {
		return "trace: awake rounds were not recorded (set RecordAwakeRounds)\n"
	}
	if width <= 0 {
		width = 64
	}
	total := v.Rounds
	if total == 0 {
		return "trace: empty run\n"
	}
	crashed := false
	for _, cr := range v.CrashRound {
		if cr > 0 {
			crashed = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds 1..%d, %d columns (~%d rounds each); '#' = awake",
		total, width, (total+int64(width)-1)/int64(width))
	if crashed {
		b.WriteString(", 'x' = crashed")
	}
	b.WriteByte('\n')
	for n, rounds := range v.AwakeRounds {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, r := range rounds {
			idx := bucket(r, total, width)
			line[idx] = '#'
		}
		note := ""
		if n < len(v.CrashRound) && v.CrashRound[n] > 0 {
			cr := v.CrashRound[n]
			for i := bucket(cr, total, width); i < width; i++ {
				line[i] = 'x'
			}
			note = fmt.Sprintf(" crashed@%d", cr)
			if cr > total {
				note += " (after end)"
			}
		}
		fmt.Fprintf(&b, "node %4d |%s| awake=%d%s\n", n, line, v.AwakePerNode[n], note)
	}
	return b.String()
}

// bucket maps round r in [1, total] to a column, clamping rounds
// outside the run (e.g. a crash scheduled past the last busy round)
// to the nearest edge column.
func bucket(r, total int64, width int) int {
	idx := int((r - 1) * int64(width) / total)
	if idx < 0 {
		idx = 0
	}
	if idx >= width {
		idx = width - 1
	}
	return idx
}

// Histogram renders the distribution of per-node awake counts.
// Crash-stopped nodes are tallied separately and annotated per row,
// so a cluster of crashed nodes at awake=0 is not mistaken for nodes
// that legitimately slept through the run.
func Histogram(v RunView, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 50
	}
	counts := map[int64]int{}
	crashCounts := map[int64]int{}
	var maxAwake int64
	for n, a := range v.AwakePerNode {
		counts[a]++
		if n < len(v.CrashRound) && v.CrashRound[n] > 0 {
			crashCounts[a]++
		}
		if a > maxAwake {
			maxAwake = a
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	b.WriteString("awake rounds : #nodes\n")
	for a := int64(0); a <= maxAwake; a++ {
		c, ok := counts[a]
		if !ok {
			continue
		}
		bar := strings.Repeat("#", c*barWidth/maxCount)
		if bar == "" && c > 0 {
			bar = "#"
		}
		fmt.Fprintf(&b, "%12d : %-*s %d", a, barWidth, bar, c)
		if cc := crashCounts[a]; cc > 0 {
			fmt.Fprintf(&b, " (%d crashed)", cc)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
