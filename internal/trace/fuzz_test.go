package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// FuzzReadJSONL hardens the trace reader against arbitrary input: it
// must never panic, and whatever it does accept must round-trip —
// re-rendering the parsed events through the canonical writer and
// re-parsing must reproduce the exact same events. The committed
// corpus under testdata/fuzz/FuzzReadJSONL seeds the interesting
// shapes: full valid traces, truncated lines, negative coordinates,
// unknown kinds, and overflowing numbers.
func FuzzReadJSONL(f *testing.F) {
	valid := `{"k":"begin","n":4}
{"k":"phase","r":1,"v":0,"ph":1,"f":7}
{"k":"awake","r":1,"v":0}
{"k":"send","r":1,"v":0,"p":0,"to":1}
{"k":"deliver","r":1,"v":1,"p":0,"from":0}
{"k":"lost","r":1,"v":2,"p":1,"to":3}
{"k":"sleep","r":4,"v":3,"from":1}
{"k":"step","r":2,"v":0,"ph":1,"st":"find-moe","aw":1}
{"k":"merge","r":2,"v":0,"f":3,"pf":7}
{"k":"crash","r":2,"v":2}
{"k":"nbrs","r":2,"v":0,"ph":1,"deg":3}
{"k":"end","rounds":4,"events":10,"dropped":0}
`
	seeds := []string{
		valid,
		`{"k":"begin","n":4}` + "\n" + `{"k":"awake","r":1`,              // truncated line
		`{"k":"awake","r":-1,"v":0}`,                                     // negative coordinate
		`{"k":"mystery","r":1,"v":0}`,                                    // unknown kind
		`{"k":"step","r":1,"v":0,"ph":1,"st":"warp","aw":1}`,             // unknown step
		`{"k":"deliver","r":1,"v":1,"p":0,"from":99999999999}`,           // sender overflows int32
		`{"k":"awake","r":9223372036854775807,"v":2147483647}`,           // extreme but valid numbers
		"\n\n  \n" + `{"k":"begin","n":1}` + "\n\n",                      // blank-line padding
		`{"k":"send","r":1,"v":0,"p":0,"to":2147483648}`,                 // receiver overflows int32
		strings.Repeat(`{"k":"awake","r":1,"v":0}`+"\n", 64) + "not json", // trailing garbage
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, ev := range events {
			if ev.Kind > KindNbrs {
				t.Fatalf("accepted event with unknown kind %d", ev.Kind)
			}
		}
		// Accepted traces must round-trip through the canonical writer.
		var b strings.Builder
		fmt.Fprintf(&b, `{"k":"begin","n":%d}`+"\n", meta.N)
		for _, ev := range events {
			b.WriteString(ev.String())
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, `{"k":"end","rounds":%d,"events":%d,"dropped":%d}`+"\n", meta.Rounds, meta.Events, meta.Dropped)
		meta2, events2, err := ReadJSONL(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-parse of accepted trace failed: %v", err)
		}
		if meta2 != meta {
			t.Fatalf("meta did not round-trip: %+v vs %+v", meta, meta2)
		}
		if len(events2) != len(events) {
			t.Fatalf("event count did not round-trip: %d vs %d", len(events), len(events2))
		}
		for i := range events {
			if events[i] != events2[i] {
				t.Fatalf("event %d did not round-trip: %+v vs %+v", i, events[i], events2[i])
			}
		}
	})
}
