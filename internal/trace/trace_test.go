package trace

import (
	"strings"
	"testing"
)

func sampleView() RunView {
	return RunView{
		Rounds:       100,
		AwakePerNode: []int64{2, 3},
		AwakeRounds:  [][]int64{{1, 50}, {1, 99, 100}},
	}
}

func TestTimelineMarksBuckets(t *testing.T) {
	out := Timeline(sampleView(), 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "awake=2") {
		t.Errorf("node 0 line = %q", lines[1])
	}
	// Node 1 awake at rounds 1 and 99-100: first and last buckets.
	row := lines[2]
	bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if bar[0] != '#' || bar[len(bar)-1] != '#' {
		t.Errorf("node 1 bar = %q, want # at both ends", bar)
	}
}

func TestTimelineWithoutRecording(t *testing.T) {
	out := Timeline(RunView{Rounds: 5, AwakePerNode: []int64{1}}, 10)
	if !strings.Contains(out, "not recorded") {
		t.Errorf("output = %q", out)
	}
}

func TestTimelineEmptyRun(t *testing.T) {
	out := Timeline(RunView{AwakeRounds: [][]int64{}}, 10)
	if !strings.Contains(out, "empty") {
		t.Errorf("output = %q", out)
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	out := Timeline(sampleView(), 0)
	if !strings.Contains(out, "64 columns") {
		t.Errorf("default width not applied:\n%s", out)
	}
}

func TestRunViewClip(t *testing.T) {
	v := RunView{
		Rounds:       10,
		AwakePerNode: []int64{1, 2, 3},
		AwakeRounds:  [][]int64{{1}, {2}, {3}},
		CrashRound:   []int64{0, 5, 0},
	}
	c := v.Clip(2)
	if len(c.AwakePerNode) != 2 || len(c.AwakeRounds) != 2 || len(c.CrashRound) != 2 {
		t.Fatalf("clip kept %d/%d/%d entries, want 2 each",
			len(c.AwakePerNode), len(c.AwakeRounds), len(c.CrashRound))
	}
	if len(v.AwakePerNode) != 3 {
		t.Fatalf("clip mutated the original view")
	}
}

func TestHistogram(t *testing.T) {
	v := RunView{AwakePerNode: []int64{1, 1, 1, 5}}
	out := Histogram(v, 20)
	if !strings.Contains(out, "1 : #################### 3") {
		t.Errorf("histogram:\n%s", out)
	}
	if !strings.Contains(out, "5 : ") {
		t.Errorf("missing count-5 row:\n%s", out)
	}
	// Rows for absent counts (0, 2, 3, 4) are skipped.
	if strings.Contains(out, "\n           2 :") {
		t.Errorf("unexpected empty row:\n%s", out)
	}
}

// TestHistogramAnnotatesCrashedNodes is the regression test for the
// misleading awake=0 row: two nodes crash-stopped before ever waking
// must be flagged as crashed, not lumped in with nodes that slept by
// choice.
func TestHistogramAnnotatesCrashedNodes(t *testing.T) {
	v := RunView{
		AwakePerNode: []int64{0, 0, 0, 4},
		CrashRound:   []int64{1, 2, 0, 0},
	}
	out := Histogram(v, 20)
	if !strings.Contains(out, "(2 crashed)") {
		t.Errorf("awake=0 row missing crash annotation:\n%s", out)
	}
	// The annotation sits on the awake=0 row, not the awake=4 one.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " 4 ") && strings.Contains(line, "crashed") {
			t.Errorf("uncrashed row annotated: %q", line)
		}
	}
}
