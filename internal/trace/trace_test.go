package trace

import (
	"strings"
	"testing"

	"sleepmst/internal/sim"
)

func sampleResult() *sim.Result {
	return &sim.Result{
		Rounds:       100,
		AwakePerNode: []int64{2, 3},
		AwakeRounds:  [][]int64{{1, 50}, {1, 99, 100}},
	}
}

func TestTimelineMarksBuckets(t *testing.T) {
	out := Timeline(sampleResult(), 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "awake=2") {
		t.Errorf("node 0 line = %q", lines[1])
	}
	// Node 1 awake at rounds 1 and 99-100: first and last buckets.
	row := lines[2]
	bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if bar[0] != '#' || bar[len(bar)-1] != '#' {
		t.Errorf("node 1 bar = %q, want # at both ends", bar)
	}
}

func TestTimelineWithoutRecording(t *testing.T) {
	out := Timeline(&sim.Result{Rounds: 5, AwakePerNode: []int64{1}}, 10)
	if !strings.Contains(out, "not recorded") {
		t.Errorf("output = %q", out)
	}
}

func TestTimelineEmptyRun(t *testing.T) {
	out := Timeline(&sim.Result{AwakeRounds: [][]int64{}}, 10)
	if !strings.Contains(out, "empty") {
		t.Errorf("output = %q", out)
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	out := Timeline(sampleResult(), 0)
	if !strings.Contains(out, "64 columns") {
		t.Errorf("default width not applied:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	res := &sim.Result{AwakePerNode: []int64{1, 1, 1, 5}}
	out := Histogram(res, 20)
	if !strings.Contains(out, "1 : #################### 3") {
		t.Errorf("histogram:\n%s", out)
	}
	if !strings.Contains(out, "5 : ") {
		t.Errorf("missing count-5 row:\n%s", out)
	}
	// Rows for absent counts (0, 2, 3, 4) are skipped.
	if strings.Contains(out, "\n           2 :") {
		t.Errorf("unexpected empty row:\n%s", out)
	}
}
