package trace

import (
	"strings"
	"testing"
)

func TestSummarizePerPhaseBudget(t *testing.T) {
	meta := Meta{N: 2, Rounds: 20, Events: 10}
	events := []Event{
		{Kind: KindPhase, Round: 1, Node: 0, Phase: 1, Frag: 10},
		{Kind: KindPhase, Round: 1, Node: 1, Phase: 1, Frag: 11},
		{Kind: KindAwake, Round: 1, Node: 0},
		{Kind: KindAwake, Round: 1, Node: 1},
		{Kind: KindSend, Round: 1, Node: 0, Port: 0, Peer: 1},
		{Kind: KindDeliver, Round: 1, Node: 1, Port: 0, Peer: 0},
		{Kind: KindStep, Round: 5, Node: 0, Phase: 1, Step: StepFindMOE, Aux: 4},
		{Kind: KindStep, Round: 5, Node: 1, Phase: 1, Step: StepFindMOE, Aux: 4},
		{Kind: KindStep, Round: 8, Node: 0, Phase: 1, Step: StepMerge, Aux: 2},
		{Kind: KindMerge, Round: 8, Node: 0, Frag: 11, Prev: 10},
		{Kind: KindPhase, Round: 9, Node: 0, Phase: 2, Frag: 11},
		{Kind: KindStep, Round: 12, Node: 0, Phase: 2, Step: StepDecide, Aux: 1},
		{Kind: KindSleep, Round: 9, Node: 1, Aux: 5},
		{Kind: KindCrash, Round: 15, Node: 1},
		{Kind: KindLost, Round: 15, Node: 0, Port: 0, Peer: 1},
	}
	s := Summarize(meta, events)
	if len(s.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(s.Phases))
	}
	p1 := s.Phases[0]
	if p1.Phase != 1 || p1.Nodes != 2 || p1.Steps[StepFindMOE] != 8 || p1.Steps[StepMerge] != 2 || p1.Awake != 10 || p1.Merges != 1 {
		t.Errorf("phase 1 = %+v", p1)
	}
	p2 := s.Phases[1]
	if p2.Phase != 2 || p2.Nodes != 1 || p2.Steps[StepDecide] != 1 || p2.Awake != 1 {
		t.Errorf("phase 2 = %+v", p2)
	}
	if s.AwakeAttributed != 11 || s.AwakeEvents != 2 {
		t.Errorf("awake totals = %d attributed, %d events", s.AwakeAttributed, s.AwakeEvents)
	}
	if s.Sends != 1 || s.Delivers != 1 || s.Lost != 1 || s.SleepGaps != 1 || s.Crashes != 1 {
		t.Errorf("event counts = %+v", s)
	}
}

func TestSummaryTable(t *testing.T) {
	s := Summarize(Meta{N: 2, Rounds: 20}, []Event{
		{Kind: KindPhase, Round: 1, Node: 0, Phase: 1},
		{Kind: KindStep, Round: 5, Node: 0, Phase: 1, Step: StepFindMOE, Aux: 4},
	})
	out := s.Table()
	for _, want := range []string{"trace summary", "phase", "find-moe", "merge", "awake rounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, one phase row, totals row, then the three footer lines.
	if len(lines) != 7 {
		t.Errorf("got %d lines, want 7:\n%s", len(lines), out)
	}
}

func TestSummarizePhaseOrderFromUnsortedPhases(t *testing.T) {
	// Phase numbers can first appear out of order when a node stream
	// dropped early events; the summary must still sort them.
	s := Summarize(Meta{}, []Event{
		{Kind: KindStep, Round: 9, Node: 0, Phase: 3, Step: StepMerge, Aux: 1},
		{Kind: KindStep, Round: 9, Node: 1, Phase: 1, Step: StepMerge, Aux: 1},
		{Kind: KindStep, Round: 9, Node: 2, Phase: 2, Step: StepMerge, Aux: 1},
	})
	for i, want := range []int32{1, 2, 3} {
		if s.Phases[i].Phase != want {
			t.Fatalf("phase order = %v", s.Phases)
		}
	}
}
