package trace

import (
	"bytes"
	"strings"
	"testing"
)

// record fills a recorder with a tiny synthetic run: two nodes, three
// rounds, one phase, one merge, one lost message, one crash.
func record() *Recorder {
	r := NewRecorder(0)
	r.Begin(2)
	r.Phase(0, 1, 1, 10)
	r.Phase(1, 1, 1, 11)
	r.Awake(1, 0)
	r.Awake(1, 1)
	r.Send(1, 0, 0, 1)
	r.Deliver(1, 1, 0, 0)
	r.Sleep(1, 1, 3)
	r.Awake(2, 0)
	r.Send(2, 0, 0, 1)
	r.Lost(2, 0, 0, 1)
	r.Crash(1, 3)
	r.Awake(3, 0)
	r.StepDone(0, 4, 1, StepFindMOE, 3)
	r.Merge(0, 4, 10, 11)
	return r
}

func TestRecorderCanonicalOrder(t *testing.T) {
	r := record()
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Round > b.Round {
			t.Fatalf("events out of round order at %d: %+v then %+v", i, a, b)
		}
		if a.Round == b.Round && a.Node > b.Node {
			t.Fatalf("events out of node order at %d: %+v then %+v", i, a, b)
		}
		if a.Round == b.Round && a.Node == b.Node && a.Kind > b.Kind {
			t.Fatalf("events out of kind order at %d: %+v then %+v", i, a, b)
		}
	}
	if r.Rounds() != 3 {
		t.Errorf("Rounds() = %d, want 3", r.Rounds())
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", r.Dropped())
	}
}

func TestRecorderJSONLRoundTrip(t *testing.T) {
	r := record()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	meta, evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.N != 2 || meta.Rounds != 3 || meta.Dropped != 0 {
		t.Errorf("meta = %+v", meta)
	}
	want := r.Events()
	if len(evs) != len(want) {
		t.Fatalf("round-trip kept %d of %d events", len(evs), len(want))
	}
	for i := range evs {
		if evs[i] != want[i] {
			t.Errorf("event %d: round-trip %+v != recorded %+v", i, evs[i], want[i])
		}
	}
}

func TestRecorderWriteIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := record().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical recordings serialized differently:\n%s\n--\n%s", a.String(), b.String())
	}
}

func TestRecorderOverflowDropsOldest(t *testing.T) {
	r := NewRecorder(128) // schedCap and nodeCap both floor at 64
	r.Begin(1)
	for round := int64(1); round <= 100; round++ {
		r.Awake(round, 0)
	}
	if r.Dropped() != 36 {
		t.Fatalf("Dropped() = %d, want 36", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("kept %d events, want 64", len(evs))
	}
	if evs[0].Round != 37 || evs[len(evs)-1].Round != 100 {
		t.Errorf("kept rounds %d..%d, want 37..100 (oldest evicted first)",
			evs[0].Round, evs[len(evs)-1].Round)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped":36`) {
		t.Errorf("end line missing drop count:\n%s", buf.String())
	}
}

func TestRecorderBeginResets(t *testing.T) {
	r := record()
	r.Begin(2)
	if r.Len() != 0 || r.Dropped() != 0 || r.Rounds() != 0 {
		t.Errorf("Begin did not reset: len=%d dropped=%d rounds=%d", r.Len(), r.Dropped(), r.Rounds())
	}
}

func TestStepNamesRoundTrip(t *testing.T) {
	for _, st := range Steps {
		got, err := ParseStep(st.String())
		if err != nil || got != st {
			t.Errorf("ParseStep(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStep("bogus"); err == nil {
		t.Error("ParseStep accepted an unknown step name")
	}
}
