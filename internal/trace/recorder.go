package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind enumerates the structured trace event types. The numeric order
// doubles as the canonical sort rank for events sharing a (round,
// node) coordinate, so it is part of the JSONL stream's determinism
// contract: do not reorder existing values.
type Kind uint8

// The event taxonomy. Scheduler-side events (KindAwake, KindSend,
// KindDeliver, KindLost) are emitted by the simulator's scheduler
// goroutine; node-side events (KindSleep, KindCrash, KindPhase,
// KindStep, KindMerge) land in per-node streams written either by the
// node's own goroutine or by the scheduler while that node is parked.
const (
	// KindPhase marks a node entering an algorithm phase.
	KindPhase Kind = iota
	// KindStep reports the awake rounds a node spent in one phase step.
	KindStep
	// KindMerge reports a node changing fragments in Merging-Fragments.
	KindMerge
	// KindSleep reports a real sleep gap: the node skipped at least one
	// round between its previous awake round and this wake round.
	KindSleep
	// KindAwake reports a node being awake (and charged) in a round.
	KindAwake
	// KindSend reports one staged message at the start of a round.
	KindSend
	// KindDeliver reports a message reaching an awake receiver.
	KindDeliver
	// KindLost reports a message that reached no one (sleeping or
	// crashed receiver, interceptor drop, or a stale delayed copy).
	KindLost
	// KindCrash reports a node being crash-stopped by an interceptor.
	KindCrash
	// KindNbrs reports a fragment root's supergraph degree after the
	// NBR-INFO broadcast (deterministic variants only): Aux is the
	// number of accepted supergraph edges, bounded by 4 per the paper's
	// sparsification.
	KindNbrs
)

// String returns the JSONL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindStep:
		return "step"
	case KindMerge:
		return "merge"
	case KindSleep:
		return "sleep"
	case KindAwake:
		return "awake"
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindLost:
		return "lost"
	case KindCrash:
		return "crash"
	case KindNbrs:
		return "nbrs"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Step identifies one instrumented step of an algorithm phase; the
// per-phase awake budget is attributed to these labels.
type Step uint8

// The phase-step taxonomy shared by the three LDT algorithms. Not
// every algorithm emits every step: Randomized-MST skips StepNbrInfo
// and StepColoring; the deterministic variants emit all seven.
const (
	// StepNone is the zero value (no step).
	StepNone Step = iota
	// StepFindMOE covers fragment refresh, Upcast-Min of the MOE, and
	// the Fragment-Broadcast of its identity.
	StepFindMOE
	// StepMarkMOE covers the Transmit-Adjacent block that marks MOE
	// edges (and exchanges coin flips in the randomized algorithm).
	StepMarkMOE
	// StepValidate covers MOE validity: the tails->heads upcast in the
	// randomized algorithm; the incoming-MOE count, token distribution,
	// and accept/reject notices in the deterministic ones.
	StepValidate
	// StepNbrInfo covers the supergraph NBR-INFO collection and
	// broadcast (deterministic variants only).
	StepNbrInfo
	// StepColoring covers the coloring stages: Fast-Awake-Coloring or
	// the Cole-Vishkin style log* variant (deterministic variants only).
	StepColoring
	// StepDecide covers the fragment-wide merge-decision broadcast.
	StepDecide
	// StepMerge covers the Merging-Fragments wave(s).
	StepMerge
	// StepMISSample covers one MIS sparsification phase: the candidacy
	// and rank exchange plus the join/covered announcements (MIS
	// problem only).
	StepMISSample
	// StepMISCleanup covers the MIS residual cleanup: the undecided-set
	// sync plus the rank-slotted greedy decisions (MIS problem only).
	StepMISCleanup
)

// Steps lists every real step in canonical (emission) order.
var Steps = [...]Step{StepFindMOE, StepMarkMOE, StepValidate, StepNbrInfo, StepColoring, StepDecide, StepMerge, StepMISSample, StepMISCleanup}

// String returns the JSONL name of the step.
func (s Step) String() string {
	switch s {
	case StepNone:
		return "none"
	case StepFindMOE:
		return "find-moe"
	case StepMarkMOE:
		return "mark-moe"
	case StepValidate:
		return "validate"
	case StepNbrInfo:
		return "nbr-info"
	case StepColoring:
		return "coloring"
	case StepDecide:
		return "decide"
	case StepMerge:
		return "merge"
	case StepMISSample:
		return "mis-sample"
	case StepMISCleanup:
		return "mis-cleanup"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// ParseStep converts a JSONL step name back to its Step.
func ParseStep(s string) (Step, error) {
	for _, st := range Steps {
		if st.String() == s {
			return st, nil
		}
	}
	if s == StepNone.String() {
		return StepNone, nil
	}
	return StepNone, fmt.Errorf("trace: unknown step %q", s)
}

// Event is one structured trace record. Which fields are meaningful
// depends on Kind; unused fields are zero:
//
//	KindPhase:   Round (first round of the phase), Node, Phase, Frag
//	KindStep:    Round (round after the step), Node, Phase, Step, Aux
//	             (awake rounds the node spent in the step)
//	KindMerge:   Round (round after the merge), Node, Frag (new
//	             fragment), Prev (old fragment)
//	KindSleep:   Round (the wake round ending the gap), Node, Aux (the
//	             last awake round before the gap; 0 = never awake)
//	KindAwake:   Round, Node
//	KindSend:    Round, Node (sender), Port (sender's port), Peer
//	             (receiver)
//	KindDeliver: Round, Node (receiver), Port (receiver's port), Peer
//	             (sender)
//	KindLost:    Round, Node (sender), Port (sender's port), Peer
//	             (intended receiver)
//	KindCrash:   Round (crash-stop round), Node
//	KindNbrs:    Round (round after the NBR-INFO broadcast), Node (the
//	             fragment root), Phase, Aux (supergraph degree)
type Event struct {
	// Round is the simulated round the event belongs to.
	Round int64
	// Frag is the fragment ID (KindPhase, KindMerge).
	Frag int64
	// Prev is the pre-merge fragment ID (KindMerge).
	Prev int64
	// Aux is the kind-specific extra value: awake delta for KindStep,
	// last-awake round for KindSleep.
	Aux int64
	// Node is the acting node (sender for sends, receiver for
	// deliveries).
	Node int32
	// Port is the acting node's port (KindSend, KindDeliver, KindLost).
	Port int32
	// Peer is the other endpoint (KindSend, KindDeliver, KindLost).
	Peer int32
	// Phase is the 1-based phase number (KindPhase, KindStep).
	Phase int32
	// Kind is the event type.
	Kind Kind
	// Step is the phase-step label (KindStep).
	Step Step
}

// DefaultCapacity is the recorder's default total event capacity.
const DefaultCapacity = 1 << 18

// stream is one bounded ring of events, written by exactly one
// goroutine at a time (see Recorder).
type stream struct {
	buf     []Event
	head    int   // index of the oldest event
	n       int   // live events
	seq     int64 // total events ever appended
	dropped int64
}

// push appends an event, evicting the oldest when the ring is full.
func (s *stream) push(cap int, ev Event) {
	if len(s.buf) < cap {
		s.buf = append(s.buf, ev)
		s.n++
		s.seq++
		return
	}
	if s.n == len(s.buf) { // full: overwrite the oldest
		s.buf[s.head] = ev
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
		s.seq++
		return
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.seq++
}

// Recorder is a bounded, allocation-limited structured event recorder
// for one simulation run. It keeps one ring buffer per writer — the
// scheduler goroutine plus each node goroutine — so recording never
// takes a lock; the canonical event order is reconstructed at read
// time by sorting on (Round, Node, Kind, stream sequence), which is
// deterministic because every stream's content is deterministic for a
// fixed seed.
//
// A Recorder serves one run at a time: sim.Run calls Begin, which
// resets all streams. It must not be shared by concurrent runs (give
// every sweep job its own Recorder).
type Recorder struct {
	capacity int
	n        int
	rounds   int64
	sched    stream   // scheduler-side events
	nodes    []stream // per-node events
	schedCap int
	nodeCap  int
}

// NewRecorder returns a Recorder bounding its memory to capacity
// events in total (0 means DefaultCapacity). Half the budget goes to
// the scheduler stream (awake/send/deliver/lost events dominate), the
// other half is split evenly across node streams; when a stream
// overflows its share, its oldest events are discarded and counted in
// Dropped.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity}
}

// Begin resets the recorder for a run on n nodes. It is called by
// sim.Run; only the rare caller driving the simulator directly calls
// it by hand.
func (r *Recorder) Begin(n int) {
	r.n = n
	r.rounds = 0
	r.sched = stream{}
	r.nodes = make([]stream, n)
	r.schedCap = r.capacity / 2
	if r.schedCap < 64 {
		r.schedCap = 64
	}
	r.nodeCap = r.capacity / 2 / n
	if r.nodeCap < 64 {
		r.nodeCap = 64
	}
}

// N returns the node count of the recorded run (0 before Begin).
func (r *Recorder) N() int { return r.n }

// Rounds returns the largest round observed in an awake event.
func (r *Recorder) Rounds() int64 { return r.rounds }

// Dropped returns the number of events evicted by ring overflow.
func (r *Recorder) Dropped() int64 {
	d := r.sched.dropped
	for i := range r.nodes {
		d += r.nodes[i].dropped
	}
	return d
}

// Len returns the number of live (non-evicted) events.
func (r *Recorder) Len() int {
	n := r.sched.n
	for i := range r.nodes {
		n += r.nodes[i].n
	}
	return n
}

// Awake records node being awake (and charged) in round. Scheduler
// side.
func (r *Recorder) Awake(round int64, node int) {
	if round > r.rounds {
		r.rounds = round
	}
	r.sched.push(r.schedCap, Event{Kind: KindAwake, Round: round, Node: int32(node)})
}

// Send records one staged message: from sends on its port towards to.
// Scheduler side.
func (r *Recorder) Send(round int64, from, port, to int) {
	r.sched.push(r.schedCap, Event{Kind: KindSend, Round: round, Node: int32(from), Port: int32(port), Peer: int32(to)})
}

// Deliver records a message reaching awake receiver to on its port
// (the reverse port of the send), sent by from. Scheduler side.
func (r *Recorder) Deliver(round int64, to, port, from int) {
	r.sched.push(r.schedCap, Event{Kind: KindDeliver, Round: round, Node: int32(to), Port: int32(port), Peer: int32(from)})
}

// Lost records a message copy that reached no one. Scheduler side.
func (r *Recorder) Lost(round int64, from, port, to int) {
	r.sched.push(r.schedCap, Event{Kind: KindLost, Round: round, Node: int32(from), Port: int32(port), Peer: int32(to)})
}

// Sleep records a real sleep gap for node: it was last awake in
// lastAwake (0 = never) and wakes next in wake. Called by the
// scheduler while the node is parked, so it shares the node's stream
// without racing the node goroutine.
func (r *Recorder) Sleep(node int, lastAwake, wake int64) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindSleep, Round: wake, Node: int32(node), Aux: lastAwake})
}

// Crash records node being crash-stopped from round onward. Called by
// the scheduler while the node is parked.
func (r *Recorder) Crash(node int, round int64) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindCrash, Round: round, Node: int32(node)})
}

// Phase records node entering 1-based phase as a member of fragment
// frag, with round its first wake round of the phase. Node side.
func (r *Recorder) Phase(node int, round int64, phase int, frag int64) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindPhase, Round: round, Node: int32(node), Phase: int32(phase), Frag: frag})
}

// StepDone records node finishing a phase step having spent awake
// rounds on it; round is the node's next wake round. Node side.
func (r *Recorder) StepDone(node int, round int64, phase int, step Step, awake int64) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindStep, Round: round, Node: int32(node), Phase: int32(phase), Step: step, Aux: awake})
}

// Merge records node moving from fragment prev to fragment frag;
// round is the node's next wake round. Node side.
func (r *Recorder) Merge(node int, round int64, prev, frag int64) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindMerge, Round: round, Node: int32(node), Frag: frag, Prev: prev})
}

// Nbrs records a fragment root's supergraph degree deg (its NBR-INFO
// entry count) in the given phase; round is the node's next wake
// round. Node side.
func (r *Recorder) Nbrs(node int, round int64, phase int, deg int) {
	r.nodes[node].push(r.nodeCap, Event{Kind: KindNbrs, Round: round, Node: int32(node), Phase: int32(phase), Aux: int64(deg)})
}

// indexed attaches the stream coordinates used as the final sort
// tiebreak.
type indexed struct {
	ev     Event
	stream int32
	seq    int64
}

// Events returns the live events in canonical order: ascending
// (Round, Node, Kind, stream, per-stream sequence). The order is
// total and deterministic for a fixed-seed run, which is what makes
// the JSONL stream byte-identical across repeats and worker counts.
func (r *Recorder) Events() []Event {
	all := make([]indexed, 0, r.Len())
	collect := func(s *stream, id int32) {
		base := s.seq - int64(s.n)
		for i := 0; i < s.n; i++ {
			all = append(all, indexed{ev: s.buf[(s.head+i)%len(s.buf)], stream: id, seq: base + int64(i)})
		}
	}
	collect(&r.sched, -1)
	for i := range r.nodes {
		collect(&r.nodes[i], int32(i))
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.ev.Round != b.ev.Round {
			return a.ev.Round < b.ev.Round
		}
		if a.ev.Node != b.ev.Node {
			return a.ev.Node < b.ev.Node
		}
		if a.ev.Kind != b.ev.Kind {
			return a.ev.Kind < b.ev.Kind
		}
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		return a.seq < b.seq
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}

// Meta is the run-level header/footer information of a JSONL trace.
type Meta struct {
	// N is the node count of the run.
	N int
	// Rounds is the largest awake round observed.
	Rounds int64
	// Events is the number of event lines in the stream.
	Events int64
	// Dropped counts events evicted by ring overflow (they are missing
	// from the stream).
	Dropped int64
}

// Meta returns the run-level header for the current recording.
func (r *Recorder) Meta() Meta {
	return Meta{N: r.n, Rounds: r.rounds, Events: int64(r.Len()), Dropped: r.Dropped()}
}

// WriteJSONL writes the canonical trace: a begin line, one line per
// event in canonical order, and an end line. The field order within
// each line is fixed, so a fixed-seed run produces a byte-identical
// stream. See DESIGN.md §8 for the field-by-field schema.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, r.Meta(), r.Events())
}

// WriteEventsJSONL writes a (meta, events) pair in the canonical JSONL
// trace format — the same stream WriteJSONL produces from a live
// recorder. It lets callers that hold onto a finished run's events
// (e.g. the model checker emitting a counterexample) serialize them
// without keeping the recorder alive; events must already be in
// canonical order.
func WriteEventsJSONL(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"k":"begin","n":%d}`+"\n", meta.N)
	for _, ev := range events {
		writeEvent(bw, ev)
	}
	fmt.Fprintf(bw, `{"k":"end","rounds":%d,"events":%d,"dropped":%d}`+"\n", meta.Rounds, meta.Events, meta.Dropped)
	return bw.Flush()
}

// writeEvent renders one event line with a fixed field order.
func writeEvent(w io.Writer, ev Event) {
	switch ev.Kind {
	case KindPhase:
		fmt.Fprintf(w, `{"k":"phase","r":%d,"v":%d,"ph":%d,"f":%d}`+"\n", ev.Round, ev.Node, ev.Phase, ev.Frag)
	case KindStep:
		fmt.Fprintf(w, `{"k":"step","r":%d,"v":%d,"ph":%d,"st":"%s","aw":%d}`+"\n", ev.Round, ev.Node, ev.Phase, ev.Step, ev.Aux)
	case KindMerge:
		fmt.Fprintf(w, `{"k":"merge","r":%d,"v":%d,"f":%d,"pf":%d}`+"\n", ev.Round, ev.Node, ev.Frag, ev.Prev)
	case KindSleep:
		fmt.Fprintf(w, `{"k":"sleep","r":%d,"v":%d,"from":%d}`+"\n", ev.Round, ev.Node, ev.Aux)
	case KindAwake:
		fmt.Fprintf(w, `{"k":"awake","r":%d,"v":%d}`+"\n", ev.Round, ev.Node)
	case KindSend:
		fmt.Fprintf(w, `{"k":"send","r":%d,"v":%d,"p":%d,"to":%d}`+"\n", ev.Round, ev.Node, ev.Port, ev.Peer)
	case KindDeliver:
		fmt.Fprintf(w, `{"k":"deliver","r":%d,"v":%d,"p":%d,"from":%d}`+"\n", ev.Round, ev.Node, ev.Port, ev.Peer)
	case KindLost:
		fmt.Fprintf(w, `{"k":"lost","r":%d,"v":%d,"p":%d,"to":%d}`+"\n", ev.Round, ev.Node, ev.Port, ev.Peer)
	case KindCrash:
		fmt.Fprintf(w, `{"k":"crash","r":%d,"v":%d}`+"\n", ev.Round, ev.Node)
	case KindNbrs:
		fmt.Fprintf(w, `{"k":"nbrs","r":%d,"v":%d,"ph":%d,"deg":%d}`+"\n", ev.Round, ev.Node, ev.Phase, ev.Aux)
	}
}

// String renders the event as its JSONL line (without the trailing
// newline), the same bytes WriteJSONL emits for it.
func (ev Event) String() string {
	var b strings.Builder
	writeEvent(&b, ev)
	return strings.TrimSuffix(b.String(), "\n")
}
