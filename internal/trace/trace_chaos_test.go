package trace_test

import (
	"strings"
	"testing"

	"sleepmst/internal/chaos"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/trace"
)

// chaosView fabricates a run in which node 1 crashed at round 40 and
// node 2 crashed before ever waking.
func chaosView() trace.RunView {
	return trace.RunView{
		Rounds:       100,
		AwakePerNode: []int64{4, 2, 0},
		AwakeRounds:  [][]int64{{1, 2, 50, 100}, {1, 2}, {}},
		CrashRound:   []int64{0, 40, 1},
	}
}

func TestTimelineCrashMarkers(t *testing.T) {
	out := trace.Timeline(chaosView(), 10)
	if !strings.Contains(out, "'x' = crashed") {
		t.Errorf("legend missing crash marker:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	bar := func(row string) string {
		return row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	}
	// Node 0 never crashed: no x anywhere.
	if strings.Contains(lines[1], "x") {
		t.Errorf("uncrashed node shows x: %q", lines[1])
	}
	// Node 1 crashed at round 40 of 100: buckets 3.. are x, awake
	// marks before that survive.
	b1 := bar(lines[2])
	if b1[0] != '#' {
		t.Errorf("node 1 lost its awake mark: %q", b1)
	}
	for i := 3; i < len(b1); i++ {
		if b1[i] != 'x' {
			t.Errorf("node 1 bucket %d = %q, want x: %q", i, b1[i], b1)
		}
	}
	if !strings.Contains(lines[2], "crashed@40") {
		t.Errorf("node 1 line missing crash note: %q", lines[2])
	}
	// Node 2 crashed before round 1 with zero awake rounds: full x
	// line, no panic.
	b2 := bar(lines[3])
	if b2 != strings.Repeat("x", len(b2)) {
		t.Errorf("node 2 bar = %q, want all x", b2)
	}
	if !strings.Contains(lines[3], "awake=0") {
		t.Errorf("node 2 line = %q", lines[3])
	}
}

// TestTimelineCrashBeyondLastRound is the regression test for the
// clamp contract: a crash scheduled past the run's last round must be
// pinned to the final column and flagged, never silently dropped.
func TestTimelineCrashBeyondLastRound(t *testing.T) {
	v := trace.RunView{
		Rounds:       10,
		AwakePerNode: []int64{1},
		AwakeRounds:  [][]int64{{1}},
		CrashRound:   []int64{25}, // scheduled past the run's end
	}
	out := trace.Timeline(v, 8)
	if !strings.Contains(out, "crashed@25 (after end)") {
		t.Errorf("missing clamped crash marker:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row := lines[1]
	bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if bar[len(bar)-1] != 'x' {
		t.Errorf("clamped crash not pinned to last column: %q", bar)
	}
	if bar[len(bar)-2] == 'x' {
		t.Errorf("clamped crash bled past the last column: %q", bar)
	}
}

func TestTimelineZeroAwakeWithoutCrash(t *testing.T) {
	v := trace.RunView{
		Rounds:       10,
		AwakePerNode: []int64{0, 1},
		AwakeRounds:  [][]int64{{}, {3}},
	}
	out := trace.Timeline(v, 8) // must not panic
	if !strings.Contains(out, "awake=0") {
		t.Errorf("zero-awake node missing:\n%s", out)
	}
}

// TestTimelineFromChaosRun drives a real crashed run end to end
// through the simulator and the renderer.
func TestTimelineFromChaosRun(t *testing.T) {
	g := graph.RandomConnected(16, 40, graph.GenConfig{Seed: 3})
	policy := chaos.New(chaos.Options{Seed: 1, Crash: []chaos.CrashEvent{{Node: 2, Round: 4}}})
	out, err := core.RunRandomized(g, core.Options{
		Seed:              1,
		RecordAwakeRounds: true,
		Interceptor:       policy,
	})
	if err == nil {
		t.Skip("crash did not prevent convergence on this topology")
	}
	if out == nil || out.Result == nil {
		t.Skip("run failed before producing metrics")
	}
	text := trace.Timeline(out.Result.TraceView(), 40)
	if !strings.Contains(text, "crashed@4") {
		t.Errorf("timeline missing crash marker:\n%s", text)
	}
}
