// Package sweep is the parallel experiment engine: it fans an
// experiment grid (algorithm × graph × seed, or any indexed job list)
// across a bounded worker pool and returns the per-job results in grid
// order, so aggregation is deterministic and independent of the order
// in which workers happen to finish.
//
// Every consumer of a grid in this repository — cmd/mstbench's size
// sweeps, cmd/sleepsim's and internal/chaos's fault sweeps, and the
// benchmark-regression harness — runs on top of Run/Map. Jobs must be
// self-contained: each derives its graph and randomness from its own
// grid coordinates (never from shared sequential RNG state), which is
// what makes the parallel path produce byte-identical aggregates to
// the serial one.
//
// The same discipline extends to the observability layer: a job that
// collects run counters must not share one metrics.Registry across
// the pool (the values would still be right — Add/Max commute — but
// per-job attribution would be lost). RunWithMetrics gives every job
// a private registry and folds them in grid order, so the merged
// aggregate is identical for every worker count. Event recorders
// (trace.Recorder) are strictly one-per-run and belong inside the job
// closure.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sleepmst/internal/metrics"
)

// Config parameterizes a sweep.
type Config struct {
	// Workers is the worker-pool size. 0 or negative means
	// GOMAXPROCS; 1 degenerates to the serial path (no goroutines,
	// useful as the determinism control).
	Workers int
}

// workers resolves Config.Workers.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(i) for every i in [0, n) across the worker pool and
// returns the results indexed by i. Completion order never leaks into
// the output: results land in their own slots and errors are reported
// for the lowest failing index, exactly as the serial loop would
// surface them. On error the returned slice still holds every
// completed result (failed or not-run slots are zero values).
func Run[T any](cfg Config, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		// Serial fast path: run in index order, stop at the first
		// error like a plain loop.
		for i := 0; i < n; i++ {
			r, err := fn(i)
			results[i] = r
			if err != nil {
				return results, fmt.Errorf("sweep: job %d: %w", i, err)
			}
		}
		return results, nil
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for g := 0; g < w; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range jobs {
				r, err := fn(i)
				results[i] = r
				errs[i] = err
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	for g := 0; g < w; g++ {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return results, nil
}

// Map is Run over an explicit job slice: fn is applied to every job
// and the results come back in job order.
func Map[J, T any](cfg Config, jobs []J, fn func(job J) (T, error)) ([]T, error) {
	return Run(cfg, len(jobs), func(i int) (T, error) { return fn(jobs[i]) })
}

// RunWithMetrics is Run for jobs that also emit run counters: every
// job receives its own private metrics.Registry (workers never
// contend on shared state), and the per-job registries are folded in
// grid order afterwards. The merged registry is therefore identical
// for every worker count, including on error (completed jobs'
// counters are kept, exactly like completed results).
func RunWithMetrics[T any](cfg Config, n int, fn func(i int, reg *metrics.Registry) (T, error)) ([]T, *metrics.Registry, error) {
	regs := make([]*metrics.Registry, n)
	results, err := Run(cfg, n, func(i int) (T, error) {
		regs[i] = metrics.New()
		return fn(i, regs[i])
	})
	return results, metrics.MergeAll(regs), err
}

// Streaming-workload errors returned by Pool.TrySubmit.
var (
	// ErrPoolSaturated: the bounded job queue is full. The caller
	// rejects the work (admission control) instead of blocking.
	ErrPoolSaturated = errors.New("sweep: pool queue full")
	// ErrPoolDraining: Drain has begun; the pool admits no new jobs.
	ErrPoolDraining = errors.New("sweep: pool draining")
)

// Pool is the streaming sibling of Run: a persistent worker set
// draining a bounded job queue, for workloads that arrive one request
// at a time instead of as a fixed grid. The same isolation discipline
// applies — every job must be self-contained (own seed, own recorder,
// own registry) so results are independent of which worker runs them
// and in what order. Admission is explicit: TrySubmit never blocks,
// returning ErrPoolSaturated when the queue is full, which is what
// lets internal/service turn overload into a typed rejection instead
// of unbounded latency.
type Pool struct {
	jobs    chan func()
	workers sync.WaitGroup

	mu       sync.Mutex
	draining bool
}

// NewPool starts cfg.workers() workers over a bounded queue holding up
// to queue waiting jobs (minimum 1; jobs a worker has already picked
// up do not count against the queue). Callers own the lifecycle: every
// NewPool must be paired with a Drain.
func NewPool(cfg Config, queue int) *Pool {
	if queue < 1 {
		queue = 1
	}
	p := &Pool{jobs: make(chan func(), queue)}
	for g := 0; g < cfg.workers(); g++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It returns ErrPoolSaturated
// when the queue is full and ErrPoolDraining after Drain began; in
// both cases the job will never run.
func (p *Pool) TrySubmit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrPoolDraining
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrPoolSaturated
	}
}

// Drain stops admission, lets the workers finish every job already
// admitted (running or queued), and returns once the pool is idle.
// Safe to call more than once; later calls just wait.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.workers.Wait()
}

// Grid indexes the cartesian product of named dimensions, flattening a
// multi-dimensional experiment grid into the [0, Size()) job indices
// Run wants. The last dimension varies fastest, matching the nested
// loops it replaces.
type Grid struct {
	dims []int
}

// NewGrid builds a grid from dimension sizes. Panics on a
// non-positive dimension (an empty grid is a caller bug, not a
// runtime condition).
func NewGrid(dims ...int) Grid {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("sweep: non-positive grid dimension in %v", dims))
		}
	}
	return Grid{dims: append([]int(nil), dims...)}
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int {
	s := 1
	for _, d := range g.dims {
		s *= d
	}
	return s
}

// Coords maps a flat job index back to its per-dimension coordinates.
func (g Grid) Coords(idx int) []int {
	if idx < 0 || idx >= g.Size() {
		panic(fmt.Sprintf("sweep: index %d outside grid of size %d", idx, g.Size()))
	}
	out := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		out[i] = idx % g.dims[i]
		idx /= g.dims[i]
	}
	return out
}
