package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestPoolAdmissionControl pins the bounded-queue semantics
// deterministically: with one worker (occupied via a gate) and queue
// depth one, the first extra job queues, the second is rejected with
// ErrPoolSaturated, and after Drain every admitted job has run while
// submission returns ErrPoolDraining.
func TestPoolAdmissionControl(t *testing.T) {
	p := NewPool(Config{Workers: 1}, 1)
	started := make(chan struct{})
	gate := make(chan struct{})
	var ran [3]atomic.Bool

	if err := p.TrySubmit(func() { close(started); <-gate; ran[0].Store(true) }); err != nil {
		t.Fatalf("first job rejected: %v", err)
	}
	<-started // the single worker now holds job 0; the queue is empty
	if err := p.TrySubmit(func() { ran[1].Store(true) }); err != nil {
		t.Fatalf("queueable job rejected: %v", err)
	}
	if err := p.TrySubmit(func() { ran[2].Store(true) }); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("over-capacity job: got %v, want ErrPoolSaturated", err)
	}

	close(gate)
	p.Drain()
	if !ran[0].Load() || !ran[1].Load() {
		t.Errorf("admitted jobs did not all run: %v %v", ran[0].Load(), ran[1].Load())
	}
	if ran[2].Load() {
		t.Error("rejected job ran anyway")
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolDraining) {
		t.Errorf("post-drain submit: got %v, want ErrPoolDraining", err)
	}
	p.Drain() // idempotent
}

// TestPoolRunsEverythingAdmitted floods a small pool from many
// goroutines and checks the invariant the service relies on: every
// TrySubmit that returned nil runs exactly once before Drain returns,
// and every error is one of the two documented rejections.
func TestPoolRunsEverythingAdmitted(t *testing.T) {
	p := NewPool(Config{Workers: 4}, 8)
	var admitted, executed atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				err := p.TrySubmit(func() { executed.Add(1) })
				switch {
				case err == nil:
					admitted.Add(1)
				case errors.Is(err, ErrPoolSaturated), errors.Is(err, ErrPoolDraining):
				default:
					t.Errorf("undocumented rejection: %v", err)
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	p.Drain()
	if admitted.Load() != executed.Load() {
		t.Errorf("admitted %d jobs but executed %d", admitted.Load(), executed.Load())
	}
	if admitted.Load() == 0 {
		t.Error("nothing was admitted at all")
	}
}
