package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"sleepmst/internal/metrics"
)

func TestRunReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Run(Config{Workers: workers}, 50, func(i int) (int, error) {
			// Finish out of order on purpose: later jobs are faster.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunReportsLowestFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(Config{Workers: workers}, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		want := "sweep: job 7:"
		if err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
			t.Errorf("workers=%d: err = %v, want prefix %q", workers, err, want)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	_, err := Run(Config{Workers: workers}, 40, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunEmptyAndMap(t *testing.T) {
	got, err := Run(Config{}, 0, func(i int) (int, error) { t.Fatal("must not run"); return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v %v", got, err)
	}
	squares, err := Map(Config{Workers: 2}, []int{3, 4, 5}, func(j int) (int, error) { return j * j, nil })
	if err != nil || !reflect.DeepEqual(squares, []int{9, 16, 25}) {
		t.Fatalf("map: %v %v", squares, err)
	}
}

func TestRunWithMetricsWorkerCountIndependent(t *testing.T) {
	job := func(i int, reg *metrics.Registry) (int, error) {
		reg.Add("jobs", 1)
		reg.Add(fmt.Sprintf("value/%03d", i%5), int64(i))
		reg.Max("max-index", int64(i))
		return i, nil
	}
	_, serial, err := RunWithMetrics(Config{Workers: 1}, 40, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		_, parallel, err := RunWithMetrics(Config{Workers: workers}, 40, job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Snapshot(), parallel.Snapshot()) {
			t.Errorf("workers=%d: metrics differ from serial:\n%v\nvs\n%v",
				workers, serial.Snapshot(), parallel.Snapshot())
		}
	}
	if serial.Get("jobs") != 40 || serial.GetMax("max-index") != 39 {
		t.Errorf("aggregate wrong: jobs=%d max=%d", serial.Get("jobs"), serial.GetMax("max-index"))
	}
}

func TestGridCoords(t *testing.T) {
	g := NewGrid(2, 3, 4)
	if g.Size() != 24 {
		t.Fatalf("size = %d", g.Size())
	}
	// Last dimension varies fastest, like the nested loops it replaces.
	seen := map[string]bool{}
	prev := []int{0, 0, -1}
	for i := 0; i < g.Size(); i++ {
		c := g.Coords(i)
		key := fmt.Sprint(c)
		if seen[key] {
			t.Fatalf("duplicate coords %v", c)
		}
		seen[key] = true
		if i > 0 && c[2] == 0 && !(prev[2] == 3) {
			t.Fatalf("index %d: last dim wrapped from %v to %v", i, prev, c)
		}
		prev = c
	}
	if got := g.Coords(5); !reflect.DeepEqual(got, []int{0, 1, 1}) {
		t.Errorf("Coords(5) = %v, want [0 1 1]", got)
	}
	mustPanic(t, func() { g.Coords(24) })
	mustPanic(t, func() { NewGrid(3, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	f()
}
