package conform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sleepmst/internal/trace"
)

// tb is a TB capturing failures instead of failing the real test.
type tb struct {
	errors []string
}

func (f *tb) Helper() {}

func (f *tb) Errorf(format string, args ...interface{}) {
	f.errors = append(f.errors, format)
}

// cleanTrace builds a minimal well-formed 2-node trace satisfying the
// whole catalog: one phase, one exchange, one merge into a single
// final fragment, awake rounds fully attributed.
func cleanTrace() (trace.Meta, []trace.Event) {
	events := []trace.Event{
		{Kind: trace.KindPhase, Round: 1, Node: 0, Phase: 1, Frag: 1},
		{Kind: trace.KindAwake, Round: 1, Node: 0},
		{Kind: trace.KindSend, Round: 1, Node: 0, Port: 0, Peer: 1},
		{Kind: trace.KindDeliver, Round: 1, Node: 0, Port: 0, Peer: 1},
		{Kind: trace.KindPhase, Round: 1, Node: 1, Phase: 1, Frag: 2},
		{Kind: trace.KindAwake, Round: 1, Node: 1},
		{Kind: trace.KindSend, Round: 1, Node: 1, Port: 0, Peer: 0},
		{Kind: trace.KindDeliver, Round: 1, Node: 1, Port: 0, Peer: 0},
		{Kind: trace.KindStep, Round: 2, Node: 0, Phase: 1, Step: trace.StepFindMOE, Aux: 1},
		{Kind: trace.KindStep, Round: 2, Node: 1, Phase: 1, Step: trace.StepFindMOE, Aux: 1},
		{Kind: trace.KindMerge, Round: 2, Node: 1, Frag: 1, Prev: 2},
		{Kind: trace.KindNbrs, Round: 2, Node: 0, Phase: 1, Aux: 2},
	}
	meta := trace.Meta{N: 2, Rounds: 1, Events: int64(len(events))}
	return meta, events
}

func info() RunInfo { return RunInfo{Algorithm: AlgoRandomized, Seed: 7} }

// status returns the named check's status ("" if absent).
func status(v *Verdict, name string) string {
	if c := v.Lookup(name); c != nil {
		return c.Status
	}
	return ""
}

func TestCleanTracePassesCatalog(t *testing.T) {
	meta, events := cleanTrace()
	v := CheckTrace(meta, events, info())
	if !v.Pass {
		t.Fatalf("clean trace failed:\n%s", v)
	}
	for _, name := range []string{CheckWellFormed, CheckAwakeBudget, CheckAwakeAttribution,
		CheckMergeConsistency, CheckMergeDirection, CheckFragmentDecay, CheckSparsifyDegree,
		CheckCausality, CheckDeliverAwake} {
		if got := status(v, name); got != StatusPass {
			t.Errorf("%s = %s, want pass", name, got)
		}
	}
}

func TestWellFormedGatesEverything(t *testing.T) {
	meta, events := cleanTrace()
	events[0].Node = 9 // out of range for n=2
	v := CheckTrace(meta, events, info())
	if v.Pass {
		t.Fatal("malformed trace passed")
	}
	if got := status(v, CheckWellFormed); got != StatusFail {
		t.Fatalf("wellformed = %s, want fail", got)
	}
	for _, c := range v.Checks[1:] {
		if c.Status != StatusSkip {
			t.Errorf("%s = %s, want skip after wellformed failure", c.Name, c.Status)
		}
	}
}

func TestAwakeBudgetViolation(t *testing.T) {
	meta, events := cleanTrace()
	// 60 awake rounds blows the randomized budget 56·log2(2) = 56;
	// attribute them so only the budget check trips.
	for r := int64(2); r <= 60; r++ {
		events = append(events, trace.Event{Kind: trace.KindAwake, Round: r, Node: 0})
	}
	events = append(events, trace.Event{Kind: trace.KindStep, Round: 61, Node: 0, Phase: 1, Step: trace.StepMerge, Aux: 59})
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckAwakeBudget); got != StatusFail {
		t.Fatalf("budget = %s, want fail:\n%s", got, v)
	}
	if got := status(v, CheckAwakeAttribution); got != StatusPass {
		t.Errorf("attribution = %s, want pass", got)
	}
	// The same trace passes with enough slack.
	relaxed := info()
	relaxed.BudgetSlack = 4
	if got := status(CheckTrace(meta, events, relaxed), CheckAwakeBudget); got != StatusPass {
		t.Errorf("budget with slack 4 = %s, want pass", got)
	}
}

func TestAwakeBudgetSkippedWithoutEnvelope(t *testing.T) {
	meta, events := cleanTrace()
	for _, algo := range []string{"", "baseline", "ghs"} {
		v := CheckTrace(meta, events, RunInfo{Algorithm: algo})
		if got := status(v, CheckAwakeBudget); got != StatusSkip {
			t.Errorf("algo %q: budget = %s, want skip", algo, got)
		}
	}
}

func TestAttributionMismatch(t *testing.T) {
	meta, events := cleanTrace()
	for i := range events {
		if events[i].Kind == trace.KindStep && events[i].Node == 0 {
			events[i].Aux = 3 // node 0 charged 1 awake round, attributes 3
		}
	}
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckAwakeAttribution); got != StatusFail {
		t.Fatalf("attribution = %s, want fail:\n%s", got, v)
	}
}

func TestMergeContinuityViolation(t *testing.T) {
	meta, events := cleanTrace()
	for i := range events {
		if events[i].Kind == trace.KindMerge {
			events[i].Prev = 5 // node 1 was in fragment 2, not 5
		}
	}
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckMergeConsistency); got != StatusFail {
		t.Fatalf("consistency = %s, want fail:\n%s", got, v)
	}
}

func TestChainedMergeViolatesDirection(t *testing.T) {
	// Three nodes: 2 -> 1 and 3 -> 2 in the same phase makes fragment
	// 2 both a target and a source — a chain the paper's waves forbid.
	events := []trace.Event{
		{Kind: trace.KindPhase, Round: 1, Node: 0, Phase: 1, Frag: 1},
		{Kind: trace.KindAwake, Round: 1, Node: 0},
		{Kind: trace.KindPhase, Round: 1, Node: 1, Phase: 1, Frag: 2},
		{Kind: trace.KindAwake, Round: 1, Node: 1},
		{Kind: trace.KindPhase, Round: 1, Node: 2, Phase: 1, Frag: 3},
		{Kind: trace.KindAwake, Round: 1, Node: 2},
		{Kind: trace.KindStep, Round: 2, Node: 0, Phase: 1, Step: trace.StepMerge, Aux: 1},
		{Kind: trace.KindStep, Round: 2, Node: 1, Phase: 1, Step: trace.StepMerge, Aux: 1},
		{Kind: trace.KindMerge, Round: 2, Node: 1, Frag: 1, Prev: 2},
		{Kind: trace.KindStep, Round: 2, Node: 2, Phase: 1, Step: trace.StepMerge, Aux: 1},
		{Kind: trace.KindMerge, Round: 2, Node: 2, Frag: 2, Prev: 3},
	}
	meta := trace.Meta{N: 3, Rounds: 1, Events: int64(len(events))}
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckMergeDirection); got != StatusFail {
		t.Fatalf("direction = %s, want fail:\n%s", got, v)
	}
	if c := v.Lookup(CheckMergeDirection); !strings.Contains(c.Detail, "fragment 2") {
		t.Errorf("detail %q does not name the chained fragment", c.Detail)
	}
}

func TestPhaseBoundaryMergeOrderIsHandled(t *testing.T) {
	// The canonical order puts a phase's closing merge after the next
	// phase's entry event at the same round (KindPhase < KindMerge).
	// The walk must not report a continuity break or misattribute the
	// merge to phase 2.
	events := []trace.Event{
		{Kind: trace.KindPhase, Round: 1, Node: 0, Phase: 1, Frag: 1},
		{Kind: trace.KindAwake, Round: 1, Node: 0},
		{Kind: trace.KindPhase, Round: 1, Node: 1, Phase: 1, Frag: 2},
		{Kind: trace.KindAwake, Round: 1, Node: 1},
		{Kind: trace.KindStep, Round: 3, Node: 0, Phase: 1, Step: trace.StepMerge, Aux: 1},
		// Node 1: phase-2 entry (already as fragment 1) sorts before
		// the phase-1 merge that produced it.
		{Kind: trace.KindPhase, Round: 3, Node: 1, Phase: 2, Frag: 1},
		{Kind: trace.KindStep, Round: 3, Node: 1, Phase: 1, Step: trace.StepMerge, Aux: 1},
		{Kind: trace.KindMerge, Round: 3, Node: 1, Frag: 1, Prev: 2},
		{Kind: trace.KindPhase, Round: 3, Node: 0, Phase: 2, Frag: 1},
	}
	meta := trace.Meta{N: 2, Rounds: 3, Events: int64(len(events))}
	v := CheckTrace(meta, events, info())
	for _, name := range []string{CheckMergeConsistency, CheckMergeDirection, CheckFragmentDecay} {
		if got := status(v, name); got != StatusPass {
			t.Errorf("%s = %s, want pass:\n%s", name, got, v)
		}
	}
}

func TestFragmentDecayViolation(t *testing.T) {
	meta, events := cleanTrace()
	// Drop the merge: the run ends with two fragments.
	var kept []trace.Event
	for _, ev := range events {
		if ev.Kind != trace.KindMerge {
			kept = append(kept, ev)
		}
	}
	v := CheckTrace(meta, kept, info())
	if got := status(v, CheckFragmentDecay); got != StatusFail {
		t.Fatalf("decay = %s, want fail:\n%s", got, v)
	}
}

func TestSparsifyDegreeViolation(t *testing.T) {
	meta, events := cleanTrace()
	events = append(events, trace.Event{Kind: trace.KindNbrs, Round: 3, Node: 0, Phase: 1, Aux: SupergraphDegreeBound + 1})
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckSparsifyDegree); got != StatusFail {
		t.Fatalf("sparsify = %s, want fail:\n%s", got, v)
	}
}

func TestCausalityStrictAndRelaxed(t *testing.T) {
	meta, events := cleanTrace()
	// A late deliver: sent in round 1, delivered in round 3.
	events = append(events,
		trace.Event{Kind: trace.KindAwake, Round: 3, Node: 1},
		trace.Event{Kind: trace.KindDeliver, Round: 3, Node: 1, Port: 0, Peer: 0},
		trace.Event{Kind: trace.KindStep, Round: 4, Node: 1, Phase: 1, Step: trace.StepMerge, Aux: 1},
	)
	strict := CheckTrace(meta, events, info())
	if got := status(strict, CheckCausality); got != StatusFail {
		t.Fatalf("strict causality = %s, want fail:\n%s", got, strict)
	}
	rin := info()
	rin.Relaxed = true
	relaxed := CheckTrace(meta, events, rin)
	if got := status(relaxed, CheckCausality); got != StatusPass {
		t.Fatalf("relaxed causality = %s, want pass:\n%s", got, relaxed)
	}
	// A deliver with no send at all fails in both modes.
	events = append(events,
		trace.Event{Kind: trace.KindAwake, Round: 5, Node: 0},
		trace.Event{Kind: trace.KindDeliver, Round: 5, Node: 0, Port: 1, Peer: 1},
	)
	events[6].Kind = trace.KindLost // remove node 1's send (round 1)
	for _, in := range []RunInfo{info(), rin} {
		v := CheckTrace(meta, events, in)
		if got := status(v, CheckCausality); got != StatusFail {
			t.Errorf("relaxed=%v: orphan deliver = %s, want fail", in.Relaxed, got)
		}
	}
	// The relaxed detail localises the violation by event index, so
	// counterexamples line up with tracediff's coordinates: the index
	// must point at the deliver event the message describes.
	v := CheckTrace(meta, events, rin)
	c := v.Lookup(CheckCausality)
	if c == nil || !strings.HasPrefix(c.Detail, "event ") {
		t.Fatalf("relaxed causality detail = %q, want an event-index prefix", c.Detail)
	}
	var idx int
	var from, to int32
	var round int64
	if _, err := fmt.Sscanf(c.Detail, "event %d: deliver %d->%d at round %d", &idx, &from, &to, &round); err != nil {
		t.Fatalf("cannot parse detail %q: %v", c.Detail, err)
	}
	ev := events[idx]
	if ev.Kind != trace.KindDeliver || ev.Peer != from || ev.Node != to || ev.Round != round {
		t.Errorf("detail %q points at event %+v, not the offending deliver", c.Detail, ev)
	}
}

func TestDeliverToSleepingNode(t *testing.T) {
	meta, events := cleanTrace()
	events = append(events,
		trace.Event{Kind: trace.KindSend, Round: 4, Node: 0, Port: 0, Peer: 1},
		trace.Event{Kind: trace.KindDeliver, Round: 4, Node: 1, Port: 0, Peer: 0}, // no awake event
	)
	v := CheckTrace(meta, events, info())
	if got := status(v, CheckDeliverAwake); got != StatusFail {
		t.Fatalf("deliver-awake = %s, want fail:\n%s", got, v)
	}
}

func TestDroppedEventsSkipFragileChecks(t *testing.T) {
	meta, events := cleanTrace()
	meta.Dropped = 10
	v := CheckTrace(meta, events, info())
	for _, name := range []string{CheckAwakeAttribution, CheckMergeConsistency, CheckMergeDirection,
		CheckFragmentDecay, CheckCausality, CheckDeliverAwake} {
		if got := status(v, name); got != StatusSkip {
			t.Errorf("%s = %s, want skip with dropped events", name, got)
		}
	}
	if got := status(v, CheckAwakeBudget); got != StatusPass {
		t.Errorf("budget = %s, want pass (undercounting cannot false-fail)", got)
	}
}

func TestCrashedNodesExcluded(t *testing.T) {
	meta, events := cleanTrace()
	// Node 1 crashes; its attribution mismatch must not fail the check,
	// and the final-fragment census ignores it.
	var kept []trace.Event
	for _, ev := range events {
		if ev.Kind == trace.KindMerge || (ev.Kind == trace.KindStep && ev.Node == 1) {
			continue
		}
		kept = append(kept, ev)
	}
	kept = append(kept, trace.Event{Kind: trace.KindCrash, Round: 2, Node: 1})
	v := CheckTrace(meta, kept, RunInfo{Algorithm: AlgoRandomized, Relaxed: true})
	for _, name := range []string{CheckAwakeAttribution, CheckFragmentDecay} {
		if got := status(v, name); got != StatusPass {
			t.Errorf("%s = %s, want pass with node 1 crashed:\n%s", name, got, v)
		}
	}
}

func TestWeightCheck(t *testing.T) {
	if c := WeightCheck(100, 100); c.Status != StatusPass {
		t.Errorf("equal weights: %s", c.Status)
	}
	if c := WeightCheck(101, 100); c.Status != StatusFail || c.Violations != 1 {
		t.Errorf("unequal weights: %s/%d", c.Status, c.Violations)
	}
}

func TestVerdictJSONRoundTrip(t *testing.T) {
	meta, events := cleanTrace()
	v := CheckTrace(meta, events, info())
	v.Append(WeightCheck(10, 10))
	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Verdict
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != VerdictSchema || back.Pass != v.Pass || len(back.Checks) != len(v.Checks) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Checks[0].Name != CheckWellFormed {
		t.Errorf("catalog order lost: first check %q", back.Checks[0].Name)
	}
}

func TestSuiteAssertReportsFailures(t *testing.T) {
	meta, events := cleanTrace()
	s := Suite{Info: info(), Meta: meta, Events: events, TreeWeight: 5, WantWeight: 7, CheckWeight: true}
	var ft tb
	v := s.Assert(&ft)
	if v.Pass {
		t.Fatal("weight mismatch should fail the verdict")
	}
	if len(ft.errors) != 1 {
		t.Fatalf("want 1 reported failure, got %d", len(ft.errors))
	}
	// Without the weight check the same suite passes silently.
	s.CheckWeight = false
	var ok tb
	if v := s.Assert(&ok); !v.Pass || len(ok.errors) != 0 {
		t.Fatalf("clean suite reported failures: %v", ok.errors)
	}
}

func TestAwakeBudgetValues(t *testing.T) {
	cases := []struct {
		algo string
		n    int
		want int64
	}{
		{AlgoRandomized, 256, 448},    // 56·8
		{AlgoDeterministic, 256, 480}, // 60·8
		{AlgoLogStar, 16, 528},        // 44·4·3
	}
	for _, c := range cases {
		got, ok := AwakeBudget(c.algo, c.n)
		if !ok || got != c.want {
			t.Errorf("AwakeBudget(%s, %d) = %d,%v want %d", c.algo, c.n, got, ok, c.want)
		}
	}
	if _, ok := AwakeBudget("ghs", 64); ok {
		t.Error("ghs should have no envelope")
	}
}
