package conform

import "sleepmst/internal/trace"

// TB is the subset of *testing.T the suite needs; an interface so the
// package carries no testing import into non-test binaries.
type TB interface {
	// Helper marks the caller as a test helper.
	Helper()
	// Errorf reports a test failure.
	Errorf(format string, args ...interface{})
}

// Suite bundles one recorded run for conformance assertion in tests:
// the trace, its run context, and (optionally) the computed tree
// weight against the Kruskal reference. Callers run the algorithm with
// a trace.Recorder, then hand the recorder's Meta()/Events() here —
// the suite itself runs nothing, which keeps it usable from any
// package without import cycles.
type Suite struct {
	// Info is the run context (algorithm, n, seed, relaxations).
	Info RunInfo
	// Meta is the trace's run-level header.
	Meta trace.Meta
	// Events is the trace in canonical order.
	Events []trace.Event
	// TreeWeight and WantWeight, when CheckWeight is set, feed the
	// mst-weight agreement check.
	TreeWeight int64
	// WantWeight is the sequential reference (Kruskal) weight.
	WantWeight int64
	// CheckWeight enables the mst-weight check (the zero Suite skips
	// it: a weight of 0 is not distinguishable from "not provided").
	CheckWeight bool
	// Extra holds problem-specific checks appended after the trace
	// catalog — e.g. the mis-valid check built by MISCheck. Problems
	// outside the MST suite supply their oracle here.
	Extra []Check
}

// Verdict runs the invariant catalog and returns the verdict.
func (s Suite) Verdict() *Verdict {
	v := CheckTrace(s.Meta, s.Events, s.Info)
	if s.CheckWeight {
		v.Append(WeightCheck(s.TreeWeight, s.WantWeight))
	}
	for _, c := range s.Extra {
		v.Append(c)
	}
	return v
}

// Assert runs the catalog and reports every failed check on t. It
// returns the verdict so tests can inspect skips or details.
func (s Suite) Assert(t TB) *Verdict {
	t.Helper()
	v := s.Verdict()
	for _, c := range v.Failures() {
		t.Errorf("conformance %s/n=%d: %s failed: %s (%d violations)", v.Algo, v.N, c.Name, c.Detail, c.Violations)
	}
	return v
}
