// Package conform is a trace-replay invariant checker for the
// sleeping-model simulator: it consumes a structured event trace (a
// trace.Recorder's events or a stream parsed by trace.ReadJSONL) and
// verifies the paper's guarantees held on that run — per-node awake
// budgets within the Table 1 envelopes, exact attribution of awake
// rounds to phase steps, single-hop tails-into-heads merge waves,
// degree-≤4 supergraph sparsification, and message causality. The
// result is a Verdict: one pass/fail/skip entry per invariant, with a
// machine-readable JSON form consumed by `mstbench -exp conform` and a
// Suite helper for asserting the catalog inside tests.
//
// The checker is trace-only by design: it imports nothing above
// internal/trace, so algorithm packages and their tests can use it
// without import cycles. MST-weight agreement needs the graph and is
// therefore appended by callers via WeightCheck.
package conform

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"sleepmst/internal/trace"
)

// Check statuses.
const (
	// StatusPass marks an invariant that held everywhere it applied.
	StatusPass = "pass"
	// StatusFail marks an invariant with at least one violation.
	StatusFail = "fail"
	// StatusSkip marks an invariant that could not be evaluated on
	// this trace (reason in Detail); skips never fail a verdict.
	StatusSkip = "skip"
)

// Invariant names, in catalog (and verdict) order.
const (
	// CheckWellFormed: event coordinates are in range and rounds are
	// non-decreasing; failing it skips every downstream check.
	CheckWellFormed = "trace-wellformed"
	// CheckAwakeBudget: every node's awake rounds stay within the
	// algorithm's Table 1 envelope (see AwakeBudget).
	CheckAwakeBudget = "awake-budget"
	// CheckAwakeAttribution: per node, awake rounds attributed to phase
	// steps equal the scheduler-charged awake rounds.
	CheckAwakeAttribution = "awake-attribution"
	// CheckMergeConsistency: fragment labels evolve consistently — one
	// merge per node per phase, matching phase-entry fragments.
	CheckMergeConsistency = "merge-consistency"
	// CheckMergeDirection: merge waves run tails-into-heads only — no
	// fragment is both a merge source and a merge target in one phase.
	CheckMergeDirection = "merge-tails-into-heads"
	// CheckFragmentDecay: distinct-fragment counts never increase
	// across phases and the run ends in a single fragment.
	CheckFragmentDecay = "fragment-decay"
	// CheckSparsifyDegree: every recorded supergraph degree is at most
	// SupergraphDegreeBound.
	CheckSparsifyDegree = "sparsify-degree"
	// CheckCausality: no message is delivered before (strict: in a
	// different round than) its send.
	CheckCausality = "causality"
	// CheckDeliverAwake: no message is delivered to a sleeping node.
	CheckDeliverAwake = "deliver-awake"
	// CheckMSTWeight: the computed tree weight matches the Kruskal
	// reference (appended by callers via WeightCheck).
	CheckMSTWeight = "mst-weight"
	// CheckMISValid: the computed node set is independent and maximal
	// (appended by callers via MISCheck).
	CheckMISValid = "mis-valid"
)

// VerdictSchema is the version stamp of the verdict JSON shape.
const VerdictSchema = 1

// RunInfo carries the run context the trace alone cannot provide.
type RunInfo struct {
	// Algorithm is the CLI spelling of the algorithm that produced the
	// trace ("" = unknown; budget and attribution checks are skipped).
	Algorithm string
	// N overrides the node count (0 = take it from the trace meta).
	N int
	// Seed is recorded in the verdict for provenance only.
	Seed int64
	// BudgetSlack multiplies the awake budget (0 = 1.0). Chaos runs
	// use >1: injected faults may legitimately cost extra awake
	// rounds.
	BudgetSlack float64
	// Budget, when non-nil, supplies the per-node awake envelope for
	// node count n, overriding the built-in MST catalog. Problems
	// outside the MST suite (e.g. MIS) provide their envelope here;
	// returning ok=false skips the budget check.
	Budget func(n int) (int64, bool)
	// Relaxed loosens the checks for fault-injected traces: delivery
	// may lag its send (delays, duplicate copies) and crashed nodes
	// are excluded from attribution and decay accounting.
	Relaxed bool
}

// Check is one invariant's outcome.
type Check struct {
	// Name is the invariant's catalog name.
	Name string `json:"name"`
	// Status is pass, fail, or skip.
	Status string `json:"status"`
	// Violations counts individual violations behind a fail.
	Violations int64 `json:"violations"`
	// Detail describes the first violation or the skip reason.
	Detail string `json:"detail,omitempty"`
}

// Verdict is the result of checking one trace: the full invariant
// catalog plus run provenance.
type Verdict struct {
	// Schema is VerdictSchema.
	Schema int `json:"schema"`
	// Algo is the algorithm name from RunInfo ("" if unknown).
	Algo string `json:"algo"`
	// N is the node count of the checked run.
	N int `json:"n"`
	// Seed is the run seed from RunInfo.
	Seed int64 `json:"seed"`
	// Relaxed records whether chaos-mode relaxations were applied.
	Relaxed bool `json:"relaxed"`
	// Pass is true when no check failed (skips do not fail).
	Pass bool `json:"pass"`
	// Checks is the invariant catalog in canonical order.
	Checks []Check `json:"checks"`
}

// Append adds a check to the verdict and updates Pass.
func (v *Verdict) Append(c Check) {
	v.Checks = append(v.Checks, c)
	if c.Status == StatusFail {
		v.Pass = false
	}
}

// Failures returns the failed checks, in catalog order.
func (v *Verdict) Failures() []Check {
	var out []Check
	for _, c := range v.Checks {
		if c.Status == StatusFail {
			out = append(out, c)
		}
	}
	return out
}

// Lookup returns the named check, or nil if the verdict has none.
func (v *Verdict) Lookup(name string) *Check {
	for i := range v.Checks {
		if v.Checks[i].Name == name {
			return &v.Checks[i]
		}
	}
	return nil
}

// WriteJSON writes the verdict as indented JSON.
func (v *Verdict) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// String renders a one-line-per-check human summary.
func (v *Verdict) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !v.Pass {
		verdict = "FAIL"
	}
	algo := v.Algo
	if algo == "" {
		algo = "?"
	}
	fmt.Fprintf(&b, "conformance %s  algo=%s n=%d seed=%d relaxed=%v\n", verdict, algo, v.N, v.Seed, v.Relaxed)
	for _, c := range v.Checks {
		fmt.Fprintf(&b, "  %-22s %-4s", c.Name, c.Status)
		if c.Violations > 0 {
			fmt.Fprintf(&b, " violations=%d", c.Violations)
		}
		if c.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", c.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WeightCheck builds the MST-weight agreement check from the computed
// tree weight and the Kruskal reference weight.
func WeightCheck(got, want int64) Check {
	if got != want {
		return Check{Name: CheckMSTWeight, Status: StatusFail, Violations: 1,
			Detail: fmt.Sprintf("tree weight %d != reference %d", got, want)}
	}
	return Check{Name: CheckMSTWeight, Status: StatusPass}
}

// MISCheck builds the MIS-validity check from violation counts (see
// graph.MISViolations): edges inside the set break independence,
// uncovered nodes break maximality.
func MISCheck(notIndependent, notMaximal int64) Check {
	if notIndependent > 0 || notMaximal > 0 {
		return Check{Name: CheckMISValid, Status: StatusFail, Violations: notIndependent + notMaximal,
			Detail: fmt.Sprintf("%d in-set edges, %d uncovered nodes", notIndependent, notMaximal)}
	}
	return Check{Name: CheckMISValid, Status: StatusPass}
}

// fold is the single-pass aggregation of a trace the checks run over.
type fold struct {
	n int

	awakeCharged []int64           // KindAwake events per node
	stepSum      []int64           // KindStep Aux per node
	awakeAt      map[awakeKey]bool // (round, node) awake set
	sendRounds   map[pairKey][]int64
	sendCount    map[sendKey]int64
	delivers     []trace.Event
	deliverIdx   []int // canonical event index of each deliver, for localisation
	crashed      []bool
	anyCrash     bool

	phases    []int32                   // distinct phases, ascending
	phaseFrag map[int32]map[int32]int64 // phase -> node -> entry fragment
	nodeFrag  [][]trace.Event           // per node: phase + merge events, stream order
	nbrs      []trace.Event
	haveSteps bool
}

type awakeKey struct {
	round int64
	node  int32
}

type pairKey struct {
	from, to int32
}

type sendKey struct {
	round    int64
	from, to int32
}

// CheckTrace runs the invariant catalog over one trace and returns the
// verdict. meta and events come from trace.ReadJSONL or from a live
// Recorder (Meta()/Events()); info supplies the run context.
func CheckTrace(meta trace.Meta, events []trace.Event, info RunInfo) *Verdict {
	n := info.N
	if n == 0 {
		n = meta.N
	}
	v := &Verdict{Schema: VerdictSchema, Algo: info.Algorithm, N: n, Seed: info.Seed, Relaxed: info.Relaxed, Pass: true}

	wf := checkWellFormed(meta, events, n)
	v.Append(wf)
	if wf.Status == StatusFail {
		for _, name := range []string{CheckAwakeBudget, CheckAwakeAttribution, CheckMergeConsistency,
			CheckMergeDirection, CheckFragmentDecay, CheckSparsifyDegree, CheckCausality, CheckDeliverAwake} {
			v.Append(Check{Name: name, Status: StatusSkip, Detail: "trace not well-formed"})
		}
		return v
	}

	f := foldEvents(n, events)
	h := walkFragments(f)
	v.Append(checkAwakeBudget(f, info, n))
	v.Append(checkAwakeAttribution(f, meta, info))
	consistency, direction := checkMerges(h, meta)
	v.Append(consistency)
	v.Append(direction)
	v.Append(checkFragmentDecay(f, h, meta))
	v.Append(checkSparsifyDegree(f))
	v.Append(checkCausality(f, meta, info))
	v.Append(checkDeliverAwake(f, meta))
	return v
}

// checkWellFormed validates event coordinates and canonical round
// ordering; every other check assumes it passed.
func checkWellFormed(meta trace.Meta, events []trace.Event, n int) Check {
	c := Check{Name: CheckWellFormed, Status: StatusPass}
	if n <= 0 {
		return fail(c, fmt.Sprintf("non-positive node count %d", n))
	}
	prevRound := int64(-1)
	for i, ev := range events {
		bad := ""
		switch {
		case ev.Kind > trace.KindNbrs:
			bad = fmt.Sprintf("unknown kind %d", ev.Kind)
		case ev.Round < 0:
			bad = fmt.Sprintf("negative round %d", ev.Round)
		case ev.Node < 0 || int(ev.Node) >= n:
			bad = fmt.Sprintf("node %d outside [0,%d)", ev.Node, n)
		case (ev.Kind == trace.KindPhase || ev.Kind == trace.KindStep || ev.Kind == trace.KindNbrs) && ev.Phase < 1:
			bad = fmt.Sprintf("non-positive phase %d", ev.Phase)
		case ev.Kind == trace.KindStep && int(ev.Step) > len(trace.Steps):
			bad = fmt.Sprintf("unknown step %d", ev.Step)
		case (ev.Kind == trace.KindStep || ev.Kind == trace.KindNbrs) && ev.Aux < 0:
			bad = fmt.Sprintf("negative aux %d", ev.Aux)
		case (ev.Kind == trace.KindSend || ev.Kind == trace.KindDeliver || ev.Kind == trace.KindLost) &&
			(ev.Peer < 0 || int(ev.Peer) >= n || ev.Port < 0):
			bad = fmt.Sprintf("peer %d / port %d out of range", ev.Peer, ev.Port)
		case ev.Round < prevRound:
			bad = fmt.Sprintf("round %d after round %d breaks canonical order", ev.Round, prevRound)
		}
		if bad != "" {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("event %d (%s): %s", i, ev, bad)
			}
		}
		prevRound = ev.Round
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	}
	return c
}

// foldEvents aggregates the stream into the per-check indexes.
func foldEvents(n int, events []trace.Event) *fold {
	f := &fold{
		n:            n,
		awakeCharged: make([]int64, n),
		stepSum:      make([]int64, n),
		awakeAt:      make(map[awakeKey]bool),
		sendRounds:   make(map[pairKey][]int64),
		sendCount:    make(map[sendKey]int64),
		crashed:      make([]bool, n),
		phaseFrag:    map[int32]map[int32]int64{},
		nodeFrag:     make([][]trace.Event, n),
	}
	for i, ev := range events {
		switch ev.Kind {
		case trace.KindAwake:
			f.awakeCharged[ev.Node]++
			f.awakeAt[awakeKey{ev.Round, ev.Node}] = true
		case trace.KindStep:
			f.stepSum[ev.Node] += ev.Aux
			f.haveSteps = true
		case trace.KindSend:
			f.sendRounds[pairKey{ev.Node, ev.Peer}] = append(f.sendRounds[pairKey{ev.Node, ev.Peer}], ev.Round)
			f.sendCount[sendKey{ev.Round, ev.Node, ev.Peer}]++
		case trace.KindDeliver:
			f.delivers = append(f.delivers, ev)
			f.deliverIdx = append(f.deliverIdx, i)
		case trace.KindCrash:
			f.crashed[ev.Node] = true
			f.anyCrash = true
		case trace.KindPhase:
			m, ok := f.phaseFrag[ev.Phase]
			if !ok {
				m = map[int32]int64{}
				f.phaseFrag[ev.Phase] = m
				f.phases = append(f.phases, ev.Phase)
			}
			m[ev.Node] = ev.Frag
			f.nodeFrag[ev.Node] = append(f.nodeFrag[ev.Node], ev)
		case trace.KindMerge:
			f.nodeFrag[ev.Node] = append(f.nodeFrag[ev.Node], ev)
		case trace.KindNbrs:
			f.nbrs = append(f.nbrs, ev)
		}
	}
	sort.Slice(f.phases, func(i, j int) bool { return f.phases[i] < f.phases[j] })
	for _, rounds := range f.sendRounds {
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	}
	return f
}

// checkAwakeBudget compares each node's awake rounds against the
// algorithm's Table 1 envelope.
func checkAwakeBudget(f *fold, info RunInfo, n int) Check {
	c := Check{Name: CheckAwakeBudget, Status: StatusPass}
	var budget int64
	var ok bool
	if info.Budget != nil {
		budget, ok = info.Budget(n)
	} else {
		budget, ok = AwakeBudget(info.Algorithm, n)
	}
	if !ok {
		return skip(c, fmt.Sprintf("no awake envelope for algorithm %q", info.Algorithm))
	}
	slack := info.BudgetSlack
	if slack <= 0 {
		slack = 1
	}
	limit := int64(float64(budget) * slack)
	for node := 0; node < f.n; node++ {
		awake := f.awakeCharged[node]
		if f.stepSum[node] > awake {
			awake = f.stepSum[node] // ring overflow can undercount charges
		}
		if awake > limit {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("node %d awake %d > budget %d (=%d×%.2g slack)", node, awake, limit, budget, slack)
			}
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	} else {
		c.Detail = fmt.Sprintf("max awake within budget %d", limit)
	}
	return c
}

// checkAwakeAttribution verifies the attributed==charged identity: per
// node, the step-attributed awake rounds equal the scheduler-charged
// awake events. Crashed nodes die mid-step, so they are excluded.
func checkAwakeAttribution(f *fold, meta trace.Meta, info RunInfo) Check {
	c := Check{Name: CheckAwakeAttribution, Status: StatusPass}
	if meta.Dropped > 0 {
		return skip(c, fmt.Sprintf("%d events dropped by ring overflow", meta.Dropped))
	}
	if !f.haveSteps {
		return skip(c, "trace has no step events")
	}
	for node := 0; node < f.n; node++ {
		if f.crashed[node] {
			continue
		}
		if f.stepSum[node] != f.awakeCharged[node] {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("node %d: %d attributed != %d charged", node, f.stepSum[node], f.awakeCharged[node])
			}
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	}
	return c
}

// fragHistory is the result of replaying every node's fragment-label
// events in logical emission order.
type fragHistory struct {
	mergesByPhase map[int32][]trace.Event
	finalFrag     map[int32]int64
	violations    int64
	firstDetail   string
}

// walkFragments replays phase-entry and merge events per node. The
// canonical trace order sorts a phase's closing merge AFTER the next
// phase's entry event (both are stamped with the same wake round, and
// KindPhase ranks below KindMerge), so the walk restores the logical
// order — merges before phase entries at equal rounds — then checks
// label continuity and attributes each merge to the phase the node was
// still in.
func walkFragments(f *fold) *fragHistory {
	h := &fragHistory{mergesByPhase: map[int32][]trace.Event{}, finalFrag: make(map[int32]int64, f.n)}
	note := func(format string, args ...interface{}) {
		h.violations++
		if h.firstDetail == "" {
			h.firstDetail = fmt.Sprintf(format, args...)
		}
	}
	for node := range f.nodeFrag {
		evs := append([]trace.Event(nil), f.nodeFrag[node]...)
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Round != evs[j].Round {
				return evs[i].Round < evs[j].Round
			}
			return evs[i].Kind == trace.KindMerge && evs[j].Kind == trace.KindPhase
		})
		curPhase := int32(0)
		curFrag, known := int64(0), false
		mergedInPhase := false
		for _, ev := range evs {
			if ev.Kind == trace.KindPhase {
				if known && curFrag != ev.Frag {
					note("node %d enters phase %d as fragment %d, was %d", node, ev.Phase, ev.Frag, curFrag)
				}
				curPhase, curFrag, known = ev.Phase, ev.Frag, true
				mergedInPhase = false
				continue
			}
			if mergedInPhase {
				note("node %d merges twice in phase %d", node, curPhase)
			}
			mergedInPhase = true
			if ev.Prev == ev.Frag {
				note("node %d: self-merge of fragment %d in phase %d", node, ev.Frag, curPhase)
			}
			if known && curFrag != ev.Prev {
				note("node %d merges from fragment %d but was in %d (phase %d)", node, ev.Prev, curFrag, curPhase)
			}
			curFrag, known = ev.Frag, true
			h.mergesByPhase[curPhase] = append(h.mergesByPhase[curPhase], ev)
		}
		if known {
			h.finalFrag[int32(node)] = curFrag
		}
	}
	return h
}

// checkMerges verifies per-phase merge structure: label continuity and
// at most one merge per node (consistency), and the tails-into-heads
// direction (no fragment is both source and target of one phase's
// waves) that keeps the merge supergraph single-hop.
func checkMerges(h *fragHistory, meta trace.Meta) (consistency, direction Check) {
	consistency = Check{Name: CheckMergeConsistency, Status: StatusPass}
	direction = Check{Name: CheckMergeDirection, Status: StatusPass}
	if meta.Dropped > 0 {
		reason := fmt.Sprintf("%d events dropped by ring overflow", meta.Dropped)
		return skip(consistency, reason), skip(direction, reason)
	}
	consistency.Violations = h.violations
	consistency.Detail = h.firstDetail
	if consistency.Violations > 0 {
		consistency.Status = StatusFail
	}
	phases := make([]int32, 0, len(h.mergesByPhase))
	for ph := range h.mergesByPhase {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, ph := range phases {
		srcs, dsts := map[int64]bool{}, map[int64]bool{}
		var chained []int64
		for _, ev := range h.mergesByPhase[ph] {
			srcs[ev.Prev] = true
			dsts[ev.Frag] = true
		}
		for frag := range dsts {
			if srcs[frag] {
				chained = append(chained, frag)
			}
		}
		sort.Slice(chained, func(i, j int) bool { return chained[i] < chained[j] })
		for _, frag := range chained {
			direction.Violations++
			if direction.Detail == "" {
				direction.Detail = fmt.Sprintf("fragment %d is both merge source and target in phase %d", frag, ph)
			}
		}
	}
	if direction.Violations > 0 {
		direction.Status = StatusFail
	}
	return consistency, direction
}

// checkFragmentDecay verifies the Lemma 1 / Lemma 5 shape: the number
// of distinct fragments never grows across phases, and the run ends
// with every (non-crashed) node in one fragment.
func checkFragmentDecay(f *fold, h *fragHistory, meta trace.Meta) Check {
	c := Check{Name: CheckFragmentDecay, Status: StatusPass}
	if meta.Dropped > 0 {
		return skip(c, fmt.Sprintf("%d events dropped by ring overflow", meta.Dropped))
	}
	if len(f.phases) == 0 {
		return skip(c, "trace has no phase events")
	}
	prevCount := -1
	for _, ph := range f.phases {
		distinct := map[int64]bool{}
		for _, frag := range f.phaseFrag[ph] {
			distinct[frag] = true
		}
		if prevCount >= 0 && len(distinct) > prevCount {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("phase %d has %d fragments, up from %d", ph, len(distinct), prevCount)
			}
		}
		prevCount = len(distinct)
	}
	final := map[int64]bool{}
	for node, frag := range h.finalFrag {
		if f.crashed[node] {
			continue
		}
		final[frag] = true
	}
	if len(final) != 1 {
		c.Violations++
		if c.Detail == "" {
			c.Detail = fmt.Sprintf("run ends with %d fragments, want 1", len(final))
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	}
	return c
}

// checkSparsifyDegree verifies every recorded supergraph degree stays
// within SupergraphDegreeBound.
func checkSparsifyDegree(f *fold) Check {
	c := Check{Name: CheckSparsifyDegree, Status: StatusPass}
	if len(f.nbrs) == 0 {
		return skip(c, "trace has no nbrs events")
	}
	for _, ev := range f.nbrs {
		if ev.Aux > SupergraphDegreeBound {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("node %d reports supergraph degree %d > %d (phase %d)", ev.Node, ev.Aux, SupergraphDegreeBound, ev.Phase)
			}
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	} else {
		c.Detail = fmt.Sprintf("%d degree reports ≤ %d", len(f.nbrs), SupergraphDegreeBound)
	}
	return c
}

// checkCausality verifies every delivery has a matching send: in the
// same round (clean model), or in any earlier-or-equal round when
// Relaxed (interceptor delays and duplicate copies arrive late).
func checkCausality(f *fold, meta trace.Meta, info RunInfo) Check {
	c := Check{Name: CheckCausality, Status: StatusPass}
	if meta.Dropped > 0 {
		return skip(c, fmt.Sprintf("%d events dropped by ring overflow", meta.Dropped))
	}
	if info.Relaxed {
		for di, ev := range f.delivers {
			rounds := f.sendRounds[pairKey{ev.Peer, ev.Node}]
			i := sort.Search(len(rounds), func(i int) bool { return rounds[i] > ev.Round })
			if i == 0 {
				c.Violations++
				if c.Detail == "" {
					// The event index localises the violation in the
					// canonical stream (tracediff's coordinate system).
					c.Detail = fmt.Sprintf("event %d: deliver %d->%d at round %d precedes every send",
						f.deliverIdx[di], ev.Peer, ev.Node, ev.Round)
				}
			}
		}
	} else {
		deliverCount := map[sendKey]int64{}
		for _, ev := range f.delivers {
			deliverCount[sendKey{ev.Round, ev.Peer, ev.Node}]++
		}
		// Walk the violating keys in a deterministic order: map
		// iteration order would make the reported first violation — and
		// therefore the verdict bytes — vary between identical runs.
		var bad []sendKey
		for key, got := range deliverCount {
			if got > f.sendCount[key] {
				bad = append(bad, key)
			}
		}
		sort.Slice(bad, func(i, j int) bool {
			a, b := bad[i], bad[j]
			if a.round != b.round {
				return a.round < b.round
			}
			if a.from != b.from {
				return a.from < b.from
			}
			return a.to < b.to
		})
		for _, key := range bad {
			got := deliverCount[key]
			c.Violations += got - f.sendCount[key]
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("round %d: %d deliveries %d->%d but %d sends", key.round, got, key.from, key.to, f.sendCount[key])
			}
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	}
	return c
}

// checkDeliverAwake verifies no delivery reached a node that was not
// awake (and charged) in the delivery round.
func checkDeliverAwake(f *fold, meta trace.Meta) Check {
	c := Check{Name: CheckDeliverAwake, Status: StatusPass}
	if meta.Dropped > 0 {
		return skip(c, fmt.Sprintf("%d events dropped by ring overflow", meta.Dropped))
	}
	for _, ev := range f.delivers {
		if !f.awakeAt[awakeKey{ev.Round, ev.Node}] {
			c.Violations++
			if c.Detail == "" {
				c.Detail = fmt.Sprintf("node %d received from %d in round %d while asleep", ev.Node, ev.Peer, ev.Round)
			}
		}
	}
	if c.Violations > 0 {
		c.Status = StatusFail
	}
	return c
}

func fail(c Check, detail string) Check {
	c.Status = StatusFail
	c.Violations++
	c.Detail = detail
	return c
}

func skip(c Check, reason string) Check {
	c.Status = StatusSkip
	c.Detail = reason
	return c
}
