package conform

import (
	"math"

	"sleepmst/internal/stats"
)

// SupergraphDegreeBound is the paper's sparsification bound on the
// fragment supergraph: at most 3 accepted incoming MOEs plus the
// fragment's own outgoing MOE. Every KindNbrs event must stay at or
// below it.
const SupergraphDegreeBound = 4

// Algorithm names accepted by RunInfo.Algorithm, matching the facade's
// CLI spellings.
const (
	// AlgoRandomized is Algorithm Randomized-MST (§2.2).
	AlgoRandomized = "randomized"
	// AlgoDeterministic is Algorithm Deterministic-MST (§2.3).
	AlgoDeterministic = "deterministic"
	// AlgoLogStar is the Corollary 1 log*-coloring variant.
	AlgoLogStar = "logstar"
)

// Per-algorithm awake-budget constants: the measured worst awake/
// envelope ratio over seeded RandomConnected(n, 3n) sweeps is ~36
// (randomized), ~40 (deterministic), and ~27 (logstar, against the
// log2 n · log* n envelope); the constants below leave ~1.5x headroom
// so the budget catches regressions without flaking on seed variance.
const (
	// BudgetCRandomized bounds Randomized-MST at 56·log2 n awake rounds.
	BudgetCRandomized = 56
	// BudgetCDeterministic bounds Deterministic-MST at 60·log2 n.
	BudgetCDeterministic = 60
	// BudgetCLogStar bounds the Corollary 1 variant at 44·log2 n·log* n.
	BudgetCLogStar = 44
)

// AwakeBudget returns the per-node awake-round budget the algorithm
// must respect on an n-node run — the paper's Table 1 envelope with
// the measured constants above. ok is false for algorithms without an
// awake-optimality claim (baseline, ghs, or an unknown name).
func AwakeBudget(algo string, n int) (budget int64, ok bool) {
	if n < 2 {
		n = 2
	}
	logn := math.Log2(float64(n))
	switch algo {
	case AlgoRandomized:
		return int64(math.Ceil(BudgetCRandomized * logn)), true
	case AlgoDeterministic:
		return int64(math.Ceil(BudgetCDeterministic * logn)), true
	case AlgoLogStar:
		return int64(math.Ceil(BudgetCLogStar * logn * stats.LogStar(float64(n)))), true
	default:
		return 0, false
	}
}
