// Package prof wires the standard library's runtime/pprof profilers
// into the CLIs behind a single flag value: a path prefix. Profiling
// is strictly opt-in — an empty prefix costs nothing — so the
// observability layer's zero-cost-when-off contract extends to the
// process level.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into <prefix>.cpu.pprof and returns a
// stop function that ends the CPU profile and writes a heap profile
// (after a forced GC, so it reflects live objects) to
// <prefix>.heap.pprof. An empty prefix returns a no-op stop function
// and never touches the filesystem.
func Start(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer heap.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}
