package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPrefixIsNoOp(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestWritesProfiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "p")
	stop, err := Start(prefix)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing profile %s: %v", suffix, err)
		}
	}
}

func TestStartWhileRunningFails(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer stop()
	// A second CPU profile cannot start while the first is running.
	if _, err := Start(filepath.Join(dir, "b")); err == nil {
		t.Error("want error starting a second CPU profile")
	}
}
