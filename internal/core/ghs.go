package core

import (
	"errors"
	"fmt"
	"sort"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
)

// This file implements classic synchronous GHS in the traditional
// CONGEST model — the comparator the paper's introduction measures
// against. It is a genuinely independent implementation, not the
// sleeping algorithm re-charged:
//
//   - nodes are awake in EVERY round until they terminate, so awake
//     complexity equals round complexity (the traditional model);
//   - fragments carry no distance labels: minimum outgoing edges are
//     found by event-driven flood/echo waves over the fragment trees;
//   - merging follows the classic rule: every fragment connects over
//     its MOE, each merge tree is resolved at its unique core (the
//     mutual-MOE edge, unique because weights are distinct), and the
//     new fragment identity floods outward from the core — so chains
//     of fragments merge in one phase, unlike the star-restricted
//     merges of the sleeping algorithms.
//
// Phases are synchronized by conservative fixed windows of 2n+2
// rounds per wave, giving the classic O(n log n) round complexity
// (Borůvka halving: every fragment merges every phase).

// ghs message types.
type ghsFragMsg struct{ fragID int64 }

func (m ghsFragMsg) Bits() int { return ldt.FieldBits(m.fragID) }

type ghsInitiate struct{}

func (ghsInitiate) Bits() int { return 1 }

// ghsEcho carries a subtree's best outgoing-edge candidate.
type ghsEcho struct {
	has bool
	key graph.WeightKey
}

func (m ghsEcho) Bits() int {
	return 1 + ldt.FieldBits(m.key.W) + ldt.FieldBits(m.key.A) + ldt.FieldBits(m.key.B)
}

// ghsRootChange routes from the old root toward the MOE owner,
// flipping tree orientation along the way.
type ghsRootChange struct{}

func (ghsRootChange) Bits() int { return 1 }

// ghsHalt floods termination through the spanning fragment.
type ghsHalt struct{}

func (ghsHalt) Bits() int { return 1 }

// ghsConnect is sent over the fragment's MOE; carrying the sender
// fragment ID lets the mutual pair pick the core winner.
type ghsConnect struct{ fragID int64 }

func (m ghsConnect) Bits() int { return ldt.FieldBits(m.fragID) }

// ghsNewFrag floods the merged fragment's identity from the core.
type ghsNewFrag struct{ fragID int64 }

func (m ghsNewFrag) Bits() int { return ldt.FieldBits(m.fragID) }

// ghsNode is the per-node state of the classic algorithm.
type ghsNode struct {
	nd       *sim.Node
	fragID   int64
	parent   int          // port toward the current root, -1 at root
	branch   map[int]bool // ports that are tree (MST) edges
	nbrFrag  []int64
	deferred sim.Outbox // sends staged for the next exchange
}

func (gn *ghsNode) stage(port int, msg interface{}) {
	if gn.deferred == nil {
		gn.deferred = make(sim.Outbox, 2)
	}
	gn.deferred[port] = msg
}

// step exchanges the staged outbox and returns the inbox; the node is
// awake every round, as the traditional model prescribes.
func (gn *ghsNode) step() sim.Inbox {
	out := gn.deferred
	gn.deferred = nil
	return gn.nd.Exchange(out)
}

// treePorts returns the current branch ports, sorted.
func (gn *ghsNode) treePorts() []int {
	out := make([]int, 0, len(gn.branch))
	for p := range gn.branch {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// children returns the branch ports other than the parent.
func (gn *ghsNode) children() []int {
	var out []int
	for _, p := range gn.treePorts() {
		if p != gn.parent {
			out = append(out, p)
		}
	}
	return out
}

// ghsPhaseState holds intra-phase wave bookkeeping.
type ghsPhaseState struct {
	bestPort int             // local MOE candidate port (-1 = none)
	bestKey  graph.WeightKey // its key
	combined ghsEcho         // subtree best after wave A
	srcChild int             // child port providing combined (-1 = own)
	isOwner  bool
	halted   bool
	conRecv  map[int]int64 // connect received per port -> sender frag
}

// RunClassicGHS executes classic synchronous GHS in the traditional
// model. All nodes stay awake until termination, so the returned
// metrics have awake complexity equal to round complexity — the gap
// the sleeping model closes.
func RunClassicGHS(g *graph.Graph, opts Options) (*Outcome, error) {
	if err := checkInput(g); err != nil {
		return nil, err
	}
	n := g.N()
	window := 2*int64(n) + 2
	// One fragID-exchange round plus three contiguous wave windows;
	// the halting phase's drain round reuses the first would-be wave C
	// round, so nodes are awake in literally every round until halt.
	phaseLen := 1 + 3*window
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 2*bitlen(int64(n)) + 4 // Borůvka halving, generous slack
	}

	type nodeOut struct {
		fragID int64
		branch []int
		phases int
	}
	outs := make([]nodeOut, n)

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		gn := &ghsNode{
			nd:      nd,
			fragID:  nd.ID(),
			parent:  -1,
			branch:  make(map[int]bool),
			nbrFrag: make([]int64, nd.Degree()),
		}
		for phase := 0; phase < maxPhases; phase++ {
			halted, err := gn.phase(1+int64(phase)*phaseLen, window)
			if err != nil {
				return err
			}
			if halted {
				outs[nd.Index()] = nodeOut{fragID: gn.fragID, branch: gn.treePorts(), phases: phase + 1}
				return nil
			}
		}
		return errors.New("classic ghs did not converge")
	})
	if err != nil {
		return nil, err
	}

	edgeSet := map[int]bool{}
	for v := 0; v < n; v++ {
		for _, p := range outs[v].branch {
			edgeSet[g.Ports(v)[p].EdgeIdx] = true
		}
	}
	var mst []graph.Edge
	for idx := range edgeSet {
		mst = append(mst, g.Edge(idx))
	}
	graph.SortEdgesByKey(mst)
	phases := 0
	for _, o := range outs {
		if o.phases > phases {
			phases = o.phases
		}
	}
	out := &Outcome{MSTEdges: mst, Result: res, Phases: phases}
	if n > 1 && !graph.IsSpanningTree(g, mst) {
		return out, errors.New("core: classic ghs output is not a spanning tree")
	}
	return out, nil
}

// phase runs one classic GHS phase starting at round start; halted
// reports that the fragment spans the graph and the node has stopped.
func (gn *ghsNode) phase(start, window int64) (bool, error) {
	st := &ghsPhaseState{bestPort: -1, srcChild: -1, conRecv: map[int]int64{}}

	// Round start: exchange fragment IDs with all neighbors and pick
	// the local MOE candidate.
	gn.nd.SleepUntil(start)
	deg := gn.nd.Degree()
	fout := make(sim.Outbox, deg)
	for p := 0; p < deg; p++ {
		fout[p] = ghsFragMsg{fragID: gn.fragID}
	}
	in := gn.nd.Exchange(fout)
	for p := 0; p < deg; p++ {
		gn.nbrFrag[p] = -1
		if raw, ok := in[p]; ok {
			gn.nbrFrag[p] = raw.(ghsFragMsg).fragID
		}
	}
	for p := 0; p < deg; p++ {
		if gn.nbrFrag[p] == gn.fragID || gn.nbrFrag[p] < 0 {
			continue
		}
		a, b := int64(gn.nd.Index()), int64(gn.nd.Ports()[p].To)
		if a > b {
			a, b = b, a
		}
		k := graph.WeightKey{W: gn.nd.PortWeight(p), A: a, B: b}
		if st.bestPort < 0 || k.Less(st.bestKey) {
			st.bestPort, st.bestKey = p, k
		}
	}

	if err := gn.waveA(start+1, window, st); err != nil {
		return false, err
	}
	if err := gn.waveB(start+1+window, window, st); err != nil {
		return false, err
	}
	if st.halted {
		gn.step() // flush staged halt forwards
		return true, nil
	}
	if err := gn.waveC(start+1+2*window, window, st); err != nil {
		return false, err
	}
	return false, nil
}

// waveA floods initiate from the root and convergecasts the minimum
// outgoing-edge candidate back up via event-driven echoes.
func (gn *ghsNode) waveA(wave, window int64, st *ghsPhaseState) error {
	initiated := gn.parent == -1
	echoFrom := map[int]bool{}
	childBest := ghsEcho{}
	childPort := -1
	echoSent := false
	if initiated {
		for _, p := range gn.treePorts() {
			gn.stage(p, ghsInitiate{})
		}
	}
	for r := wave; r < wave+window; r++ {
		in := gn.step()
		for p, raw := range in {
			switch msg := raw.(type) {
			case ghsInitiate:
				if p == gn.parent && !initiated {
					initiated = true
					for _, c := range gn.children() {
						gn.stage(c, ghsInitiate{})
					}
				}
			case ghsEcho:
				echoFrom[p] = true
				if msg.has && (!childBest.has || msg.key.Less(childBest.key)) {
					childBest = msg
					childPort = p
				}
			default:
				return fmt.Errorf("ghs wave A: unexpected %T", raw)
			}
		}
		if initiated && !echoSent && allIn(echoFrom, gn.children()) {
			st.combined = ghsEcho{has: st.bestPort >= 0, key: st.bestKey}
			st.srcChild = -1
			if childBest.has && (!st.combined.has || childBest.key.Less(st.combined.key)) {
				st.combined = childBest
				st.srcChild = childPort
			}
			echoSent = true
			if gn.parent >= 0 {
				gn.stage(gn.parent, st.combined)
			}
		}
	}
	if !echoSent {
		return errors.New("ghs wave A did not complete within its window")
	}
	return nil
}

// waveB routes the root change toward the MOE owner (flipping
// orientation), sends connects over MOEs at the window's last round,
// and floods halt when the fragment spans the graph.
func (gn *ghsNode) waveB(wave, window int64, st *ghsPhaseState) error {
	connectRound := wave + window - 1
	if gn.parent == -1 { // fragment root decides
		switch {
		case !st.combined.has:
			st.halted = true
			for _, p := range gn.treePorts() {
				gn.stage(p, ghsHalt{})
			}
		case st.srcChild < 0:
			st.isOwner = true
		default:
			gn.stage(st.srcChild, ghsRootChange{})
			gn.parent = st.srcChild
		}
	}
	for r := wave; r < wave+window; r++ {
		if st.isOwner && !st.halted && r == connectRound {
			gn.stage(st.bestPort, ghsConnect{fragID: gn.fragID})
			gn.branch[st.bestPort] = true
		}
		in := gn.step()
		for p, raw := range in {
			switch msg := raw.(type) {
			case ghsRootChange:
				if st.srcChild < 0 {
					st.isOwner = true
					gn.parent = -1 // tentative; resolved by wave C
				} else {
					gn.stage(st.srcChild, ghsRootChange{})
					gn.parent = st.srcChild
				}
			case ghsHalt:
				st.halted = true
				for _, c := range gn.treePorts() {
					if c != p {
						gn.stage(c, ghsHalt{})
					}
				}
			case ghsConnect:
				st.conRecv[p] = msg.fragID
				gn.branch[p] = true
			default:
				return fmt.Errorf("ghs wave B: unexpected %T", raw)
			}
		}
	}
	return nil
}

// waveC resolves cores and floods the merged fragment identity. The
// core is the edge over which both endpoints sent connects; the
// endpoint whose old fragment ID is larger becomes the new root and
// keeps its ID for the merged fragment.
func (gn *ghsNode) waveC(wave, window int64, st *ghsPhaseState) error {
	isCoreWinner := false
	if st.isOwner {
		if otherFrag, ok := st.conRecv[st.bestPort]; ok {
			if gn.fragID > otherFrag {
				isCoreWinner = true
			}
		}
	}
	if isCoreWinner {
		gn.parent = -1
		for _, p := range gn.treePorts() {
			gn.stage(p, ghsNewFrag{fragID: gn.fragID})
		}
	} else if st.isOwner {
		gn.parent = st.bestPort // toward the core across the MOE
	}
	got := isCoreWinner
	for r := wave; r < wave+window; r++ {
		in := gn.step()
		for p, raw := range in {
			switch msg := raw.(type) {
			case ghsNewFrag:
				if got {
					continue
				}
				got = true
				gn.fragID = msg.fragID
				gn.parent = p
				for _, c := range gn.treePorts() {
					if c != p {
						gn.stage(c, ghsNewFrag{fragID: msg.fragID})
					}
				}
			default:
				return fmt.Errorf("ghs wave C: unexpected %T", raw)
			}
		}
	}
	if !got {
		return errors.New("ghs wave C: merged fragment identity never arrived")
	}
	return nil
}

func allIn(set map[int]bool, ports []int) bool {
	for _, p := range ports {
		if !set[p] {
			return false
		}
	}
	return true
}
