package core

import (
	"sleepmst/internal/graph"
)

// RunBaseline runs the traditional-model (always awake) comparator:
// the same GHS-style computation, but nodes are charged one awake
// round for every round up to their local termination, exactly as in
// the standard CONGEST model where a node is active for the whole
// execution. Its awake complexity therefore equals its round
// complexity, the paper's motivating gap (§1).
func RunBaseline(g *graph.Graph, opts Options) (*Outcome, error) {
	out, err := RunRandomized(g, opts)
	if err != nil {
		return nil, err
	}
	// Re-charge awake time under the traditional model.
	for i, h := range out.Result.HaltRound {
		out.Result.AwakePerNode[i] = h
	}
	return out, nil
}
