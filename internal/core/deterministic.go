package core

import (
	"fmt"
	"sort"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// Color is the Fast-Awake-Coloring palette (§2.3). Blue has the
// highest priority; a fragment picks the highest-priority color not
// already taken by a supergraph neighbor, so every first-colored
// fragment of a component is Blue and all Blue fragments merge.
type Color int

// The palette in priority order (Blue > Red > Orange > Black > Green).
const (
	ColorNone Color = iota
	Blue
	Red
	Orange
	Black
	Green
)

// palette lists the colors in priority order.
var palette = [...]Color{Blue, Red, Orange, Black, Green}

func (c Color) String() string {
	switch c {
	case ColorNone:
		return "none"
	case Blue:
		return "blue"
	case Red:
		return "red"
	case Orange:
		return "orange"
	case Black:
		return "black"
	case Green:
		return "green"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// MaxValidIncomingMOEs is the paper's sparsification constant: each
// fragment accepts at most this many incoming MOEs, bounding the
// supergraph degree by MaxValidIncomingMOEs+1 = 4.
const MaxValidIncomingMOEs = 3

// Block layout of one Deterministic-MST phase. The coloring occupies
// 4 blocks per ID stage, N stages.
const (
	dbTAFrag      = 0 // Transmit-Adjacent: refresh (ID, fragID, level)
	dbUpMOE       = 1 // Upcast-Min: fragment MOE to root
	dbBcastMOE    = 2 // Fragment-Broadcast: MOE identity
	dbTAMOE       = 3 // Transmit-Adjacent: mark fragment MOE edges
	dbUpCount     = 4 // Up: subtree counts of incoming-MOE edges
	dbDownToken   = 5 // Down: distribute <= 3 selection tokens
	dbTAValid     = 6 // Transmit-Adjacent: accept/reject notices
	dbUpNbr       = 7 // Up: union of accepted supergraph edges
	dbBcastNbr    = 8 // Fragment-Broadcast: NBR-INFO
	dbColorBase   = 9 // 4N coloring blocks follow
	stageBlocks   = 4 // blocks per coloring stage
	postColor1    = 0 // broadcast of the pass-1 merge decision
	postColorM1   = 1 // Merging-Fragments pass 1 (3 blocks)
	postColorM2   = 4 // Merging-Fragments pass 2 (3 blocks)
	postColorSpan = 7
)

// detPhaseBlocks returns the total blocks per deterministic phase for
// ID space size maxID.
func detPhaseBlocks(maxID int64) int64 {
	return int64(dbColorBase) + stageBlocks*maxID + postColorSpan
}

// nbrEntry describes one supergraph (G') edge from this fragment's
// point of view: the neighboring fragment and the local node/port
// hosting the edge.
type nbrEntry struct {
	fragID   int64
	hostID   int64
	hostPort int
}

// nbrList is the NBR-INFO payload: at most 4 entries (the fragment's
// accepted incoming MOEs plus its accepted outgoing MOE), so the
// message stays within O(log n) bits.
type nbrList []nbrEntry

func (l nbrList) Bits() int {
	b := 3
	for _, e := range l {
		b += ldt.FieldBits(e.fragID) + ldt.FieldBits(e.hostID) + ldt.FieldBits(int64(e.hostPort))
	}
	return b
}

func (nbrList) MsgKind() string { return "nbr-info" }

// intPayload is a Sizer-friendly integer wire value.
type intPayload int64

func (p intPayload) Bits() int { return ldt.FieldBits(int64(p)) }

func (intPayload) MsgKind() string { return "int" }

// validMsg tells the sender of an incoming MOE whether it was selected.
type validMsg struct{ accepted bool }

func (validMsg) Bits() int { return 1 }

func (validMsg) MsgKind() string { return "valid" }

// colorMsg announces a fragment's chosen color.
type colorMsg struct {
	fragID int64
	color  Color
}

func (m colorMsg) Bits() int { return ldt.FieldBits(m.fragID) + 3 }

func (colorMsg) MsgKind() string { return "color" }

// mergeCmd is the pass-1 merge decision broadcast to the fragment.
type mergeCmd struct {
	merging  bool
	hostID   int64
	hostPort int
}

func (m mergeCmd) Bits() int { return 1 + ldt.FieldBits(m.hostID) + ldt.FieldBits(int64(m.hostPort)) }

func (mergeCmd) MsgKind() string { return "merge-cmd" }

// mergeEntries deduplicates and sorts supergraph entries.
func mergeEntries(lists ...[]nbrEntry) nbrList {
	seen := make(map[nbrEntry]bool)
	var out nbrList
	for _, l := range lists {
		for _, e := range l {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fragID != out[j].fragID {
			return out[i].fragID < out[j].fragID
		}
		if out[i].hostID != out[j].hostID {
			return out[i].hostID < out[j].hostID
		}
		return out[i].hostPort < out[j].hostPort
	})
	return out
}

// detPhase runs one Deterministic-MST phase; done reports that the
// fragment spans the graph.
func (c *nodeCtx) detPhase(phaseStart int64) (done bool) {
	bs := func(b int64) int64 { return phaseStart + b*c.blk }
	maxID := c.nd.MaxID()

	// --- Step (i): find the fragment MOE -------------------------------
	c.taFragment(bs(dbTAFrag))
	moe := c.upcastMOE(bs(dbUpMOE))

	var rootMsg *bcastMOEMsg
	if c.st.IsRoot() {
		rootMsg = &bcastMOEMsg{}
		if moe != nil {
			rootMsg.exists = true
			rootMsg.moe = *moe
		}
	}
	ph := c.broadcastMOE(bs(dbBcastMOE), rootMsg)
	c.stepDone(trace.StepFindMOE)
	if !ph.exists {
		return true
	}
	owner := c.isMOEOwner(&ph.moe)

	// Announce the fragment MOE on its edge; learn which incident edges
	// are incoming MOEs from other fragments.
	c.nd.Metrics().Add("moe/probes", int64(c.nd.Degree()))
	out := make(sim.Outbox, c.nd.Degree())
	for p := 0; p < c.nd.Degree(); p++ {
		out[p] = taMOEMsg{fragID: c.st.FragID, isMOE: owner && p == ph.moe.ownerPort}
	}
	in := ldt.TransmitAdjacent(c.nd, bs(dbTAMOE), out)
	c.stepDone(trace.StepMarkMOE)
	var incomingPorts []int
	incFrag := make(map[int]int64)
	for p := 0; p < c.nd.Degree(); p++ {
		raw, ok := in[p]
		if !ok {
			continue
		}
		msg := raw.(taMOEMsg)
		if msg.isMOE && msg.fragID != c.st.FragID {
			incomingPorts = append(incomingPorts, p)
			incFrag[p] = msg.fragID
		}
	}
	sort.Ints(incomingPorts)

	// Select at most MaxValidIncomingMOEs incoming MOEs fragment-wide:
	// count per subtree, then distribute tokens top-down.
	childCount := make(map[int]int64)
	total := ldt.Up(c.nd, c.st, bs(dbUpCount), intPayload(len(incomingPorts)),
		func(own interface{}, fromChildren map[int]interface{}) interface{} {
			sum := int64(own.(intPayload))
			for port, v := range fromChildren {
				cnt := int64(v.(intPayload))
				childCount[port] = cnt
				sum += cnt
			}
			return intPayload(sum)
		})
	budget := int64(total.(intPayload))
	if budget > c.acceptBudget {
		budget = c.acceptBudget
	}
	validIn := make(map[int]bool, len(incomingPorts))
	ldt.Down(c.nd, c.st, bs(dbDownToken), intPayload(budget),
		func(received interface{}) map[int]interface{} {
			var b int64
			if received != nil {
				b = int64(received.(intPayload))
			}
			for _, p := range incomingPorts {
				if b == 0 {
					break
				}
				validIn[p] = true
				b--
			}
			outs := make(map[int]interface{})
			for _, child := range c.st.Children {
				if b == 0 {
					break
				}
				give := childCount[child]
				if give > b {
					give = b
				}
				if give > 0 {
					outs[child] = intPayload(give)
					b -= give
				}
			}
			return outs
		})

	// Tell each incoming-MOE sender whether its MOE was accepted; the
	// fragment's own MOE owner learns its edge's fate the same way.
	taOut := make(sim.Outbox, len(incomingPorts))
	for _, p := range incomingPorts {
		taOut[p] = validMsg{accepted: validIn[p]}
	}
	var myEntries []nbrEntry
	if len(taOut) > 0 || owner {
		vin := ldt.TransmitAdjacent(c.nd, bs(dbTAValid), taOut)
		if owner {
			if raw, ok := vin[ph.moe.ownerPort]; ok && raw.(validMsg).accepted {
				myEntries = append(myEntries, nbrEntry{
					fragID:   c.nbrFragID[ph.moe.ownerPort],
					hostID:   c.nd.ID(),
					hostPort: ph.moe.ownerPort,
				})
			}
		}
	}
	for _, p := range incomingPorts {
		if validIn[p] {
			myEntries = append(myEntries, nbrEntry{fragID: incFrag[p], hostID: c.nd.ID(), hostPort: p})
		}
	}
	c.stepDone(trace.StepValidate)

	// Collect the fragment's supergraph adjacency (NBR-INFO) at the
	// root and broadcast it to every member.
	agg := ldt.Up(c.nd, c.st, bs(dbUpNbr), nbrList(myEntries),
		func(own interface{}, fromChildren map[int]interface{}) interface{} {
			lists := [][]nbrEntry{own.(nbrList)}
			for _, v := range fromChildren {
				if v != nil {
					lists = append(lists, v.(nbrList))
				}
			}
			return mergeEntries(lists...)
		})
	var bcastPayload interface{}
	if c.st.IsRoot() {
		bcastPayload = agg.(nbrList)
	}
	nbrInfo := ldt.Broadcast(c.nd, c.st, bs(dbBcastNbr), bcastPayload).(nbrList)
	if c.st.IsRoot() {
		c.nd.EmitNbrs(c.phase, len(nbrInfo))
	}
	c.stepDone(trace.StepNbrInfo)

	// --- Step (ii): Fast-Awake-Coloring over N ID stages ----------------
	myColor, _ := c.fastAwakeColoring(bs, nbrInfo)
	c.stepDone(trace.StepColoring)

	// Pass 1: Blue fragments with supergraph neighbors merge into an
	// arbitrary (non-Blue) neighbor.
	mergeBase := int64(dbColorBase) + stageBlocks*maxID
	var cmdPayload interface{}
	if c.st.IsRoot() {
		cmd := mergeCmd{}
		if myColor == Blue && len(nbrInfo) > 0 {
			e := nbrInfo[0] // deterministic arbitrary choice
			cmd = mergeCmd{merging: true, hostID: e.hostID, hostPort: e.hostPort}
		}
		cmdPayload = cmd
	}
	cmd := ldt.Broadcast(c.nd, c.st, bs(mergeBase+postColor1), cmdPayload).(mergeCmd)
	c.stepDone(trace.StepDecide)
	dec := ldt.NoMerge
	if cmd.merging {
		dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
		if cmd.hostID == c.nd.ID() {
			dec.AttachPort = cmd.hostPort
		}
	}
	ldt.MergingFragments(c.nd, c.st, bs(mergeBase+postColorM1), dec)

	// Pass 2: Blue singleton fragments (no supergraph neighbors) merge
	// along their original MOE. The decision is fragment-wide knowledge,
	// so no extra broadcast is needed.
	dec = ldt.NoMerge
	if myColor == Blue && len(nbrInfo) == 0 {
		dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
		if owner {
			dec.AttachPort = ph.moe.ownerPort
		}
	}
	ldt.MergingFragments(c.nd, c.st, bs(mergeBase+postColorM2), dec)
	c.stepDone(trace.StepMerge)
	return false
}

// fastAwakeColoring runs the N-stage coloring (§2.3): in stage i, the
// fragment whose ID is i picks the highest-priority color unused by its
// already-colored supergraph neighbors, and the choice is propagated to
// every node of every neighboring fragment. A node is awake only in
// the stages of its own fragment and of its <= 4 supergraph neighbors.
func (c *nodeCtx) fastAwakeColoring(bs func(int64) int64, nbrInfo nbrList) (Color, map[int64]Color) {
	nbrColors := make(map[int64]Color)
	myColor := ColorNone

	// The <= 5 stages this node participates in, ascending by ID.
	type stage struct {
		id     int64
		member bool
	}
	stageSet := map[int64]bool{}
	stages := []stage{{id: c.st.FragID, member: true}}
	stageSet[c.st.FragID] = true
	for _, e := range nbrInfo {
		if !stageSet[e.fragID] {
			stageSet[e.fragID] = true
			stages = append(stages, stage{id: e.fragID})
		}
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].id < stages[j].id })

	stageStart := func(id int64, block int64) int64 {
		return bs(int64(dbColorBase) + stageBlocks*(id-1) + block)
	}

	for _, s := range stages {
		if s.member {
			// Block 0: the root picks the color; Fragment-Broadcast.
			var payload interface{}
			if c.st.IsRoot() {
				used := make(map[Color]bool, len(nbrInfo))
				for _, e := range nbrInfo {
					if col, ok := nbrColors[e.fragID]; ok {
						used[col] = true
					}
				}
				pick := ColorNone
				for _, col := range palette {
					if !used[col] {
						pick = col
						break
					}
				}
				if pick == ColorNone {
					panic("core: palette exhausted — supergraph degree bound violated")
				}
				payload = colorMsg{fragID: c.st.FragID, color: pick}
			}
			cm := ldt.Broadcast(c.nd, c.st, stageStart(s.id, 0), payload).(colorMsg)
			myColor = cm.color
			// Block 1: hosts push the color across supergraph edges.
			hostOut := make(sim.Outbox)
			for _, e := range nbrInfo {
				if e.hostID == c.nd.ID() {
					hostOut[e.hostPort] = colorMsg{fragID: c.st.FragID, color: myColor}
				}
			}
			if len(hostOut) > 0 {
				ldt.TransmitAdjacent(c.nd, stageStart(s.id, 1), hostOut)
			}
			// Blocks 2-3 belong to the neighboring fragments.
			continue
		}
		// Neighbor role: block 1 — hosts of edges to fragment s.id
		// listen for its color.
		var got interface{}
		var hostPorts []int
		for _, e := range nbrInfo {
			if e.fragID == s.id && e.hostID == c.nd.ID() {
				hostPorts = append(hostPorts, e.hostPort)
			}
		}
		if len(hostPorts) > 0 {
			in := ldt.TransmitAdjacent(c.nd, stageStart(s.id, 1), nil)
			for _, p := range hostPorts {
				if raw, ok := in[p]; ok {
					got = raw.(colorMsg)
				}
			}
		}
		// Block 2: upcast the color to this fragment's root
		// (Neighbor-Awareness); block 3: broadcast it down.
		res := c.upcastFirst(stageStart(s.id, 2), got)
		var payload interface{}
		if c.st.IsRoot() {
			if res == nil {
				res = colorMsg{fragID: s.id, color: ColorNone}
			}
			payload = res
		}
		cm := ldt.Broadcast(c.nd, c.st, stageStart(s.id, 3), payload).(colorMsg)
		if cm.color != ColorNone {
			nbrColors[cm.fragID] = cm.color
		}
	}
	return myColor, nbrColors
}

// RunDeterministic executes Algorithm Deterministic-MST on g: O(log n)
// awake complexity and O(nN log n) rounds, where N is the largest node
// ID (which all nodes are assumed to know).
func RunDeterministic(g *graph.Graph, opts Options) (*Outcome, error) {
	if err := checkInput(g); err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = DeterministicPhaseBound(g.N())
	}
	budget, err := opts.acceptBudget()
	if err != nil {
		return nil, err
	}
	states := ldt.SingletonStates(g)
	rec := newPhaseRecorder(opts.RecordPhases, g.N(), maxPhases)
	phasesRun := make([]int, g.N())

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		c.acceptBudget = budget
		phaseLen := detPhaseBlocks(nd.MaxID()) * c.blk
		for p := 0; p < maxPhases; p++ {
			c.beginPhase(p + 1)
			done := c.detPhase(1 + int64(p)*phaseLen)
			rec.record(p, nd.Index(), c.st.FragID)
			phasesRun[nd.Index()] = p + 1
			if done {
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	maxP := 0
	for _, p := range phasesRun {
		if p > maxP {
			maxP = p
		}
	}
	return finishOutcome(g, states, res, maxP, rec.counts(maxP))
}
