package core

import (
	"math"
	"testing"

	"sleepmst/internal/graph"
)

func TestDeterministicMSTPath(t *testing.T) {
	g := graph.Path(10, graph.GenConfig{Seed: 1})
	checkMST(t, g, RunDeterministic, Options{Seed: 1})
}

func TestDeterministicMSTCycle(t *testing.T) {
	g := graph.Cycle(12, graph.GenConfig{Seed: 2})
	checkMST(t, g, RunDeterministic, Options{Seed: 2})
}

func TestDeterministicMSTStar(t *testing.T) {
	g := graph.Star(9, graph.GenConfig{Seed: 3})
	checkMST(t, g, RunDeterministic, Options{Seed: 3})
}

func TestDeterministicMSTComplete(t *testing.T) {
	g := graph.Complete(12, graph.GenConfig{Seed: 4})
	checkMST(t, g, RunDeterministic, Options{Seed: 4})
}

func TestDeterministicMSTGrid(t *testing.T) {
	g := graph.Grid(5, 6, graph.GenConfig{Seed: 5})
	checkMST(t, g, RunDeterministic, Options{Seed: 5})
}

func TestDeterministicMSTRandomGraphsManySeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomConnected(40, 100, graph.GenConfig{Seed: seed})
		out := checkMST(t, g, RunDeterministic, Options{Seed: seed})
		if out.Phases > DeterministicPhaseBound(g.N()) {
			t.Errorf("seed %d: %d phases exceeds bound", seed, out.Phases)
		}
	}
}

func TestDeterministicMSTRandomLargeIDs(t *testing.T) {
	// IDs drawn from [1, 8n]: the round complexity depends on N = max
	// ID, but correctness and awake complexity must be unaffected.
	g := graph.RandomConnected(30, 70, graph.GenConfig{Seed: 6})
	graph.RandomIDs(g, 8*int64(g.N()), 99)
	out := checkMST(t, g, RunDeterministic, Options{Seed: 6})
	if out.Result.MaxAwake() > 40*int64(math.Log2(float64(g.N()))+1) {
		t.Errorf("awake complexity %d too large", out.Result.MaxAwake())
	}
}

func TestDeterministicMSTTieBrokenWeights(t *testing.T) {
	g := graph.Complete(8, graph.GenConfig{Seed: 7, Weights: graph.WeightsUnit})
	checkMST(t, g, RunDeterministic, Options{Seed: 7})
}

func TestDeterministicIsSeedIndependent(t *testing.T) {
	// A deterministic algorithm must produce identical executions for
	// different seeds (the seed only feeds unused randomness).
	g := graph.RandomConnected(36, 90, graph.GenConfig{Seed: 8})
	a, err := RunDeterministic(g, Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := RunDeterministic(g, Options{Seed: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Result.Rounds != b.Result.Rounds || a.Phases != b.Phases ||
		a.Result.MaxAwake() != b.Result.MaxAwake() ||
		a.Result.MessagesSent != b.Result.MessagesSent {
		t.Errorf("executions differ across seeds: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.Result.Rounds, a.Phases, a.Result.MaxAwake(), a.Result.MessagesSent,
			b.Result.Rounds, b.Phases, b.Result.MaxAwake(), b.Result.MessagesSent)
	}
}

func TestDeterministicAwakeComplexityLogarithmic(t *testing.T) {
	ratio := func(n int) float64 {
		g := graph.RandomConnected(n, 3*n, graph.GenConfig{Seed: int64(n)})
		out, err := RunDeterministic(g, Options{Seed: 0})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return float64(out.Result.MaxAwake()) / math.Log2(float64(n))
	}
	small, large := ratio(32), ratio(256)
	if large > 2*small {
		t.Errorf("awake/log2(n) grew from %.2f to %.2f; not logarithmic", small, large)
	}
}

func TestDeterministicRoundComplexityScalesWithN(t *testing.T) {
	// With IDs in [1, N], doubling the ID space must roughly double
	// the rounds (the O(nN log n) dependence on N).
	g1 := graph.RandomConnected(24, 60, graph.GenConfig{Seed: 9})
	out1, err := RunDeterministic(g1, Options{Seed: 0})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g2 := graph.RandomConnected(24, 60, graph.GenConfig{Seed: 9})
	graph.RandomIDs(g2, 4*int64(g2.N()), 5)
	out2, err := RunDeterministic(g2, Options{Seed: 0})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out2.Result.Rounds <= out1.Result.Rounds {
		t.Errorf("rounds did not grow with ID space: N=n gave %d, N=4n gave %d",
			out1.Result.Rounds, out2.Result.Rounds)
	}
}

func TestDeterministicRespectsBitCap(t *testing.T) {
	g := graph.RandomConnected(32, 80, graph.GenConfig{Seed: 10})
	if _, err := RunDeterministic(g, Options{Seed: 0, BitCap: DefaultBitCap(g)}); err != nil {
		t.Fatalf("run with CONGEST bit cap: %v", err)
	}
}

func TestDeterministicFragmentDecayMonotone(t *testing.T) {
	g := graph.RandomConnected(60, 150, graph.GenConfig{Seed: 11})
	out, err := RunDeterministic(g, Options{Seed: 0, RecordPhases: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	counts := out.FragmentsPerPhase
	if len(counts) == 0 || counts[len(counts)-1] != 1 {
		t.Fatalf("fragment counts = %v, want monotone to 1", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] && counts[i-1] != 1 {
			t.Errorf("phase %d: fragments %d -> %d did not strictly decrease", i, counts[i-1], counts[i])
		}
	}
}

func TestDeterministicSingleAndTwoNodes(t *testing.T) {
	g1 := graph.MustNew(1, nil)
	if _, err := RunDeterministic(g1, Options{}); err != nil {
		t.Fatalf("n=1: %v", err)
	}
	g2 := graph.Path(2, graph.GenConfig{Seed: 12})
	checkMST(t, g2, RunDeterministic, Options{})
}

func TestColorString(t *testing.T) {
	for c, want := range map[Color]string{Blue: "blue", Red: "red", Orange: "orange", Black: "black", Green: "green", ColorNone: "none"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
