package core

import (
	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/metrics"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// nodeCtx bundles the per-node execution state shared by the
// algorithms: the sim handle, the LDT state, and the latest knowledge
// about neighbors gathered through Transmit-Adjacent.
type nodeCtx struct {
	nd  *sim.Node
	st  *ldt.State
	n   int
	blk int64
	// acceptBudget is the deterministic algorithms' valid-incoming-MOE
	// cap (the paper's 3; configurable for ablations).
	acceptBudget int64

	// phase and stepAwake drive the observability attribution: phase is
	// the current 1-based phase, stepAwake the node's awake count when
	// the current step began (see beginPhase / stepDone).
	phase     int
	stepAwake int64

	nbrFragID []int64 // per port, as of the last fragment TA
	nbrLevel  []int
	nbrID     []int64 // neighbor node IDs (learned over the wire)
}

func newNodeCtx(nd *sim.Node, st *ldt.State) *nodeCtx {
	deg := nd.Degree()
	c := &nodeCtx{
		nd:           nd,
		st:           st,
		n:            nd.N(),
		blk:          ldt.BlockLen(nd.N()),
		acceptBudget: MaxValidIncomingMOEs,
		nbrFragID:    make([]int64, deg),
		nbrLevel:     make([]int, deg),
		nbrID:        make([]int64, deg),
	}
	for i := range c.nbrFragID {
		c.nbrFragID[i] = -1
		c.nbrID[i] = -1
	}
	return c
}

// beginPhase marks the start of 1-based phase p for trace/metrics
// attribution. Both sinks are nil-safe, so callers never branch.
func (c *nodeCtx) beginPhase(p int) {
	c.phase = p
	c.nd.EmitPhase(p, c.st.FragID)
	c.stepAwake = c.nd.AwakeCount()
}

// stepDone attributes the awake rounds spent since the previous
// stepDone (or beginPhase) to the given step: one trace event plus the
// awake/step/<step> and awake/phase/<NNN> counters. Steps a node slept
// through entirely are skipped to keep the event volume proportional
// to awake work.
func (c *nodeCtx) stepDone(step trace.Step) {
	aw := c.nd.AwakeCount()
	d := aw - c.stepAwake
	c.stepAwake = aw
	if d == 0 {
		return
	}
	c.nd.EmitStep(c.phase, step, d)
	if m := c.nd.Metrics(); m != nil {
		m.Add(metrics.StepName(step.String()), d)
		m.Add(metrics.PhaseName(c.phase), d)
	}
}

// taFragMsg announces (ID, fragment, level) to all neighbors.
type taFragMsg struct {
	id     int64
	fragID int64
	level  int
}

func (m taFragMsg) Bits() int {
	return ldt.FieldBits(m.id) + ldt.FieldBits(m.fragID) + ldt.FieldBits(int64(m.level))
}

func (taFragMsg) MsgKind() string { return "ta-frag" }

// taFragment runs one Transmit-Adjacent block in which every node
// refreshes its per-port neighbor knowledge.
func (c *nodeCtx) taFragment(start int64) {
	out := make(sim.Outbox, c.nd.Degree())
	for p := 0; p < c.nd.Degree(); p++ {
		out[p] = taFragMsg{id: c.nd.ID(), fragID: c.st.FragID, level: c.st.Level}
	}
	in := ldt.TransmitAdjacent(c.nd, start, out)
	for p := 0; p < c.nd.Degree(); p++ {
		if raw, ok := in[p]; ok {
			msg := raw.(taFragMsg)
			c.nbrFragID[p] = msg.fragID
			c.nbrLevel[p] = msg.level
			c.nbrID[p] = msg.id
		}
	}
}

// edgeKey returns the globally consistent tie-broken key of the edge on
// port p, using node IDs (both endpoints compute the same key).
func (c *nodeCtx) edgeKey(p int) graph.WeightKey {
	a, b := c.nd.ID(), c.nbrID[p]
	if a > b {
		a, b = b, a
	}
	return graph.WeightKey{W: c.nd.PortWeight(p), A: a, B: b}
}

// moeInfo identifies a fragment's minimum outgoing edge: the owning
// node (by ID) and its port.
type moeInfo struct {
	key       graph.WeightKey
	ownerID   int64
	ownerPort int
}

func (m moeInfo) Bits() int {
	return ldt.FieldBits(m.key.W) + ldt.FieldBits(m.key.A) + ldt.FieldBits(m.key.B) +
		ldt.FieldBits(m.ownerID) + ldt.FieldBits(int64(m.ownerPort))
}

// localMOE returns this node's minimum outgoing edge candidate, or nil
// if all neighbors are in the same fragment.
func (c *nodeCtx) localMOE() *ldt.MinItem {
	best := -1
	var bestKey graph.WeightKey
	for p := 0; p < c.nd.Degree(); p++ {
		if c.nbrFragID[p] == c.st.FragID {
			continue
		}
		k := c.edgeKey(p)
		if best < 0 || k.Less(bestKey) {
			best, bestKey = p, k
		}
	}
	if best < 0 {
		return nil
	}
	return &ldt.MinItem{
		Key:     bestKey,
		Payload: moeInfo{key: bestKey, ownerID: c.nd.ID(), ownerPort: best},
	}
}

// upcastMOE runs the Upcast-Min block for MOE discovery; the root's
// return value identifies the fragment MOE (nil = fragment spans the
// graph).
func (c *nodeCtx) upcastMOE(start int64) *moeInfo {
	mine := c.localMOE()
	if mine != nil {
		c.nd.Metrics().Add("moe/candidates", 1)
	}
	res := ldt.UpcastMin(c.nd, c.st, start, mine)
	if res == nil {
		return nil
	}
	info := res.Payload.(moeInfo)
	return &info
}

// bcastMOEMsg is the Fragment-Broadcast payload carrying the fragment
// MOE identity plus the phase coin flip (randomized algorithm only;
// coin is unused deterministically).
type bcastMOEMsg struct {
	exists bool
	moe    moeInfo
	coin   bool // true = heads
}

func (m bcastMOEMsg) Bits() int { return 2 + m.moe.Bits() }

func (bcastMOEMsg) MsgKind() string { return "bcast-moe" }

// broadcastMOE distributes the root's MOE knowledge (and coin) to the
// whole fragment.
func (c *nodeCtx) broadcastMOE(start int64, rootMsg *bcastMOEMsg) bcastMOEMsg {
	var payload interface{}
	if c.st.IsRoot() {
		payload = *rootMsg
	}
	got := ldt.Broadcast(c.nd, c.st, start, payload)
	return got.(bcastMOEMsg)
}

// isMOEOwner reports whether this node owns the fragment MOE described
// by info.
func (c *nodeCtx) isMOEOwner(info *moeInfo) bool {
	return info != nil && info.ownerID == c.nd.ID()
}

// boolPayload is a Sizer-friendly boolean wire value.
type boolPayload bool

func (boolPayload) Bits() int { return 1 }

func (boolPayload) MsgKind() string { return "bool" }

// upcastFirst runs an Up block that propagates the first non-nil value
// toward the root (used for single-owner facts such as MOE validity).
func (c *nodeCtx) upcastFirst(start int64, mine interface{}) interface{} {
	return ldt.Up(c.nd, c.st, start, mine, func(own interface{}, fromChildren map[int]interface{}) interface{} {
		if own != nil {
			return own
		}
		for _, child := range c.st.Children {
			if v, ok := fromChildren[child]; ok && v != nil {
				return v
			}
		}
		return nil
	})
}
