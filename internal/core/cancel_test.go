package core

import (
	"errors"
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

// TestRunCanceled pins the cancellation contract on both engines: a
// closed Options.Cancel channel aborts the run at the first busy-round
// barrier with sim.ErrCanceled, node programs unwind cleanly (no
// panic, no hang), and a never-closed channel is invisible — the run
// completes with the exact same outcome as an uncancellable one.
func TestRunCanceled(t *testing.T) {
	g := graph.RandomConnected(48, 96, graph.GenConfig{Seed: 7})
	for _, eng := range []sim.Engine{sim.EngineEvent, sim.EngineGoroutine} {
		closed := make(chan struct{})
		close(closed)
		_, err := RunRandomized(g, Options{Engine: eng, Seed: 3, Cancel: closed})
		if !errors.Is(err, sim.ErrCanceled) {
			t.Errorf("engine %v: pre-closed cancel: got err %v, want ErrCanceled", eng, err)
		}
		if !errors.Is(err, sim.ErrAborted) {
			t.Errorf("engine %v: canceled run should classify as aborted, got %v", eng, err)
		}

		open := make(chan struct{})
		withCancel, err := RunRandomized(g, Options{Engine: eng, Seed: 3, Cancel: open})
		if err != nil {
			t.Fatalf("engine %v: open cancel channel failed the run: %v", eng, err)
		}
		plain, err := RunRandomized(g, Options{Engine: eng, Seed: 3})
		if err != nil {
			t.Fatalf("engine %v: plain run failed: %v", eng, err)
		}
		if got, want := graph.TotalWeight(withCancel.MSTEdges), graph.TotalWeight(plain.MSTEdges); got != want {
			t.Errorf("engine %v: open cancel channel changed the tree: weight %d vs %d", eng, got, want)
		}
		if withCancel.Result.Rounds != plain.Result.Rounds {
			t.Errorf("engine %v: open cancel channel changed rounds: %d vs %d", eng, withCancel.Result.Rounds, plain.Result.Rounds)
		}
	}
}
