package core

import (
	"testing"

	"sleepmst/internal/graph"
)

// The accept-budget ablation: the paper caps valid incoming MOEs at 3
// (supergraph degree <= 4, 5-color palette). Smaller budgets remain
// correct — the supergraph just gets sparser and merging slower.

func TestAcceptBudgetAblationCorrectness(t *testing.T) {
	g := graph.RandomConnected(60, 180, graph.GenConfig{Seed: 31})
	for budget := 1; budget <= MaxValidIncomingMOEs; budget++ {
		for _, run := range []func(*graph.Graph, Options) (*Outcome, error){RunDeterministic, RunLogStar} {
			out, err := run(g, Options{AcceptBudget: budget})
			if err != nil {
				t.Fatalf("budget %d: %v", budget, err)
			}
			if !graph.SameEdgeSet(out.MSTEdges, graph.Kruskal(g)) {
				t.Fatalf("budget %d: wrong MST", budget)
			}
		}
	}
}

func TestAcceptBudgetAblationConvergence(t *testing.T) {
	// The budget changes the supergraph shape (degree <= budget+1) but
	// not the guarantees: every setting converges within the phase
	// bound, and the per-phase round cost is budget-independent (it is
	// a function of n and N only). Interestingly the phase count is
	// NOT monotone in the budget — a budget-1 supergraph is a
	// near-matching whose Blue set covers about half the fragments —
	// so we deliberately assert only the guarantees.
	g := graph.RandomConnected(80, 240, graph.GenConfig{Seed: 32})
	phaseLen := detPhaseBlocks(g.MaxID()) * (2*int64(g.N()) + 1)
	for budget := 1; budget <= MaxValidIncomingMOEs; budget++ {
		out, err := RunDeterministic(g, Options{AcceptBudget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if out.Phases > DeterministicPhaseBound(g.N()) {
			t.Errorf("budget %d: %d phases exceeds bound", budget, out.Phases)
		}
		if out.Result.Rounds > int64(out.Phases)*phaseLen {
			t.Errorf("budget %d: %d rounds exceeds %d phases x %d layout",
				budget, out.Result.Rounds, out.Phases, phaseLen)
		}
	}
}

func TestAcceptBudgetValidation(t *testing.T) {
	g := graph.Path(4, graph.GenConfig{Seed: 33})
	for _, bad := range []int{-1, 4, 100} {
		if _, err := RunDeterministic(g, Options{AcceptBudget: bad}); err == nil {
			t.Errorf("budget %d accepted, want error", bad)
		}
	}
}
