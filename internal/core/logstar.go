package core

import (
	"sort"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// This file implements the Corollary 1 variant (§2.3 Remark): the
// O(nN)-round Fast-Awake-Coloring is replaced by a Cole–Vishkin style
// deterministic coloring of the fragment supergraph, which needs only
// O(log* N) iterations. The result is an MST algorithm with
// O(log n log* n) awake complexity and O(n log n log* n) rounds — no
// dependence on the ID space size N in the round complexity.
//
// The supergraph G' (fragments + accepted MOE edges) is oriented into
// a rooted forest: every G' edge is the accepted outgoing MOE of at
// least one of its two fragments, and following outgoing MOEs can only
// produce 2-cycles (mutual MOEs), which are broken toward the smaller
// fragment ID. Cole–Vishkin then maintains a coloring that is proper
// across parent edges — and hence across every G' edge — shrinking the
// palette from [1, N] to at most 8 colors in O(log* N) iterations.
// Eight final mini-stages (one per CV color class, which is an
// independent set) assign the paper's 5-color priority palette exactly
// as Fast-Awake-Coloring does, so the merging analysis is unchanged.

// cvMaxColors is the CV fixed-point palette bound: values in [0, 7].
const cvMaxColors = 8

// CVIterations returns the number of Cole–Vishkin iterations needed to
// shrink colors in [0, maxColor] to values < 8. All nodes compute it
// locally from N, so the block layout stays globally known.
func CVIterations(maxColor int64) int {
	iters := 0
	for maxColor >= cvMaxColors {
		bits := int64(0)
		for v := maxColor; v > 0; v >>= 1 {
			bits++
		}
		// New colors are 2k+b with k < bits, so at most 2(bits-1)+1.
		maxColor = 2*(bits-1) + 1
		iters++
	}
	return iters
}

// cvStep is one Cole–Vishkin color update: given own and parent colors
// (which must differ), return 2k+b where k is the lowest differing bit
// index and b is own bit k.
func cvStep(own, parent int64) int64 {
	diff := own ^ parent
	if diff == 0 {
		panic("core: CV invariant violated — child and parent share a color")
	}
	k := int64(0)
	for diff&1 == 0 {
		diff >>= 1
		k++
	}
	return 2*k + (own>>k)&1
}

// cvRootStep updates a CV root against a fake parent color.
func cvRootStep(own int64) int64 {
	fake := int64(0)
	if own == 0 {
		fake = 1
	}
	return cvStep(own, fake)
}

// cvColorMsg carries a fragment's current CV color.
type cvColorMsg struct {
	fragID int64
	color  int64
}

func (m cvColorMsg) Bits() int { return ldt.FieldBits(m.fragID) + ldt.FieldBits(m.color) }

func (cvColorMsg) MsgKind() string { return "cv-color" }

// cvColorList is the Up/Broadcast payload: CV colors of <= 4 neighbors.
type cvColorList []cvColorMsg

func (l cvColorList) Bits() int {
	b := 3
	for _, m := range l {
		b += m.Bits()
	}
	return b
}

func (cvColorList) MsgKind() string { return "cv-colors" }

// parentInfo is the orientation broadcast payload.
type parentInfo struct {
	hasParent bool
	fragID    int64 // the CV-parent fragment
}

func (m parentInfo) Bits() int { return 1 + ldt.FieldBits(m.fragID) }

func (parentInfo) MsgKind() string { return "cv-parent" }

// logStarBlocks returns the block count of one LogStar-MST phase.
func logStarBlocks(maxID int64) int64 {
	k := int64(CVIterations(maxID))
	// 9 step-(i) blocks, 2 orientation blocks, 3 per CV iteration,
	// 4 per mini-stage (8 stages), then 1+3+3 merge blocks.
	return 9 + 2 + 3*k + 4*cvMaxColors + 7
}

// logStarColoring produces the 5-color priority palette for this
// node's fragment using CV + 8 mini-stages. mutualMOE reports whether
// the fragment's outgoing MOE edge is also the target's MOE (known at
// the owner from the dbTAMOE exchange), outAccepted whether the
// outgoing direction was accepted by the target, and inAccepted
// whether this fragment itself accepted the reverse direction of that
// same edge; all three are meaningful only at the owner.
func (c *nodeCtx) logStarColoring(bs func(int64) int64, nbrInfo nbrList,
	owner bool, ownerPort int, outAccepted, mutualMOE, inAccepted bool) Color {
	if len(nbrInfo) == 0 {
		// Isolated in G': Blue by the priority rule (no used colors).
		return Blue
	}
	maxID := c.nd.MaxID()
	iters := CVIterations(maxID)

	// Orientation: the fragment has a CV parent iff its outgoing MOE
	// was accepted. When the edge is a mutual MOE accepted in BOTH
	// directions, exactly one side may point (else a 2-cycle): the
	// larger fragment ID takes the smaller as parent. A mutual edge
	// accepted in only one direction is an ordinary parent edge for
	// the accepted direction — treating it as a tie to break would
	// leave the edge uncovered by the forest and break CV properness.
	var mine interface{}
	if owner {
		pi := parentInfo{}
		if outAccepted {
			target := c.nbrFragID[ownerPort]
			bothAccepted := mutualMOE && inAccepted
			if !bothAccepted || target < c.st.FragID {
				pi = parentInfo{hasParent: true, fragID: target}
			}
		}
		mine = pi
	}
	rootGot := c.upcastFirst(bs(9), mine)
	var payload interface{}
	if c.st.IsRoot() {
		if rootGot == nil {
			rootGot = parentInfo{}
		}
		payload = rootGot
	}
	parent := ldt.Broadcast(c.nd, c.st, bs(10), payload).(parentInfo)

	// Hosts of G' edges, for the per-iteration color exchange.
	hostPorts := make([]int, 0, 4)
	for _, e := range nbrInfo {
		if e.hostID == c.nd.ID() {
			hostPorts = append(hostPorts, e.hostPort)
		}
	}

	// Cole–Vishkin iterations. Every member tracks its fragment's CV
	// color and all neighbors' colors in lockstep.
	cvColor := c.st.FragID
	base := int64(11)
	for it := 0; it < iters; it++ {
		ib := base + 3*int64(it)
		// TA: hosts exchange current colors with all G' neighbors.
		var got []cvColorMsg
		if len(hostPorts) > 0 {
			out := make(sim.Outbox, len(hostPorts))
			for _, p := range hostPorts {
				out[p] = cvColorMsg{fragID: c.st.FragID, color: cvColor}
			}
			in := ldt.TransmitAdjacent(c.nd, bs(ib), out)
			for _, p := range hostPorts {
				if raw, ok := in[p]; ok {
					got = append(got, raw.(cvColorMsg))
				}
			}
		}
		// Up + Broadcast: all members learn the neighbors' colors.
		agg := ldt.Up(c.nd, c.st, bs(ib+1), cvColorList(got),
			func(own interface{}, fromChildren map[int]interface{}) interface{} {
				merged := append(cvColorList(nil), own.(cvColorList)...)
				for _, v := range fromChildren {
					if v != nil {
						merged = append(merged, v.(cvColorList)...)
					}
				}
				return dedupeCV(merged)
			})
		var bc interface{}
		if c.st.IsRoot() {
			bc = agg.(cvColorList)
		}
		nbrCV := ldt.Broadcast(c.nd, c.st, bs(ib+2), bc).(cvColorList)

		// Local lockstep update.
		if parent.hasParent {
			pc, ok := findCV(nbrCV, parent.fragID)
			if !ok {
				panic("core: CV parent color missing")
			}
			cvColor = cvStep(cvColor, pc)
		} else {
			cvColor = cvRootStep(cvColor)
		}
	}

	// Mini-stages: the stage structure of Fast-Awake-Coloring, keyed by
	// CV color class in [0, 8) instead of by fragment ID in [1, N].
	return c.paletteStages(bs, base+3*int64(iters), nbrInfo, hostPorts, cvColor)
}

// dedupeCV removes duplicate fragment entries from a CV color list.
func dedupeCV(l cvColorList) cvColorList {
	sort.Slice(l, func(i, j int) bool { return l[i].fragID < l[j].fragID })
	out := l[:0]
	for i, m := range l {
		if i == 0 || m.fragID != out[len(out)-1].fragID {
			out = append(out, m)
		}
	}
	return out
}

func findCV(l cvColorList, fragID int64) (int64, bool) {
	for _, m := range l {
		if m.fragID == fragID {
			return m.color, true
		}
	}
	return 0, false
}

// paletteStages assigns the 5-color palette over 8 CV-class
// mini-stages. Stage c (4 blocks) lets every fragment of CV class c
// pick the highest-priority color unused by its neighbors, then
// propagates the choice into neighboring fragments, exactly like one
// Fast-Awake-Coloring stage.
func (c *nodeCtx) paletteStages(bs func(int64) int64, stageBase int64, nbrInfo nbrList,
	hostPorts []int, myCV int64) Color {
	// Rather than tracking neighbors' CV classes, every host listens in
	// every stage's TA block — 8 stages, so still O(1) awake rounds —
	// and colors are learned as they appear.
	nbrColors := make(map[int64]Color)
	myColor := ColorNone
	for class := int64(0); class < cvMaxColors; class++ {
		sb := func(b int64) int64 { return bs(stageBase + 4*class + b) }
		if myCV == class {
			// Member: pick color, broadcast, push to neighbors.
			var payload interface{}
			if c.st.IsRoot() {
				used := make(map[Color]bool, len(nbrInfo))
				for _, e := range nbrInfo {
					if col, ok := nbrColors[e.fragID]; ok {
						used[col] = true
					}
				}
				pick := ColorNone
				for _, col := range palette {
					if !used[col] {
						pick = col
						break
					}
				}
				if pick == ColorNone {
					panic("core: palette exhausted in log* coloring")
				}
				payload = colorMsg{fragID: c.st.FragID, color: pick}
			}
			cm := ldt.Broadcast(c.nd, c.st, sb(0), payload).(colorMsg)
			myColor = cm.color
			if len(hostPorts) > 0 {
				out := make(sim.Outbox, len(hostPorts))
				for _, p := range hostPorts {
					out[p] = colorMsg{fragID: c.st.FragID, color: myColor}
				}
				ldt.TransmitAdjacent(c.nd, sb(1), out)
			}
			continue
		}
		// Neighbor role: hosts listen; colors are upcast + broadcast.
		var got interface{}
		if len(hostPorts) > 0 {
			in := ldt.TransmitAdjacent(c.nd, sb(1), nil)
			var lm []colorMsg
			for _, p := range hostPorts {
				if raw, ok := in[p]; ok {
					lm = append(lm, raw.(colorMsg))
				}
			}
			if len(lm) > 0 {
				got = colorMsgList(lm)
			}
		}
		agg := ldt.Up(c.nd, c.st, sb(2), got,
			func(own interface{}, fromChildren map[int]interface{}) interface{} {
				var merged colorMsgList
				if own != nil {
					merged = append(merged, own.(colorMsgList)...)
				}
				for _, v := range fromChildren {
					if v != nil {
						merged = append(merged, v.(colorMsgList)...)
					}
				}
				if len(merged) == 0 {
					return nil
				}
				return merged
			})
		var bc interface{}
		if c.st.IsRoot() {
			if agg == nil {
				agg = colorMsgList{}
			}
			bc = agg
		}
		res := ldt.Broadcast(c.nd, c.st, sb(3), bc).(colorMsgList)
		for _, m := range res {
			nbrColors[m.fragID] = m.color
		}
	}
	return myColor
}

// colorMsgList is a small list of palette color announcements.
type colorMsgList []colorMsg

func (l colorMsgList) Bits() int {
	b := 3
	for _, m := range l {
		b += m.Bits()
	}
	return b
}

func (colorMsgList) MsgKind() string { return "color-list" }

// logStarPhase is detPhase with the coloring swapped out.
func (c *nodeCtx) logStarPhase(phaseStart int64) (done bool) {
	bs := func(b int64) int64 { return phaseStart + b*c.blk }

	// --- Step (i): identical to Deterministic-MST ----------------------
	c.taFragment(bs(dbTAFrag))
	moe := c.upcastMOE(bs(dbUpMOE))
	var rootMsg *bcastMOEMsg
	if c.st.IsRoot() {
		rootMsg = &bcastMOEMsg{}
		if moe != nil {
			rootMsg.exists = true
			rootMsg.moe = *moe
		}
	}
	ph := c.broadcastMOE(bs(dbBcastMOE), rootMsg)
	c.stepDone(trace.StepFindMOE)
	if !ph.exists {
		return true
	}
	owner := c.isMOEOwner(&ph.moe)

	c.nd.Metrics().Add("moe/probes", int64(c.nd.Degree()))
	out := make(sim.Outbox, c.nd.Degree())
	for p := 0; p < c.nd.Degree(); p++ {
		out[p] = taMOEMsg{fragID: c.st.FragID, isMOE: owner && p == ph.moe.ownerPort}
	}
	in := ldt.TransmitAdjacent(c.nd, bs(dbTAMOE), out)
	c.stepDone(trace.StepMarkMOE)
	var incomingPorts []int
	incFrag := make(map[int]int64)
	mutualMOE := false
	for p := 0; p < c.nd.Degree(); p++ {
		raw, ok := in[p]
		if !ok {
			continue
		}
		msg := raw.(taMOEMsg)
		if msg.isMOE && msg.fragID != c.st.FragID {
			incomingPorts = append(incomingPorts, p)
			incFrag[p] = msg.fragID
			if owner && p == ph.moe.ownerPort {
				mutualMOE = true
			}
		}
	}
	sort.Ints(incomingPorts)

	childCount := make(map[int]int64)
	total := ldt.Up(c.nd, c.st, bs(dbUpCount), intPayload(len(incomingPorts)),
		func(own interface{}, fromChildren map[int]interface{}) interface{} {
			sum := int64(own.(intPayload))
			for port, v := range fromChildren {
				cnt := int64(v.(intPayload))
				childCount[port] = cnt
				sum += cnt
			}
			return intPayload(sum)
		})
	budget := int64(total.(intPayload))
	if budget > c.acceptBudget {
		budget = c.acceptBudget
	}
	validIn := make(map[int]bool, len(incomingPorts))
	ldt.Down(c.nd, c.st, bs(dbDownToken), intPayload(budget),
		func(received interface{}) map[int]interface{} {
			var b int64
			if received != nil {
				b = int64(received.(intPayload))
			}
			for _, p := range incomingPorts {
				if b == 0 {
					break
				}
				validIn[p] = true
				b--
			}
			outs := make(map[int]interface{})
			for _, child := range c.st.Children {
				if b == 0 {
					break
				}
				give := childCount[child]
				if give > b {
					give = b
				}
				if give > 0 {
					outs[child] = intPayload(give)
					b -= give
				}
			}
			return outs
		})

	taOut := make(sim.Outbox, len(incomingPorts))
	for _, p := range incomingPorts {
		taOut[p] = validMsg{accepted: validIn[p]}
	}
	outAccepted := false
	var myEntries []nbrEntry
	if len(taOut) > 0 || owner {
		vin := ldt.TransmitAdjacent(c.nd, bs(dbTAValid), taOut)
		if owner {
			if raw, ok := vin[ph.moe.ownerPort]; ok && raw.(validMsg).accepted {
				outAccepted = true
				myEntries = append(myEntries, nbrEntry{
					fragID:   c.nbrFragID[ph.moe.ownerPort],
					hostID:   c.nd.ID(),
					hostPort: ph.moe.ownerPort,
				})
			}
		}
	}
	for _, p := range incomingPorts {
		if validIn[p] {
			myEntries = append(myEntries, nbrEntry{fragID: incFrag[p], hostID: c.nd.ID(), hostPort: p})
		}
	}
	c.stepDone(trace.StepValidate)
	agg := ldt.Up(c.nd, c.st, bs(dbUpNbr), nbrList(myEntries),
		func(own interface{}, fromChildren map[int]interface{}) interface{} {
			lists := [][]nbrEntry{own.(nbrList)}
			for _, v := range fromChildren {
				if v != nil {
					lists = append(lists, v.(nbrList))
				}
			}
			return mergeEntries(lists...)
		})
	var bcastPayload interface{}
	if c.st.IsRoot() {
		bcastPayload = agg.(nbrList)
	}
	nbrInfo := ldt.Broadcast(c.nd, c.st, bs(dbBcastNbr), bcastPayload).(nbrList)
	if c.st.IsRoot() {
		c.nd.EmitNbrs(c.phase, len(nbrInfo))
	}
	c.stepDone(trace.StepNbrInfo)

	// --- Step (ii): log* coloring + merging -----------------------------
	ownerPort := -1
	inAccepted := false
	if owner {
		ownerPort = ph.moe.ownerPort
		inAccepted = validIn[ownerPort]
	}
	myColor := c.logStarColoring(bs, nbrInfo, owner, ownerPort, outAccepted, mutualMOE, inAccepted)
	c.stepDone(trace.StepColoring)

	mergeBase := logStarBlocks(c.nd.MaxID()) - 7
	var cmdPayload interface{}
	if c.st.IsRoot() {
		cmd := mergeCmd{}
		if myColor == Blue && len(nbrInfo) > 0 {
			e := nbrInfo[0]
			cmd = mergeCmd{merging: true, hostID: e.hostID, hostPort: e.hostPort}
		}
		cmdPayload = cmd
	}
	cmd := ldt.Broadcast(c.nd, c.st, bs(mergeBase), cmdPayload).(mergeCmd)
	c.stepDone(trace.StepDecide)
	dec := ldt.NoMerge
	if cmd.merging {
		dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
		if cmd.hostID == c.nd.ID() {
			dec.AttachPort = cmd.hostPort
		}
	}
	ldt.MergingFragments(c.nd, c.st, bs(mergeBase+1), dec)

	dec = ldt.NoMerge
	if myColor == Blue && len(nbrInfo) == 0 {
		dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
		if owner {
			dec.AttachPort = ph.moe.ownerPort
		}
	}
	ldt.MergingFragments(c.nd, c.st, bs(mergeBase+4), dec)
	c.stepDone(trace.StepMerge)
	return false
}

// RunLogStar executes the Corollary 1 algorithm: O(log n log* n) awake
// complexity and O(n log n log* n) rounds, independent of the ID
// space size.
func RunLogStar(g *graph.Graph, opts Options) (*Outcome, error) {
	if err := checkInput(g); err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = DeterministicPhaseBound(g.N())
	}
	budget, err := opts.acceptBudget()
	if err != nil {
		return nil, err
	}
	states := ldt.SingletonStates(g)
	rec := newPhaseRecorder(opts.RecordPhases, g.N(), maxPhases)
	phasesRun := make([]int, g.N())

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		c.acceptBudget = budget
		phaseLen := logStarBlocks(nd.MaxID()) * c.blk
		for p := 0; p < maxPhases; p++ {
			c.beginPhase(p + 1)
			done := c.logStarPhase(1 + int64(p)*phaseLen)
			rec.record(p, nd.Index(), c.st.FragID)
			phasesRun[nd.Index()] = p + 1
			if done {
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	maxP := 0
	for _, p := range phasesRun {
		if p > maxP {
			maxP = p
		}
	}
	return finishOutcome(g, states, res, maxP, rec.counts(maxP))
}
