package core

import (
	"errors"
	"fmt"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
)

// This file builds the classic sleeping-model primitives — leader
// election, spanning tree construction, and global aggregation — on
// top of the awake-optimal MST machinery. The paper contrasts its
// result with Barenboim–Maimon's O(log n)-awake spanning tree and
// leader election [2]; here those problems fall out of the MST
// construction: the final fragment is a spanning tree whose root is a
// natural leader, and one extra upcast/broadcast block pair turns it
// into an O(1)-awake aggregation backbone.

// LeaderResult reports a leader election.
type LeaderResult struct {
	// LeaderID is the elected leader's node ID; every node knows it.
	LeaderID int64
	// KnownBy[i] is what node i believes the leader to be (test hook;
	// all entries equal LeaderID on success).
	KnownBy []int64
	// Result carries the run's metrics.
	Result *sim.Result
}

// ElectLeader elects a unique leader known to every node in O(log n)
// awake rounds w.h.p.: the root of the final MST fragment. (Any
// spanning structure would do — the MST machinery already provides
// one with optimal awake complexity.)
func ElectLeader(g *graph.Graph, opts Options) (*LeaderResult, error) {
	out, err := RunRandomized(g, opts)
	if err != nil {
		return nil, err
	}
	res := &LeaderResult{KnownBy: make([]int64, g.N()), Result: out.Result}
	for v, st := range out.States {
		res.KnownBy[v] = st.FragID // fragment ID == root ID == leader
	}
	res.LeaderID = res.KnownBy[0]
	for v, id := range res.KnownBy {
		if id != res.LeaderID {
			return nil, fmt.Errorf("core: leader disagreement at node %d: %d vs %d", v, id, res.LeaderID)
		}
	}
	return res, nil
}

// SpanningTree constructs a rooted spanning tree (with parent/child
// knowledge and root distance at every node) in O(log n) awake rounds
// w.h.p. — the Barenboim–Maimon guarantee, here with the bonus that
// the tree is the MST.
func SpanningTree(g *graph.Graph, opts Options) (*Outcome, error) {
	return RunRandomized(g, opts)
}

// AggregateResult reports a global aggregation.
type AggregateResult struct {
	// Value is the global minimum; every node learned it.
	Value int64
	// PerNode[i] is the value node i ended up holding (test hook).
	PerNode []int64
	// Result carries the run's metrics.
	Result *sim.Result
	// Phases is the number of MST phases before the aggregation.
	Phases int
}

// AggregateMin computes the global minimum of one int64 per node and
// delivers it to every node, in O(log n) awake rounds w.h.p.: the MST
// construction provides the LDT backbone, then a single Upcast-Min
// block followed by one Fragment-Broadcast block (O(1) extra awake
// rounds) completes the aggregation. Other decomposable aggregates
// (max, sum, count) follow the same pattern.
func AggregateMin(g *graph.Graph, values []int64, opts Options) (*AggregateResult, error) {
	if len(values) != g.N() {
		return nil, fmt.Errorf("core: %d values for %d nodes", len(values), g.N())
	}
	if err := checkInput(g); err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = RandomizedPhaseBound(g.N())
	}
	states := ldt.SingletonStates(g)
	perNode := make([]int64, g.N())
	phasesRun := make([]int, g.N())

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		blkPerPhase := int64(randPhaseBlocks) * c.blk
		donePhase := -1
		for p := 0; p < maxPhases; p++ {
			c.beginPhase(p + 1)
			if c.randPhase(1 + int64(p)*blkPerPhase) {
				donePhase = p
				break
			}
		}
		if donePhase < 0 {
			return errors.New("mst construction did not converge")
		}
		phasesRun[nd.Index()] = donePhase + 1
		// Epilogue: all nodes finished in the same phase (the spanning
		// fragment detects termination globally), so two more blocks at
		// a globally known offset complete the aggregation.
		epi := 1 + int64(donePhase+1)*blkPerPhase
		mine := &ldt.MinItem{Key: graph.WeightKey{W: values[nd.Index()]}, Payload: intPayload(values[nd.Index()])}
		rootMin := ldt.UpcastMin(c.nd, c.st, epi, mine)
		var payload interface{}
		if c.st.IsRoot() {
			payload = intPayload(rootMin.Key.W)
		}
		got := ldt.Broadcast(c.nd, c.st, epi+c.blk, payload).(intPayload)
		perNode[nd.Index()] = int64(got)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{PerNode: perNode, Result: res, Phases: phasesRun[0]}
	out.Value = perNode[0]
	for v, x := range perNode {
		if x != out.Value {
			return nil, fmt.Errorf("core: aggregation disagreement at node %d: %d vs %d", v, x, out.Value)
		}
	}
	return out, nil
}

// BroadcastFrom delivers the value held by the source node to every
// node in O(log n) awake rounds w.h.p.: MST construction, an upcast of
// the source's value to the root, and a broadcast down.
func BroadcastFrom(g *graph.Graph, source int, value int64, opts Options) (*AggregateResult, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	if err := checkInput(g); err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = RandomizedPhaseBound(g.N())
	}
	states := ldt.SingletonStates(g)
	perNode := make([]int64, g.N())

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		blkPerPhase := int64(randPhaseBlocks) * c.blk
		donePhase := -1
		for p := 0; p < maxPhases; p++ {
			c.beginPhase(p + 1)
			if c.randPhase(1 + int64(p)*blkPerPhase) {
				donePhase = p
				break
			}
		}
		if donePhase < 0 {
			return errors.New("mst construction did not converge")
		}
		epi := 1 + int64(donePhase+1)*blkPerPhase
		var mine interface{}
		if nd.Index() == source {
			mine = intPayload(value)
		}
		rootGot := c.upcastFirst(epi, mine)
		var payload interface{}
		if c.st.IsRoot() {
			if rootGot == nil {
				return errors.New("source value never reached the root")
			}
			payload = rootGot
		}
		got := ldt.Broadcast(c.nd, c.st, epi+c.blk, payload).(intPayload)
		perNode[nd.Index()] = int64(got)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{PerNode: perNode, Result: res, Value: perNode[0]}
	for v, x := range perNode {
		if x != value {
			return nil, fmt.Errorf("core: broadcast failed at node %d: got %d want %d", v, x, value)
		}
	}
	return out, nil
}
