// Package core implements the paper's contribution: awake-optimal
// distributed MST algorithms in the sleeping model.
//
//   - RunRandomized — Algorithm Randomized-MST (§2.2): O(log n) awake
//     complexity w.h.p., O(n log n) rounds.
//   - RunDeterministic — Algorithm Deterministic-MST (§2.3): O(log n)
//     awake complexity, O(nN log n) rounds (N = max ID).
//   - RunLogStar — the Corollary 1 variant: Fast-Awake-Coloring
//     replaced by a Cole–Vishkin style O(log* n)-iteration coloring,
//     giving O(log n log* n) awake and O(n log n log* n) rounds.
//   - RunBaseline — the traditional always-awake CONGEST comparator:
//     the same GHS-style execution, but nodes are charged for every
//     round up to their local termination, as in the standard model.
//
// All algorithms maintain the paper's Forest of Labeled Distance Trees
// invariant between phases and produce the unique MST; drivers verify
// connectivity up front and convergence afterwards.
package core

import (
	"errors"
	"fmt"
	"math"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/metrics"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
	"sleepmst/internal/transport"
)

// Options configures an MST run.
type Options struct {
	// Engine selects the simulator's scheduler implementation (see
	// sim.Engine). The zero value is the event engine; both engines are
	// byte-identical on fixed seeds.
	Engine sim.Engine
	// Seed seeds all node-private randomness.
	Seed int64
	// MaxPhases overrides the paper's phase bound (0 = default).
	MaxPhases int
	// BitCap, if positive, enforces a per-message size cap in bits
	// (CONGEST enforcement); see DefaultBitCap.
	BitCap int
	// AwakeBudget, if positive, fails the run as soon as any node
	// exceeds that many awake rounds — runtime enforcement of the
	// O(log n) awake claims.
	AwakeBudget int64
	// RecordAwakeRounds records each node's awake rounds for traces.
	RecordAwakeRounds bool
	// RecordPhases collects the fragment count after every phase (the
	// Lemma 1 / Lemma 5 decay experiment).
	RecordPhases bool
	// AcceptBudget overrides the deterministic algorithms'
	// valid-incoming-MOE budget (the paper's 3) for ablation studies.
	// 0 means the default; values must stay in [1, 3] so the
	// supergraph degree bound 4 and the 5-color palette still work.
	AcceptBudget int
	// Interceptor, if non-nil, is handed to the simulator's fault
	// injection hook surface (see sim.Interceptor and internal/chaos).
	// Nil keeps the paper's clean sleeping model.
	Interceptor sim.Interceptor
	// Chooser, if non-nil, is handed to the simulator's model-checking
	// branch-point hook (see sim.Chooser and internal/modelcheck). Nil
	// keeps today's fixed schedule bit-identically.
	Chooser sim.Chooser
	// Trace, if non-nil, records structured events — scheduler events
	// plus the algorithms' phase/step/merge markers — into the given
	// recorder (see internal/trace). Nil keeps recording off.
	Trace *trace.Recorder
	// Transport, if non-nil, carries every delivery as an encoded wire
	// frame through the given backend (see internal/transport and
	// sim.Config.Transport); the run's results stay byte-identical to
	// the in-memory run. Nil keeps delivery in-process.
	Transport transport.Transport
	// Metrics, if non-nil, receives the run's counters: awake rounds
	// per phase and per step, MOE probes and candidates, merge waves
	// and depth, and per-kind message tallies (see internal/metrics).
	Metrics *metrics.Registry
	// Cancel, if non-nil, aborts the run at the next busy-round
	// barrier once the channel is closed; the run returns
	// sim.ErrCanceled (wrapped). This is how internal/service enforces
	// per-request deadlines without leaking node goroutines. Nil keeps
	// runs uncancellable.
	Cancel <-chan struct{}
}

// simConfig translates the option fields shared with the simulator
// into a sim.Config for graph g.
func (o Options) simConfig(g *graph.Graph) sim.Config {
	return sim.Config{
		Graph:             g,
		Engine:            o.Engine,
		Seed:              o.Seed,
		BitCap:            o.BitCap,
		RecordAwakeRounds: o.RecordAwakeRounds,
		AwakeBudget:       o.AwakeBudget,
		Interceptor:       o.Interceptor,
		Chooser:           o.Chooser,
		Trace:             o.Trace,
		Metrics:           o.Metrics,
		Transport:         o.Transport,
		Cancel:            o.Cancel,
	}
}

// acceptBudget resolves and validates Options.AcceptBudget.
func (o Options) acceptBudget() (int64, error) {
	if o.AcceptBudget == 0 {
		return MaxValidIncomingMOEs, nil
	}
	if o.AcceptBudget < 1 || o.AcceptBudget > MaxValidIncomingMOEs {
		return 0, fmt.Errorf("core: accept budget %d outside [1, %d]", o.AcceptBudget, MaxValidIncomingMOEs)
	}
	return int64(o.AcceptBudget), nil
}

// DefaultBitCap returns a CONGEST message cap of 16·⌈log₂ max(n, maxID,
// maxWeight)⌉ bits — the paper's O(log n)-bit messages with an explicit
// constant.
func DefaultBitCap(g *graph.Graph) int {
	max := int64(g.N())
	if id := g.MaxID(); id > max {
		max = id
	}
	for _, e := range g.Edges() {
		if e.Weight > max {
			max = e.Weight
		}
	}
	return 16 * bitlen(max)
}

func bitlen(x int64) int {
	n := 1
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// Outcome reports a completed MST computation.
type Outcome struct {
	// MSTEdges is the computed spanning tree (n-1 edges).
	MSTEdges []graph.Edge
	// Result holds the runtime metrics (awake complexity, rounds,
	// messages, bits).
	Result *sim.Result
	// Phases is the number of phases executed.
	Phases int
	// FragmentsPerPhase[p] is the fragment count after phase p
	// (only if Options.RecordPhases).
	FragmentsPerPhase []int
	// States holds the final per-node LDT states (the single fragment
	// tree = the MST, rooted at the final root).
	States []*ldt.State
}

// ErrNotConverged is returned when the phase budget was exhausted with
// more than one fragment left (w.h.p. never for the paper's bounds).
var ErrNotConverged = errors.New("core: algorithm did not converge to a single fragment")

// RandomizedPhaseBound returns the paper's phase count for
// Randomized-MST: 4⌈log_{4/3} n⌉ + 1.
func RandomizedPhaseBound(n int) int {
	if n <= 1 {
		return 1
	}
	return 4*int(math.Ceil(math.Log(float64(n))/math.Log(4.0/3.0))) + 1
}

// DeterministicPhaseBound returns the phase cap for Deterministic-MST.
// The paper's worst-case bound is ⌈log_{240000/239999} n⌉ + 240000;
// since every phase with ≥ 2 fragments merges at least one fragment,
// n phases always suffice, so we cap at the smaller of the two.
func DeterministicPhaseBound(n int) int {
	paper := int(math.Ceil(math.Log(float64(n))/math.Log(240000.0/239999.0))) + 240000
	if n+1 < paper {
		return n + 1
	}
	return paper
}

// checkInput validates the graph for MST computation.
func checkInput(g *graph.Graph) error {
	if g == nil {
		return errors.New("core: nil graph")
	}
	if !graph.IsConnected(g) {
		return errors.New("core: graph must be connected")
	}
	return nil
}

// finishOutcome assembles and validates the outcome of a run.
func finishOutcome(g *graph.Graph, states []*ldt.State, res *sim.Result, phases int, fragsPerPhase []int) (*Outcome, error) {
	out := &Outcome{
		Result:            res,
		Phases:            phases,
		FragmentsPerPhase: fragsPerPhase,
		States:            states,
	}
	if err := ldt.Validate(g, states); err != nil {
		return out, fmt.Errorf("core: post-run LDT invariant violated: %w", err)
	}
	if ldt.FragmentCount(states) != 1 {
		return out, fmt.Errorf("%w: %d fragments remain after %d phases",
			ErrNotConverged, ldt.FragmentCount(states), phases)
	}
	out.MSTEdges = ldt.TreeEdges(g, states)
	if !graph.IsSpanningTree(g, out.MSTEdges) {
		return out, errors.New("core: output is not a spanning tree")
	}
	return out, nil
}

// phaseRecorder collects fragment IDs per phase without data races:
// each node writes only its own column.
type phaseRecorder struct {
	enabled bool
	frags   [][]int64 // frags[phase][node]
	n       int
}

func newPhaseRecorder(enabled bool, n, maxPhases int) *phaseRecorder {
	pr := &phaseRecorder{enabled: enabled, n: n}
	if enabled {
		pr.frags = make([][]int64, maxPhases)
		for i := range pr.frags {
			pr.frags[i] = make([]int64, n)
		}
	}
	return pr
}

func (pr *phaseRecorder) record(phase, node int, fragID int64) {
	if pr.enabled && phase < len(pr.frags) {
		pr.frags[phase][node] = fragID
	}
}

// counts returns the fragment count per executed phase. Nodes that
// halted before a phase keep fragment ID 0 in that row; rows that are
// entirely zero (never reached) are dropped.
func (pr *phaseRecorder) counts(executed int) []int {
	if !pr.enabled {
		return nil
	}
	var out []int
	for p := 0; p < executed && p < len(pr.frags); p++ {
		set := make(map[int64]bool)
		for _, f := range pr.frags[p] {
			if f != 0 {
				set[f] = true
			}
		}
		out = append(out, len(set))
	}
	return out
}
