package core

import (
	"testing"

	"sleepmst/internal/graph"
)

func TestClassicGHSPath(t *testing.T) {
	g := graph.Path(9, graph.GenConfig{Seed: 1})
	checkMST(t, g, RunClassicGHS, Options{Seed: 1})
}

func TestClassicGHSCycle(t *testing.T) {
	g := graph.Cycle(10, graph.GenConfig{Seed: 2})
	checkMST(t, g, RunClassicGHS, Options{Seed: 2})
}

func TestClassicGHSStar(t *testing.T) {
	g := graph.Star(8, graph.GenConfig{Seed: 3})
	checkMST(t, g, RunClassicGHS, Options{Seed: 3})
}

func TestClassicGHSComplete(t *testing.T) {
	g := graph.Complete(10, graph.GenConfig{Seed: 4})
	checkMST(t, g, RunClassicGHS, Options{Seed: 4})
}

func TestClassicGHSRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomConnected(48, 120, graph.GenConfig{Seed: seed})
		checkMST(t, g, RunClassicGHS, Options{Seed: seed})
	}
}

func TestClassicGHSAlwaysAwake(t *testing.T) {
	// The traditional model: every node is awake every round until it
	// halts, so awake complexity equals the halt round exactly.
	g := graph.RandomConnected(32, 80, graph.GenConfig{Seed: 9})
	out, err := RunClassicGHS(g, Options{Seed: 9})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for v, awake := range out.Result.AwakePerNode {
		if awake != out.Result.HaltRound[v] {
			t.Fatalf("node %d: awake %d != halt round %d (nodes must never sleep mid-run)",
				v, awake, out.Result.HaltRound[v])
		}
	}
}

func TestClassicGHSSingleNode(t *testing.T) {
	g := graph.MustNew(1, nil)
	out, err := RunClassicGHS(g, Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out.MSTEdges) != 0 {
		t.Errorf("edges = %v", out.MSTEdges)
	}
}

func TestClassicGHSChainMerges(t *testing.T) {
	// A path with increasing weights makes every fragment's MOE point
	// the same way, producing maximal merge chains — the case the
	// sleeping algorithms must avoid and classic GHS embraces.
	var edges []graph.Edge
	const n = 17
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, Weight: int64(i + 1)})
	}
	g := graph.MustNew(n, edges)
	out := checkMST(t, g, RunClassicGHS, Options{Seed: 5})
	// A chain of k fragments collapses in one phase: convergence must
	// be fast (well under the Borůvka bound).
	if out.Result.Rounds > 20*int64(n)*int64(bitlen(int64(n))) {
		t.Errorf("rounds = %d, unexpectedly slow", out.Result.Rounds)
	}
}
