package core

import (
	"reflect"

	"sleepmst/internal/graph"
	"sleepmst/internal/transport"
)

// Wire codecs for the core MST message vocabulary (transport kind
// range 32-63), registered at init so the algorithms run unchanged
// over a real transport. The encodings mirror the Bits() declarations
// field for field; list payloads carry a uvarint length prefix.

// encodeKey/decodeKey serialize a graph.WeightKey in canonical order.
func encodeKey(k graph.WeightKey, w *transport.Writer) {
	w.Int(k.W)
	w.Int(k.A)
	w.Int(k.B)
}

func decodeKey(r *transport.Reader) graph.WeightKey {
	return graph.WeightKey{W: r.Int(), A: r.Int(), B: r.Int()}
}

func init() {
	transport.Register(transport.Codec{
		Kind: 32, Name: "core/ta-frag", Type: reflect.TypeOf(taFragMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(taFragMsg)
			w.Int(m.id)
			w.Int(m.fragID)
			w.Int(int64(m.level))
		},
		Decode: func(r *transport.Reader) interface{} {
			return taFragMsg{id: r.Int(), fragID: r.Int(), level: int(r.Int())}
		},
	})
	transport.Register(transport.Codec{
		Kind: 33, Name: "core/moe-info", Type: reflect.TypeOf(moeInfo{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(moeInfo)
			encodeKey(m.key, w)
			w.Int(m.ownerID)
			w.Int(int64(m.ownerPort))
		},
		Decode: func(r *transport.Reader) interface{} {
			return moeInfo{key: decodeKey(r), ownerID: r.Int(), ownerPort: int(r.Int())}
		},
	})
	transport.Register(transport.Codec{
		Kind: 34, Name: "core/bcast-moe", Type: reflect.TypeOf(bcastMOEMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(bcastMOEMsg)
			w.Bool(m.exists)
			encodeKey(m.moe.key, w)
			w.Int(m.moe.ownerID)
			w.Int(int64(m.moe.ownerPort))
			w.Bool(m.coin)
		},
		Decode: func(r *transport.Reader) interface{} {
			var m bcastMOEMsg
			m.exists = r.Bool()
			m.moe.key = decodeKey(r)
			m.moe.ownerID = r.Int()
			m.moe.ownerPort = int(r.Int())
			m.coin = r.Bool()
			return m
		},
	})
	transport.Register(transport.Codec{
		Kind: 35, Name: "core/bool", Type: reflect.TypeOf(boolPayload(false)),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Bool(bool(msg.(boolPayload)))
		},
		Decode: func(r *transport.Reader) interface{} {
			return boolPayload(r.Bool())
		},
	})
	transport.Register(transport.Codec{
		Kind: 36, Name: "core/int", Type: reflect.TypeOf(intPayload(0)),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Int(int64(msg.(intPayload)))
		},
		Decode: func(r *transport.Reader) interface{} {
			return intPayload(r.Int())
		},
	})
	transport.Register(transport.Codec{
		Kind: 37, Name: "core/valid", Type: reflect.TypeOf(validMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Bool(msg.(validMsg).accepted)
		},
		Decode: func(r *transport.Reader) interface{} {
			return validMsg{accepted: r.Bool()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 38, Name: "core/color", Type: reflect.TypeOf(colorMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(colorMsg)
			w.Int(m.fragID)
			w.Int(int64(m.color))
		},
		Decode: func(r *transport.Reader) interface{} {
			return colorMsg{fragID: r.Int(), color: Color(r.Int())}
		},
	})
	transport.Register(transport.Codec{
		Kind: 39, Name: "core/merge-cmd", Type: reflect.TypeOf(mergeCmd{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(mergeCmd)
			w.Bool(m.merging)
			w.Int(m.hostID)
			w.Int(int64(m.hostPort))
		},
		Decode: func(r *transport.Reader) interface{} {
			return mergeCmd{merging: r.Bool(), hostID: r.Int(), hostPort: int(r.Int())}
		},
	})
	transport.Register(transport.Codec{
		Kind: 40, Name: "core/nbr-list", Type: reflect.TypeOf(nbrList(nil)),
		Encode: func(msg interface{}, w *transport.Writer) {
			l := msg.(nbrList)
			w.Uint(uint64(len(l)))
			for _, e := range l {
				w.Int(e.fragID)
				w.Int(e.hostID)
				w.Int(int64(e.hostPort))
			}
		},
		Decode: func(r *transport.Reader) interface{} {
			n := r.Uvarint()
			l := make(nbrList, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				l = append(l, nbrEntry{fragID: r.Int(), hostID: r.Int(), hostPort: int(r.Int())})
			}
			return l
		},
	})
	transport.Register(transport.Codec{
		Kind: 41, Name: "core/cv-color", Type: reflect.TypeOf(cvColorMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(cvColorMsg)
			w.Int(m.fragID)
			w.Int(m.color)
		},
		Decode: func(r *transport.Reader) interface{} {
			return cvColorMsg{fragID: r.Int(), color: r.Int()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 42, Name: "core/cv-color-list", Type: reflect.TypeOf(cvColorList(nil)),
		Encode: func(msg interface{}, w *transport.Writer) {
			l := msg.(cvColorList)
			w.Uint(uint64(len(l)))
			for _, m := range l {
				w.Int(m.fragID)
				w.Int(m.color)
			}
		},
		Decode: func(r *transport.Reader) interface{} {
			n := r.Uvarint()
			l := make(cvColorList, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				l = append(l, cvColorMsg{fragID: r.Int(), color: r.Int()})
			}
			return l
		},
	})
	transport.Register(transport.Codec{
		Kind: 43, Name: "core/cv-parent", Type: reflect.TypeOf(parentInfo{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(parentInfo)
			w.Bool(m.hasParent)
			w.Int(m.fragID)
		},
		Decode: func(r *transport.Reader) interface{} {
			return parentInfo{hasParent: r.Bool(), fragID: r.Int()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 44, Name: "core/color-list", Type: reflect.TypeOf(colorMsgList(nil)),
		Encode: func(msg interface{}, w *transport.Writer) {
			l := msg.(colorMsgList)
			w.Uint(uint64(len(l)))
			for _, m := range l {
				w.Int(m.fragID)
				w.Int(int64(m.color))
			}
		},
		Decode: func(r *transport.Reader) interface{} {
			n := r.Uvarint()
			l := make(colorMsgList, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				l = append(l, colorMsg{fragID: r.Int(), color: Color(r.Int())})
			}
			return l
		},
	})
	transport.Register(transport.Codec{
		Kind: 45, Name: "core/ta-moe", Type: reflect.TypeOf(taMOEMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(taMOEMsg)
			w.Int(m.fragID)
			w.Bool(m.coin)
			w.Bool(m.isMOE)
		},
		Decode: func(r *transport.Reader) interface{} {
			return taMOEMsg{fragID: r.Int(), coin: r.Bool(), isMOE: r.Bool()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 46, Name: "core/ghs-frag", Type: reflect.TypeOf(ghsFragMsg{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Int(msg.(ghsFragMsg).fragID)
		},
		Decode: func(r *transport.Reader) interface{} {
			return ghsFragMsg{fragID: r.Int()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 47, Name: "core/ghs-initiate", Type: reflect.TypeOf(ghsInitiate{}),
		Encode: func(msg interface{}, w *transport.Writer) {},
		Decode: func(r *transport.Reader) interface{} { return ghsInitiate{} },
	})
	transport.Register(transport.Codec{
		Kind: 48, Name: "core/ghs-echo", Type: reflect.TypeOf(ghsEcho{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			m := msg.(ghsEcho)
			w.Bool(m.has)
			encodeKey(m.key, w)
		},
		Decode: func(r *transport.Reader) interface{} {
			return ghsEcho{has: r.Bool(), key: decodeKey(r)}
		},
	})
	transport.Register(transport.Codec{
		Kind: 49, Name: "core/ghs-root-change", Type: reflect.TypeOf(ghsRootChange{}),
		Encode: func(msg interface{}, w *transport.Writer) {},
		Decode: func(r *transport.Reader) interface{} { return ghsRootChange{} },
	})
	transport.Register(transport.Codec{
		Kind: 50, Name: "core/ghs-halt", Type: reflect.TypeOf(ghsHalt{}),
		Encode: func(msg interface{}, w *transport.Writer) {},
		Decode: func(r *transport.Reader) interface{} { return ghsHalt{} },
	})
	transport.Register(transport.Codec{
		Kind: 51, Name: "core/ghs-connect", Type: reflect.TypeOf(ghsConnect{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Int(msg.(ghsConnect).fragID)
		},
		Decode: func(r *transport.Reader) interface{} {
			return ghsConnect{fragID: r.Int()}
		},
	})
	transport.Register(transport.Codec{
		Kind: 52, Name: "core/ghs-new-frag", Type: reflect.TypeOf(ghsNewFrag{}),
		Encode: func(msg interface{}, w *transport.Writer) {
			w.Int(msg.(ghsNewFrag).fragID)
		},
		Decode: func(r *transport.Reader) interface{} {
			return ghsNewFrag{fragID: r.Int()}
		},
	})
}
