package core

import (
	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

// Block layout of one Randomized-MST phase (§2.2). Each entry is one
// transmission-schedule block of 2n+1 rounds; a phase is the fixed
// sequence below, so every node derives its wake rounds locally.
const (
	rbTAFrag     = 0 // Transmit-Adjacent: refresh (ID, fragID, level)
	rbUpMOE      = 1 // Upcast-Min: fragment MOE to root
	rbBcastMOE   = 2 // Fragment-Broadcast: MOE identity + coin flip
	rbTAMOE      = 3 // Transmit-Adjacent: mark MOEs, exchange coins
	rbUpValid    = 4 // Upcast: validity (tails -> heads) to root
	rbBcastMerge = 5 // Fragment-Broadcast: merge decision
	rbMergeStart = 6 // Merging-Fragments (3 blocks)

	randPhaseBlocks = rbMergeStart + ldt.MergeBlocks
)

// taMOEMsg is exchanged in the rbTAMOE block.
type taMOEMsg struct {
	fragID int64
	coin   bool // sender fragment's coin (true = heads)
	isMOE  bool // this edge is the sender fragment's MOE
}

func (m taMOEMsg) Bits() int { return ldt.FieldBits(m.fragID) + 2 }

func (taMOEMsg) MsgKind() string { return "ta-moe" }

// randPhase runs one phase. It returns (done, merged): done means the
// fragment spans the graph (no outgoing edge) and the node may halt.
func (c *nodeCtx) randPhase(phaseStart int64) (done bool) {
	bs := func(b int) int64 { return phaseStart + int64(b)*c.blk }

	// Step (i): find the fragment MOE.
	c.taFragment(bs(rbTAFrag))
	moe := c.upcastMOE(bs(rbUpMOE))

	var rootMsg *bcastMOEMsg
	if c.st.IsRoot() {
		rootMsg = &bcastMOEMsg{coin: c.nd.Rand().Intn(2) == 0}
		if moe != nil {
			rootMsg.exists = true
			rootMsg.moe = *moe
		}
	}
	ph := c.broadcastMOE(bs(rbBcastMOE), rootMsg)
	c.stepDone(trace.StepFindMOE)
	if !ph.exists {
		// No outgoing edge: the fragment spans the (connected) graph.
		return true
	}
	owner := c.isMOEOwner(&ph.moe)

	// Restrict to valid MOEs: only tails -> heads edges survive.
	c.nd.Metrics().Add("moe/probes", int64(c.nd.Degree()))
	out := make(sim.Outbox, c.nd.Degree())
	for p := 0; p < c.nd.Degree(); p++ {
		out[p] = taMOEMsg{
			fragID: c.st.FragID,
			coin:   ph.coin,
			isMOE:  owner && p == ph.moe.ownerPort,
		}
	}
	in := ldt.TransmitAdjacent(c.nd, bs(rbTAMOE), out)
	c.stepDone(trace.StepMarkMOE)

	var validUp interface{}
	if owner {
		valid := false
		if raw, ok := in[ph.moe.ownerPort]; ok {
			target := raw.(taMOEMsg)
			valid = !ph.coin && target.coin // we are tails, target heads
		}
		validUp = boolPayload(valid)
	}
	rootValid := c.upcastFirst(bs(rbUpValid), validUp)
	c.stepDone(trace.StepValidate)

	var mergePayload interface{}
	if c.st.IsRoot() {
		merging := rootValid != nil && bool(rootValid.(boolPayload))
		mergePayload = boolPayload(merging)
	}
	merging := bool(ldt.Broadcast(c.nd, c.st, bs(rbBcastMerge), mergePayload).(boolPayload))
	c.stepDone(trace.StepDecide)

	// Step (ii): merge along valid MOEs.
	dec := ldt.NoMerge
	if merging {
		dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
		if owner {
			dec.AttachPort = ph.moe.ownerPort
		}
	}
	ldt.MergingFragments(c.nd, c.st, bs(rbMergeStart), dec)
	c.stepDone(trace.StepMerge)
	return false
}

// RunRandomized executes Algorithm Randomized-MST on g: O(log n) awake
// complexity w.h.p. and O(n log n) rounds. The returned outcome's
// MSTEdges is the unique MST of g.
func RunRandomized(g *graph.Graph, opts Options) (*Outcome, error) {
	if err := checkInput(g); err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = RandomizedPhaseBound(g.N())
	}
	states := ldt.SingletonStates(g)
	rec := newPhaseRecorder(opts.RecordPhases, g.N(), maxPhases)
	phasesRun := make([]int, g.N())

	res, err := sim.Run(opts.simConfig(g), func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		blkPerPhase := int64(randPhaseBlocks) * c.blk
		for p := 0; p < maxPhases; p++ {
			c.beginPhase(p + 1)
			done := c.randPhase(1 + int64(p)*blkPerPhase)
			rec.record(p, nd.Index(), c.st.FragID)
			phasesRun[nd.Index()] = p + 1
			if done {
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	maxP := 0
	for _, p := range phasesRun {
		if p > maxP {
			maxP = p
		}
	}
	return finishOutcome(g, states, res, maxP, rec.counts(maxP))
}
