package core

import (
	"testing"

	"sleepmst/internal/graph"
)

func TestCVIterations(t *testing.T) {
	cases := []struct {
		maxColor int64
		want     int
	}{
		{7, 0},   // already in the fixed-point palette
		{8, 1},   // 4 bits -> max 7
		{255, 2}, // 8 bits -> 15 -> 7
		{1 << 20, 3},
	}
	for _, tc := range cases {
		if got := CVIterations(tc.maxColor); got != tc.want {
			t.Errorf("CVIterations(%d) = %d, want %d", tc.maxColor, got, tc.want)
		}
	}
	// Monotone sanity over a large range: never more than 5 iterations
	// for any realistic ID space.
	for _, m := range []int64{10, 100, 10_000, 1 << 30, 1 << 62} {
		if got := CVIterations(m); got > 5 {
			t.Errorf("CVIterations(%d) = %d, want <= 5", m, got)
		}
	}
}

func TestCVStepProperness(t *testing.T) {
	// Over all distinct pairs in a small range, the step must shrink
	// colors and preserve parent-child distinctness when both update.
	for own := int64(0); own < 64; own++ {
		for parent := int64(0); parent < 64; parent++ {
			if own == parent {
				continue
			}
			a := cvStep(own, parent)
			if a < 0 || a > 2*6+1 {
				t.Fatalf("cvStep(%d,%d) = %d out of range", own, parent, a)
			}
		}
	}
	// Chain update preserves properness: for a path u-v-w with distinct
	// colors, after one synchronized step u' != v'.
	for u := int64(0); u < 32; u++ {
		for v := int64(0); v < 32; v++ {
			if u == v {
				continue
			}
			for w := int64(0); w < 32; w++ {
				if w == v {
					continue
				}
				// v's parent is w; u's parent is v.
				un := cvStep(u, v)
				vn := cvStep(v, w)
				if un == vn {
					// They picked the same index k and same bit — but then
					// u and v would agree at bit k, contradicting k being
					// a differing index for u vs v... verify it never fires.
					t.Fatalf("properness broken: u=%d v=%d w=%d -> %d == %d", u, v, w, un, vn)
				}
			}
		}
	}
}

func TestCVRootStep(t *testing.T) {
	for own := int64(0); own < 100; own++ {
		got := cvRootStep(own)
		if got < 0 {
			t.Fatalf("cvRootStep(%d) = %d", own, got)
		}
	}
}

func TestLogStarMSTBasicTopologies(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":     graph.Path(10, graph.GenConfig{Seed: 1}),
		"cycle":    graph.Cycle(11, graph.GenConfig{Seed: 2}),
		"star":     graph.Star(8, graph.GenConfig{Seed: 3}),
		"complete": graph.Complete(10, graph.GenConfig{Seed: 4}),
		"grid":     graph.Grid(4, 5, graph.GenConfig{Seed: 5}),
	} {
		t.Run(name, func(t *testing.T) {
			checkMST(t, g, RunLogStar, Options{Seed: 1})
		})
	}
}

func TestLogStarMSTRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomConnected(40, 100, graph.GenConfig{Seed: seed})
		checkMST(t, g, RunLogStar, Options{Seed: seed})
	}
}

func TestLogStarRoundsIndependentOfIDSpace(t *testing.T) {
	// Unlike Deterministic-MST, the log* variant's rounds must not
	// scale linearly with N: going from N=n to N=64n should leave the
	// phase length unchanged (CV iteration count changes by at most 1).
	mk := func(idSpace int64) int64 {
		g := graph.RandomConnected(24, 60, graph.GenConfig{Seed: 13})
		if idSpace > 0 {
			graph.RandomIDs(g, idSpace, 7)
		}
		out, err := RunLogStar(g, Options{Seed: 0})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Result.Rounds / int64(out.Phases)
	}
	base := mk(0)
	wide := mk(64 * 24)
	if wide > 2*base {
		t.Errorf("rounds/phase grew from %d to %d with a 64x ID space; log* variant must be N-independent", base, wide)
	}
}

func TestLogStarRespectsBitCap(t *testing.T) {
	g := graph.RandomConnected(32, 80, graph.GenConfig{Seed: 14})
	if _, err := RunLogStar(g, Options{Seed: 0, BitCap: DefaultBitCap(g)}); err != nil {
		t.Fatalf("run with CONGEST bit cap: %v", err)
	}
}

func TestLogStarLargeIDs(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.GenConfig{Seed: 15})
	graph.RandomIDs(g, 1<<30, 3)
	checkMST(t, g, RunLogStar, Options{Seed: 0})
}

func TestLogStarMSTLargerGraphsRegression(t *testing.T) {
	// Regression for the one-directional mutual-MOE orientation bug:
	// larger, denser graphs produce rejected mutual MOEs regularly.
	for seed := int64(0); seed < 4; seed++ {
		g := graph.RandomConnected(128, 384, graph.GenConfig{Seed: 128000 + seed})
		checkMST(t, g, RunLogStar, Options{Seed: seed})
	}
}
