// Conformance matrix: every sleeping-model algorithm, at n ∈ {16, 64,
// 256}, must satisfy the full internal/conform invariant catalog on a
// clean run, and the relaxed catalog (plus the chaos oracle's
// correct-mst verdict) under calibrated drop and delay injection. An
// external test package so it can exercise the facade the way
// mstbench does.
package core_test

import (
	"fmt"
	"testing"

	"sleepmst"
	"sleepmst/internal/chaos"
	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/trace"
)

// conformCap is the recorder capacity used by the matrix: big enough
// that no n=256 cell drops events (drops would skip most checks).
const conformCap = 1 << 21

// conformSizes is the node-count axis of the matrix. n=256 cells are
// skipped in -short mode.
var conformSizes = []int{16, 64, 256}

// sleepingAlgos are the algorithms with paper awake-budget claims.
var sleepingAlgos = []sleepmst.Algorithm{sleepmst.Randomized, sleepmst.Deterministic, sleepmst.LogStar}

// conformGraph is the matrix topology: random connected, average
// degree 6, one deterministic instance per size.
func conformGraph(n int) *sleepmst.Graph {
	return sleepmst.RandomConnected(n, 3*n, int64(n*1000))
}

// TestSupergraphBoundMatchesCore pins the checker's degree bound to
// the algorithm's actual sparsification constant: 3 accepted incoming
// MOEs plus the fragment's own outgoing MOE.
func TestSupergraphBoundMatchesCore(t *testing.T) {
	if conform.SupergraphDegreeBound != core.MaxValidIncomingMOEs+1 {
		t.Fatalf("conform.SupergraphDegreeBound = %d, core allows %d incoming MOEs + 1 outgoing",
			conform.SupergraphDegreeBound, core.MaxValidIncomingMOEs)
	}
}

// TestConformanceCleanMatrix runs the strict catalog — no slack, no
// relaxations — on drop-free traces of all three algorithms.
func TestConformanceCleanMatrix(t *testing.T) {
	for _, a := range sleepingAlgos {
		for _, n := range conformSizes {
			a, n := a, n
			t.Run(fmt.Sprintf("%s/n=%d", a, n), func(t *testing.T) {
				if testing.Short() && n > 64 {
					t.Skip("n=256 cell skipped in short mode")
				}
				g := conformGraph(n)
				rec := trace.NewRecorder(conformCap)
				out, err := a.Runner()(g, sleepmst.Options{Seed: 1, Trace: rec})
				if err != nil {
					t.Fatalf("%s n=%d: %v", a, n, err)
				}
				if d := rec.Dropped(); d != 0 {
					t.Fatalf("recorder dropped %d events; raise conformCap", d)
				}
				v := conform.Suite{
					Info:        conform.RunInfo{Algorithm: a.String(), N: n, Seed: 1},
					Meta:        rec.Meta(),
					Events:      rec.Events(),
					TreeWeight:  graph.TotalWeight(out.MSTEdges),
					WantWeight:  graph.TotalWeight(graph.Kruskal(g)),
					CheckWeight: true,
				}.Assert(t)
				// The deterministic variants must actually exercise the
				// sparsification check, not skip it.
				if a != sleepmst.Randomized {
					if c := v.Lookup(conform.CheckSparsifyDegree); c == nil || c.Status != conform.StatusPass {
						t.Errorf("sparsify-degree not exercised: %+v", c)
					}
				}
			})
		}
	}
}

// BenchmarkCheckTrace measures the checker's replay cost on a
// deterministic n=256 trace (~260k events) — the overhead `mstbench
// -exp conform` adds on top of the traced run itself (EXPERIMENTS.md
// E19).
func BenchmarkCheckTrace(b *testing.B) {
	g := conformGraph(256)
	rec := trace.NewRecorder(conformCap)
	if _, err := sleepmst.Deterministic.Runner()(g, sleepmst.Options{Seed: 1, Trace: rec}); err != nil {
		b.Fatal(err)
	}
	meta, events := rec.Meta(), rec.Events()
	info := conform.RunInfo{Algorithm: "deterministic", N: 256, Seed: 1}
	b.ReportMetric(float64(len(events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := conform.CheckTrace(meta, events, info); !v.Pass {
			b.Fatalf("unexpected failure:\n%s", v)
		}
	}
}

// conformFaults is the fault axis: message drops and message delays,
// both at a per-cell calibrated rate. The rate targets ~0.5 injected
// faults per run (0.5 / clean-run messages): enough to exercise the
// recovery paths without disconnecting fragments — E16 showed fixed
// i.i.d. rates are lethal at these sizes.
var conformFaults = []struct {
	name string
	opts func(rate float64, seed int64) chaos.Options
}{
	{"drop", func(rate float64, seed int64) chaos.Options {
		return chaos.Options{Seed: seed, DropRate: rate}
	}},
	{"delay", func(rate float64, seed int64) chaos.Options {
		return chaos.Options{Seed: seed, DelayRate: rate, MaxDelay: 2}
	}},
}

// TestConformanceChaosMatrix injects calibrated drops/delays into
// every cell and asserts the oracle still reports correct-mst and the
// relaxed catalog passes. Chaos seeds are searched (calibration found
// a surviving seed ≤ 2 for every cell; the search absorbs drift in
// message counts without flaking).
func TestConformanceChaosMatrix(t *testing.T) {
	for _, a := range sleepingAlgos {
		for _, n := range conformSizes {
			for _, fault := range conformFaults {
				a, n, fault := a, n, fault
				t.Run(fmt.Sprintf("%s/n=%d/%s", a, n, fault.name), func(t *testing.T) {
					if testing.Short() && n > 64 {
						t.Skip("n=256 cell skipped in short mode")
					}
					g := conformGraph(n)
					clean, err := a.Runner()(g, sleepmst.Options{Seed: 1})
					if err != nil {
						t.Fatalf("clean run: %v", err)
					}
					rate := 0.5 / float64(clean.Result.MessagesSent)
					wantWeight := graph.TotalWeight(graph.Kruskal(g))
					for seed := int64(1); seed <= 12; seed++ {
						pol := chaos.New(fault.opts(rate, seed))
						rec := trace.NewRecorder(conformCap)
						out, err := a.Runner()(g, sleepmst.Options{Seed: 1, Trace: rec, Interceptor: pol})
						if chaos.Classify(g, out, err) != chaos.CorrectMST {
							continue
						}
						if seed > 2 {
							t.Logf("surviving chaos seed drifted to %d (calibrated ≤ 2)", seed)
						}
						conform.Suite{
							Info: conform.RunInfo{Algorithm: a.String(), N: n, Seed: 1,
								Relaxed: true, BudgetSlack: 2},
							Meta:        rec.Meta(),
							Events:      rec.Events(),
							TreeWeight:  graph.TotalWeight(out.MSTEdges),
							WantWeight:  wantWeight,
							CheckWeight: true,
						}.Assert(t)
						return
					}
					t.Fatalf("no chaos seed in 1..12 yields correct-mst at rate %.3g", rate)
				})
			}
		}
	}
}
