package core

import (
	"sort"
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
)

// TestLogStarColoringProperness runs exactly the step-(i) + coloring
// prefix of one LogStar phase and asserts that the palette coloring is
// proper on the supergraph G'. Regression: a mutual MOE accepted in
// only one direction used to be left uncovered by the CV forest,
// letting two adjacent fragments both turn Blue and merge into each
// other (seed 128000 reproduces that instance).
func TestLogStarColoringProperness(t *testing.T) {
	g := graph.RandomConnected(128, 384, graph.GenConfig{Seed: 128000})
	states := ldt.SingletonStates(g)
	colors := make([]Color, g.N())
	nbrs := make([]nbrList, g.N())
	type orient struct {
		owner, outAcc, mutual bool
		target                int64
	}
	orients := make([]orient, g.N())

	_, err := sim.Run(sim.Config{Graph: g, Seed: 0}, func(nd *sim.Node) error {
		c := newNodeCtx(nd, states[nd.Index()])
		bs := func(b int64) int64 { return 1 + b*c.blk }
		c.taFragment(bs(dbTAFrag))
		moe := c.upcastMOE(bs(dbUpMOE))
		var rootMsg *bcastMOEMsg
		if c.st.IsRoot() {
			rootMsg = &bcastMOEMsg{}
			if moe != nil {
				rootMsg.exists = true
				rootMsg.moe = *moe
			}
		}
		ph := c.broadcastMOE(bs(dbBcastMOE), rootMsg)
		if !ph.exists {
			return nil
		}
		owner := c.isMOEOwner(&ph.moe)
		out := make(sim.Outbox, c.nd.Degree())
		for p := 0; p < c.nd.Degree(); p++ {
			out[p] = taMOEMsg{fragID: c.st.FragID, isMOE: owner && p == ph.moe.ownerPort}
		}
		in := ldt.TransmitAdjacent(c.nd, bs(dbTAMOE), out)
		var incomingPorts []int
		incFrag := make(map[int]int64)
		mutualMOE := false
		for p := 0; p < c.nd.Degree(); p++ {
			raw, ok := in[p]
			if !ok {
				continue
			}
			msg := raw.(taMOEMsg)
			if msg.isMOE && msg.fragID != c.st.FragID {
				incomingPorts = append(incomingPorts, p)
				incFrag[p] = msg.fragID
				if owner && p == ph.moe.ownerPort {
					mutualMOE = true
				}
			}
		}
		sort.Ints(incomingPorts)
		childCount := make(map[int]int64)
		total := ldt.Up(c.nd, c.st, bs(dbUpCount), intPayload(len(incomingPorts)),
			func(own interface{}, fromChildren map[int]interface{}) interface{} {
				sum := int64(own.(intPayload))
				for port, v := range fromChildren {
					cnt := int64(v.(intPayload))
					childCount[port] = cnt
					sum += cnt
				}
				return intPayload(sum)
			})
		budget := int64(total.(intPayload))
		if budget > MaxValidIncomingMOEs {
			budget = MaxValidIncomingMOEs
		}
		validIn := make(map[int]bool, len(incomingPorts))
		ldt.Down(c.nd, c.st, bs(dbDownToken), intPayload(budget),
			func(received interface{}) map[int]interface{} {
				var b int64
				if received != nil {
					b = int64(received.(intPayload))
				}
				for _, p := range incomingPorts {
					if b == 0 {
						break
					}
					validIn[p] = true
					b--
				}
				outs := make(map[int]interface{})
				for _, child := range c.st.Children {
					if b == 0 {
						break
					}
					give := childCount[child]
					if give > b {
						give = b
					}
					if give > 0 {
						outs[child] = intPayload(give)
						b -= give
					}
				}
				return outs
			})
		taOut := make(sim.Outbox, len(incomingPorts))
		for _, p := range incomingPorts {
			taOut[p] = validMsg{accepted: validIn[p]}
		}
		outAccepted := false
		var myEntries []nbrEntry
		if len(taOut) > 0 || owner {
			vin := ldt.TransmitAdjacent(c.nd, bs(dbTAValid), taOut)
			if owner {
				if raw, ok := vin[ph.moe.ownerPort]; ok && raw.(validMsg).accepted {
					outAccepted = true
					myEntries = append(myEntries, nbrEntry{
						fragID:   c.nbrFragID[ph.moe.ownerPort],
						hostID:   c.nd.ID(),
						hostPort: ph.moe.ownerPort,
					})
				}
			}
		}
		for _, p := range incomingPorts {
			if validIn[p] {
				myEntries = append(myEntries, nbrEntry{fragID: incFrag[p], hostID: c.nd.ID(), hostPort: p})
			}
		}
		agg := ldt.Up(c.nd, c.st, bs(dbUpNbr), nbrList(myEntries),
			func(own interface{}, fromChildren map[int]interface{}) interface{} {
				lists := [][]nbrEntry{own.(nbrList)}
				for _, v := range fromChildren {
					if v != nil {
						lists = append(lists, v.(nbrList))
					}
				}
				return mergeEntries(lists...)
			})
		var bcastPayload interface{}
		if c.st.IsRoot() {
			bcastPayload = agg.(nbrList)
		}
		nbrInfo := ldt.Broadcast(c.nd, c.st, bs(dbBcastNbr), bcastPayload).(nbrList)
		ownerPort := -1
		if owner {
			ownerPort = ph.moe.ownerPort
		}
		if owner {
			orients[nd.Index()] = orient{owner: true, outAcc: outAccepted, mutual: mutualMOE,
				target: c.nbrFragID[ph.moe.ownerPort]}
		}
		inAccepted := owner && validIn[ownerPort]
		col := c.logStarColoring(bs, nbrInfo, owner, ownerPort, outAccepted, mutualMOE, inAccepted)
		colors[nd.Index()] = col
		nbrs[nd.Index()] = nbrInfo
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Check palette properness over G': for every entry (edge), the two
	// fragments' colors must differ.
	fragColor := map[int64]Color{}
	for v := range colors {
		fragColor[states[v].FragID] = colors[v]
	}
	bad := 0
	for v, list := range nbrs {
		for _, e := range list {
			mine := fragColor[states[v].FragID]
			theirs := fragColor[e.fragID]
			if mine == theirs && mine != ColorNone {
				bad++
				if bad < 10 {
					t.Errorf("fragments %d and %d adjacent in G' share color %v",
						states[v].FragID, e.fragID, mine)
				}
			}
		}
	}
	if bad > 0 {
		for v := range orients {
			if states[v].FragID == 48 || states[v].FragID == 88 {
				t.Logf("frag %d: orient=%+v nbrInfo=%+v color=%v",
					states[v].FragID, orients[v], nbrs[v], colors[v])
			}
		}
		t.Fatalf("%d improper G' edges", bad)
	}
}
