package core

import (
	"math"
	"testing"

	"sleepmst/internal/graph"
)

func TestElectLeaderAgreement(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.RandomConnected(40, 100, graph.GenConfig{Seed: seed})
		res, err := ElectLeader(g, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.IndexOfID(res.LeaderID) < 0 {
			t.Errorf("seed %d: leader %d is not a node ID", seed, res.LeaderID)
		}
		for v, id := range res.KnownBy {
			if id != res.LeaderID {
				t.Fatalf("seed %d: node %d believes %d, leader is %d", seed, v, id, res.LeaderID)
			}
		}
	}
}

func TestElectLeaderAwakeLogarithmic(t *testing.T) {
	g := graph.RandomConnected(256, 768, graph.GenConfig{Seed: 3})
	res, err := ElectLeader(g, Options{Seed: 3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if float64(res.Result.MaxAwake()) > 40*math.Log2(256) {
		t.Errorf("awake = %d, want O(log n)", res.Result.MaxAwake())
	}
}

func TestSpanningTreeIsSpanning(t *testing.T) {
	g := graph.RandomGeometric(60, 0.25, graph.GenConfig{Seed: 4})
	out, err := SpanningTree(g, Options{Seed: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !graph.IsSpanningTree(g, out.MSTEdges) {
		t.Error("result is not a spanning tree")
	}
}

func TestAggregateMin(t *testing.T) {
	g := graph.RandomConnected(50, 120, graph.GenConfig{Seed: 5})
	values := make([]int64, g.N())
	want := int64(1 << 40)
	for v := range values {
		values[v] = int64(1000 + (v*7919)%997)
		if values[v] < want {
			want = values[v]
		}
	}
	res, err := AggregateMin(g, values, Options{Seed: 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Value != want {
		t.Errorf("aggregate = %d, want %d", res.Value, want)
	}
	for v, x := range res.PerNode {
		if x != want {
			t.Fatalf("node %d holds %d, want %d", v, x, want)
		}
	}
	// The epilogue must not change the asymptotics.
	if float64(res.Result.MaxAwake()) > 40*math.Log2(float64(g.N()))+4 {
		t.Errorf("awake = %d, want O(log n)", res.Result.MaxAwake())
	}
}

func TestAggregateMinValidation(t *testing.T) {
	g := graph.Path(4, graph.GenConfig{Seed: 6})
	if _, err := AggregateMin(g, []int64{1, 2}, Options{}); err == nil {
		t.Error("want error for wrong value count")
	}
}

func TestBroadcastFrom(t *testing.T) {
	g := graph.RandomConnected(40, 90, graph.GenConfig{Seed: 7})
	for _, source := range []int{0, 17, 39} {
		res, err := BroadcastFrom(g, source, 424242+int64(source), Options{Seed: 7})
		if err != nil {
			t.Fatalf("source %d: %v", source, err)
		}
		for v, x := range res.PerNode {
			if x != 424242+int64(source) {
				t.Fatalf("source %d: node %d got %d", source, v, x)
			}
		}
	}
}

func TestBroadcastFromValidation(t *testing.T) {
	g := graph.Path(4, graph.GenConfig{Seed: 8})
	if _, err := BroadcastFrom(g, 99, 1, Options{}); err == nil {
		t.Error("want error for out-of-range source")
	}
}
