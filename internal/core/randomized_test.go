package core

import (
	"errors"
	"math"
	"testing"

	"sleepmst/internal/graph"
)

// checkMST runs the given algorithm and verifies the result against
// Kruskal.
func checkMST(t *testing.T, g *graph.Graph, run func(*graph.Graph, Options) (*Outcome, error), opts Options) *Outcome {
	t.Helper()
	out, err := run(g, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := graph.Kruskal(g)
	if !graph.SameEdgeSet(out.MSTEdges, want) {
		t.Fatalf("MST mismatch: got %d edges weight %d, want %d edges weight %d",
			len(out.MSTEdges), graph.TotalWeight(out.MSTEdges), len(want), graph.TotalWeight(want))
	}
	return out
}

func TestRandomizedMSTPath(t *testing.T) {
	g := graph.Path(10, graph.GenConfig{Seed: 1})
	checkMST(t, g, RunRandomized, Options{Seed: 1})
}

func TestRandomizedMSTCycle(t *testing.T) {
	g := graph.Cycle(12, graph.GenConfig{Seed: 2})
	checkMST(t, g, RunRandomized, Options{Seed: 2})
}

func TestRandomizedMSTComplete(t *testing.T) {
	g := graph.Complete(16, graph.GenConfig{Seed: 3})
	checkMST(t, g, RunRandomized, Options{Seed: 3})
}

func TestRandomizedMSTRandomGraphsManySeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := graph.RandomConnected(50, 120, graph.GenConfig{Seed: seed})
		out := checkMST(t, g, RunRandomized, Options{Seed: seed})
		if out.Phases > RandomizedPhaseBound(g.N()) {
			t.Errorf("seed %d: %d phases exceeds bound %d", seed, out.Phases, RandomizedPhaseBound(g.N()))
		}
	}
}

func TestRandomizedMSTSingleNode(t *testing.T) {
	g := graph.MustNew(1, nil)
	out, err := RunRandomized(g, Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out.MSTEdges) != 0 {
		t.Errorf("MST edges = %v, want none", out.MSTEdges)
	}
}

func TestRandomizedMSTTwoNodes(t *testing.T) {
	g := graph.Path(2, graph.GenConfig{Seed: 4})
	checkMST(t, g, RunRandomized, Options{Seed: 4})
}

func TestRandomizedMSTTieBrokenWeights(t *testing.T) {
	// All weights equal: the tie-broken key must still yield a unique,
	// agreed-upon MST.
	g := graph.Complete(10, graph.GenConfig{Seed: 5, Weights: graph.WeightsUnit})
	checkMST(t, g, RunRandomized, Options{Seed: 5})
}

func TestRandomizedAwakeComplexityLogarithmic(t *testing.T) {
	// Awake complexity should scale like O(log n): measure the
	// constant at two sizes and require the large-n constant to stay
	// within the O(log n) envelope observed at small n (factor 2).
	ratio := func(n int) float64 {
		g := graph.RandomConnected(n, 3*n, graph.GenConfig{Seed: int64(n)})
		out, err := RunRandomized(g, Options{Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return float64(out.Result.MaxAwake()) / math.Log2(float64(n))
	}
	small, large := ratio(32), ratio(512)
	if large > 2*small {
		t.Errorf("awake/log2(n) grew from %.2f (n=32) to %.2f (n=512); not logarithmic", small, large)
	}
}

func TestRandomizedRoundComplexityNearNLogN(t *testing.T) {
	g := graph.RandomConnected(128, 384, graph.GenConfig{Seed: 6})
	out, err := RunRandomized(g, Options{Seed: 6})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	n := float64(g.N())
	bound := 60 * n * math.Log2(n) // 9 blocks x ~2n rounds x ~2.3 log2 n phases
	if float64(out.Result.Rounds) > bound {
		t.Errorf("rounds = %d, want <= %.0f (O(n log n))", out.Result.Rounds, bound)
	}
}

func TestRandomizedRespectsBitCap(t *testing.T) {
	g := graph.RandomConnected(64, 160, graph.GenConfig{Seed: 7})
	_, err := RunRandomized(g, Options{Seed: 7, BitCap: DefaultBitCap(g)})
	if err != nil {
		t.Fatalf("run with CONGEST bit cap: %v", err)
	}
}

func TestRandomizedFragmentDecay(t *testing.T) {
	g := graph.RandomConnected(100, 300, graph.GenConfig{Seed: 8})
	out, err := RunRandomized(g, Options{Seed: 8, RecordPhases: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	counts := out.FragmentsPerPhase
	if len(counts) == 0 {
		t.Fatal("no per-phase fragment counts recorded")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("fragment count increased: phase %d had %d, phase %d has %d", i-1, counts[i-1], i, counts[i])
		}
	}
	if counts[len(counts)-1] != 1 {
		t.Errorf("final fragment count = %d, want 1", counts[len(counts)-1])
	}
}

func TestRandomizedDisconnectedRejected(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, Weight: 1}, {U: 2, V: 3, Weight: 2}})
	if _, err := RunRandomized(g, Options{Seed: 1}); err == nil {
		t.Fatal("want error for disconnected graph")
	}
}

func TestRandomizedNotConvergedDetected(t *testing.T) {
	// With a single phase on a path, convergence is impossible for
	// n >= 8 under any coin flips (at best fragments halve).
	g := graph.Path(16, graph.GenConfig{Seed: 9})
	_, err := RunRandomized(g, Options{Seed: 9, MaxPhases: 1})
	if err == nil || !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestBaselineAwakeEqualsRounds(t *testing.T) {
	g := graph.RandomConnected(48, 100, graph.GenConfig{Seed: 10})
	out, err := RunBaseline(g, Options{Seed: 10})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := out.Result.MaxAwake(); got != out.Result.MaxHaltRound() {
		t.Errorf("baseline max awake %d != max halt round %d", got, out.Result.MaxHaltRound())
	}
	// The baseline must be dramatically more expensive than the
	// sleeping-model awake complexity on the same instance.
	sleeping, err := RunRandomized(g, Options{Seed: 10})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Result.MaxAwake() < 10*sleeping.Result.MaxAwake() {
		t.Errorf("baseline awake %d vs sleeping awake %d: expected >= 10x gap",
			out.Result.MaxAwake(), sleeping.Result.MaxAwake())
	}
}

func TestRandomizedDeterministicGivenSeed(t *testing.T) {
	g := graph.RandomConnected(60, 150, graph.GenConfig{Seed: 11})
	a, err := RunRandomized(g, Options{Seed: 11})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := RunRandomized(g, Options{Seed: 11})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Result.Rounds != b.Result.Rounds || a.Phases != b.Phases ||
		a.Result.MaxAwake() != b.Result.MaxAwake() {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Result.Rounds, a.Phases, a.Result.MaxAwake(),
			b.Result.Rounds, b.Phases, b.Result.MaxAwake())
	}
}

func TestPhaseBounds(t *testing.T) {
	if RandomizedPhaseBound(1) != 1 {
		t.Errorf("bound(1) = %d", RandomizedPhaseBound(1))
	}
	if b := RandomizedPhaseBound(1024); b != 4*25+1 {
		t.Errorf("bound(1024) = %d, want 101", b)
	}
	if b := DeterministicPhaseBound(100); b != 101 {
		t.Errorf("det bound(100) = %d, want 101", b)
	}
}

func TestRandomizedWithinAwakeBudget(t *testing.T) {
	// Runtime enforcement of the O(log n) awake claim: give each node a
	// c*log2(n) awake budget and require the run to complete within it.
	n := 256
	g := graph.RandomConnected(n, 3*n, graph.GenConfig{Seed: 21})
	budget := int64(40 * math.Log2(float64(n)))
	if _, err := RunRandomized(g, Options{Seed: 21, AwakeBudget: budget}); err != nil {
		t.Fatalf("run exceeded awake budget %d: %v", budget, err)
	}
}
