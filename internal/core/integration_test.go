package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
)

// algorithms under test, including the traditional-model comparators.
var allAlgorithms = map[string]func(*graph.Graph, Options) (*Outcome, error){
	"randomized":    RunRandomized,
	"deterministic": RunDeterministic,
	"logstar":       RunLogStar,
	"baseline":      RunBaseline,
	"classic-ghs":   RunClassicGHS,
}

// TestAllAlgorithmsAllTopologies is the full correctness matrix: every
// algorithm on every topology family must produce the unique MST.
func TestAllAlgorithmsAllTopologies(t *testing.T) {
	topologies := map[string]*graph.Graph{
		"path":        graph.Path(14, graph.GenConfig{Seed: 41}),
		"cycle":       graph.Cycle(15, graph.GenConfig{Seed: 42}),
		"star":        graph.Star(12, graph.GenConfig{Seed: 43}),
		"complete":    graph.Complete(11, graph.GenConfig{Seed: 44}),
		"grid":        graph.Grid(4, 4, graph.GenConfig{Seed: 45}),
		"btree":       graph.BinaryTree(15, graph.GenConfig{Seed: 46}),
		"caterpillar": graph.Caterpillar(4, 3, graph.GenConfig{Seed: 47}),
		"geometric":   graph.RandomGeometric(24, 0.3, graph.GenConfig{Seed: 48}),
		"sparse":      graph.RandomConnected(30, 32, graph.GenConfig{Seed: 49}),
		"dense":       graph.RandomConnected(20, 140, graph.GenConfig{Seed: 50}),
		"unit-w":      graph.Grid(3, 5, graph.GenConfig{Seed: 51, Weights: graph.WeightsUnit}),
		"large-w":     graph.RandomConnected(20, 50, graph.GenConfig{Seed: 52, Weights: graph.WeightsRandomLarge}),
	}
	for tname, g := range topologies {
		for aname, run := range allAlgorithms {
			t.Run(fmt.Sprintf("%s/%s", tname, aname), func(t *testing.T) {
				checkMST(t, g, run, Options{Seed: 99})
			})
		}
	}
}

// TestQuickRandomizedMatchesKruskal is the core property test: on
// arbitrary random connected graphs the distributed algorithm computes
// exactly the reference MST.
func TestQuickRandomizedMatchesKruskal(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%23+23)%23
		g := graph.RandomConnected(n, 2*n, graph.GenConfig{Seed: seed})
		out, err := RunRandomized(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		return graph.SameEdgeSet(out.MSTEdges, graph.Kruskal(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicMatchesKruskal is the deterministic analogue.
func TestQuickDeterministicMatchesKruskal(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%17+17)%17
		g := graph.RandomConnected(n, 2*n, graph.GenConfig{Seed: seed})
		out, err := RunDeterministic(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		return graph.SameEdgeSet(out.MSTEdges, graph.Kruskal(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFinalStatesAreTheMST cross-checks the two output channels: the
// per-node LDT tree ports and the edge list must describe the same
// tree.
func TestFinalStatesAreTheMST(t *testing.T) {
	g := graph.RandomConnected(36, 90, graph.GenConfig{Seed: 53})
	out, err := RunRandomized(g, Options{Seed: 53})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	fromStates := ldt.TreeEdges(g, out.States)
	if !graph.SameEdgeSet(fromStates, out.MSTEdges) {
		t.Error("state tree ports and MSTEdges disagree")
	}
	// Exactly one root.
	roots := 0
	for _, st := range out.States {
		if st.IsRoot() {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d, want 1", roots)
	}
}

// TestMessagesNeverLostBySleepers asserts a structural property of the
// block-scheduled algorithms: every message is sent to a neighbor that
// is awake in the same round (the schedules are aligned), so nothing
// is ever lost.
func TestMessagesNeverLostBySleepers(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.GenConfig{Seed: 54})
	for name, run := range allAlgorithms {
		if name == "classic-ghs" {
			continue // event-driven sends may hit just-halted neighbors
		}
		out, err := run(g, Options{Seed: 54})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Result.MessagesLost != 0 {
			t.Errorf("%s: %d messages lost; schedules must be aligned", name, out.Result.MessagesLost)
		}
	}
}

// TestAwakeDistributionTight checks that not just the max but every
// node's awake count is O(log n) — the paper's guarantee is per-node.
func TestAwakeDistributionTight(t *testing.T) {
	g := graph.RandomConnected(200, 600, graph.GenConfig{Seed: 55})
	out, err := RunRandomized(g, Options{Seed: 55})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	max := out.Result.MaxAwake()
	mean := out.Result.MeanAwake()
	if float64(max) > 3*mean {
		t.Errorf("awake max %d vs mean %.1f: distribution unexpectedly skewed", max, mean)
	}
}

// TestPhaseRecorderColumns sanity-checks the decay recording plumbing.
func TestPhaseRecorderColumns(t *testing.T) {
	pr := newPhaseRecorder(true, 3, 4)
	pr.record(0, 0, 10)
	pr.record(0, 1, 10)
	pr.record(0, 2, 20)
	pr.record(1, 0, 10)
	pr.record(1, 1, 10)
	pr.record(1, 2, 10)
	got := pr.counts(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", got)
	}
	disabled := newPhaseRecorder(false, 3, 4)
	disabled.record(0, 0, 1)
	if disabled.counts(1) != nil {
		t.Error("disabled recorder returned data")
	}
}

func TestDefaultBitCap(t *testing.T) {
	g := graph.RandomConnected(30, 60, graph.GenConfig{Seed: 56})
	cap := DefaultBitCap(g)
	if cap <= 0 || cap > 16*64 {
		t.Errorf("bit cap = %d, want a small multiple of log2 of the weight space", cap)
	}
}

// TestCongestionBoundedByAwake verifies the inequality Theorem 4's
// proof charges: with the CONGEST cap enforced, a node receiving B
// bits must have been awake at least B/(cap·degree) rounds.
func TestCongestionBoundedByAwake(t *testing.T) {
	g := graph.RandomConnected(50, 150, graph.GenConfig{Seed: 57})
	bitCap := DefaultBitCap(g)
	out, err := RunRandomized(g, Options{Seed: 57, BitCap: bitCap})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		maxBits := out.Result.AwakePerNode[v] * int64(bitCap) * int64(g.Degree(v))
		if out.Result.BitsReceivedPerNode[v] > maxBits {
			t.Errorf("node %d received %d bits but could absorb at most %d",
				v, out.Result.BitsReceivedPerNode[v], maxBits)
		}
	}
}
