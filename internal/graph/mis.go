package graph

// MISViolations counts how far the node set marked by inMIS is from a
// maximal independent set of g. notIndependent is the number of edges
// with both endpoints in the set (any >0 breaks independence);
// notMaximal is the number of nodes that are neither in the set nor
// adjacent to a set member (any >0 breaks maximality). A valid MIS
// returns (0, 0). inMIS is indexed by node index and must have length
// g.N().
func MISViolations(g *Graph, inMIS []bool) (notIndependent, notMaximal int64) {
	for _, e := range g.edges {
		if inMIS[e.U] && inMIS[e.V] {
			notIndependent++
		}
	}
	for v := 0; v < g.N(); v++ {
		if inMIS[v] {
			continue
		}
		covered := false
		for _, p := range g.adj[v] {
			if inMIS[p.To] {
				covered = true
				break
			}
		}
		if !covered {
			notMaximal++
		}
	}
	return notIndependent, notMaximal
}
