package graph

import "fmt"

// GRCEdgeKind classifies the edges of the lower-bound graph G_rc
// (Figure 1 of the paper); the Theorem 4 reductions mark edges by kind.
type GRCEdgeKind int

const (
	// GRCRow is an edge along one of the r parallel paths.
	GRCRow GRCEdgeKind = iota
	// GRCAlice connects Alice (first node of p_1) to the first node of
	// a row p_ℓ, ℓ ≥ 2.
	GRCAlice
	// GRCBob connects Bob (last node of p_1) to the last node of a row
	// p_ℓ, ℓ ≥ 2.
	GRCBob
	// GRCSpoke connects an X node at position j in p_1 to the j-th node
	// of a row p_ℓ, ℓ ≥ 2.
	GRCSpoke
	// GRCTree is an edge of the balanced binary tree over X.
	GRCTree
)

func (k GRCEdgeKind) String() string {
	switch k {
	case GRCRow:
		return "row"
	case GRCAlice:
		return "alice"
	case GRCBob:
		return "bob"
	case GRCSpoke:
		return "spoke"
	case GRCTree:
		return "tree"
	default:
		return fmt.Sprintf("GRCEdgeKind(%d)", int(k))
	}
}

// GRCEdgeInfo records the classification of one G_rc edge.
type GRCEdgeInfo struct {
	Kind GRCEdgeKind
	// Row is the 0-based row index for Alice/Bob/Spoke edges (the row
	// ℓ ≥ 1 the edge attaches to) and for Row edges the row they lie
	// in; it is -1 for Tree edges.
	Row int
}

// GRC is the Figure 1 lower-bound graph: r parallel paths of c nodes,
// Alice/Bob attachment edges, Θ(log n) spoke columns X, and a balanced
// binary tree over X. Rows are 0-based here: row 0 is the paper's p_1.
type GRC struct {
	G *Graph
	// R and C are the number of rows and columns.
	R, C int
	// Alice and Bob are the node indices of the paper's endpoints
	// (first and last node of row 0).
	Alice, Bob int
	// X lists the column positions of the spoke columns, in increasing
	// order; X[0] == 0 and X[len-1] == C-1.
	X []int
	// InternalNodes lists the indices of the binary-tree internal
	// nodes (the paper's set I).
	InternalNodes []int
	// EdgeInfo[i] classifies Graph edge i.
	EdgeInfo []GRCEdgeInfo
}

// Node returns the index of the node at (row, pos), 0-based.
func (g *GRC) Node(row, pos int) int {
	if row < 0 || row >= g.R || pos < 0 || pos >= g.C {
		panic(fmt.Sprintf("graph: grc node (%d,%d) out of range %dx%d", row, pos, g.R, g.C))
	}
	return row*g.C + pos
}

// XSizeFor returns the spoke-column count used for a c-column instance:
// the largest power of two that is ≤ c and within a constant factor of
// log₂(r·c), with a minimum of 2 (Alice and Bob columns). The paper
// only requires |X| ∈ Θ(log n) and a power of two.
func XSizeFor(r, c int) int {
	n := r * c
	target := 1
	for 1<<target < n {
		target++
	}
	// target ≈ log2(n); round up to a power of two.
	size := 2
	for size < target {
		size *= 2
	}
	if size > c {
		size = 1
		for size*2 <= c {
			size *= 2
		}
	}
	if size < 2 {
		size = 2
	}
	return size
}

// NewGRC constructs G_rc with r ≥ 2 rows and c ≥ 2 columns. Edge
// weights are assigned per cfg (the reductions overwrite them).
func NewGRC(r, c int, cfg GenConfig) (*GRC, error) {
	if r < 2 || c < 2 {
		return nil, fmt.Errorf("graph: grc needs r,c >= 2, got r=%d c=%d", r, c)
	}
	xSize := XSizeFor(r, c)
	if xSize > c {
		return nil, fmt.Errorf("graph: grc with c=%d cannot host %d spoke columns", c, xSize)
	}

	// Spoke column positions: equally spaced, first and last included.
	xs := make([]int, xSize)
	for i := range xs {
		xs[i] = i * (c - 1) / (xSize - 1)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("graph: grc spoke columns collide (c=%d too small for |X|=%d)", c, xSize)
		}
	}

	nRows := r * c
	nInternal := xSize - 1 // full binary tree over xSize leaves
	n := nRows + nInternal

	var edges []Edge
	var info []GRCEdgeInfo
	add := func(u, v int, kind GRCEdgeKind, row int) {
		edges = append(edges, Edge{U: u, V: v})
		info = append(info, GRCEdgeInfo{Kind: kind, Row: row})
	}
	node := func(row, pos int) int { return row*c + pos }

	// Row paths.
	for row := 0; row < r; row++ {
		for j := 0; j+1 < c; j++ {
			add(node(row, j), node(row, j+1), GRCRow, row)
		}
	}
	alice, bob := node(0, 0), node(0, c-1)
	// Alice/Bob attachments to rows 1..r-1 (paper's p_2..p_r).
	for row := 1; row < r; row++ {
		add(alice, node(row, 0), GRCAlice, row)
		add(bob, node(row, c-1), GRCBob, row)
	}
	// Spokes: interior X columns connect row 0 to every other row.
	// Columns 0 and c-1 are already covered by the Alice/Bob edges.
	for _, j := range xs {
		if j == 0 || j == c-1 {
			continue
		}
		for row := 1; row < r; row++ {
			add(node(0, j), node(row, j), GRCSpoke, row)
		}
	}
	// Balanced binary tree over the X leaves. Leaves are the row-0
	// nodes at the spoke columns; internal nodes are fresh indices.
	internal := make([]int, 0, nInternal)
	nextInternal := nRows
	leaves := make([]int, xSize)
	for i, j := range xs {
		leaves[i] = node(0, j)
	}
	var build func(lo, hi int) int // returns the root node of leaves[lo:hi]
	build = func(lo, hi int) int {
		if hi-lo == 1 {
			return leaves[lo]
		}
		root := nextInternal
		nextInternal++
		internal = append(internal, root)
		mid := (lo + hi) / 2
		l := build(lo, mid)
		rr := build(mid, hi)
		add(root, l, GRCTree, -1)
		add(root, rr, GRCTree, -1)
		return root
	}
	build(0, xSize)

	assignWeights(edges, cfg)
	g, err := New(n, edges)
	if err != nil {
		return nil, err
	}
	return &GRC{
		G:             g,
		R:             r,
		C:             c,
		Alice:         alice,
		Bob:           bob,
		X:             xs,
		InternalNodes: internal,
		EdgeInfo:      info,
	}, nil
}
