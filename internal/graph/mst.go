package graph

import (
	"container/heap"
	"fmt"
)

// Kruskal computes the minimum spanning tree (forest, if disconnected)
// using Kruskal's algorithm with the tie-broken weight key, so the
// result is unique even with duplicate weights.
func Kruskal(g *Graph) []Edge {
	edges := g.Edges()
	SortEdgesByKey(edges)
	uf := NewUnionFind(g.N())
	out := make([]Edge, 0, g.N()-1)
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			if len(out) == g.N()-1 {
				break
			}
		}
	}
	return out
}

// primItem is a heap entry for Prim's algorithm.
type primItem struct {
	key  WeightKey
	edge Edge
}

type primHeap []primItem

func (h primHeap) Len() int            { return len(h) }
func (h primHeap) Less(i, j int) bool  { return h[i].key.Less(h[j].key) }
func (h primHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *primHeap) Push(x interface{}) { *h = append(*h, x.(primItem)) }
func (h *primHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Prim computes the MST of the connected component containing start
// using Prim's algorithm with the same tie-broken key as Kruskal.
// On a connected graph Prim and Kruskal return identical edge sets,
// which the tests exploit as a cross-check.
func Prim(g *Graph, start int) []Edge {
	if start < 0 || start >= g.N() {
		panic(fmt.Sprintf("graph: prim start %d out of range", start))
	}
	inTree := make([]bool, g.N())
	inTree[start] = true
	h := &primHeap{}
	pushPorts := func(v int) {
		for _, p := range g.Ports(v) {
			if !inTree[p.To] {
				e := g.Edge(p.EdgeIdx)
				heap.Push(h, primItem{key: e.Key(), edge: e})
			}
		}
	}
	pushPorts(start)
	out := make([]Edge, 0, g.N()-1)
	for h.Len() > 0 {
		it := heap.Pop(h).(primItem)
		e := it.edge
		var next int
		switch {
		case inTree[e.U] && inTree[e.V]:
			continue
		case inTree[e.U]:
			next = e.V
		default:
			next = e.U
		}
		inTree[next] = true
		out = append(out, e)
		pushPorts(next)
	}
	return out
}

// IsSpanningTree reports whether edges form a spanning tree of g:
// exactly n-1 edges that connect all nodes without cycles.
func IsSpanningTree(g *Graph, edges []Edge) bool {
	if len(edges) != g.N()-1 {
		return false
	}
	uf := NewUnionFind(g.N())
	for _, e := range edges {
		if e.U < 0 || e.U >= g.N() || e.V < 0 || e.V >= g.N() {
			return false
		}
		if !uf.Union(e.U, e.V) {
			return false
		}
	}
	return uf.Count() == 1
}
