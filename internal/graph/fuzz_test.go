package graph

import (
	"encoding/binary"
	"testing"
)

// decodeEdges turns raw fuzz bytes into an edge list: 6 bytes per
// edge (two endpoints and a weight as little-endian int16s), so the
// fuzzer can reach out-of-range endpoints, self-loops, duplicates,
// and negative weights.
func decodeEdges(data []byte) []Edge {
	edges := make([]Edge, 0, len(data)/6)
	for len(data) >= 6 {
		edges = append(edges, Edge{
			U:      int(int16(binary.LittleEndian.Uint16(data[0:2]))),
			V:      int(int16(binary.LittleEndian.Uint16(data[2:4]))),
			Weight: int64(int16(binary.LittleEndian.Uint16(data[4:6]))),
		})
		data = data[6:]
	}
	return edges
}

// FuzzNew feeds arbitrary node counts and malformed edge lists to the
// graph constructor: it must reject bad input with an error — never a
// panic — and every accepted graph must satisfy the port-table
// invariants the simulator relies on.
func FuzzNew(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(0, []byte{})
	f.Add(-3, []byte{1, 0, 2, 0, 5, 0})
	f.Add(3, []byte{0, 0, 1, 0, 5, 0, 1, 0, 2, 0, 7, 0})
	f.Add(2, []byte{0, 0, 0, 0, 1, 0})       // self-loop
	f.Add(2, []byte{0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 2, 0}) // duplicate edge
	f.Add(4, []byte{0, 0, 9, 0, 1, 0})       // endpoint out of range
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n > 1<<12 {
			n %= 1 << 12 // keep allocations bounded, negatives pass through
		}
		edges := decodeEdges(data)
		g, err := New(n, edges)
		if err != nil {
			return
		}
		if g.N() != n {
			t.Fatalf("N() = %d, want %d", g.N(), n)
		}
		if g.M() != len(edges) {
			t.Fatalf("M() = %d, want %d accepted edges", g.M(), len(edges))
		}
		// Port reciprocity: port p of v leads to a node whose RevPort
		// leads straight back, with the same weight and edge index.
		degSum := 0
		for v := 0; v < g.N(); v++ {
			degSum += g.Degree(v)
			for p, pt := range g.Ports(v) {
				if pt.To < 0 || pt.To >= g.N() || pt.To == v {
					t.Fatalf("node %d port %d: bad neighbor %d", v, p, pt.To)
				}
				back := g.Ports(pt.To)[pt.RevPort]
				if back.To != v || back.RevPort != p {
					t.Fatalf("node %d port %d: reciprocity broken (%+v -> %+v)", v, p, pt, back)
				}
				if back.Weight != pt.Weight || back.EdgeIdx != pt.EdgeIdx {
					t.Fatalf("node %d port %d: weight/edge mismatch across ports", v, p)
				}
				e := g.Edge(pt.EdgeIdx)
				if e.Weight != pt.Weight {
					t.Fatalf("node %d port %d: port weight %d != edge weight %d", v, p, pt.Weight, e.Weight)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d != 2M %d", degSum, 2*g.M())
		}
		if got := g.MaxID(); got != int64(n) {
			t.Fatalf("default MaxID = %d, want %d", got, n)
		}
	})
}
