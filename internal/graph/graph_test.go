package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"zero nodes", 0, nil},
		{"out of range", 2, []Edge{{U: 0, V: 5}}},
		{"negative", 2, []Edge{{U: -1, V: 0}}},
		{"self loop", 2, []Edge{{U: 1, V: 1}}},
		{"duplicate", 3, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.n, tc.edges); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestPortSymmetry(t *testing.T) {
	g := RandomConnected(40, 120, GenConfig{Seed: 1})
	for v := 0; v < g.N(); v++ {
		for p, pt := range g.Ports(v) {
			back := g.Ports(pt.To)[pt.RevPort]
			if back.To != v || back.RevPort != p {
				t.Fatalf("port symmetry broken at node %d port %d", v, p)
			}
			if back.Weight != pt.Weight || back.EdgeIdx != pt.EdgeIdx {
				t.Fatalf("edge data mismatch at node %d port %d", v, p)
			}
		}
	}
}

func TestDegreeSumIsTwiceEdges(t *testing.T) {
	g := RandomConnected(30, 80, GenConfig{Seed: 2})
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Errorf("degree sum %d != 2m = %d", sum, 2*g.M())
	}
}

func TestSetIDsValidation(t *testing.T) {
	g := Path(3, GenConfig{Seed: 3})
	if err := g.SetIDs([]int64{5, 9, 2}); err != nil {
		t.Fatalf("valid ids rejected: %v", err)
	}
	if g.MaxID() != 9 {
		t.Errorf("MaxID = %d, want 9", g.MaxID())
	}
	if g.IndexOfID(9) != 1 {
		t.Errorf("IndexOfID(9) = %d, want 1", g.IndexOfID(9))
	}
	if g.IndexOfID(42) != -1 {
		t.Errorf("IndexOfID(42) = %d, want -1", g.IndexOfID(42))
	}
	for _, bad := range [][]int64{
		{1, 2},          // wrong length
		{1, 2, 2},       // duplicate
		{0, 1, 2},       // non-positive
		{1, -1, 2},      // negative
		{1, 2, 3, 4, 5}, // too long
	} {
		if err := g.SetIDs(bad); err == nil {
			t.Errorf("SetIDs(%v): want error", bad)
		}
	}
}

func TestWeightKeyTotalOrder(t *testing.T) {
	f := func(a, b WeightKey) bool {
		// Antisymmetry: exactly one of <, >, == holds.
		less, greater := a.Less(b), b.Less(a)
		if a == b {
			return !less && !greater
		}
		return less != greater
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeKeyNormalizesEndpoints(t *testing.T) {
	e1 := Edge{U: 3, V: 7, Weight: 5}
	e2 := Edge{U: 7, V: 3, Weight: 5}
	if e1.Key() != e2.Key() {
		t.Errorf("keys differ: %v vs %v", e1.Key(), e2.Key())
	}
}

func TestGeneratorsConnectedAndDistinct(t *testing.T) {
	gens := map[string]*Graph{
		"path":        Path(17, GenConfig{Seed: 4}),
		"cycle":       Cycle(17, GenConfig{Seed: 4}),
		"star":        Star(17, GenConfig{Seed: 4}),
		"complete":    Complete(9, GenConfig{Seed: 4}),
		"grid":        Grid(4, 5, GenConfig{Seed: 4}),
		"btree":       BinaryTree(17, GenConfig{Seed: 4}),
		"caterpillar": Caterpillar(5, 3, GenConfig{Seed: 4}),
		"random":      RandomConnected(25, 60, GenConfig{Seed: 4}),
		"geometric":   RandomGeometric(30, 0.2, GenConfig{Seed: 4}),
		"largeW":      RandomConnected(20, 40, GenConfig{Seed: 4, Weights: WeightsRandomLarge}),
	}
	for name, g := range gens {
		if !IsConnected(g) {
			t.Errorf("%s: not connected", name)
		}
		if name != "unit" && !g.HasDistinctWeights() {
			t.Errorf("%s: weights not distinct", name)
		}
	}
}

func TestRandomConnectedEdgeCount(t *testing.T) {
	g := RandomConnected(20, 50, GenConfig{Seed: 5})
	if g.M() != 50 {
		t.Errorf("m = %d, want 50", g.M())
	}
	// Request below the tree minimum clamps to n-1.
	g2 := RandomConnected(20, 3, GenConfig{Seed: 5})
	if g2.M() != 19 {
		t.Errorf("m = %d, want 19", g2.M())
	}
	// Request above complete clamps.
	g3 := RandomConnected(5, 100, GenConfig{Seed: 5})
	if g3.M() != 10 {
		t.Errorf("m = %d, want 10", g3.M())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomConnected(30, 90, GenConfig{Seed: 7})
	b := RandomConnected(30, 90, GenConfig{Seed: 7})
	if !SameEdgeSet(a.Edges(), b.Edges()) {
		t.Error("same seed produced different graphs")
	}
	c := RandomConnected(30, 90, GenConfig{Seed: 8})
	if SameEdgeSet(a.Edges(), c.Edges()) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	p := Path(10, GenConfig{Seed: 9})
	if d := Diameter(p); d != 9 {
		t.Errorf("path diameter = %d, want 9", d)
	}
	if d := DiameterDoubleSweep(p); d != 9 {
		t.Errorf("double sweep = %d, want 9", d)
	}
	c := Cycle(10, GenConfig{Seed: 9})
	if d := Diameter(c); d != 5 {
		t.Errorf("cycle diameter = %d, want 5", d)
	}
	s := Star(10, GenConfig{Seed: 9})
	if d := Diameter(s); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
	if e := Eccentricity(s, 0); e != 1 {
		t.Errorf("hub eccentricity = %d, want 1", e)
	}
	if got := HopDistance(p, 0, 7); got != 7 {
		t.Errorf("hop distance = %d, want 7", got)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := MaxDegree(Star(8, GenConfig{Seed: 1})); d != 7 {
		t.Errorf("star max degree = %d, want 7", d)
	}
}

func TestKruskalMatchesPrim(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := RandomConnected(40, 100, GenConfig{Seed: seed})
		k, p := Kruskal(g), Prim(g, int(seed)%g.N())
		if !SameEdgeSet(k, p) {
			t.Fatalf("seed %d: kruskal and prim disagree", seed)
		}
		if !IsSpanningTree(g, k) {
			t.Fatalf("seed %d: kruskal output is not a spanning tree", seed)
		}
	}
}

func TestKruskalUnitWeightsUnique(t *testing.T) {
	// With the tie-broken key the MST is unique even with equal
	// weights, so Kruskal == Prim still.
	g := Complete(10, GenConfig{Seed: 10, Weights: WeightsUnit})
	if !SameEdgeSet(Kruskal(g), Prim(g, 3)) {
		t.Error("tie-broken MST not unique")
	}
}

func TestMSTCutProperty(t *testing.T) {
	// Property: for random graphs, the global minimum-weight edge is
	// always in the MST.
	f := func(seed int64) bool {
		g := RandomConnected(15, 40, GenConfig{Seed: seed})
		edges := g.Edges()
		SortEdgesByKey(edges)
		mst := EdgeSet(Kruskal(g))
		e := edges[0]
		_, ok := mst[[2]int{min(e.U, e.V), max(e.U, e.V)}]
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsSpanningTreeRejects(t *testing.T) {
	g := Cycle(5, GenConfig{Seed: 11})
	edges := g.Edges()
	if IsSpanningTree(g, edges) {
		t.Error("cycle accepted as spanning tree")
	}
	if IsSpanningTree(g, edges[:3]) {
		t.Error("3 edges accepted for n=5")
	}
	// 4 edges forming a cycle + isolated node.
	bad := []Edge{edges[0], edges[1], edges[2], {U: edges[0].U, V: edges[2].V, Weight: 99}}
	if IsSpanningTree(g, bad) {
		t.Error("cyclic subset accepted")
	}
}

func TestUnionFindProperties(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Count() != 10 {
		t.Fatalf("count = %d, want 10", uf.Count())
	}
	if !uf.Union(0, 1) || uf.Union(0, 1) {
		t.Error("union results wrong")
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Error("connectivity wrong")
	}
	if uf.Count() != 9 {
		t.Errorf("count = %d, want 9", uf.Count())
	}
}

func TestUnionFindQuick(t *testing.T) {
	// Property: after any sequence of unions, Connected agrees with a
	// naive component labeling.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 30
		uf := NewUnionFind(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for k := 0; k < 40; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			uf.Union(a, b)
			relabel(naive[a], naive[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSameEdgeSet(t *testing.T) {
	a := []Edge{{U: 0, V: 1, Weight: 3}, {U: 2, V: 1, Weight: 4}}
	b := []Edge{{U: 1, V: 2, Weight: 4}, {U: 1, V: 0, Weight: 3}}
	if !SameEdgeSet(a, b) {
		t.Error("equal sets reported different")
	}
	c := []Edge{{U: 0, V: 1, Weight: 3}}
	if SameEdgeSet(a, c) {
		t.Error("different sizes reported equal")
	}
	d := []Edge{{U: 0, V: 1, Weight: 9}, {U: 2, V: 1, Weight: 4}}
	if SameEdgeSet(a, d) {
		t.Error("different weights reported equal")
	}
}

func TestTotalWeight(t *testing.T) {
	if w := TotalWeight([]Edge{{Weight: 3}, {Weight: 4}}); w != 7 {
		t.Errorf("total = %d, want 7", w)
	}
}

func TestRandomIDs(t *testing.T) {
	g := Path(10, GenConfig{Seed: 12})
	RandomIDs(g, 1000, 5)
	seen := map[int64]bool{}
	for v := 0; v < g.N(); v++ {
		id := g.ID(v)
		if id < 1 || id > 1000 {
			t.Errorf("id %d out of range", id)
		}
		if seen[id] {
			t.Errorf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestRandomGeometricAlwaysConnected(t *testing.T) {
	// Even with a radius too small to connect naturally, bridging must
	// yield a connected graph.
	g := RandomGeometric(40, 0.05, GenConfig{Seed: 13})
	if !IsConnected(g) {
		t.Error("geometric graph not connected after bridging")
	}
}
