package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// WeightMode selects how generators assign edge weights.
type WeightMode int

const (
	// WeightsDistinctRandom assigns a random permutation of 1..m
	// (distinct, so the MST is unique). This is the default.
	WeightsDistinctRandom WeightMode = iota
	// WeightsUnit assigns weight 1 to every edge (tests the
	// tie-breaking path).
	WeightsUnit
	// WeightsRandomLarge assigns distinct random weights drawn from a
	// large space, mimicking the poly(n) weight space of Theorem 3.
	WeightsRandomLarge
)

// GenConfig parameterizes the random generators.
type GenConfig struct {
	Seed    int64
	Weights WeightMode
}

func (c GenConfig) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// assignWeights overwrites edge weights per the configured mode.
func assignWeights(edges []Edge, cfg GenConfig) {
	// Derive a distinct stream from the topology seed so weights and
	// structure are decorrelated but still fully deterministic.
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x5E3779B97F4A7C15))
	switch cfg.Weights {
	case WeightsUnit:
		for i := range edges {
			edges[i].Weight = 1
		}
	case WeightsRandomLarge:
		space := int64(len(edges)) * int64(len(edges)) * 1024
		if space < 1<<20 {
			space = 1 << 20
		}
		seen := make(map[int64]bool, len(edges))
		for i := range edges {
			for {
				w := 1 + r.Int63n(space)
				if !seen[w] {
					seen[w] = true
					edges[i].Weight = w
					break
				}
			}
		}
	default: // WeightsDistinctRandom
		perm := r.Perm(len(edges))
		for i := range edges {
			edges[i].Weight = int64(perm[i] + 1)
		}
	}
}

// Path returns the path graph 0-1-...-n-1.
func Path(n int, cfg GenConfig) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// Cycle returns the ring graph on n >= 3 nodes; the topology of the
// Theorem 3 lower bound.
func Cycle(n int, cfg GenConfig) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n})
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// Star returns the star graph with node 0 as the hub.
func Star(n int, cfg GenConfig) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i})
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int, cfg GenConfig) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int, cfg GenConfig) *Graph {
	n := rows * cols
	at := func(r, c int) int { return r*cols + c }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: at(r, c), V: at(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: at(r, c), V: at(r+1, c)})
			}
		}
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// BinaryTree returns the complete-ish binary tree on n nodes where
// node i has children 2i+1 and 2i+2.
func BinaryTree(n int, cfg GenConfig) *Graph {
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: (i - 1) / 2, V: i})
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// Caterpillar returns a path of length spineLen with legsPerNode leaf
// nodes hanging off each spine node — a high-degree tree stressing the
// LDT procedures.
func Caterpillar(spineLen, legsPerNode int, cfg GenConfig) *Graph {
	n := spineLen * (1 + legsPerNode)
	var edges []Edge
	for i := 0; i+1 < spineLen; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerNode; l++ {
			edges = append(edges, Edge{U: i, V: next})
			next++
		}
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// RandomConnected returns a connected random graph with n nodes and
// approximately m edges (at least n-1): a uniform random spanning tree
// backbone (random attachment) plus random extra edges.
func RandomConnected(n, m int, cfg GenConfig) *Graph {
	if m < n-1 {
		m = n - 1
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := cfg.rng()
	perm := r.Perm(n) // random labeling so the tree shape is unbiased
	var edges []Edge
	seen := make(map[[2]int]bool, m)
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		k := [2]int{min(u, v), max(u, v)}
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, Edge{U: u, V: v})
		return true
	}
	for i := 1; i < n; i++ {
		add(perm[i], perm[r.Intn(i)])
	}
	for len(edges) < m {
		add(r.Intn(n), r.Intn(n))
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// RandomGeometric places n nodes uniformly in the unit square and
// connects pairs within the given radius; if the result is
// disconnected, nearest-component bridges are added so the returned
// graph is always connected. It models the ad-hoc wireless/sensor
// deployments that motivate the sleeping model.
func RandomGeometric(n int, radius float64, cfg GenConfig) *Graph {
	r := cfg.rng()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	dist2 := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return dx*dx + dy*dy
	}
	var edges []Edge
	rad2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist2(i, j) <= rad2 {
				edges = append(edges, Edge{U: i, V: j})
			}
		}
	}
	// Bridge components by repeatedly connecting the globally nearest
	// cross-component pair.
	uf := NewUnionFind(n)
	for _, e := range edges {
		uf.Union(e.U, e.V)
	}
	for uf.Count() > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if uf.Connected(i, j) {
					continue
				}
				if d := dist2(i, j); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		edges = append(edges, Edge{U: bi, V: bj})
		uf.Union(bi, bj)
	}
	assignWeights(edges, cfg)
	return MustNew(n, edges)
}

// RandomIDs replaces node IDs with distinct random values in [1, space],
// modeling the paper's assumption that IDs come from a range [1, N]
// with N possibly much larger than n. It returns the graph for
// chaining.
func RandomIDs(g *Graph, space int64, seed int64) *Graph {
	if space < int64(g.N()) {
		panic(fmt.Sprintf("graph: id space %d smaller than n=%d", space, g.N()))
	}
	r := rand.New(rand.NewSource(seed))
	ids := make([]int64, g.N())
	seen := make(map[int64]bool, g.N())
	for i := range ids {
		for {
			id := 1 + r.Int63n(space)
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	if err := g.SetIDs(ids); err != nil {
		panic(err)
	}
	return g
}
