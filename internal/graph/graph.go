// Package graph provides weighted undirected graphs with CONGEST-style
// port numbering, generators for the topologies used in the paper's
// experiments (including the lower-bound family G_rc), reference MST
// algorithms (Kruskal, Prim), and structural analysis helpers.
//
// All graphs are simple (no self-loops, no multi-edges) and connected
// unless stated otherwise. Edge weights are int64 and the generators
// assign distinct weights so that the MST is unique; WeightKey provides
// a total order that breaks ties deterministically for non-distinct
// inputs, matching the paper's remark that results generalize readily.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge between node indices U and V.
type Edge struct {
	U, V   int
	Weight int64
}

// Key returns the tie-breaking total-order key of the edge.
func (e Edge) Key() WeightKey {
	u, v := e.U, e.V
	if u > v {
		u, v = v, u
	}
	return WeightKey{W: e.Weight, A: int64(u), B: int64(v)}
}

// WeightKey is a lexicographic (weight, min endpoint, max endpoint) key.
// With distinct weights the endpoints never matter; with duplicate
// weights the key still induces a unique MST.
type WeightKey struct {
	W, A, B int64
}

// Less reports whether k orders strictly before o.
func (k WeightKey) Less(o WeightKey) bool {
	if k.W != o.W {
		return k.W < o.W
	}
	if k.A != o.A {
		return k.A < o.A
	}
	return k.B < o.B
}

// MaxWeightKey is a key greater than every key produced by Edge.Key.
var MaxWeightKey = WeightKey{W: 1<<62 - 1, A: 1<<62 - 1, B: 1<<62 - 1}

// Port describes one endpoint slot of an edge as seen from a node.
// A node with degree d has ports 0..d-1; port p connects to node To,
// which sees the same edge through its port RevPort.
type Port struct {
	To      int   // neighbor node index
	Weight  int64 // edge weight
	RevPort int   // port number of this edge at the neighbor
	EdgeIdx int   // index into Graph.Edges
}

// Graph is an undirected weighted graph over nodes 0..N()-1 with
// per-node port tables. Node identifiers (IDs) are distinct and
// strictly positive; by default node i has ID i+1 (so IDs lie in
// [1, n], the range the deterministic algorithm assumes).
type Graph struct {
	adj   [][]Port
	edges []Edge
	ids   []int64
}

// New builds a graph with n nodes and the given edges.
// It returns an error for invalid endpoints, self-loops or duplicates.
func New(n int, edges []Edge) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: n must be positive, got %d", n)
	}
	g := &Graph{
		adj:   make([][]Port, n),
		edges: make([]Edge, 0, len(edges)),
		ids:   make([]int64, n),
	}
	for i := range g.ids {
		g.ids[i] = int64(i + 1)
	}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		k := [2]int{min(e.U, e.V), max(e.U, e.V)}
		if seen[k] {
			return nil, fmt.Errorf("graph: duplicate edge %d-%d", k[0], k[1])
		}
		seen[k] = true
		g.addEdge(e)
	}
	return g, nil
}

// MustNew is New but panics on error; intended for tests and generators
// that construct edges programmatically.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) addEdge(e Edge) {
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	pu := Port{To: e.V, Weight: e.Weight, RevPort: len(g.adj[e.V]), EdgeIdx: idx}
	pv := Port{To: e.U, Weight: e.Weight, RevPort: len(g.adj[e.U]), EdgeIdx: idx}
	g.adj[e.U] = append(g.adj[e.U], pu)
	g.adj[e.V] = append(g.adj[e.V], pv)
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Ports returns the port table of node v. The returned slice must not
// be modified.
func (g *Graph) Ports(v int) []Port { return g.adj[v] }

// ID returns the identifier of node v.
func (g *Graph) ID(v int) int64 { return g.ids[v] }

// MaxID returns the largest node identifier (the paper's N).
func (g *Graph) MaxID() int64 {
	var m int64
	for _, id := range g.ids {
		if id > m {
			m = id
		}
	}
	return m
}

// SetIDs overwrites the node identifiers. IDs must be distinct and
// strictly positive.
func (g *Graph) SetIDs(ids []int64) error {
	if len(ids) != g.N() {
		return fmt.Errorf("graph: got %d ids for %d nodes", len(ids), g.N())
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if id <= 0 {
			return fmt.Errorf("graph: id %d is not strictly positive", id)
		}
		if seen[id] {
			return fmt.Errorf("graph: duplicate id %d", id)
		}
		seen[id] = true
	}
	copy(g.ids, ids)
	return nil
}

// IndexOfID returns the node index holding the given ID, or -1.
func (g *Graph) IndexOfID(id int64) int {
	for i, x := range g.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// HasDistinctWeights reports whether all edge weights are distinct.
func (g *Graph) HasDistinctWeights() bool {
	seen := make(map[int64]bool, len(g.edges))
	for _, e := range g.edges {
		if seen[e.Weight] {
			return false
		}
		seen[e.Weight] = true
	}
	return true
}

// TotalWeight sums the weights of the given edges.
func TotalWeight(edges []Edge) int64 {
	var s int64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// SortEdgesByKey sorts edges in place by their tie-broken weight key.
func SortEdgesByKey(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool { return edges[i].Key().Less(edges[j].Key()) })
}

// EdgeSet converts an edge list into a canonical set representation
// keyed by (min endpoint, max endpoint), useful for comparing MSTs.
func EdgeSet(edges []Edge) map[[2]int]int64 {
	s := make(map[[2]int]int64, len(edges))
	for _, e := range edges {
		s[[2]int{min(e.U, e.V), max(e.U, e.V)}] = e.Weight
	}
	return s
}

// SameEdgeSet reports whether two edge lists describe the same set of
// undirected edges.
func SameEdgeSet(a, b []Edge) bool {
	sa, sb := EdgeSet(a), EdgeSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k, w := range sa {
		if w2, ok := sb[k]; !ok || w2 != w {
			return false
		}
	}
	return true
}
