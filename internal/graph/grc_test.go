package graph

import (
	"math"
	"testing"
)

func TestGRCStructure(t *testing.T) {
	grc, err := NewGRC(8, 64, GenConfig{Seed: 1})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	g := grc.G
	if !IsConnected(g) {
		t.Fatal("G_rc not connected")
	}
	if !g.HasDistinctWeights() {
		t.Fatal("weights not distinct")
	}
	// n = r*c + |I| with |I| = |X|-1.
	wantN := 8*64 + len(grc.X) - 1
	if g.N() != wantN {
		t.Errorf("n = %d, want %d", g.N(), wantN)
	}
	// X is a power of two, includes both end columns.
	if grc.X[0] != 0 || grc.X[len(grc.X)-1] != 63 {
		t.Errorf("X = %v, want first 0 and last 63", grc.X)
	}
	if x := len(grc.X); x&(x-1) != 0 {
		t.Errorf("|X| = %d, not a power of two", x)
	}
	// Alice and Bob are the corners of row 0.
	if grc.Alice != grc.Node(0, 0) || grc.Bob != grc.Node(0, 63) {
		t.Errorf("alice/bob = %d/%d", grc.Alice, grc.Bob)
	}
	// Alice connects to the first node of every other row.
	aliceNbrs := map[int]bool{}
	for _, p := range g.Ports(grc.Alice) {
		aliceNbrs[p.To] = true
	}
	for row := 1; row < grc.R; row++ {
		if !aliceNbrs[grc.Node(row, 0)] {
			t.Errorf("alice not connected to row %d", row)
		}
	}
	// Edge classification is total and indexes align.
	if len(grc.EdgeInfo) != g.M() {
		t.Fatalf("edge info length %d != m %d", len(grc.EdgeInfo), g.M())
	}
	counts := map[GRCEdgeKind]int{}
	for _, info := range grc.EdgeInfo {
		counts[info.Kind]++
	}
	if counts[GRCRow] != grc.R*(grc.C-1) {
		t.Errorf("row edges = %d, want %d", counts[GRCRow], grc.R*(grc.C-1))
	}
	if counts[GRCAlice] != grc.R-1 || counts[GRCBob] != grc.R-1 {
		t.Errorf("alice/bob edges = %d/%d, want %d", counts[GRCAlice], counts[GRCBob], grc.R-1)
	}
	if counts[GRCTree] != 2*(len(grc.X)-1) {
		t.Errorf("tree edges = %d, want %d", counts[GRCTree], 2*(len(grc.X)-1))
	}
	wantSpokes := (len(grc.X) - 2) * (grc.R - 1)
	if counts[GRCSpoke] != wantSpokes {
		t.Errorf("spoke edges = %d, want %d", counts[GRCSpoke], wantSpokes)
	}
}

func TestGRCDiameterObservation1(t *testing.T) {
	// Observation 1: diameter Θ(c / log n). Check the upper-bound
	// shape: D <= spacing + O(log n) tree hops + spacing, i.e., well
	// below c for wide instances, and growing linearly in c.
	d1 := grcDiameter(t, 4, 64)
	d2 := grcDiameter(t, 4, 256)
	n := float64(4 * 256)
	if float64(d2) > 3*256/math.Log2(n)+6*math.Log2(n) {
		t.Errorf("diameter %d too large for c=256 (want Θ(c/log n))", d2)
	}
	if d2 <= d1 {
		t.Errorf("diameter did not grow with c: %d -> %d", d1, d2)
	}
	// And it must be much smaller than c (the tree shortcut works).
	if d2 >= 256 {
		t.Errorf("diameter %d >= c; binary tree shortcuts missing", d2)
	}
}

func grcDiameter(t *testing.T, r, c int) int {
	t.Helper()
	grc, err := NewGRC(r, c, GenConfig{Seed: 2})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	return Diameter(grc.G)
}

func TestGRCXSizeFor(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{2, 8}, {4, 64}, {8, 512}, {16, 1024}} {
		x := XSizeFor(tc.r, tc.c)
		if x < 2 || x > tc.c {
			t.Errorf("XSizeFor(%d,%d) = %d out of range", tc.r, tc.c, x)
		}
		if x&(x-1) != 0 {
			t.Errorf("XSizeFor(%d,%d) = %d not a power of two", tc.r, tc.c, x)
		}
	}
}

func TestGRCRejectsTiny(t *testing.T) {
	if _, err := NewGRC(1, 10, GenConfig{}); err == nil {
		t.Error("want error for r=1")
	}
	if _, err := NewGRC(10, 1, GenConfig{}); err == nil {
		t.Error("want error for c=1")
	}
}

func TestGRCEdgeKindString(t *testing.T) {
	for k, want := range map[GRCEdgeKind]string{
		GRCRow: "row", GRCAlice: "alice", GRCBob: "bob", GRCSpoke: "spoke", GRCTree: "tree",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
