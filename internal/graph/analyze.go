package graph

// BFS returns the hop distances from src to every node (-1 if
// unreachable).
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range g.Ports(v) {
			if dist[p.To] < 0 {
				dist[p.To] = dist[v] + 1
				queue = append(queue, p.To)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected.
func IsConnected(g *Graph) bool {
	for _, d := range BFS(g, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum hop distance from src, or -1 if the
// graph is disconnected.
func Eccentricity(g *Graph, src int) int {
	ecc := 0
	for _, d := range BFS(g, src) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter via all-sources BFS, or -1 if
// disconnected. O(n·m); fine for the experiment sizes.
func Diameter(g *Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		e := Eccentricity(g, v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterDoubleSweep returns a fast lower bound on the diameter via a
// double BFS sweep (exact on trees).
func DiameterDoubleSweep(g *Graph) int {
	d0 := BFS(g, 0)
	far := 0
	for v, d := range d0 {
		if d > d0[far] {
			far = v
		}
	}
	ecc := Eccentricity(g, far)
	return ecc
}

// MaxDegree returns the maximum node degree.
func MaxDegree(g *Graph) int {
	m := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// HopDistance returns the hop distance between u and v (-1 if
// unreachable).
func HopDistance(g *Graph, u, v int) int { return BFS(g, u)[v] }
