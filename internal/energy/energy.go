// Package energy maps sleeping-model executions to energy budgets,
// following the paper's motivation (§1) and the energy-complexity
// model it relates to (Appendix A): a node spends significant energy
// in any round it is awake — sending, receiving, or merely listening —
// and (near) zero energy asleep. Converting awake rounds into joules
// makes the awake-complexity gap tangible for sensor deployments.
package energy

import (
	"fmt"

	"sleepmst/internal/sim"
)

// Model assigns per-activity energy costs in microjoules. The awake
// baseline (listening) dominates in low-power radios, which is exactly
// the observation behind the sleeping model.
type Model struct {
	// AwakeRoundUJ is charged for every awake round (idle listening).
	AwakeRoundUJ float64
	// SendMsgUJ is charged per message sent, on top of the awake cost.
	SendMsgUJ float64
	// SleepRoundUJ is charged per sleeping round (clock upkeep).
	SleepRoundUJ float64
}

// TelosMote is an illustrative low-power sensor profile: listening in
// a slot costs about three orders of magnitude more than sleeping
// through it — the ratio, not the absolute values, drives the results.
var TelosMote = Model{
	AwakeRoundUJ: 60.0,
	SendMsgUJ:    6.0,
	SleepRoundUJ: 0.06,
}

// NodeCost returns the energy in microjoules spent by node v during
// the run: awake rounds plus message sends plus sleeping upkeep until
// the node's local termination.
func (m Model) NodeCost(res *sim.Result, v int) float64 {
	awake := float64(res.AwakePerNode[v])
	sent := float64(res.MessagesSentPerNode[v])
	sleep := float64(res.HaltRound[v]) - float64(res.AwakePerNode[v])
	if sleep < 0 {
		sleep = 0
	}
	return awake*m.AwakeRoundUJ + sent*m.SendMsgUJ + sleep*m.SleepRoundUJ
}

// Budget summarizes the energy profile of a run.
type Budget struct {
	MaxUJ   float64 // worst node
	MeanUJ  float64
	TotalUJ float64
}

// Cost aggregates NodeCost over all nodes.
func (m Model) Cost(res *sim.Result) Budget {
	var b Budget
	n := len(res.AwakePerNode)
	for v := 0; v < n; v++ {
		c := m.NodeCost(res, v)
		b.TotalUJ += c
		if c > b.MaxUJ {
			b.MaxUJ = c
		}
	}
	if n > 0 {
		b.MeanUJ = b.TotalUJ / float64(n)
	}
	return b
}

// Lifetime returns how many times the computation could be repeated
// before the worst-case node exhausts a battery of the given capacity
// (in joules).
func (m Model) Lifetime(res *sim.Result, batteryJ float64) float64 {
	b := m.Cost(res)
	if b.MaxUJ == 0 {
		return 0
	}
	return batteryJ * 1e6 / b.MaxUJ
}

// String renders the budget as a one-line summary.
func (b Budget) String() string {
	return fmt.Sprintf("max %.1fuJ, mean %.1fuJ, total %.1fuJ", b.MaxUJ, b.MeanUJ, b.TotalUJ)
}
