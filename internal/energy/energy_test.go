package energy

import (
	"testing"

	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/sim"
)

func TestNodeCostArithmetic(t *testing.T) {
	res := &sim.Result{
		AwakePerNode:        []int64{10},
		HaltRound:           []int64{100},
		MessagesSentPerNode: []int64{5},
	}
	m := Model{AwakeRoundUJ: 2, SendMsgUJ: 3, SleepRoundUJ: 0.5}
	// 10 awake * 2 + 5 msgs * 3 + 90 sleep * 0.5 = 20 + 15 + 45.
	if got := m.NodeCost(res, 0); got != 80 {
		t.Errorf("cost = %v, want 80", got)
	}
}

func TestCostAggregation(t *testing.T) {
	res := &sim.Result{
		AwakePerNode:        []int64{1, 3},
		HaltRound:           []int64{1, 3},
		MessagesSentPerNode: []int64{0, 0},
	}
	m := Model{AwakeRoundUJ: 10}
	b := m.Cost(res)
	if b.MaxUJ != 30 || b.TotalUJ != 40 || b.MeanUJ != 20 {
		t.Errorf("budget = %+v", b)
	}
	if b.String() == "" {
		t.Error("empty budget string")
	}
}

func TestSleepingSavesEnergyEndToEnd(t *testing.T) {
	// The paper's motivating claim, in joules: on the same instance,
	// the sleeping-model MST must be dramatically cheaper per node
	// than the always-awake baseline.
	g := graph.RandomGeometric(96, 0.2, graph.GenConfig{Seed: 5})
	sleeping, err := core.RunRandomized(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	baseline, err := core.RunBaseline(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cs := TelosMote.Cost(sleeping.Result)
	cb := TelosMote.Cost(baseline.Result)
	if cb.MaxUJ < 5*cs.MaxUJ {
		t.Errorf("baseline max %.0fuJ vs sleeping max %.0fuJ: want >= 5x gap", cb.MaxUJ, cs.MaxUJ)
	}
	ls := TelosMote.Lifetime(sleeping.Result, 1.0)
	lb := TelosMote.Lifetime(baseline.Result, 1.0)
	if ls <= lb {
		t.Errorf("lifetime sleeping %.0f <= baseline %.0f", ls, lb)
	}
}

func TestLifetimeZeroForEmptyRun(t *testing.T) {
	res := &sim.Result{AwakePerNode: []int64{0}, HaltRound: []int64{0}, MessagesSentPerNode: []int64{0}}
	if l := TelosMote.Lifetime(res, 1); l != 0 {
		t.Errorf("lifetime = %v, want 0", l)
	}
}
