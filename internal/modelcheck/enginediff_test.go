package modelcheck

import (
	"bytes"
	"testing"

	"sleepmst/internal/graph"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
)

// Engine-differential model-checking tests: the explorer's positional
// prefix replay assumes the Chooser decision points are a total
// function of (graph, seed, program, prior choices) — independent of
// which scheduler runs underneath. These tests re-run explorations on
// both engines and demand byte-identical verdict JSON, extending the
// byte-for-byte equivalence proof from single runs (enginediff suites
// in internal/sim and internal/problem) to the full exhaustive-
// exploration loop, counterexamples included.

// exploreJSON runs one exploration and returns its verdict JSON.
func exploreJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	v, err := Explore(cfg)
	if err != nil {
		t.Fatalf("Explore(engine=%v): %v", cfg.Engine, err)
	}
	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestEngineVerdictBytes replays the hand-counted exhaustiveness
// fixtures (path2/ring3, the TestExhaustiveness pins) and the seeded
// budget-regression exploration on both engines: every coverage
// counter, schedule count, and counterexample must serialize to the
// same bytes.
func TestEngineVerdictBytes(t *testing.T) {
	path2 := graph.Path(2, graph.GenConfig{Seed: 1})
	ring3 := graph.Cycle(3, graph.GenConfig{Seed: 1})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"path2", Config{Problem: chatterProblem{rounds: 2}, Graph: path2, Depth: 2, Workers: 1}},
		{"ring3", Config{Problem: chatterProblem{rounds: 1}, Graph: ring3, Depth: 2, Workers: 1}},
		{"path2/nomemo", Config{Problem: chatterProblem{rounds: 2}, Graph: path2, Depth: 2, Workers: 1, NoMemo: true}},
		{"path2/seeded-bug", Config{Problem: chatterProblem{rounds: 2, buggy: true}, Graph: path2,
			Depth: 2, Oversleep: 1, BudgetSlack: 1.0, Workers: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gorCfg, evtCfg := tc.cfg, tc.cfg
			gorCfg.Engine = sim.EngineGoroutine
			evtCfg.Engine = sim.EngineEvent
			gor := exploreJSON(t, gorCfg)
			evt := exploreJSON(t, evtCfg)
			if !bytes.Equal(gor, evt) {
				t.Errorf("verdict JSON diverges between engines:\ngoroutine:\n%s\nevent:\n%s", gor, evt)
			}
		})
	}
}

// TestEngineRing4OversleepCounterexample re-finds E21's genuine
// counterexample on the event engine — ring4 mst/randomized with one
// admissible oversleep has exactly two silently-wrong-tree schedules
// at level 2 — and pins the goroutine engine to the same verdict
// bytes, counterexample traces included. This is the strongest
// equivalence statement in the suite: both engines agree not only on
// clean runs but on the precise set of adversarial schedules that
// break the algorithm.
func TestEngineRing4OversleepCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oversleep exploration skipped in -short")
	}
	p, err := problem.Lookup("mst/randomized")
	if err != nil {
		t.Fatal(err)
	}
	ring4 := graph.Cycle(4, graph.GenConfig{Seed: 1})
	mk := func(e sim.Engine) Config {
		return Config{
			Problem:   p,
			Graph:     ring4,
			Seed:      1, // E21's seed: the finding is seed-specific
			Depth:     2,
			Oversleep: 1,
			Workers:   1,
			Engine:    e,
		}
	}
	gorV, err := Explore(mk(sim.EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	evtV, err := Explore(mk(sim.EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	// The E21 finding, re-pinned on the event engine: two silent
	// wrong-tree schedules, found at deviation level 2.
	if evtV.Pass || evtV.ViolationCount != 2 {
		t.Errorf("event engine: want 2 violations (E21 ring4 oversleep finding), got pass=%v count=%d",
			evtV.Pass, evtV.ViolationCount)
	}
	if evtV.DepthReached != 2 {
		t.Errorf("event engine: counterexamples at depth %d, want 2", evtV.DepthReached)
	}
	var gorJ, evtJ bytes.Buffer
	if err := gorV.WriteJSON(&gorJ); err != nil {
		t.Fatal(err)
	}
	if err := evtV.WriteJSON(&evtJ); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gorJ.Bytes(), evtJ.Bytes()) {
		t.Error("ring4 oversleep verdicts diverge between engines")
	}
}
