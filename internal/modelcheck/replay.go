package modelcheck

import (
	"fmt"
)

// Choice-point kinds, one per sim.Chooser method.
const (
	kindWake  = byte('w') // oversleep a parking node by 0..Oversleep rounds
	kindSend  = byte('s') // pick the next sender among the round's staged pool
	kindFault = byte('f') // drop or deliver one staged message
)

// choicePoint is one logged branch point: its kind, its arity, and
// the alternative taken (0 is always the production choice).
type choicePoint struct {
	kind  byte
	k     int
	taken int
}

// replayer is the sim.Chooser that makes stateless exploration
// possible: node goroutine state cannot be snapshotted, so the
// explorer re-executes the system from scratch, replaying a recorded
// choice prefix positionally and taking the production default
// beyond it, while logging every choice point the execution passes.
// Positional (sequence-indexed) replay is sound because the
// simulator guarantees a total order of chooser calls that is a
// deterministic function of (graph, seed, program, prior choices) —
// see the sim.Chooser contract.
type replayer struct {
	prefix    []int
	oversleep int // wake-point span; <= 0 removes wake points entirely
	faults    bool

	log      []choicePoint
	pos      int
	mismatch error
}

// next consumes one choice point of arity k and returns the replayed
// or default alternative. A prefix alternative outside [0, k) means
// the execution diverged from the run that recorded it — a broken
// determinism contract, reported as a hard error, never explored.
func (r *replayer) next(kind byte, k int) int {
	taken := 0
	if r.pos < len(r.prefix) {
		taken = r.prefix[r.pos]
		if taken < 0 || taken >= k {
			if r.mismatch == nil {
				r.mismatch = fmt.Errorf("choice %d: prefix alternative %d out of range for %c-point of arity %d", r.pos, taken, kind, k)
			}
			taken = 0
		}
	}
	r.log = append(r.log, choicePoint{kind: kind, k: k, taken: taken})
	r.pos++
	return taken
}

// takens returns the complete schedule this execution followed.
func (r *replayer) takens() []int {
	out := make([]int, len(r.log))
	for i, cp := range r.log {
		out[i] = cp.taken
	}
	return out
}

func (r *replayer) ChooseWake(node int, intended int64) int64 {
	if r.oversleep <= 0 {
		return intended
	}
	return intended + int64(r.next(kindWake, 1+r.oversleep))
}

func (r *replayer) ChooseSender(round int64, remaining []int) int {
	return r.next(kindSend, len(remaining))
}

func (r *replayer) ChooseFault(round int64, from, port, to int) bool {
	if !r.faults {
		return false
	}
	return r.next(kindFault, 2) == 1
}
