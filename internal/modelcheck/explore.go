package modelcheck

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync/atomic"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// explorer carries one exploration's resolved configuration and the
// cross-job run counter.
type explorer struct {
	cfg       Config
	n         int
	depth     int
	oversleep int
	slack     float64
	maxViol   int
	recCap    int
	maxRuns   int64
	budget    func(n int) (int64, bool)

	rootHash uint64
	runCount atomic.Int64
}

func newExplorer(cfg Config) *explorer {
	e := &explorer{cfg: cfg, n: cfg.Graph.N()}
	e.depth = cfg.Depth
	if e.depth == 0 {
		e.depth = DefaultDepth
	}
	if e.depth < 0 {
		e.depth = 0
	}
	e.oversleep = cfg.Oversleep
	if e.oversleep < 0 {
		e.oversleep = 0
	}
	e.slack = cfg.BudgetSlack
	if e.slack == 0 {
		e.slack = DefaultBudgetSlack
	}
	e.maxViol = cfg.MaxViolations
	if e.maxViol == 0 {
		e.maxViol = DefaultMaxViolations
	}
	e.recCap = cfg.RecorderCap
	e.maxRuns = cfg.MaxRuns
	if e.maxRuns == 0 {
		e.maxRuns = DefaultMaxRuns
	}
	e.budget = cfg.BudgetOverride
	if e.budget == nil {
		e.budget = cfg.Problem.Budget
	}
	return e
}

// leaf is one complete executed schedule: the choices it took, the
// run's output, and its canonical trace.
type leaf struct {
	takens     []int
	log        []choicePoint
	deviations int  // non-default choices taken
	perturbed  bool // took a wake or fault alternative (not only reordering)
	res        *problem.Result
	runErr     error
	meta       trace.Meta
	events     []trace.Event
	hash       uint64
}

// job is one (choice point, alternative) of the production schedule —
// the unit of parallel fan-out. The first non-default choice of every
// schedule is one of these, so jobs partition the schedule space, and
// the partition depends only on the root execution, never on worker
// count or completion order.
type job struct {
	point, alt int
}

// jobResult aggregates one job's subtree; Explore merges them in job
// order.
type jobResult struct {
	runs, schedules, memoHits, pruned, detected, violCount int64
	hashes                                                 []uint64
	violations                                             []Violation
}

// hashTrace fingerprints an execution as FNV-1a over its event lines
// in a normalized order: the canonical (Round, Node, Kind) order with
// a Port tiebreak, which erases the one trace artifact nodes cannot
// observe — the within-round order the scheduler happened to process
// deliveries in (inboxes are port-keyed, at most one message per port
// per round). Two executions with equal hashes therefore have equal
// per-node port-keyed exchange histories — and node state is a
// deterministic function of seed and exchange history, so their
// futures and outputs coincide. That is the memoization soundness
// argument, and it is what lets the memo table prove routing-order
// permutations equivalent instead of merely re-executing them.
func hashTrace(meta trace.Meta, events []trace.Event) uint64 {
	norm := append([]trace.Event(nil), events...)
	sort.SliceStable(norm, func(i, j int) bool {
		a, b := &norm[i], &norm[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Port < b.Port
	})
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d rounds=%d\n", meta.N, meta.Rounds)
	for i := range norm {
		io.WriteString(h, norm[i].String())
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// runOne executes the schedule prefix (production defaults beyond it)
// from scratch with a fresh recorder and replayer. Errors are
// infrastructure failures — replay divergence, recorder overflow, run
// budget — never algorithm-level failures, which land in leaf.runErr.
func (e *explorer) runOne(prefix []int) (*leaf, error) {
	if e.runCount.Add(1) > e.maxRuns {
		return nil, fmt.Errorf("modelcheck: execution budget exhausted after %d runs (lower Depth or raise MaxRuns)", e.maxRuns)
	}
	rec := trace.NewRecorder(e.recCap)
	rp := &replayer{prefix: prefix, oversleep: e.oversleep, faults: e.cfg.Faults}
	res, runErr := e.cfg.Problem.Run(e.cfg.Graph, core.Options{
		Engine:  e.cfg.Engine,
		Seed:    e.cfg.Seed,
		Chooser: rp,
		Trace:   rec,
	})
	if rp.mismatch != nil {
		return nil, fmt.Errorf("modelcheck: replay diverged from recorded prefix %v: %w", prefix, rp.mismatch)
	}
	if rp.pos < len(rp.prefix) {
		return nil, fmt.Errorf("modelcheck: execution consumed %d of %d prefix choices (nondeterministic program?)", rp.pos, len(rp.prefix))
	}
	meta := rec.Meta()
	if meta.Dropped > 0 {
		return nil, fmt.Errorf("modelcheck: trace recorder overflowed (%d events evicted); raise RecorderCap", meta.Dropped)
	}
	lf := &leaf{
		takens: rp.takens(),
		log:    rp.log,
		res:    res,
		runErr: runErr,
		meta:   meta,
		events: rec.Events(),
	}
	for _, cp := range rp.log {
		if cp.taken != 0 {
			lf.deviations++
			if cp.kind != kindSend {
				lf.perturbed = true
			}
		}
	}
	lf.hash = hashTrace(lf.meta, lf.events)
	return lf, nil
}

// checkLeaf applies the leaf policy to one complete schedule and
// returns its violation, if any, plus whether the runtime detected an
// injected fault (admissible failure on a perturbed schedule).
func (e *explorer) checkLeaf(lf *leaf) (*Violation, bool) {
	if lf.runErr != nil {
		if lf.perturbed {
			// The runtime refused to produce an answer under the
			// perturbation — detection, not violation.
			return nil, true
		}
		return e.violation(lf, "error", lf.runErr.Error(), nil), false
	}
	info := conform.RunInfo{
		Algorithm: e.cfg.Problem.Name(),
		N:         e.n,
		Seed:      e.cfg.Seed,
		Budget:    e.budget,
	}
	if lf.perturbed {
		info.Relaxed = true
		info.BudgetSlack = e.slack
	}
	v := conform.CheckTrace(lf.meta, lf.events, info)
	v.Append(e.cfg.Problem.ConformCheck(e.cfg.Graph, lf.res))
	if fails := v.Failures(); len(fails) > 0 {
		return e.violation(lf, "conform", fails[0].Detail, fails), false
	}
	if err := e.cfg.Problem.Verify(e.cfg.Graph, lf.res); err != nil {
		return e.violation(lf, "oracle", err.Error(), nil), false
	}
	return nil, false
}

// violation packages a failing leaf as a minimal counterexample: the
// prefix is the schedule trimmed to its last non-default choice, so
// replaying it (defaults beyond) re-executes the violating run.
func (e *explorer) violation(lf *leaf, kind, detail string, checks []conform.Check) *Violation {
	last := -1
	for i, t := range lf.takens {
		if t != 0 {
			last = i
		}
	}
	return &Violation{
		Level:     lf.deviations,
		Prefix:    append([]int(nil), lf.takens[:last+1]...),
		Perturbed: lf.perturbed,
		Kind:      kind,
		Detail:    detail,
		Checks:    checks,
		Meta:      lf.meta,
		Events:    lf.events,
	}
}

// exploreJob explores one job's subtree at one deviation level. Each
// (job, level) gets a private memo table, so jobs never share mutable
// state and the aggregate is byte-identical at every worker count.
// The table maps a state hash to the largest remaining deviation
// budget it has been expanded with; the root state is seeded at the
// full level, because the totality of this level's jobs is exactly
// the root's budget-level subtree.
func (e *explorer) exploreJob(j job, level int) (*jobResult, error) {
	jr := &jobResult{}
	var memo map[uint64]int
	if !e.cfg.NoMemo {
		memo = map[uint64]int{e.rootHash: level}
	}
	prefix := make([]int, j.point+1)
	prefix[j.point] = j.alt
	if err := e.dfs(prefix, level, memo, jr); err != nil {
		return nil, err
	}
	return jr, nil
}

// dfs explores the schedule subtree rooted at prefix. A schedule is
// checked iff its deviation count equals the level — with levels
// explored 0..Depth in turn, every schedule is visited exactly once,
// at its exact deviation count, and the first violating level yields
// deviation-minimal counterexamples.
//
// Memoization prunes a subtree only when the state was already seen
// with at least as much remaining budget (a hit with less budget
// would skip schedules the earlier visit was not entitled to cover).
// BranchesPruned counts the immediate branch alternatives a hit
// skips.
func (e *explorer) dfs(prefix []int, level int, memo map[uint64]int, jr *jobResult) error {
	lf, err := e.runOne(prefix)
	if err != nil {
		return err
	}
	jr.runs++
	rem := level - lf.deviations
	stored, seen := memo[lf.hash]
	hit := seen && stored >= rem
	if memo != nil && (!seen || stored < rem) {
		memo[lf.hash] = rem
	}
	if rem <= 0 {
		// A complete schedule at this level.
		jr.schedules++
		jr.hashes = append(jr.hashes, lf.hash)
		if hit {
			jr.memoHits++
			return nil
		}
		viol, detected := e.checkLeaf(lf)
		if detected {
			jr.detected++
		}
		if viol != nil {
			jr.violCount++
			if len(jr.violations) < e.maxViol {
				jr.violations = append(jr.violations, *viol)
			}
		}
		return nil
	}
	// An interior node — its own schedule was checked at an earlier
	// level; branch on the choice points beyond the prefix.
	if hit {
		jr.memoHits++
		for _, cp := range lf.log[len(prefix):] {
			jr.pruned += int64(cp.k - 1)
		}
		return nil
	}
	for i := len(prefix); i < len(lf.log); i++ {
		for alt := 1; alt < lf.log[i].k; alt++ {
			child := make([]int, i+1)
			copy(child, lf.takens[:i])
			child[i] = alt
			if err := e.dfs(child, level, memo, jr); err != nil {
				return err
			}
		}
	}
	return nil
}
