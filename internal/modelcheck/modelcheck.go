// Package modelcheck is the bounded state-space explorer: it drives
// the simulator deterministically through every admissible
// nondeterminism branch of a problem run on a small topology and
// checks the internal/conform invariant catalog plus the problem's
// correctness oracle on every leaf — the claims chaos sampling
// spot-checks, proved exhaustively for small n.
//
// # Branch model
//
// The simulator's nondeterminism surface is the sim.Chooser hook.
// The clean sleeping model has exactly one admissible nondeterminism:
// the adversarial message-routing order within a round (any
// permutation of the round's staged senders) — a node's wake schedule
// is its own choice, so the default exploration branches on routing
// order only and holds every schedule to the strict catalog. Two
// chaos extensions widen the surface on demand: wake-schedule
// perturbation (Oversleep > 0: a parked node may be overslept by 1..k
// extra rounds) and per-message single-fault injection (Faults: drop
// or deliver). Each point offers k alternatives; alternative 0 is the
// production choice. A schedule is the sequence of alternatives
// taken; the production run is the all-zeros schedule.
//
// Exploration is stateless in the CHESS style: node goroutine state
// cannot be snapshotted, so the explorer re-executes the system from
// scratch with a recorded choice prefix and branches on the choice
// points the execution logs beyond it. The search is delay-bounded:
// Depth caps the number of non-default choices per schedule, and the
// explorer iteratively deepens the bound 0..Depth, stopping at the
// first level that finds violations — retained counterexamples are
// therefore deviation-minimal.
//
// # Memoization
//
// A node's state is a deterministic function of its seed and its
// observable exchange history, so two executions with identical
// canonical traces are semantically identical and their futures
// coincide. The explorer hashes each execution's trace; when a hash
// repeats, the suffix subtree is pruned as equivalent (the verdict
// accounts for it under MemoHits/BranchesPruned). In particular the
// within-round routing order is unobservable in the clean model
// (inboxes are port-keyed with at most one message per port per
// round), which the memo table discovers — and proves — exhaustively.
//
// # Determinism
//
// Subtrees fan out across the internal/sweep pool: the root
// execution's choice-point log partitions the schedule space into
// per-(point, alternative) jobs, each explored with its own memo
// table and aggregated in job order, so the verdict is byte-identical
// at every worker count.
//
// # Leaf policy
//
// Ordering-only schedules (no oversleep, no fault taken) must pass
// the strict catalog and the oracle; any run error is a violation.
// Perturbed schedules are held to the relaxed catalog with
// BudgetSlack, and a runtime-detected failure (awake budget, round
// cap, non-convergence) is admissible — the run refused to produce a
// wrong answer — but a silent wrong output is a violation.
package modelcheck

import (
	"errors"
	"fmt"
	"io"

	"encoding/json"

	"sleepmst/internal/conform"
	"sleepmst/internal/graph"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
	"sleepmst/internal/sweep"
	"sleepmst/internal/trace"
)

// VerdictSchema is the version stamp of the verdict JSON shape.
const VerdictSchema = 1

// Defaults for the zero-valued Config fields.
const (
	// DefaultDepth is the deviation bound when Config.Depth is 0.
	DefaultDepth = 2
	// DefaultBudgetSlack multiplies the awake budget on perturbed
	// schedules when Config.BudgetSlack is 0.
	DefaultBudgetSlack = 2.0
	// DefaultMaxViolations caps retained counterexamples when
	// Config.MaxViolations is 0 (counting always continues).
	DefaultMaxViolations = 8
	// DefaultMaxRuns bounds total executions when Config.MaxRuns is 0.
	DefaultMaxRuns = 1 << 20
	// MaxNodes bounds the topology size: exhaustive exploration is a
	// small-n tool by construction.
	MaxNodes = 8
)

// Config parameterizes an exploration.
type Config struct {
	// Problem is the problem under check. Required.
	Problem problem.Problem
	// Graph is the (small) topology. Required; at most MaxNodes nodes.
	Graph *graph.Graph
	// Seed seeds the run's node-private randomness; the exploration is
	// exhaustive over schedules for this one seed.
	Seed int64
	// Engine selects the simulator scheduler executing every explored
	// schedule (see sim.Engine). Both engines enumerate Chooser decision
	// points identically, so the explored schedule space — and every
	// verdict — is byte-identical across engines.
	Engine sim.Engine
	// Depth bounds the non-default choices per schedule (0 =
	// DefaultDepth). Level d is explored only if levels 0..d-1 found
	// no violation.
	Depth int
	// Oversleep is the wake-perturbation span, a chaos extension: when
	// positive, every park is a choice point at which the scheduler
	// may oversleep the node by 1..Oversleep extra rounds. Zero or
	// negative (the default) keeps the clean model, where wake
	// schedules are the algorithm's own and only routing order
	// branches. The paper's algorithms are not oversleep-tolerant —
	// expect genuine counterexamples when enabling this.
	Oversleep int
	// Faults enables per-message drop choice points (depth-bounded
	// single-fault chaos injection). Like Oversleep, this explores
	// beyond the clean model's guarantees.
	Faults bool
	// BudgetSlack multiplies the awake budget on perturbed schedules
	// (0 = DefaultBudgetSlack).
	BudgetSlack float64
	// Workers sizes the sweep pool (0 = GOMAXPROCS, 1 = serial). The
	// verdict is byte-identical for every value.
	Workers int
	// NoMemo disables state-hash pruning: every admissible schedule
	// within the bound is executed and checked individually.
	NoMemo bool
	// MaxViolations caps the retained counterexamples (0 =
	// DefaultMaxViolations); ViolationCount keeps counting past it.
	MaxViolations int
	// RecorderCap sizes each execution's trace recorder (0 =
	// trace.DefaultCapacity). An overflowing recorder aborts the
	// exploration — a truncated trace cannot be hashed or checked.
	RecorderCap int
	// MaxRuns aborts the exploration when total executions exceed it
	// (0 = DefaultMaxRuns) — the guard against state explosion.
	MaxRuns int64
	// BudgetOverride, if non-nil, replaces the problem's awake
	// envelope in the leaf checks — the seeded-bug test hook and
	// ablation surface.
	BudgetOverride func(n int) (int64, bool)
}

// Violation is one schedule on which a check failed, with the full
// counterexample trace for replay (the trace fields stay out of the
// JSON artifact; cex traces are emitted as JSONL next to it).
type Violation struct {
	// Level is the schedule's deviation count — minimal over all
	// violating schedules, by iterative deepening.
	Level int `json:"level"`
	// Prefix is the choice sequence reproducing the schedule: replay
	// it (all-default beyond) to re-execute the counterexample.
	Prefix []int `json:"prefix"`
	// Perturbed records whether the schedule took an oversleep or
	// fault choice (relaxed leaf policy) rather than only reordering.
	Perturbed bool `json:"perturbed"`
	// Kind classifies the failure: "error" (unperturbed run failed),
	// "conform" (invariant catalog), or "oracle" (problem output).
	Kind string `json:"kind"`
	// Detail is the first failing check's message.
	Detail string `json:"detail"`
	// Checks lists the failing conformance checks, when Kind is
	// "conform".
	Checks []conform.Check `json:"checks,omitempty"`
	// Meta and Events are the counterexample trace, replayable via
	// conform.CheckTrace and diffable against the baseline with
	// cmd/tracediff.
	Meta   trace.Meta    `json:"-"`
	Events []trace.Event `json:"-"`
}

// Verdict is the result of one exploration: schema-versioned coverage
// counters plus the violation list.
type Verdict struct {
	// Schema is VerdictSchema.
	Schema int `json:"schema"`
	// Problem is the qualified problem name.
	Problem string `json:"problem"`
	// Topo names the topology when the caller knows it (mstbench's
	// -topo spelling); informational.
	Topo string `json:"topo,omitempty"`
	// N is the node count.
	N int `json:"n"`
	// Seed is the explored seed.
	Seed int64 `json:"seed"`
	// Depth is the configured deviation bound; DepthReached is the
	// last level actually explored (smaller when a level violated).
	Depth        int `json:"depth"`
	DepthReached int `json:"depth_reached"`
	// Oversleep and Faults record the branch surface explored.
	Oversleep int  `json:"oversleep"`
	Faults    bool `json:"faults"`
	// Memo records whether state-hash pruning was on.
	Memo bool `json:"memo"`
	// RootChoicePoints is the number of choice points on the
	// production schedule — the branching surface per level.
	RootChoicePoints int `json:"root_choice_points"`
	// Schedules counts the distinct schedules checked (each exactly
	// once, at its exact deviation level). Runs counts executions
	// performed, including iterative-deepening revisits.
	Schedules int64 `json:"schedules"`
	Runs      int64 `json:"runs"`
	// DistinctStates is the number of distinct trace hashes among
	// checked schedules; MemoHits counts executions recognized as
	// equivalent to an already-visited state; BranchesPruned counts
	// the branch alternatives skipped under those hits.
	DistinctStates int64 `json:"distinct_states"`
	MemoHits       int64 `json:"memo_hits"`
	BranchesPruned int64 `json:"branches_pruned"`
	// DetectedFailures counts perturbed schedules on which the
	// runtime detected the fault and failed the run — admissible.
	DetectedFailures int64 `json:"detected_failures"`
	// ViolationCount is the total violations found; Violations
	// retains at most MaxViolations of them, deviation-minimal.
	ViolationCount int64       `json:"violation_count"`
	Violations     []Violation `json:"violations"`
	// Pass is true when no schedule violated.
	Pass bool `json:"pass"`

	// BaselineMeta and BaselineEvents are the production schedule's
	// trace — the diff baseline for every counterexample.
	BaselineMeta   trace.Meta    `json:"-"`
	BaselineEvents []trace.Event `json:"-"`
}

// WriteJSON writes the verdict as indented JSON.
func (v *Verdict) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// String renders a human one-liner plus violation lines.
func (v *Verdict) String() string {
	verdict := "PASS"
	if !v.Pass {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("modelcheck %s  problem=%s n=%d seed=%d depth=%d/%d schedules=%d runs=%d states=%d hits=%d pruned=%d detected=%d violations=%d",
		verdict, v.Problem, v.N, v.Seed, v.DepthReached, v.Depth, v.Schedules, v.Runs,
		v.DistinctStates, v.MemoHits, v.BranchesPruned, v.DetectedFailures, v.ViolationCount)
	for _, viol := range v.Violations {
		s += fmt.Sprintf("\n  [%s] level=%d prefix=%v perturbed=%v: %s", viol.Kind, viol.Level, viol.Prefix, viol.Perturbed, viol.Detail)
	}
	return s
}

// Explore runs the bounded exploration and returns its verdict. The
// returned error reports infrastructure failures (invalid config,
// recorder overflow, run-budget exhaustion) — invariant violations
// are not errors; they are the verdict's content.
func Explore(cfg Config) (*Verdict, error) {
	if cfg.Problem == nil {
		return nil, errors.New("modelcheck: config requires a problem")
	}
	if cfg.Graph == nil {
		return nil, errors.New("modelcheck: config requires a graph")
	}
	if n := cfg.Graph.N(); n > MaxNodes {
		return nil, fmt.Errorf("modelcheck: n=%d exceeds the exhaustive-exploration bound %d (use a path/ring/star/K4 topology with n <= 6)", n, MaxNodes)
	}
	e := newExplorer(cfg)

	// Level 0: the production schedule. Its choice-point log is the
	// branching surface and its trace the counterexample baseline.
	root, err := e.runOne(nil)
	if err != nil {
		return nil, err
	}
	e.rootHash = root.hash

	v := &Verdict{
		Schema:           VerdictSchema,
		Problem:          cfg.Problem.Name(),
		N:                e.n,
		Seed:             cfg.Seed,
		Depth:            e.depth,
		Oversleep:        e.oversleep,
		Faults:           cfg.Faults,
		Memo:             !cfg.NoMemo,
		RootChoicePoints: len(root.log),
		BaselineMeta:     root.meta,
		BaselineEvents:   root.events,
	}
	distinct := map[uint64]bool{root.hash: true}
	v.Runs, v.Schedules = 1, 1
	if viol, _ := e.checkLeaf(root); viol != nil {
		v.ViolationCount++
		v.Violations = append(v.Violations, *viol)
	}

	// Levels 1..Depth: one job per (choice point, alternative) of the
	// production schedule — the same partition at every level and
	// worker count, aggregated in job order.
	jobs := make([]job, 0, len(root.log))
	for i, cp := range root.log {
		for alt := 1; alt < cp.k; alt++ {
			jobs = append(jobs, job{point: i, alt: alt})
		}
	}
	for level := 1; level <= e.depth && v.ViolationCount == 0; level++ {
		results, err := sweep.Map(sweep.Config{Workers: cfg.Workers}, jobs, func(j job) (*jobResult, error) {
			return e.exploreJob(j, level)
		})
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			v.Runs += r.runs
			v.Schedules += r.schedules
			v.MemoHits += r.memoHits
			v.BranchesPruned += r.pruned
			v.DetectedFailures += r.detected
			v.ViolationCount += r.violCount
			for _, h := range r.hashes {
				distinct[h] = true
			}
			for _, viol := range r.violations {
				if len(v.Violations) < e.maxViol {
					v.Violations = append(v.Violations, viol)
				}
			}
		}
		v.DepthReached = level
		// Stop deepening after a violating level: everything retained
		// is deviation-minimal.
	}
	v.DistinctStates = int64(len(distinct))
	v.Pass = v.ViolationCount == 0
	return v, nil
}
