package modelcheck

import (
	"bytes"
	"errors"
	"testing"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/problem"
	"sleepmst/internal/sim"
)

// pingMsg is the one-bit payload of the chatter test problem.
type pingMsg struct{}

func (pingMsg) Bits() int       { return 1 }
func (pingMsg) MsgKind() string { return "ping" }

// chatterProblem is the minimal deterministic test problem: every
// node is awake for rounds consecutive rounds, sending one ping on
// every port each round, so its schedule tree is small enough to
// enumerate by hand. With buggy set, a node that notices it was
// overslept burns an extra awake round resynchronizing — the seeded
// regression of TestSeededBudgetRegression: the production schedule
// stays exactly on budget, so only a perturbed schedule exposes it.
type chatterProblem struct {
	rounds int
	buggy  bool
}

func (p chatterProblem) Name() string { return "test/chatter" }

func (p chatterProblem) Budget(n int) (int64, bool) { return int64(p.rounds), true }

func (p chatterProblem) Verify(g *graph.Graph, r *problem.Result) error {
	if r == nil || r.Sim == nil {
		return errors.New("chatter: no result")
	}
	return nil
}

func (p chatterProblem) ConformCheck(g *graph.Graph, r *problem.Result) conform.Check {
	return conform.Check{Name: "oracle/chatter", Status: conform.StatusPass}
}

func (p chatterProblem) Run(g *graph.Graph, opts core.Options) (*problem.Result, error) {
	res, err := sim.Run(sim.Config{
		Graph:   g,
		Seed:    opts.Seed,
		Chooser: opts.Chooser,
		Trace:   opts.Trace,
	}, func(nd *sim.Node) error {
		deg := nd.Degree()
		for r := int64(1); r <= int64(p.rounds); r++ {
			nd.SleepUntil(r)
			out := make(sim.Outbox, deg)
			for pt := 0; pt < deg; pt++ {
				out[pt] = pingMsg{}
			}
			nd.Exchange(out)
			// A node on schedule finishes round r positioned at r+1; a
			// larger Round() means the scheduler overslept it.
			if p.buggy && nd.Round() > r+1 {
				nd.Exchange(nil)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &problem.Result{Problem: p.Name(), Sim: res, Phases: 1}, nil
}

// TestExhaustiveness pins the explorer's coverage accounting to
// hand-computed schedule counts on topologies small enough to
// enumerate on paper. Ordering-only branching (oversleep disabled):
//
//   - path2, 2 rounds: each round stages 2 senders -> one k=2 choice
//     point per round, 2 points, 2*2 = 4 total interleavings.
//   - ring3, 1 round: 3 staged senders -> k=3 then k=2 points,
//     3*2 = 6 total interleavings.
//
// Routing order is unobservable (port-keyed inboxes), so every
// interleaving hashes to one state: with memoization the explorer
// proves equivalence instead of re-exploring, and the identity
// Schedules + BranchesPruned == total interleavings accounts for
// every pruned branch; without it, every interleaving is visited
// exactly once across the deepening levels.
func TestExhaustiveness(t *testing.T) {
	path2 := graph.Path(2, graph.GenConfig{Seed: 1})
	ring3 := graph.Cycle(3, graph.GenConfig{Seed: 1})
	cases := []struct {
		name   string
		g      *graph.Graph
		rounds int
		noMemo bool
		total  int64 // hand-computed interleaving count

		rootPoints                              int
		schedules, runs, memoHits, pruned, dist int64
	}{
		{
			name: "path2/memo", g: path2, rounds: 2, total: 4,
			rootPoints: 2, schedules: 3, runs: 5, memoHits: 4, pruned: 1, dist: 1,
		},
		{
			name: "path2/nomemo", g: path2, rounds: 2, noMemo: true, total: 4,
			rootPoints: 2, schedules: 4, runs: 6, memoHits: 0, pruned: 0, dist: 1,
		},
		{
			name: "ring3/memo", g: ring3, rounds: 1, total: 6,
			rootPoints: 2, schedules: 4, runs: 7, memoHits: 6, pruned: 2, dist: 1,
		},
		{
			name: "ring3/nomemo", g: ring3, rounds: 1, noMemo: true, total: 6,
			rootPoints: 2, schedules: 6, runs: 9, memoHits: 0, pruned: 0, dist: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Explore(Config{
				Problem: chatterProblem{rounds: tc.rounds},
				Graph:   tc.g,
				Depth:   2,
				Workers: 1,
				NoMemo:  tc.noMemo,
			})
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if !v.Pass || v.ViolationCount != 0 {
				t.Fatalf("expected a clean pass, got %s", v)
			}
			if v.RootChoicePoints != tc.rootPoints {
				t.Errorf("root choice points = %d, want %d", v.RootChoicePoints, tc.rootPoints)
			}
			if v.Schedules != tc.schedules || v.Runs != tc.runs {
				t.Errorf("schedules/runs = %d/%d, want %d/%d", v.Schedules, v.Runs, tc.schedules, tc.runs)
			}
			if v.MemoHits != tc.memoHits || v.BranchesPruned != tc.pruned {
				t.Errorf("memoHits/pruned = %d/%d, want %d/%d", v.MemoHits, v.BranchesPruned, tc.memoHits, tc.pruned)
			}
			if v.DistinctStates != tc.dist {
				t.Errorf("distinct states = %d, want %d", v.DistinctStates, tc.dist)
			}
			if !tc.noMemo && v.Schedules+v.BranchesPruned != tc.total {
				t.Errorf("schedules(%d) + pruned(%d) != total interleavings %d", v.Schedules, v.BranchesPruned, tc.total)
			}
			if tc.noMemo && v.Schedules != tc.total {
				t.Errorf("NoMemo visited %d schedules, want all %d interleavings", v.Schedules, tc.total)
			}
			if v.DepthReached != 2 {
				t.Errorf("depth reached = %d, want 2", v.DepthReached)
			}
		})
	}
}

// TestSeededBudgetRegression seeds the off-by-one awake bug (buggy
// chatter: one extra awake round, but only when overslept) and checks
// the explorer finds a deviation-minimal counterexample that replays
// to the same violation through conform.CheckTrace — the end-to-end
// contract of the counterexample artifact.
func TestSeededBudgetRegression(t *testing.T) {
	p := chatterProblem{rounds: 2, buggy: true}
	g := graph.Path(2, graph.GenConfig{Seed: 1})
	v, err := Explore(Config{
		Problem:     p,
		Graph:       g,
		Depth:       2,
		Oversleep:   1,
		BudgetSlack: 1.0, // exact budget: the extra round must trip it
		Workers:     1,
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if v.Pass || v.ViolationCount == 0 {
		t.Fatalf("expected the seeded bug to violate, got %s", v)
	}
	if v.DepthReached != 1 {
		t.Errorf("deepening continued past the first violating level: reached %d", v.DepthReached)
	}
	viol := v.Violations[0]
	if viol.Level != 1 {
		t.Errorf("counterexample level = %d, want the minimal 1", viol.Level)
	}
	if !viol.Perturbed {
		t.Error("counterexample not marked perturbed: the bug needs an oversleep to fire")
	}
	if viol.Kind != "conform" {
		t.Errorf("violation kind = %q, want conform", viol.Kind)
	}
	if len(viol.Prefix) == 0 || viol.Prefix[len(viol.Prefix)-1] == 0 {
		t.Errorf("prefix %v not trimmed to its last non-default choice", viol.Prefix)
	}
	if len(viol.Events) == 0 {
		t.Fatal("counterexample carries no trace")
	}

	// The counterexample trace replays to the same violation under the
	// same leaf policy.
	cv := conform.CheckTrace(viol.Meta, viol.Events, conform.RunInfo{
		Algorithm:   p.Name(),
		N:           g.N(),
		Budget:      p.Budget,
		BudgetSlack: 1.0,
		Relaxed:     true,
	})
	c := cv.Lookup(conform.CheckAwakeBudget)
	if c == nil || c.Status != conform.StatusFail {
		t.Fatalf("replayed counterexample does not fail the awake-budget check: %+v", c)
	}

	// The production schedule stays on budget: the bug is genuinely
	// schedule-dependent, and the baseline is a valid diff target.
	bv := conform.CheckTrace(v.BaselineMeta, v.BaselineEvents, conform.RunInfo{
		Algorithm: p.Name(),
		N:         g.N(),
		Budget:    p.Budget,
	})
	if fails := bv.Failures(); len(fails) > 0 {
		t.Fatalf("baseline schedule unexpectedly fails: %+v", fails)
	}
}

// TestBudgetOverrideHook drives the test hook directly: an envelope
// one round too tight must fail the production schedule itself, with
// an empty (level-0) prefix and no deepening past the violation.
func TestBudgetOverrideHook(t *testing.T) {
	v, err := Explore(Config{
		Problem:        chatterProblem{rounds: 2},
		Graph:          graph.Path(2, graph.GenConfig{Seed: 1}),
		Depth:          2,
		Workers:        1,
		BudgetOverride: func(n int) (int64, bool) { return 1, true },
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if v.Pass || v.ViolationCount == 0 {
		t.Fatal("expected the tightened envelope to violate")
	}
	viol := v.Violations[0]
	if viol.Level != 0 || len(viol.Prefix) != 0 {
		t.Errorf("production-schedule violation should have level 0 and empty prefix, got level=%d prefix=%v", viol.Level, viol.Prefix)
	}
	if v.DepthReached != 0 {
		t.Errorf("deepening ran to level %d past a level-0 violation", v.DepthReached)
	}
}

// TestWorkerCountInvariance checks the determinism contract on a
// branchier exploration (oversleep enabled): the verdict must be
// byte-identical at every worker count.
func TestWorkerCountInvariance(t *testing.T) {
	verdict := func(workers int) []byte {
		v, err := Explore(Config{
			Problem:   chatterProblem{rounds: 2},
			Graph:     graph.Cycle(3, graph.GenConfig{Seed: 1}),
			Depth:     2,
			Oversleep: 1,
			Faults:    true,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("Explore(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := v.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	serial := verdict(1)
	parallel := verdict(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("verdict differs between worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
}

// TestConfigValidation pins the error surface: missing problem or
// graph, and the small-n bound.
func TestConfigValidation(t *testing.T) {
	p := chatterProblem{rounds: 1}
	g := graph.Path(2, graph.GenConfig{Seed: 1})
	if _, err := Explore(Config{Graph: g}); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := Explore(Config{Problem: p}); err == nil {
		t.Error("nil graph accepted")
	}
	big := graph.Path(MaxNodes+1, graph.GenConfig{Seed: 1})
	if _, err := Explore(Config{Problem: p, Graph: big}); err == nil {
		t.Errorf("n=%d accepted past the exhaustive bound", MaxNodes+1)
	}
}
