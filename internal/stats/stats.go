// Package stats provides the small statistical toolkit used by the
// reproduction harness: summaries, proportional-fit estimation for
// complexity envelopes (awake ~ c·log n, rounds ~ c·n log n), and
// plain-text table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of xs; it panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Percentile returns the p-th percentile of xs (0 ≤ p ≤ 100) by the
// nearest-rank method: the smallest sample value with at least p% of
// the sample at or below it. Nearest-rank always returns an observed
// value — latency reports stay honest, with no interpolated points
// that never happened. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// FitProportional fits y ≈ c·x by least squares through the origin and
// returns the constant c and the coefficient of determination R².
// Used to check complexity shapes: x is the theoretical envelope
// (log n, n log n, ...), y the measurement.
func FitProportional(x, y []float64) (c, r2 float64) {
	if len(x) != len(y) || len(x) == 0 {
		panic("stats: mismatched or empty fit inputs")
	}
	var sxy, sxx float64
	for i := range x {
		sxy += x[i] * y[i]
		sxx += x[i] * x[i]
	}
	if sxx == 0 {
		return 0, 0
	}
	c = sxy / sxx
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - c*x[i]
		ssRes += d * d
		t := y[i] - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return c, 1
		}
		return c, 0
	}
	return c, 1 - ssRes/ssTot
}

// GrowthRatio reports max(y_i/x_i) / min(y_i/x_i): 1.0 means y is
// exactly proportional to x; values near 1 confirm the complexity
// shape across the sweep.
func GrowthRatio(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("stats: mismatched or empty inputs")
	}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for i := range x {
		if x[i] == 0 {
			continue
		}
		r := y[i] / x[i]
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if minR == 0 || math.IsInf(minR, 1) {
		return math.Inf(1)
	}
	return maxR / minR
}

// Table renders an aligned plain-text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Log2 is a convenience shorthand used by the harness.
func Log2(x float64) float64 { return math.Log2(x) }

// LogStar returns the iterated logarithm log*₂(x).
func LogStar(x float64) float64 {
	n := 0.0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}
