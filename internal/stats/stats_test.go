package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %v", even.Median)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Errorf("single = %+v", single)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Summarize(nil)
}

func TestFitProportionalExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2.5, 5, 7.5, 10}
	c, r2 := FitProportional(x, y)
	if math.Abs(c-2.5) > 1e-9 || r2 < 0.999 {
		t.Errorf("c=%v r2=%v", c, r2)
	}
}

func TestFitProportionalNoise(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3.1, 5.9, 9.2, 11.8, 15.1}
	c, r2 := FitProportional(x, y)
	if c < 2.8 || c > 3.2 {
		t.Errorf("c = %v, want ≈ 3", c)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestFitProportionalQuick(t *testing.T) {
	// Property: for y = c*x exactly, the fit recovers c with R² = 1.
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			return true
		}
		x := []float64{1, 2, 3, 5, 8}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = c * x[i]
		}
		got, r2 := FitProportional(x, y)
		return math.Abs(got-c) < 1e-6*(1+math.Abs(c)) && r2 > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGrowthRatio(t *testing.T) {
	x := []float64{1, 2, 4}
	if r := GrowthRatio(x, []float64{3, 6, 12}); math.Abs(r-1) > 1e-9 {
		t.Errorf("proportional ratio = %v, want 1", r)
	}
	if r := GrowthRatio(x, []float64{1, 4, 16}); math.Abs(r-4) > 1e-9 {
		t.Errorf("quadratic ratio = %v, want 4", r)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "awake", "ratio")
	tb.AddRow(128, 37, 5.285714)
	tb.AddRow(4096, 61, 5.1)
	out := tb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "4096") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestLogStar(t *testing.T) {
	cases := map[float64]float64{1: 0, 2: 1, 4: 2, 16: 3, 65536: 4}
	for x, want := range cases {
		if got := LogStar(x); got != want {
			t.Errorf("LogStar(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {5, 15}, {30, 20}, {40, 20}, {50, 35}, {95, 50}, {100, 50},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(xs, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Every returned value must be an observed sample point.
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton percentile = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty sample did not panic")
		}
	}()
	Percentile(nil, 50)
}
