package sleepmst_test

import (
	"fmt"

	"sleepmst"
)

// The basic workflow: build a network, run the awake-optimal MST
// algorithm, verify against the sequential reference.
func Example() {
	g := sleepmst.RandomConnected(64, 192, 7)
	rep, err := sleepmst.Run(sleepmst.Randomized, g, sleepmst.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", len(rep.MSTEdges))
	fmt.Println("verified:", rep.Verified())
	fmt.Println("awake is logarithmic:", rep.AwakeComplexity() < 200)
	fmt.Println("rounds are linearithmic:", rep.RoundComplexity() > 1000)
	// Output:
	// edges: 63
	// verified: true
	// awake is logarithmic: true
	// rounds are linearithmic: true
}

// Deterministic-MST produces identical executions regardless of seed.
func ExampleRun_deterministic() {
	g := sleepmst.Grid(4, 4, 3)
	a, err := sleepmst.Run(sleepmst.Deterministic, g, sleepmst.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	b, err := sleepmst.Run(sleepmst.Deterministic, g, sleepmst.Options{Seed: 999})
	if err != nil {
		panic(err)
	}
	fmt.Println("same rounds:", a.RoundComplexity() == b.RoundComplexity())
	fmt.Println("same awake:", a.AwakeComplexity() == b.AwakeComplexity())
	// Output:
	// same rounds: true
	// same awake: true
}

// Leader election falls out of the MST construction: the final
// fragment root is a leader every node knows.
func ExampleElectLeader() {
	g := sleepmst.Ring(32, 5)
	res, err := sleepmst.ElectLeader(g, sleepmst.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	agree := true
	for _, id := range res.KnownBy {
		if id != res.LeaderID {
			agree = false
		}
	}
	fmt.Println("all nodes agree:", agree)
	// Output:
	// all nodes agree: true
}

// The Theorem 4 reduction is executable: a set-disjointness instance
// becomes edge weights on G_rc and the MST decides the answer.
func ExampleSolveSDViaMST() {
	grc, err := sleepmst.NewGRC(4, 16, 1)
	if err != nil {
		panic(err)
	}
	x := []bool{true, false, true}
	y := []bool{false, true, true} // intersect at index 2
	ins, err := sleepmst.NewDSDInstance(grc, x, y)
	if err != nil {
		panic(err)
	}
	disjoint, _, err := sleepmst.SolveSDViaMST(ins, sleepmst.Randomized, sleepmst.Options{Seed: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("disjoint:", disjoint)
	// Output:
	// disjoint: false
}
