package sleepmst

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sleepmst/internal/graph"
)

// goldenVerdictJSON runs the golden configuration (the same run that
// produces testdata/trace_golden.jsonl) and renders its conformance
// verdict — full catalog plus MST-weight agreement — as JSON.
func goldenVerdictJSON(t *testing.T) []byte {
	t.Helper()
	g := RandomConnected(8, 12, 5)
	rec := NewTraceRecorder(0)
	rep, err := Run(Randomized, g, Options{Seed: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	v := ConformSuite{
		Info:        ConformRunInfo{Algorithm: "randomized", Seed: 1},
		Meta:        rec.Meta(),
		Events:      rec.Events(),
		TreeWeight:  rep.MSTWeight(),
		WantWeight:  graph.TotalWeight(ReferenceMST(g)),
		CheckWeight: true,
	}.Verdict()
	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConformVerdictGolden pins the conformance verdict of the golden
// run: both its JSON shape (check names, statuses, field spelling)
// and its content are a published contract (DESIGN.md §9). The same
// UPDATE_GOLDEN=1 pass that rewrites testdata/trace_golden.jsonl
// rewrites testdata/conform_golden.json:
//
//	UPDATE_GOLDEN=1 go test -run 'Golden' .
func TestConformVerdictGolden(t *testing.T) {
	got := goldenVerdictJSON(t)
	golden := filepath.Join("testdata", "conform_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("verdict drifted from golden; run with UPDATE_GOLDEN=1 if intended.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenTraceConformsFromDisk ties the two fixtures together: the
// committed trace_golden.jsonl, replayed through the checker, must
// pass the catalog — so a regenerated trace fixture cannot silently
// encode an invariant violation.
func TestGoldenTraceConformsFromDisk(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "trace_golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, events, err := ReadTraceJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	v := CheckTraceConformance(meta, events, ConformRunInfo{Algorithm: "randomized", Seed: 1})
	if !v.Pass {
		t.Fatalf("committed golden trace violates the catalog:\n%s", v)
	}
}
