// Large-n smoke tests for the event engine: the scale the goroutine
// scheduler could not reach. Each test runs a full algorithm at a
// size configurable via SLEEPMST_SCALE_N (the CI scale-smoke job sets
// 100000; the default keeps an unconfigured `go test ./...` in
// seconds) and asserts the run completes, verifies, and stays inside
// its calibrated awake envelope — the paper's bounds do not loosen
// with n, so these are real assertions, not just liveness probes.
//
// All scale tests skip under -short: they are the slow tier by
// definition.
package sleepmst

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/problem"
	"sleepmst/internal/trace"
)

// scaleN yields the smoke-test size: SLEEPMST_SCALE_N when set (the
// scale-smoke CI job runs 100000), otherwise def. Skips under -short.
func scaleN(t *testing.T, def int) int {
	t.Helper()
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short")
	}
	raw := os.Getenv("SLEEPMST_SCALE_N")
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 4 {
		t.Fatalf("SLEEPMST_SCALE_N: bad size %q", raw)
	}
	return n
}

// TestScaleRandomizedMST runs the paper's randomized O(log n)-awake
// MST at scale on the event engine: the tree must verify against
// Kruskal and the worst-case awake complexity must stay inside the
// calibrated budget — at n = 10^5 the envelope is ~600 awake rounds
// against ~70M virtual rounds, the sleeping-model gap the engine
// exists to make observable.
func TestScaleRandomizedMST(t *testing.T) {
	n := scaleN(t, 4096)
	g := RandomConnected(n, 3*n, int64(n))
	rep, err := Run(Randomized, g, Options{Seed: 1, Engine: EngineEvent})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	if !rep.Verified() {
		t.Fatalf("n=%d: MST failed verification against Kruskal", n)
	}
	budget, ok := conform.AwakeBudget(conform.AlgoRandomized, n)
	if !ok {
		t.Fatalf("no calibrated budget for %s", conform.AlgoRandomized)
	}
	if got := rep.AwakeComplexity(); got > budget {
		t.Errorf("n=%d: awake complexity %d exceeds budget %d", n, got, budget)
	}
	t.Logf("n=%d: awake=%d budget=%d rounds=%d busy=%d",
		n, rep.AwakeComplexity(), budget, rep.RoundComplexity(), rep.Result.BusyRounds)
}

// TestScaleMIS runs the O(log log n)-awake MIS at scale: the output
// must be a maximal independent set and worst-case awake must stay
// inside the doubly-logarithmic envelope (19 awake rounds at
// n = 10^5).
func TestScaleMIS(t *testing.T) {
	n := scaleN(t, 8192)
	g := RandomConnected(n, 3*n, int64(n))
	p, err := problem.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(g, core.Options{Seed: 1, Engine: EngineEvent})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	if verr := p.Verify(g, r); verr != nil {
		t.Fatalf("n=%d: %v", n, verr)
	}
	budget, ok := p.Budget(n)
	if !ok {
		t.Fatal("no calibrated budget for mis")
	}
	if got := r.Sim.MaxAwake(); got > budget {
		t.Errorf("n=%d: awake complexity %d exceeds budget %d", n, got, budget)
	}
	t.Logf("n=%d: awake=%d budget=%d busy=%d", n, r.Sim.MaxAwake(), budget, r.Sim.BusyRounds)
}

// TestScaleConformStrict replays the scalable problems with full
// trace recording at the largest traceable size and demands a strict
// (non-relaxed) conformance pass over the whole check catalog — the
// structural invariants (sleeping-delivery, causality, budget,
// problem oracle) hold at scale, not just at the unit sizes the
// conformance suite sweeps.
func TestScaleConformStrict(t *testing.T) {
	n := scaleN(t, 4096)
	// Trace volume grows with awake node-rounds; cap the traced size
	// so the recorder stays in memory even when SLEEPMST_SCALE_N asks
	// for 10^5 nodes in the untraced tests above.
	const maxTraced = 16384
	if n > maxTraced {
		n = maxTraced
	}
	g := RandomConnected(n, 3*n, int64(n))
	for _, name := range []string{"mst/randomized", "mis"} {
		t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
			p, err := problem.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder(0)
			r, err := p.Run(g, core.Options{Seed: 1, Engine: EngineEvent, Trace: rec})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			suite := conform.Suite{
				Info:   conform.RunInfo{Algorithm: p.Name(), N: n, Seed: 1, Budget: p.Budget},
				Meta:   rec.Meta(),
				Events: rec.Events(),
				Extra:  []conform.Check{p.ConformCheck(g, r)},
			}
			v := suite.Verdict()
			if !v.Pass {
				var buf bytes.Buffer
				if werr := v.WriteJSON(&buf); werr == nil {
					t.Logf("verdict:\n%s", buf.String())
				}
				t.Fatalf("strict conformance failed at n=%d", n)
			}
		})
	}
}

// TestScaleEngineThroughputGap pins the reason the event engine is
// the default: on a dense null workload the goroutine engine pays two
// channel handshakes plus a runtime-scheduler pass per awake
// node-round and degrades as live goroutines grow, while the event
// engine pays one continuation switch. The test asserts the event
// engine is strictly faster at the default size — the full curve is
// in BENCH_scale.json.
func TestScaleEngineThroughputGap(t *testing.T) {
	n := scaleN(t, 2048)
	if n > 16384 {
		n = 16384 // keep the goroutine leg bounded
	}
	g := Ring(n, 1)
	elapsed := func(e Engine) time.Duration {
		// Best of three: absorbs GC and scheduler noise so the
		// assertion is about the engines, not the machine.
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := ElectLeader(g, Options{Seed: 1, Engine: e}); err != nil {
				t.Fatalf("engine %v: %v", e, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	gor := elapsed(EngineGoroutine)
	evt := elapsed(EngineEvent)
	t.Logf("n=%d leader election: goroutine %v event %v (%.2fx)",
		n, gor.Round(time.Millisecond), evt.Round(time.Millisecond),
		float64(gor)/float64(evt))
	if evt >= gor {
		t.Errorf("event engine (%v) not faster than goroutine engine (%v) at n=%d",
			evt, gor, n)
	}
}
