// Package sleepmst is an open-source reproduction of "Distributed MST
// Computation in the Sleeping Model: Awake-Optimal Algorithms and
// Lower Bounds" (Augustine, Moses Jr., Pandurangan; PODC 2022).
//
// It provides awake-optimal distributed minimum-spanning-tree
// algorithms in the sleeping model — a synchronous CONGEST network in
// which nodes may sleep through rounds and only awake rounds are
// charged — together with the full substrate needed to run them: a
// deterministic sleeping-model simulator, the Labeled Distance Tree
// toolbox, graph generators (including the Theorem 4 lower-bound
// family G_rc), reference MSTs, and executable versions of the paper's
// lower-bound experiments.
//
// Quickstart:
//
//	g := sleepmst.RandomConnected(512, 1536, 42)
//	rep, err := sleepmst.Run(sleepmst.Randomized, g, sleepmst.Options{Seed: 1})
//	if err != nil { ... }
//	fmt.Println("MST weight:", rep.MSTWeight())
//	fmt.Println("awake complexity:", rep.AwakeComplexity()) // O(log n)
//	fmt.Println("round complexity:", rep.RoundComplexity()) // O(n log n)
//
// The package is a thin facade over the implementation packages under
// internal/; everything a downstream user needs is re-exported here.
package sleepmst

import (
	"bufio"
	"fmt"
	"io"

	"sleepmst/internal/chaos"
	"sleepmst/internal/conform"
	"sleepmst/internal/core"
	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/lowerbound"
	"sleepmst/internal/metrics"
	"sleepmst/internal/modelcheck"
	"sleepmst/internal/problem"
	"sleepmst/internal/service"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
	"sleepmst/internal/transport"
)

// Graph is a weighted undirected network with CONGEST port numbering.
type Graph = graph.Graph

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// GRC is the Figure 1 lower-bound graph family.
type GRC = graph.GRC

// Options configures an algorithm run.
type Options = core.Options

// Engine selects the simulator's scheduler implementation (see
// sim.Engine): the default goroutine-free event engine or the legacy
// goroutine engine. Both are byte-identical on fixed seeds.
type Engine = sim.Engine

// The compiled engines. EngineEvent (the zero value) is the default.
const (
	EngineEvent     = sim.EngineEvent
	EngineGoroutine = sim.EngineGoroutine
)

// ParseEngine converts a CLI engine name ("event", "goroutine") into
// an Engine.
func ParseEngine(s string) (Engine, error) { return sim.ParseEngine(s) }

// Outcome is the detailed result of a run (MST edges, metrics, phases).
type Outcome = core.Outcome

// Metrics is the simulator's measurement record.
type Metrics = sim.Result

// Algorithm selects one of the paper's algorithms.
type Algorithm int

const (
	// Randomized is Algorithm Randomized-MST (§2.2): O(log n) awake
	// w.h.p., O(n log n) rounds.
	Randomized Algorithm = iota
	// Deterministic is Algorithm Deterministic-MST (§2.3): O(log n)
	// awake, O(nN log n) rounds.
	Deterministic
	// LogStar is the Corollary 1 variant: O(log n log* n) awake,
	// O(n log n log* n) rounds, independent of the ID space.
	LogStar
	// Baseline is the traditional always-awake CONGEST comparator:
	// awake complexity equals round complexity.
	Baseline
	// ClassicGHS is an independent classic synchronous GHS
	// implementation in the traditional model (event-driven flood/echo
	// waves, chain merges via core detection, no sleeping).
	ClassicGHS
)

// String returns the CLI spelling of the algorithm name, as accepted
// by cmd/sleepsim -algo and cmd/mstbench -trace-algos.
func (a Algorithm) String() string {
	switch a {
	case Randomized:
		return "randomized"
	case Deterministic:
		return "deterministic"
	case LogStar:
		return "logstar"
	case Baseline:
		return "baseline"
	case ClassicGHS:
		return "ghs"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Runner returns the core entry point for the algorithm.
func (a Algorithm) Runner() func(*Graph, Options) (*Outcome, error) {
	switch a {
	case Randomized:
		return core.RunRandomized
	case Deterministic:
		return core.RunDeterministic
	case LogStar:
		return core.RunLogStar
	case Baseline:
		return core.RunBaseline
	case ClassicGHS:
		return core.RunClassicGHS
	default:
		return nil
	}
}

// ParseAlgorithm converts a CLI name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{Randomized, Deterministic, LogStar, Baseline, ClassicGHS} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sleepmst: unknown algorithm %q (want randomized|deterministic|logstar|baseline|ghs)", s)
}

// Report wraps an Outcome with convenience accessors.
type Report struct {
	*Outcome
	Algorithm Algorithm
	Graph     *Graph
}

// AwakeComplexity returns the worst-case awake complexity max_v A_v.
func (r *Report) AwakeComplexity() int64 { return r.Result.MaxAwake() }

// RoundComplexity returns the traditional round complexity.
func (r *Report) RoundComplexity() int64 { return r.Result.Rounds }

// MSTWeight returns the total weight of the computed tree.
func (r *Report) MSTWeight() int64 { return graph.TotalWeight(r.MSTEdges) }

// Verified reports whether the computed tree equals the sequential
// reference MST (Kruskal).
func (r *Report) Verified() bool {
	return graph.SameEdgeSet(r.MSTEdges, graph.Kruskal(r.Graph))
}

// Run executes the selected algorithm on g.
func Run(a Algorithm, g *Graph, opts Options) (*Report, error) {
	run := a.Runner()
	if run == nil {
		return nil, fmt.Errorf("sleepmst: invalid algorithm %v", a)
	}
	out, err := run(g, opts)
	if err != nil {
		return nil, err
	}
	return &Report{Outcome: out, Algorithm: a, Graph: g}, nil
}

// ReferenceMST returns the unique MST via sequential Kruskal.
func ReferenceMST(g *Graph) []Edge { return graph.Kruskal(g) }

// TotalWeight sums the weights of an edge set.
func TotalWeight(edges []Edge) int64 { return graph.TotalWeight(edges) }

// Graph constructors -----------------------------------------------------

// NewGraph builds a graph from explicit edges; see graph.New.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// Path returns the path graph with distinct random weights.
func Path(n int, seed int64) *Graph { return graph.Path(n, graph.GenConfig{Seed: seed}) }

// Ring returns the cycle graph (the Theorem 3 topology).
func Ring(n int, seed int64) *Graph { return graph.Cycle(n, graph.GenConfig{Seed: seed}) }

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int, seed int64) *Graph {
	return graph.Grid(rows, cols, graph.GenConfig{Seed: seed})
}

// Complete returns the complete graph K_n.
func Complete(n int, seed int64) *Graph { return graph.Complete(n, graph.GenConfig{Seed: seed}) }

// RandomConnected returns a connected random graph with ~m edges.
func RandomConnected(n, m int, seed int64) *Graph {
	return graph.RandomConnected(n, m, graph.GenConfig{Seed: seed})
}

// SensorNetwork returns a connected random geometric graph: n sensors
// in the unit square, links within the radius — the wireless topology
// that motivates the sleeping model.
func SensorNetwork(n int, radius float64, seed int64) *Graph {
	return graph.RandomGeometric(n, radius, graph.GenConfig{Seed: seed})
}

// NewGRC builds the Figure 1 lower-bound graph with r rows and c
// columns.
func NewGRC(r, c int, seed int64) (*GRC, error) {
	return graph.NewGRC(r, c, graph.GenConfig{Seed: seed})
}

// WithRandomIDs reassigns distinct random node IDs in [1, space]; the
// deterministic algorithm's round complexity scales with the max ID.
func WithRandomIDs(g *Graph, space, seed int64) *Graph { return graph.RandomIDs(g, space, seed) }

// Diameter returns the exact hop diameter of g.
func Diameter(g *Graph) int { return graph.Diameter(g) }

// Lower-bound experiments -------------------------------------------------

// DSDInstance re-exports the Theorem 4 set-disjointness encoding.
type DSDInstance = lowerbound.DSDInstance

// NewDSDInstance encodes a set-disjointness instance on a G_rc graph.
func NewDSDInstance(grc *GRC, x, y []bool) (*DSDInstance, error) {
	return lowerbound.NewDSDInstance(grc, x, y)
}

// SolveSDViaMST runs the full SD → DSD → CSS → MST reduction with the
// given algorithm.
func SolveSDViaMST(ins *DSDInstance, a Algorithm, opts Options) (disjoint bool, rep *Metrics, err error) {
	res, err := lowerbound.SolveSDViaMST(ins, a.Runner(), opts)
	if err != nil {
		return false, nil, err
	}
	return res.Disjoint, res.Outcome.Result, nil
}

// MSTPorts returns, for each node, the ports of its incident MST edges
// — the per-node output the model asks for ("every node knows which of
// its incident edges belong to the MST").
func MSTPorts(rep *Report) [][]int {
	out := make([][]int, len(rep.States))
	for v, st := range rep.States {
		out[v] = st.TreePorts()
	}
	return out
}

// LDTState re-exports the per-node Labeled Distance Tree state for
// advanced users building their own sleeping-model procedures.
type LDTState = ldt.State

// Sleeping-model primitives ------------------------------------------------

// LeaderResult re-exports the leader-election result.
type LeaderResult = core.LeaderResult

// AggregateResult re-exports the aggregation/broadcast result.
type AggregateResult = core.AggregateResult

// ElectLeader elects a unique leader known to every node in O(log n)
// awake rounds w.h.p.
func ElectLeader(g *Graph, opts Options) (*LeaderResult, error) {
	return core.ElectLeader(g, opts)
}

// AggregateMin computes the global minimum of one value per node and
// delivers it to every node in O(log n) awake rounds w.h.p.
func AggregateMin(g *Graph, values []int64, opts Options) (*AggregateResult, error) {
	return core.AggregateMin(g, values, opts)
}

// BroadcastFrom delivers the source node's value to every node in
// O(log n) awake rounds w.h.p.
func BroadcastFrom(g *Graph, source int, value int64, opts Options) (*AggregateResult, error) {
	return core.BroadcastFrom(g, source, value, opts)
}

// Observability ------------------------------------------------------------

// TraceRecorder is the structured event recorder: set Options.Trace
// to one and the simulator and algorithms record node wake/sleep,
// message send/deliver/lost, phase and step boundaries, and fragment
// merges into per-stream ring buffers. Recording is off (and free)
// when Options.Trace is nil.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded simulator or algorithm event.
type TraceEvent = trace.Event

// TraceMeta describes a recorded trace: node count, rounds, event and
// dropped-event counts.
type TraceMeta = trace.Meta

// TraceSummary aggregates a trace into per-phase awake budgets and
// message totals; see SummarizeTrace.
type TraceSummary = trace.Summary

// NewTraceRecorder returns an event recorder with the given total
// ring capacity in events (0 = the package default).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// SummarizeTrace reduces a trace to its per-phase awake-budget table
// (the same report as `mstbench -exp trace`).
func SummarizeTrace(meta TraceMeta, events []TraceEvent) TraceSummary {
	return trace.Summarize(meta, events)
}

// ReadTraceJSONL parses a JSONL trace written by
// TraceRecorder.WriteJSONL back into its meta record and events.
func ReadTraceJSONL(r io.Reader) (TraceMeta, []TraceEvent, error) {
	return trace.ReadJSONL(r)
}

// Conformance ---------------------------------------------------------------

// ConformRunInfo is the run context handed to the conformance
// checker: algorithm name (enables its awake-budget envelope), node
// count, seed, and the chaos-mode relaxations.
type ConformRunInfo = conform.RunInfo

// ConformCheck is one invariant's outcome (pass, fail, or skip) in a
// conformance verdict.
type ConformCheck = conform.Check

// ConformVerdict is the result of replaying the invariant catalog
// over one trace; see CheckTraceConformance.
type ConformVerdict = conform.Verdict

// ConformSuite bundles a recorded run (trace plus optional MST-weight
// reference) for conformance assertion inside tests.
type ConformSuite = conform.Suite

// CheckTraceConformance replays the paper's invariant catalog over a
// recorded trace — awake budgets within the Table 1 envelopes, awake
// attribution, tails-into-heads merge waves, fragment decay, ≤ 4
// supergraph degree, message causality — and returns the per-check
// verdict (the same report as `mstbench -exp conform`).
func CheckTraceConformance(meta TraceMeta, events []TraceEvent, info ConformRunInfo) *ConformVerdict {
	return conform.CheckTrace(meta, events, info)
}

// MetricsRegistry is the deterministic counter registry: set
// Options.Metrics to one and the run reports awake rounds per phase
// and per step, MOE probes and candidates, merge waves and depth, and
// per-kind message tallies. (The shorter name Metrics already names
// the simulator's measurement record above.)
type MetricsRegistry = metrics.Registry

// Metric is one named counter (or running max) snapshotted from a
// MetricsRegistry.
type Metric = metrics.Metric

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MergeMetricsRegistries folds per-worker registries into one in
// deterministic order; use it to aggregate sweeps (every counter is
// commutative, so the result is worker-count independent).
func MergeMetricsRegistries(regs []*MetricsRegistry) *MetricsRegistry {
	return metrics.MergeAll(regs)
}

// Chaos runtime ------------------------------------------------------------

// Interceptor is the simulator's fault-injection hook surface. Set
// Options.Interceptor to perturb a run; leave it nil for the paper's
// clean sleeping model.
type Interceptor = sim.Interceptor

// ChaosOptions configures a seeded fault-injection policy: message
// drop, bounded delay and duplication, payload bit-flips, crash-stop,
// and adversarial oversleep.
type ChaosOptions = chaos.Options

// ChaosPolicy is a deterministic Interceptor built from ChaosOptions.
// The same policy value replays the same faults on every run.
type ChaosPolicy = chaos.Policy

// CrashEvent schedules one node's crash-stop round.
type CrashEvent = chaos.CrashEvent

// Classification is the oracle's verdict for one perturbed run.
type Classification = chaos.Classification

// Oracle verdicts.
const (
	CorrectMST       = chaos.CorrectMST
	WrongTree        = chaos.WrongTree
	Disconnected     = chaos.Disconnected
	Deadlock         = chaos.Deadlock
	AwakeBudgetBlown = chaos.AwakeBudgetBlown
)

// NewChaosPolicy builds a deterministic fault-injection policy.
func NewChaosPolicy(opts ChaosOptions) *ChaosPolicy { return chaos.New(opts) }

// ClassifyRun maps a run's outcome and error to an oracle verdict,
// comparing any produced tree against the sequential reference MST.
func ClassifyRun(g *Graph, out *Outcome, err error) Classification {
	return chaos.Classify(g, out, err)
}

// Fault names one fault process for a sweep.
type Fault = chaos.Fault

// Sweepable fault kinds.
const (
	FaultDrop      = chaos.FaultDrop
	FaultDelay     = chaos.FaultDelay
	FaultDup       = chaos.FaultDup
	FaultFlip      = chaos.FaultFlip
	FaultCrash     = chaos.FaultCrash
	FaultOversleep = chaos.FaultOversleep
)

// ChaosSweepConfig configures an outcome-frequency sweep; see
// ChaosSweep.
type ChaosSweepConfig = chaos.SweepConfig

// ChaosSweepResult holds one sweep's per-(algorithm, rate) cells.
type ChaosSweepResult = chaos.SweepResult

// ChaosRunners adapts algorithms for ChaosSweepConfig.Runners.
func ChaosRunners(algos ...Algorithm) []chaos.Runner {
	rs := make([]chaos.Runner, 0, len(algos))
	for _, a := range algos {
		rs = append(rs, chaos.Runner{Name: a.String(), Run: a.Runner()})
	}
	return rs
}

// ChaosSweep runs every configured algorithm against every fault rate
// and tallies oracle verdicts per cell.
func ChaosSweep(cfg ChaosSweepConfig) (*ChaosSweepResult, error) {
	return chaos.RunSweep(cfg)
}

// Problem suite -------------------------------------------------------------

// Problem is one distributed problem the simulator can run end to end:
// the algorithm, its awake-budget envelope, and its correctness
// oracle. Problems are addressed by qualified registry names ("mis",
// "mst/randomized", ...); see LookupProblem.
type Problem = problem.Problem

// ProblemResult is the output of one problem run: the common runtime
// accounting plus the problem-specific output (MST outcome or MIS
// membership vector).
type ProblemResult = problem.Result

// LookupProblem resolves a problem by qualified name ("mis",
// "mst/randomized", ...) or bare MST alias ("randomized", ...). An
// unknown name is an error listing every valid choice.
func LookupProblem(name string) (Problem, error) { return problem.Lookup(name) }

// ProblemNames returns the qualified problem registry names, sorted.
func ProblemNames() []string { return problem.Names() }

// RunMIS computes a maximal independent set of g in the sleeping model
// with O(log log n) worst-case awake complexity w.h.p.
func RunMIS(g *Graph, opts Options) (*ProblemResult, error) { return problem.RunMIS(g, opts) }

// MISAwakeBudget returns the calibrated per-node awake envelope for an
// n-node MIS run (BudgetCMIS · (log2 log2 n + 1), rounded up).
func MISAwakeBudget(n int) (int64, bool) { return problem.MISAwakeBudget(n) }

// MISViolations counts independence and maximality violations of the
// node set marked by inMIS; a valid MIS returns (0, 0).
func MISViolations(g *Graph, inMIS []bool) (notIndependent, notMaximal int64) {
	return graph.MISViolations(g, inMIS)
}

// MISCheck builds the MIS-validity conformance check from the
// violation counts returned by MISViolations, for appending to a
// ConformVerdict.
func MISCheck(notIndependent, notMaximal int64) ConformCheck {
	return conform.MISCheck(notIndependent, notMaximal)
}

// NodeAvgAwake returns the node-averaged awake complexity recorded in
// a run's (or merged sweep's) metrics registry: the awake/node-avg/sum
// counter divided by awake/node-avg/nodes.
func NodeAvgAwake(r *MetricsRegistry) float64 { return metrics.NodeAvgAwake(r) }

// MISClassification is the MIS outcome oracle's verdict for one
// perturbed run.
type MISClassification = chaos.MISClassification

// MIS oracle verdicts.
const (
	CorrectMIS     = chaos.CorrectMIS
	NotIndependent = chaos.NotIndependent
	NotMaximal     = chaos.NotMaximal
	MISDeadlock    = chaos.MISDeadlock
	MISAwakeBlown  = chaos.MISAwakeBlown
)

// ClassifyMISRun maps an MIS run's membership vector and error to an
// oracle verdict.
func ClassifyMISRun(g *Graph, inMIS []bool, err error) MISClassification {
	return chaos.ClassifyMIS(g, inMIS, err)
}

// Model checking ------------------------------------------------------------

// Chooser is the simulator's deterministic branch-point hook: wake
// scheduling, within-round message-routing order, and per-message
// fault injection. A nil Options.Chooser (the default) is
// bit-identical to the production scheduler; the bounded model
// checker drives a Chooser to explore every admissible branch.
type Chooser = sim.Chooser

// ModelCheckConfig parameterizes a bounded exhaustive exploration of
// one problem on one small topology; see ModelCheck.
type ModelCheckConfig = modelcheck.Config

// ModelCheckVerdict is the exploration's schema-versioned result:
// coverage counters (schedules, runs, distinct states, memo hits,
// pruned branches) plus deviation-minimal counterexamples.
type ModelCheckVerdict = modelcheck.Verdict

// ModelCheckViolation is one schedule on which an invariant or the
// problem's correctness oracle failed, with its replayable choice
// prefix and counterexample trace.
type ModelCheckViolation = modelcheck.Violation

// ModelCheck exhaustively explores every admissible schedule of the
// problem on the given small topology up to the configured deviation
// bound, checking the conformance invariant catalog plus the
// problem's oracle on every schedule (the same engine as `mstbench
// -exp modelcheck`). Violations land in the verdict; the returned
// error reports infrastructure failures only.
func ModelCheck(cfg ModelCheckConfig) (*ModelCheckVerdict, error) {
	return modelcheck.Explore(cfg)
}

// Transports ----------------------------------------------------------------

// Transport is a pluggable wire backend: with Options.Transport set,
// every same-round delivery travels as an encoded binary frame
// through the backend instead of staying in scheduler memory, while
// the simulator keeps every model decision (sleeping-receiver losses,
// the CONGEST bit cap, awake metering). Results are byte-identical to
// the in-memory run. See internal/transport.
type Transport = transport.Transport

// TransportStats is the physical wire accounting of one run: frames,
// bytes, dials, retries, injected faults.
type TransportStats = transport.Stats

// TCPTransportConfig parameterizes NewTCPTransport; the zero value
// uses the package defaults (loopback, 8 retries, exponential
// backoff).
type TCPTransportConfig = transport.TCPConfig

// TransportFaultConfig parameterizes WithTransportFaults: seeded
// drop/delay probabilities and the retry budget that masks injected
// drops.
type TransportFaultConfig = transport.FaultConfig

// NewInprocTransport returns the in-process reference backend: frames
// pass through the full encode/decode path without leaving the
// process, proving codec fidelity at zero deployment cost.
func NewInprocTransport() Transport { return transport.NewInproc() }

// NewTCPTransport returns the TCP backend: every node a long-lived
// server on a loopback ephemeral port, with per-link retry and
// graceful shutdown.
func NewTCPTransport(cfg TCPTransportConfig) Transport { return transport.NewTCP(cfg) }

// WithTransportFaults wraps a backend with deterministic wire-level
// fault injection (the chaos drop/delay policies reinterpreted as
// transport faults); injected drops are masked by the retry budget,
// so the run's outcome is unchanged while the retry path is
// exercised.
func WithTransportFaults(inner Transport, cfg TransportFaultConfig) Transport {
	return transport.WithFaults(inner, cfg)
}

// TransportStatsOf extracts the wire accounting from a backend, ok =
// false when the backend does not meter traffic.
func TransportStatsOf(tx Transport) (TransportStats, bool) {
	if st, ok := tx.(transport.Statser); ok {
		return st.TransportStats(), true
	}
	return TransportStats{}, false
}

// ParseTransport converts a CLI transport name into a fresh backend:
// "" or "none" mean in-memory delivery (nil Transport), "inproc" the
// in-process frame backend, "tcp" real loopback sockets.
func ParseTransport(s string) (Transport, error) {
	switch s {
	case "", "none":
		return nil, nil
	case "inproc":
		return transport.NewInproc(), nil
	case "tcp":
		return transport.NewTCP(transport.TCPConfig{}), nil
	default:
		return nil, fmt.Errorf("sleepmst: unknown transport %q (want none, inproc, or tcp)", s)
	}
}

// Persistent service ------------------------------------------------------

// Service is the persistent concurrent MST service: a request
// scheduler over a bounded worker pool with explicit admission
// control, per-request isolation (seed, engine, transport, trace,
// deadline), and a deterministic merged metrics registry. See
// internal/service and DESIGN.md §14.
type Service = service.Service

// ServiceConfig parameterizes NewService: worker count, admission
// queue depth, default per-request deadline, and per-request caps.
type ServiceConfig = service.Config

// ServiceRequest is one certified-computation request submitted to a
// Service, in process or over the wire protocol.
type ServiceRequest = service.Request

// ServiceResponse is the service's answer to one request: a status
// code, the JSON artifact for completed runs, and optionally the full
// JSONL trace for client-side re-certification.
type ServiceResponse = service.Response

// ServiceStatus classifies one request's outcome (ok, violation,
// invalid, overloaded, deadline, shutting-down, internal).
type ServiceStatus = service.Status

// ServiceArtifact is the decoded per-request JSON artifact: verdict,
// run summary, and wire accounting.
type ServiceArtifact = service.Artifact

// ServiceServer exposes a Service over length-prefixed request and
// response frames on TCP connections, with pipelining and a graceful
// drain; mstserve -serve is the daemon around it.
type ServiceServer = service.Server

// NewService starts a persistent service; pair it with
// Service.Drain.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceServer wraps a service for the wire protocol; run it with
// ServiceServer.Serve and stop it with ServiceServer.Shutdown.
func NewServiceServer(svc *Service) *ServiceServer { return service.NewServer(svc) }

// WriteServiceRequest writes one request frame — the client side of
// the service wire protocol.
func WriteServiceRequest(w io.Writer, req ServiceRequest) error {
	return service.WriteRequest(w, req)
}

// ReadServiceResponse reads one response frame off a buffered client
// connection.
func ReadServiceResponse(br *bufio.Reader) (ServiceResponse, error) {
	return service.ReadResponse(br)
}
