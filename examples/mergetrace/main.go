// Mergetrace: regenerates the Appendix C walkthrough (Figures 2-5) of
// Procedure Merging-Fragments. A tails fragment with an MOE into a
// heads fragment re-roots itself at the MOE node and hangs below the
// heads fragment; the trace shows the labeled-distance-tree state
// before and after, the exact transmission-schedule rounds each node
// used, the structured event trace of the merge (the JSONL schema of
// DESIGN.md §8, pretty-printed per event), and the awake cost.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"sleepmst/internal/graph"
	"sleepmst/internal/ldt"
	"sleepmst/internal/sim"
	"sleepmst/internal/trace"
)

func main() {
	// The Figures 2-5 configuration:
	//   heads fragment: 0 <- 1            (u_H = node 1, level 1)
	//   tails fragment: 2 <- 3 <- 4       (root 2; u_T = node 4, level 2)
	//   MOE: edge 4-1 (weight 1)
	g := graph.MustNew(5, []graph.Edge{
		{U: 0, V: 1, Weight: 10},
		{U: 1, V: 4, Weight: 1},
		{U: 2, V: 3, Weight: 20},
		{U: 3, V: 4, Weight: 30},
	})
	states, err := ldt.StatesFromParents(g, []int{-1, 0, -1, 2, 3})
	if err != nil {
		log.Fatalf("mergetrace: %v", err)
	}

	fmt.Println("Figure 2 — initial configuration (tails fragment has MOE 4-1 into heads):")
	printForest(g, states)

	moePort := portTo(g, 4, 1)
	rec := trace.NewRecorder(0)
	res, err := sim.Run(sim.Config{Graph: g, Seed: 1, RecordAwakeRounds: true, Trace: rec}, func(nd *sim.Node) error {
		st := states[nd.Index()]
		dec := ldt.NoMerge
		if st.FragID == g.ID(2) { // every tails-fragment node
			dec = ldt.MergeDecision{Merging: true, AttachPort: -1}
			if nd.Index() == 4 { // u_T
				dec.AttachPort = moePort
			}
		}
		ldt.MergingFragments(nd, st, 1, dec)
		return nil
	})
	if err != nil {
		log.Fatalf("mergetrace: %v", err)
	}

	n := g.N()
	blk := ldt.BlockLen(n)
	fmt.Println("Procedure Merging-Fragments, three blocks of 2n+1 rounds each:")
	fmt.Printf("  block A rounds [%d..%d]: Transmit-Adjacent — fragment IDs/levels cross\n", 1, blk)
	fmt.Printf("    the MOE; u_T adopts NEW-LEVEL-NUM = level(u_H)+1 = 2 (Figure 3)\n")
	fmt.Printf("  block B rounds [%d..%d]: first Transmission-Schedule instance — the\n", blk+1, 2*blk)
	fmt.Printf("    wave climbs the old tree 4 -> 3 -> 2, flipping parents toward u_T\n")
	fmt.Printf("  block C rounds [%d..%d]: second instance — remaining nodes inherit\n", 2*blk+1, 3*blk)
	fmt.Printf("    their new labels downward (Figure 4), then all commit (Figure 5)\n\n")

	fmt.Println("awake rounds used per node:")
	for v, rounds := range res.AwakeRounds {
		fmt.Printf("  node %d: %v\n", v, rounds)
	}
	fmt.Println()

	fmt.Println("structured event trace (one line per event; kinds: awake, send,")
	fmt.Println("deliver, merge, sleep — the raw JSONL schema is in DESIGN.md §8):")
	for _, ev := range rec.Events() {
		fmt.Printf("  %s\n", describe(ev))
	}
	fmt.Println()
	fmt.Println("the same trace as JSONL (what -trace-out writes):")
	if err := rec.WriteJSONL(os.Stdout); err != nil {
		log.Fatalf("mergetrace: %v", err)
	}
	fmt.Println()

	fmt.Println("Figure 5 — final configuration (single LDT rooted at node 0):")
	printForest(g, states)

	if err := ldt.Validate(g, states); err != nil {
		log.Fatalf("mergetrace: invariant: %v", err)
	}
	fmt.Printf("LDT invariant verified; awake complexity of the merge: %d rounds (<= 5)\n", res.MaxAwake())
}

// describe renders one trace event as a human-readable line.
func describe(ev trace.Event) string {
	switch ev.Kind {
	case trace.KindAwake:
		return fmt.Sprintf("r%-3d node %d awake", ev.Round, ev.Node)
	case trace.KindSend:
		return fmt.Sprintf("r%-3d node %d sends on port %d to node %d", ev.Round, ev.Node, ev.Port, ev.Peer)
	case trace.KindDeliver:
		return fmt.Sprintf("r%-3d node %d receives on port %d from node %d", ev.Round, ev.Node, ev.Port, ev.Peer)
	case trace.KindLost:
		return fmt.Sprintf("r%-3d node %d -> node %d lost (receiver asleep)", ev.Round, ev.Node, ev.Peer)
	case trace.KindMerge:
		return fmt.Sprintf("r%-3d node %d joins fragment %d (was %d)", ev.Round, ev.Node, ev.Frag, ev.Prev)
	case trace.KindSleep:
		return fmt.Sprintf("r%-3d node %d wakes (slept since r%d)", ev.Round, ev.Node, ev.Aux)
	default:
		return fmt.Sprintf("r%-3d node %d %s", ev.Round, ev.Node, ev.Kind)
	}
}

func printForest(g *graph.Graph, states []*ldt.State) {
	for fragID, members := range ldt.Fragments(states) {
		fmt.Printf("  fragment %d:\n", fragID)
		// Find the root and print the tree depth-first.
		for _, v := range members {
			if states[v].IsRoot() {
				printTree(g, states, v, 0)
			}
		}
	}
	fmt.Println()
}

func printTree(g *graph.Graph, states []*ldt.State, v, indent int) {
	st := states[v]
	fmt.Printf("    %s node %d (level %d)\n", strings.Repeat("  ", indent), v, st.Level)
	for _, c := range st.Children {
		printTree(g, states, g.Ports(v)[c].To, indent+1)
	}
}

func portTo(g *graph.Graph, v, w int) int {
	for p, pt := range g.Ports(v) {
		if pt.To == w {
			return p
		}
	}
	panic("no port")
}
