// Tradeoff: compares all four algorithms on the same instances,
// showing the awake/round trade-off space of Table 1 — the randomized
// and deterministic algorithms sit at O(log n) awake with very
// different round complexities, the log* variant trades a log* factor
// of awake time for N-independence, and the always-awake baseline
// collapses both measures into one.
package main

import (
	"fmt"
	"log"
	"math"

	"sleepmst"
	"sleepmst/internal/stats"
)

func main() {
	algorithms := []sleepmst.Algorithm{
		sleepmst.Randomized, sleepmst.Deterministic, sleepmst.LogStar,
		sleepmst.Baseline, sleepmst.ClassicGHS,
	}
	for _, n := range []int{64, 128} {
		g := sleepmst.RandomConnected(n, 3*n, int64(n))
		fmt.Printf("=== n=%d, m=%d ===\n", g.N(), g.M())
		tb := stats.NewTable("algorithm", "awake", "awake/log2n", "rounds", "rounds/(n log2 n)", "phases")
		for _, a := range algorithms {
			rep, err := sleepmst.Run(a, g, sleepmst.Options{Seed: 5})
			if err != nil {
				log.Fatalf("tradeoff: %s n=%d: %v", a, n, err)
			}
			if !rep.Verified() {
				log.Fatalf("tradeoff: %s computed a wrong MST", a)
			}
			logn := math.Log2(float64(n))
			tb.AddRow(a.String(), rep.AwakeComplexity(),
				float64(rep.AwakeComplexity())/logn,
				rep.RoundComplexity(),
				float64(rep.RoundComplexity())/(float64(n)*logn),
				rep.Phases)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("Reading the table: awake/log2n stays flat for the sleeping algorithms")
	fmt.Println("(their awake complexity is Θ(log n)), while the baseline's awake time")
	fmt.Println("equals its Θ(n log n) round complexity. The deterministic algorithm")
	fmt.Println("pays a factor-N round overhead for its coloring; the log* variant")
	fmt.Println("removes it at a log* n awake premium — the Theorem 4 lower bound says")
	fmt.Println("no algorithm can make awake x rounds o(n/polylog n).")
}
