// Chaossweep: probes the robustness boundary of the sleeping-model
// MST algorithms. The paper's guarantees assume a fault-free
// synchronous network; this example injects seeded message drops at
// increasing rates, classifies every perturbed run with the outcome
// oracle, and prints the resulting outcome-frequency table — showing
// how quickly the clean-model guarantees erode once the adversary is
// allowed to lose messages.
//
// It then demonstrates the single-run API: one crash-stopped node and
// the oracle verdict for that run.
package main

import (
	"fmt"
	"log"

	"sleepmst"
)

func main() {
	g := sleepmst.RandomConnected(128, 384, 7)
	fmt.Printf("graph: random connected, n=%d m=%d\n\n", g.N(), g.M())

	// Sweep: drop rate 0 (control) up to 2%, five seeded runs per
	// cell, for the two awake-optimal algorithms and the always-awake
	// baseline.
	res, err := sleepmst.ChaosSweep(sleepmst.ChaosSweepConfig{
		Graph:    g,
		Runners:  sleepmst.ChaosRunners(sleepmst.Randomized, sleepmst.Deterministic, sleepmst.Baseline),
		Fault:    sleepmst.FaultDrop,
		Rates:    []float64{0, 0.005, 0.02},
		Seeds:    5,
		BaseSeed: 1,
	})
	if err != nil {
		log.Fatalf("chaossweep: %v", err)
	}
	fmt.Print(res.Table())

	// Single perturbed run: crash node 3 at round 10 and ask the
	// oracle what became of the computation.
	policy := sleepmst.NewChaosPolicy(sleepmst.ChaosOptions{
		Seed:  1,
		Crash: []sleepmst.CrashEvent{{Node: 3, Round: 10}},
	})
	out, err := sleepmst.Randomized.Runner()(g, sleepmst.Options{
		Seed:        1,
		Interceptor: policy,
	})
	verdict := sleepmst.ClassifyRun(g, out, err)
	fmt.Printf("\nsingle run with node 3 crash-stopped at round 10: %s\n", verdict)
	if err != nil {
		fmt.Printf("run error: %v\n", err)
	}
}
