// Sensornet: the paper's motivating scenario. A battery-powered
// wireless sensor deployment computes an MST (the standard backbone
// for energy-efficient broadcast); we compare the energy budget of the
// sleeping-model algorithm against the traditional always-awake
// execution on the same radio network.
package main

import (
	"fmt"
	"log"

	"sleepmst"
	"sleepmst/internal/energy"
	"sleepmst/internal/stats"
)

func main() {
	const (
		sensors  = 200
		radius   = 0.14 // radio range in unit-square coordinates
		batteryJ = 2.0  // coin-cell scale budget for the radio
	)
	g := sleepmst.SensorNetwork(sensors, radius, 2026)
	fmt.Printf("sensor field: %d motes, %d radio links\n\n", g.N(), g.M())

	tb := stats.NewTable("algorithm", "awake max", "awake mean", "rounds",
		"worst node energy", "MST recomputations per battery")
	for _, a := range []sleepmst.Algorithm{sleepmst.Randomized, sleepmst.LogStar, sleepmst.Baseline} {
		rep, err := sleepmst.Run(a, g, sleepmst.Options{Seed: 11})
		if err != nil {
			log.Fatalf("sensornet: %s: %v", a, err)
		}
		if !rep.Verified() {
			log.Fatalf("sensornet: %s computed a wrong tree", a)
		}
		budget := energy.TelosMote.Cost(rep.Result)
		life := energy.TelosMote.Lifetime(rep.Result, batteryJ)
		tb.AddRow(a.String(), rep.AwakeComplexity(), rep.Result.MeanAwake(),
			rep.RoundComplexity(), fmt.Sprintf("%.1f uJ", budget.MaxUJ), fmt.Sprintf("%.1f", life))
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("The sleeping-model algorithms keep every mote awake for O(log n)")
	fmt.Println("slots, so the MST backbone can be rebuilt orders of magnitude more")
	fmt.Println("often on the same battery than with an always-awake protocol.")
}
