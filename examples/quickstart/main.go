// Quickstart: compute an MST in the sleeping model and inspect the
// metrics that make the paper's headline result visible — O(log n)
// awake rounds against Θ(n log n) total rounds.
package main

import (
	"fmt"
	"log"
	"math"

	"sleepmst"
)

func main() {
	const n = 256
	g := sleepmst.RandomConnected(n, 3*n, 42)

	rep, err := sleepmst.Run(sleepmst.Randomized, g, sleepmst.Options{Seed: 7})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("network: n=%d nodes, m=%d edges\n", g.N(), g.M())
	fmt.Printf("MST: %d edges, total weight %d, matches Kruskal: %v\n",
		len(rep.MSTEdges), rep.MSTWeight(), rep.Verified())
	fmt.Println()
	fmt.Printf("awake complexity (max over nodes) : %6d  (%.1f x log2 n)\n",
		rep.AwakeComplexity(), float64(rep.AwakeComplexity())/math.Log2(n))
	fmt.Printf("awake complexity (node average)   : %8.1f\n", rep.Result.MeanAwake())
	fmt.Printf("round complexity                  : %6d  (%.1f x n log2 n)\n",
		rep.RoundComplexity(), float64(rep.RoundComplexity())/(n*math.Log2(n)))
	fmt.Printf("GHS phases                        : %6d\n", rep.Phases)
	fmt.Println()
	fmt.Println("every node knows its incident MST edges (first five nodes):")
	ports := sleepmst.MSTPorts(rep)
	for v := 0; v < 5; v++ {
		fmt.Printf("  node %d: MST on ports %v of %d\n", v, ports[v], g.Degree(v))
	}
}
