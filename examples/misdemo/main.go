// Misdemo: run the problem suite's maximal-independent-set resident
// and inspect the sleeping-model accounting that makes its headline
// bound visible — O(log log n) worst-case awake rounds — alongside
// the node-averaged awake complexity every problem reports.
package main

import (
	"fmt"
	"log"
	"math"

	"sleepmst"
)

func main() {
	const n = 256
	g := sleepmst.RandomConnected(n, 3*n, 42)

	p, err := sleepmst.LookupProblem("mis")
	if err != nil {
		log.Fatalf("misdemo: %v", err)
	}
	reg := sleepmst.NewMetricsRegistry()
	r, err := p.Run(g, sleepmst.Options{Seed: 7, Metrics: reg})
	if err != nil {
		log.Fatalf("misdemo: %v", err)
	}

	size := 0
	for _, in := range r.InMIS {
		if in {
			size++
		}
	}
	notIndependent, notMaximal := sleepmst.MISViolations(g, r.InMIS)
	budget, _ := p.Budget(n)
	loglog := math.Log2(math.Log2(n))

	fmt.Printf("network: n=%d nodes, m=%d edges\n", g.N(), g.M())
	fmt.Printf("MIS: %d members, independence violations=%d, uncovered nodes=%d, oracle ok: %v\n",
		size, notIndependent, notMaximal, p.Verify(g, r) == nil)
	fmt.Println()
	fmt.Printf("awake complexity (max over nodes) : %6d  (%.1f x log2 log2 n, budget %d)\n",
		r.Sim.MaxAwake(), float64(r.Sim.MaxAwake())/loglog, budget)
	fmt.Printf("awake complexity (node average)   : %8.1f  (awake/node-avg/* metrics)\n",
		sleepmst.NodeAvgAwake(reg))
	fmt.Printf("round complexity                  : %6d  (busy %d; sleeping rounds are free)\n",
		r.Sim.Rounds, r.Sim.BusyRounds)
	fmt.Printf("phases                            : %6d  (sparsify + cleanup)\n", r.Phases)
	fmt.Println()
	fmt.Println("first five nodes:")
	for v := 0; v < 5; v++ {
		fmt.Printf("  node %d: inMIS=%v degree=%d\n", v, r.InMIS[v], g.Degree(v))
	}
}
