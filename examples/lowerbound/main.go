// Lowerbound: walks the Theorem 4 construction end to end. It builds
// the Figure 1 graph G_rc, encodes a set-disjointness instance as edge
// markings (DSD), lifts it to weights (CSS -> MST), solves it with the
// sleeping-model MST algorithm, and reports the congestion at the
// binary-tree nodes I that the proof charges against awake time.
package main

import (
	"fmt"
	"log"

	"sleepmst"
	"sleepmst/internal/lowerbound"
	"sleepmst/internal/stats"
)

func main() {
	grc, err := sleepmst.NewGRC(5, 64, 3)
	if err != nil {
		log.Fatalf("lowerbound: %v", err)
	}
	fmt.Printf("G_rc: r=%d rows x c=%d columns, n=%d nodes, |X|=%d spoke columns,\n",
		grc.R, grc.C, grc.G.N(), len(grc.X))
	fmt.Printf("      %d binary-tree nodes, diameter %d (Observation 1: Θ(c/log n))\n\n",
		len(grc.InternalNodes), sleepmst.Diameter(grc.G))

	// Alice's and Bob's inputs, one bit per row p_2..p_r.
	x := []bool{true, false, true, false}
	y := []bool{false, true, false, false}
	ins, err := sleepmst.NewDSDInstance(grc, x, y)
	if err != nil {
		log.Fatalf("lowerbound: %v", err)
	}
	fmt.Printf("Alice's x = %v\nBob's   y = %v\n", bits(x), bits(y))
	fmt.Printf("ground truth: disjoint = %v (CSS: marked subgraph connected = %v)\n\n",
		ins.Disjoint(), ins.MarkedConnected())

	disjoint, metrics, err := sleepmst.SolveSDViaMST(ins, sleepmst.Randomized, sleepmst.Options{Seed: 9})
	if err != nil {
		log.Fatalf("lowerbound: %v", err)
	}
	fmt.Printf("SD -> DSD -> CSS -> MST decoded answer: disjoint = %v\n\n", disjoint)

	var cong int64
	for _, v := range grc.InternalNodes {
		if b := metrics.BitsReceivedPerNode[v]; b > cong {
			cong = b
		}
	}
	fmt.Printf("run metrics: awake=%d rounds=%d product=%d (n=%d)\n",
		metrics.MaxAwake(), metrics.Rounds, metrics.MaxAwake()*metrics.Rounds, grc.G.N())
	fmt.Printf("congestion at tree nodes I: %d bits received (max)\n\n", cong)

	fmt.Println("awake x rounds trade-off across instance sizes (Theorem 4: Ω̃(n)):")
	tb := stats.NewTable("c", "n", "awake", "rounds", "awake x rounds", "product/n")
	for _, c := range []int{16, 32, 64} {
		pt, err := lowerbound.TradeoffExperiment(4, c, sleepmst.Randomized.Runner(), int64(c))
		if err != nil {
			log.Fatalf("lowerbound: %v", err)
		}
		tb.AddRow(pt.C, pt.N, pt.Awake, pt.Rounds, pt.Product, float64(pt.Product)/float64(pt.N))
	}
	fmt.Print(tb.String())
}

func bits(b []bool) string {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
